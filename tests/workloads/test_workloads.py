"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.workloads import (
    alexnet_pruned_layers,
    info,
    matrix_names,
    resnet50_layers,
    synthesize,
    synthesize_all,
    total_macs,
)


class TestResNet50:
    def test_layer_count(self):
        assert len(resnet50_layers()) == 18

    def test_im2col_dimensions(self):
        conv1 = resnet50_layers()[0]
        assert conv1.matmul_m == 112 * 112
        assert conv1.matmul_k == 3 * 7 * 7
        assert conv1.matmul_n == 64

    def test_total_macs_magnitude(self):
        """ResNet-50 is ~4 GMACs for one inference; the distinct-shape
        table covers a representative fraction of that."""
        assert 1e9 < total_macs() < 1e10

    def test_macs_consistent(self):
        for layer in resnet50_layers():
            assert layer.macs == layer.matmul_m * layer.matmul_k * layer.matmul_n

    def test_byte_counts_positive(self):
        for layer in resnet50_layers():
            assert layer.weight_bytes > 0
            assert layer.activation_bytes > 0


class TestAlexNet:
    def test_five_conv_layers(self):
        assert len(alexnet_pruned_layers()) == 5

    def test_densities_in_range(self):
        for layer in alexnet_pruned_layers():
            assert 0 < layer.weight_density <= 1
            assert 0 < layer.activation_density <= 1

    def test_effective_macs_below_dense(self):
        for layer in alexnet_pruned_layers():
            assert layer.effective_macs < layer.dense_macs

    def test_later_layers_sparser(self):
        layers = alexnet_pruned_layers()
        assert layers[-1].weight_density < layers[0].weight_density


class TestSuiteSparse:
    def test_registry_covers_paper_set(self):
        names = set(matrix_names())
        for required in (
            "poisson3Da",
            "cop20k_A",
            "web-Google",
            "wiki-Vote",
            "roadNet-CA",
            "amazon0312",
        ):
            assert required in names

    def test_info_lookup(self):
        meta = info("wiki-Vote")
        assert meta.rows == 8_297
        assert meta.nnz == 103_689

    def test_unknown_matrix_rejected(self):
        with pytest.raises(KeyError):
            info("not-a-matrix")

    def test_synthesized_shape_capped(self):
        matrix = synthesize("web-Google", max_rows=64, seed=1)
        assert matrix.shape == (64, 64)

    def test_scale_factor_recorded(self):
        matrix = synthesize("web-Google", max_rows=64, seed=1)
        assert matrix.scale_factor == pytest.approx(916_428 / 64)

    def test_mean_row_length_preserved(self):
        meta = info("poisson3Da")
        matrix = synthesize("poisson3Da", max_rows=128, seed=3)
        want = meta.nnz / meta.rows
        got = matrix.nnz / matrix.shape[0]
        assert got == pytest.approx(want, rel=0.35)

    def test_power_law_more_imbalanced_than_mesh(self):
        power = synthesize("wiki-Vote", max_rows=128, seed=5)
        mesh = synthesize("poisson3Da", max_rows=128, seed=5)
        assert power.row_imbalance() > mesh.row_imbalance()

    def test_deterministic_with_seed(self):
        a = synthesize("scircuit", max_rows=64, seed=9)
        b = synthesize("scircuit", max_rows=64, seed=9)
        assert np.array_equal(a.to_dense(), b.to_dense())

    def test_synthesize_all(self):
        matrices = synthesize_all(max_rows=32, seed=1)
        assert set(matrices) == set(matrix_names())
        assert all(m.nnz > 0 for m in matrices.values())

    def test_rows_sorted_within_each_row(self):
        matrix = synthesize("email-Enron", max_rows=64, seed=2)
        for r in range(matrix.shape[0]):
            cols, _ = matrix.row(r)
            assert list(cols) == sorted(cols)
