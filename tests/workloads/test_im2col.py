"""Tests for the im2col convolution lowering (the Gemmini conv path)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Accelerator, matmul_spec
from repro.core.dataflow import weight_stationary
from repro.soc import L2Cache, StellarSoC
from repro.workloads.im2col import (
    conv2d_reference,
    conv2d_via_im2col,
    im2col,
    matmul_to_output,
    weights_to_matrix,
)


class TestIm2Col:
    def test_dimensions(self, rng):
        activations = rng.integers(-3, 4, (6, 6, 3))
        unfolded = im2col(activations, (3, 3))
        assert unfolded.shape == (16, 27)  # 4x4 outputs, 3*3*3 taps

    def test_strided_dimensions(self, rng):
        activations = rng.integers(-3, 4, (7, 7, 2))
        unfolded = im2col(activations, (3, 3), stride=2)
        assert unfolded.shape == (9, 18)

    def test_weights_matrix(self, rng):
        weights = rng.integers(-3, 4, (3, 3, 2, 8))
        assert weights_to_matrix(weights).shape == (18, 8)

    def test_matches_direct_convolution(self, rng):
        activations = rng.integers(-3, 4, (6, 6, 3))
        weights = rng.integers(-3, 4, (3, 3, 3, 4))
        via_matmul = conv2d_via_im2col(activations, weights)
        direct = conv2d_reference(activations, weights)
        assert np.array_equal(via_matmul, direct)

    def test_strided_matches_direct(self, rng):
        activations = rng.integers(-3, 4, (7, 7, 2))
        weights = rng.integers(-3, 4, (3, 3, 2, 3))
        assert np.array_equal(
            conv2d_via_im2col(activations, weights, stride=2),
            conv2d_reference(activations, weights, stride=2),
        )

    def test_channel_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            conv2d_reference(
                rng.integers(0, 2, (4, 4, 3)), rng.integers(0, 2, (3, 3, 2, 4))
            )

    @settings(max_examples=15, deadline=None)
    @given(
        h=st.integers(3, 7),
        c=st.integers(1, 3),
        k=st.integers(1, 4),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_property_im2col_equals_direct(self, h, c, k, seed):
        rng = np.random.default_rng(seed)
        activations = rng.integers(-4, 5, (h, h, c))
        weights = rng.integers(-4, 5, (3, 3, c, k)) if h >= 3 else None
        assert np.array_equal(
            conv2d_via_im2col(activations, weights),
            conv2d_reference(activations, weights),
        )


class TestConvOnGeneratedArray:
    def test_conv_layer_through_generated_matmul_array(self, rng):
        """A real conv layer executed the Gemmini way: im2col, tile the
        matmul over a generated 4x4 weight-stationary array via the SoC
        harness, fold the product back to feature maps."""
        activations = rng.integers(-2, 3, (5, 5, 4))
        weights = rng.integers(-2, 3, (2, 2, 4, 8))
        lhs = im2col(activations, (2, 2))          # 16 x 16
        rhs = weights_to_matrix(weights)           # 16 x 8
        # Pad to the tiled-square shape the SoC harness expects.
        n = 16
        lhs_p = np.zeros((n, n), dtype=int)
        rhs_p = np.zeros((n, n), dtype=int)
        lhs_p[: lhs.shape[0], : lhs.shape[1]] = lhs
        rhs_p[: rhs.shape[0], : rhs.shape[1]] = rhs

        design = Accelerator(
            spec=matmul_spec(),
            bounds={"i": 4, "j": 4, "k": 4},
            transform=weight_stationary(),
        ).build()
        soc = StellarSoC(design, l2=L2Cache())
        report = soc.run_tiled_matmul(lhs_p, rhs_p, tile=4)
        product = report["output"][: lhs.shape[0], : rhs.shape[1]]

        out = matmul_to_output(product, (4, 4))
        assert np.array_equal(out, conv2d_reference(activations, weights))
        assert report["compute_cycles"] > 0
