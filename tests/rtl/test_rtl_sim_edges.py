"""Edge-case tests for the RTL interpreter."""

import pytest

from repro.rtl.netlist import Module, Netlist, RTLError
from repro.rtl.sim import RTLSimulator


def _netlist(module: Module) -> Netlist:
    netlist = Netlist(module.name)
    netlist.add(module)
    return netlist


class TestMemories:
    def _memory_module(self) -> Module:
        module = Module("memory")
        module.input("clk")
        module.input("rst")
        module.input("wr_en")
        module.input("addr", 8)
        module.input("wr_data", 32)
        module.output("rd_data", 32)
        module.reg("mem", 32, depth=16)
        module.sync(["if (wr_en) mem[addr] <= wr_data;"])
        module.assign("rd_data", "mem[addr]")
        return module

    def test_write_then_read(self):
        sim = RTLSimulator(_netlist(self._memory_module()))
        sim.poke("addr", 3)
        sim.poke("wr_data", 77)
        sim.poke("wr_en", 1)
        sim.step(1)
        sim.poke("wr_en", 0)
        assert sim.peek("rd_data") == 77

    def test_unwritten_reads_zero(self):
        sim = RTLSimulator(_netlist(self._memory_module()))
        sim.poke("addr", 9)
        assert sim.peek("rd_data") == 0

    def test_peek_memory(self):
        sim = RTLSimulator(_netlist(self._memory_module()))
        sim.poke("addr", 2)
        sim.poke("wr_data", 5)
        sim.poke("wr_en", 1)
        sim.step(1)
        assert sim.peek_memory("mem", 2) == 5
        assert sim.peek_memory("mem", 3) == 0

    def test_peek_memory_without_index_rejected(self):
        sim = RTLSimulator(_netlist(self._memory_module()))
        with pytest.raises(RTLError):
            sim.peek("mem")


class TestSliceSemantics:
    def test_slice_read(self):
        module = Module("slicer")
        module.input("clk")
        module.input("bus", 16)
        module.output("high", 8)
        module.output("low", 8)
        module.assign("high", "bus[15:8]")
        module.assign("low", "bus[7:0]")
        sim = RTLSimulator(_netlist(module))
        sim.poke("bus", 0xAB12)
        assert sim.peek("high") == 0xAB
        assert sim.peek("low") == 0x12

    def test_concat_read(self):
        module = Module("packer")
        module.input("clk")
        module.input("a", 8)
        module.input("b", 8)
        module.output("packed", 16)
        module.assign("packed", "{a, b}")
        sim = RTLSimulator(_netlist(module))
        sim.poke("a", 0xCD)
        sim.poke("b", 0x34)
        assert sim.peek("packed") == 0xCD34

    def test_single_bit_index_read(self):
        module = Module("bit")
        module.input("clk")
        module.input("mask", 8)
        module.input("sel", 3)
        module.output("hit")
        module.assign("hit", "mask[sel]")
        sim = RTLSimulator(_netlist(module))
        sim.poke("mask", 0b00100000)
        sim.poke("sel", 5)
        assert sim.peek("hit") == 1
        sim.poke("sel", 4)
        assert sim.peek("hit") == 0


class TestNonBlockingSemantics:
    def test_swap_uses_pre_edge_values(self):
        """Two registers swapping through non-blocking assignments must
        exchange values, not duplicate one (the defining NBA behaviour)."""
        module = Module("swapper")
        module.input("clk")
        module.input("rst")
        module.reg("x", 8)
        module.reg("y", 8)
        module.sync(["x <= y;", "y <= x;"], ["x <= 8'd1;", "y <= 8'd2;"])
        sim = RTLSimulator(_netlist(module))
        sim.reset()
        assert (sim.peek("x"), sim.peek("y")) == (1, 2)
        sim.step(1)
        assert (sim.peek("x"), sim.peek("y")) == (2, 1)
        sim.step(1)
        assert (sim.peek("x"), sim.peek("y")) == (1, 2)

    def test_shift_chain_moves_one_per_cycle(self):
        module = Module("chain")
        module.input("clk")
        module.input("rst")
        module.input("din", 8)
        module.output("dout", 8)
        module.reg("s0", 8)
        module.reg("s1", 8)
        module.sync(["s0 <= din;", "s1 <= s0;"], ["s0 <= 8'd0;", "s1 <= 8'd0;"])
        module.assign("dout", "s1")
        sim = RTLSimulator(_netlist(module))
        sim.reset()
        sim.poke("din", 9)
        sim.step(1)
        assert sim.peek("dout") == 0
        sim.step(1)
        assert sim.peek("dout") == 9


class TestErrors:
    def test_unknown_signal_rejected(self):
        module = Module("m")
        module.input("clk")
        sim = RTLSimulator(_netlist(module))
        with pytest.raises(KeyError):
            sim.peek("ghost")

    def test_unknown_instance_path_rejected(self):
        module = Module("m")
        module.input("clk")
        sim = RTLSimulator(_netlist(module))
        with pytest.raises(RTLError):
            sim.peek("nothere.signal")

    def test_combinational_loop_detected(self):
        module = Module("loop")
        module.input("clk")
        module.wire("a")
        module.assign("a", "a + 1'b1")  # a = !a: oscillates, never settles
        with pytest.raises(RTLError):
            RTLSimulator(_netlist(module))
