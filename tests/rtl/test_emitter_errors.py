"""Error-path tests for the Verilog emitter and netlist IR constructors."""

import pytest

from repro.rtl.netlist import Instance, Module, Net, Netlist, Port, PortDir, RTLError
from repro.rtl.verilog import emit_module, emit_netlist


class TestEmitterErrors:
    def test_portless_module_rejected(self):
        m = Module("island")
        with pytest.raises(RTLError, match="has no ports"):
            emit_module(m)

    def test_portless_module_rejected_via_netlist(self):
        nl = Netlist("island")
        nl.add(Module("island"))
        with pytest.raises(RTLError, match="island"):
            emit_netlist(nl)

    def test_connection_to_missing_port_rejected(self):
        child = Module("leaf")
        child.input("clk")
        top = Module("top")
        top.input("clk")
        top.instantiate(child, "c0", {"clk": "clk", "bogus": "clk"})
        nl = Netlist("top")
        nl.add(child)
        nl.add(top)
        with pytest.raises(RTLError) as excinfo:
            emit_netlist(nl)
        message = str(excinfo.value)
        assert "'c0'" in message
        assert "'bogus'" in message
        assert "'leaf'" in message

    def test_unknown_child_module_is_not_an_emitter_error(self):
        # Unknown children are the lint's finding (STL-NL-*); emit_netlist
        # must not crash on the connection check, only on module lookup.
        top = Module("top")
        top.input("clk")
        top.instances.append(Instance("ghost", "g0", {"clk": "clk"}))
        nl = Netlist("top")
        nl.add(top)
        with pytest.raises(RTLError, match="no module named 'ghost'"):
            emit_netlist(nl)

    def test_missing_top_module_rejected(self):
        nl = Netlist("nothing")
        with pytest.raises(RTLError, match="no module named 'nothing'"):
            emit_netlist(nl)


class TestConstructorValidation:
    @pytest.mark.parametrize("width", [0, -1, -8])
    def test_port_width_must_be_positive(self, width):
        with pytest.raises(RTLError, match="at least 1 bit"):
            Port("p", PortDir.INPUT, width)

    @pytest.mark.parametrize("width", [0, -1])
    def test_net_width_must_be_positive(self, width):
        with pytest.raises(RTLError, match="at least 1 bit"):
            Net("n", width)

    @pytest.mark.parametrize("name", ["", "9lives", "a-b", "a b", "a.b"])
    def test_invalid_module_name_rejected(self, name):
        with pytest.raises(RTLError, match="invalid module name"):
            Module(name)

    @pytest.mark.parametrize("name", ["", "1x", "x!", "if?"])
    def test_invalid_identifier_rejected(self, name):
        m = Module("m")
        with pytest.raises(RTLError, match="invalid identifier"):
            m.wire(name)

    def test_duplicate_declaration_rejected(self):
        m = Module("m")
        m.input("x", 8)
        with pytest.raises(RTLError, match="duplicate declaration"):
            m.wire("x", 8)

    def test_duplicate_module_rejected(self):
        nl = Netlist("m")
        nl.add(Module("m"))
        with pytest.raises(RTLError, match="duplicate module"):
            nl.add(Module("m"))

    def test_missing_port_lookup_rejected(self):
        m = Module("m")
        m.input("clk")
        with pytest.raises(RTLError, match="has no port 'q'"):
            m.port("q")
