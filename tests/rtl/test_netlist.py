"""Tests for the structural RTL IR (repro.rtl.netlist)."""

import pytest

from repro.rtl.netlist import (
    Module,
    Netlist,
    PortDir,
    RTLError,
    expression_identifiers,
)


class TestModuleBuilders:
    def test_ports(self):
        m = Module("m")
        m.input("clk")
        m.output("q", 8)
        assert m.port("q").width == 8
        assert m.port("clk").direction is PortDir.INPUT

    def test_duplicate_declaration_rejected(self):
        m = Module("m")
        m.input("clk")
        with pytest.raises(RTLError):
            m.wire("clk")

    def test_invalid_identifier_rejected(self):
        m = Module("m")
        with pytest.raises(RTLError):
            m.wire("3bad")

    def test_invalid_module_name_rejected(self):
        with pytest.raises(RTLError):
            Module("bad name")

    def test_zero_width_rejected(self):
        m = Module("m")
        with pytest.raises(RTLError):
            m.wire("w", 0)

    def test_memory_depth(self):
        m = Module("m")
        net = m.reg("mem", 32, depth=64)
        assert net.depth == 64

    def test_missing_port_raises(self):
        m = Module("m")
        with pytest.raises(RTLError):
            m.port("nope")

    def test_declared_names(self):
        m = Module("m")
        m.input("a")
        m.wire("b")
        m.reg("c")
        assert m.declared_names() == frozenset({"a", "b", "c"})


class TestNetlist:
    def test_duplicate_module_rejected(self):
        nl = Netlist("top")
        nl.add(Module("top"))
        with pytest.raises(RTLError):
            nl.add(Module("top"))

    def test_missing_module_raises(self):
        nl = Netlist("top")
        with pytest.raises(RTLError):
            nl.module("nope")

    def test_counts(self):
        nl = Netlist("top")
        child = Module("child")
        child.input("clk")
        nl.add(child)
        top = Module("top")
        top.input("clk")
        top.instantiate(child, "c0", {"clk": "clk"})
        top.instantiate(child, "c1", {"clk": "clk"})
        nl.add(top)
        assert nl.total_module_count() == 2
        assert nl.instance_count() == 2


class TestExpressionIdentifiers:
    def test_simple(self):
        assert set(expression_identifiers("a + b * c")) == {"a", "b", "c"}

    def test_skips_literals(self):
        assert set(expression_identifiers("x + 32'd15")) == {"x"}

    def test_skips_hex_literals(self):
        assert set(expression_identifiers("y & 8'hff")) == {"y"}

    def test_skips_keywords(self):
        assert set(expression_identifiers("if (en) begin end")) == {"en"}

    def test_subscripts(self):
        assert set(expression_identifiers("mem[addr[3:0]]")) == {"mem", "addr"}
