"""Tests for the structural RTL IR (repro.rtl.netlist)."""

import pytest

from repro.rtl.netlist import (
    Module,
    Netlist,
    PortDir,
    RTLError,
    expression_identifiers,
)


class TestModuleBuilders:
    def test_ports(self):
        m = Module("m")
        m.input("clk")
        m.output("q", 8)
        assert m.port("q").width == 8
        assert m.port("clk").direction is PortDir.INPUT

    def test_duplicate_declaration_rejected(self):
        m = Module("m")
        m.input("clk")
        with pytest.raises(RTLError):
            m.wire("clk")

    def test_invalid_identifier_rejected(self):
        m = Module("m")
        with pytest.raises(RTLError):
            m.wire("3bad")

    def test_invalid_module_name_rejected(self):
        with pytest.raises(RTLError):
            Module("bad name")

    def test_zero_width_rejected(self):
        m = Module("m")
        with pytest.raises(RTLError):
            m.wire("w", 0)

    def test_memory_depth(self):
        m = Module("m")
        net = m.reg("mem", 32, depth=64)
        assert net.depth == 64

    def test_missing_port_raises(self):
        m = Module("m")
        with pytest.raises(RTLError):
            m.port("nope")

    def test_declared_names(self):
        m = Module("m")
        m.input("a")
        m.wire("b")
        m.reg("c")
        assert m.declared_names() == frozenset({"a", "b", "c"})


class TestNetlist:
    def test_duplicate_module_rejected(self):
        nl = Netlist("top")
        nl.add(Module("top"))
        with pytest.raises(RTLError):
            nl.add(Module("top"))

    def test_missing_module_raises(self):
        nl = Netlist("top")
        with pytest.raises(RTLError):
            nl.module("nope")

    def test_counts(self):
        nl = Netlist("top")
        child = Module("child")
        child.input("clk")
        nl.add(child)
        top = Module("top")
        top.input("clk")
        top.instantiate(child, "c0", {"clk": "clk"})
        top.instantiate(child, "c1", {"clk": "clk"})
        nl.add(top)
        assert nl.total_module_count() == 2
        assert nl.instance_count() == 2


class TestExpressionIdentifiers:
    def test_simple(self):
        assert set(expression_identifiers("a + b * c")) == {"a", "b", "c"}

    def test_skips_literals(self):
        assert set(expression_identifiers("x + 32'd15")) == {"x"}

    def test_skips_hex_literals(self):
        assert set(expression_identifiers("y & 8'hff")) == {"y"}

    def test_skips_keywords(self):
        assert set(expression_identifiers("if (en) begin end")) == {"en"}

    def test_subscripts(self):
        assert set(expression_identifiers("mem[addr[3:0]]")) == {"mem", "addr"}


class TestExpressionIdentifierRobustness:
    """Satellite hardening: literals in every spelling shed no identifiers."""

    @pytest.mark.parametrize(
        "literal",
        [
            "8'd42",
            "8'D42",
            "16'HDEAD",
            "8'hff",
            "'d42",
            "'hBEEF",
            "16'sb01",
            "16'SB01",
            "8'o17",
            "4'b10x1",
            "4'bz0?1",
            "32'hdead_beef",
            "1_000",
            "42",
            "12_3_4",
        ],
    )
    def test_literal_alone_yields_nothing(self, literal):
        assert list(expression_identifiers(literal)) == []

    @pytest.mark.parametrize(
        "expression, expected",
        [
            ("x + 16'HDEAD", {"x"}),
            ("{a, 8'o17, b}", {"a", "b"}),
            ("sel ? 8'hx : val", {"sel", "val"}),
            ("count + 1_000", {"count"}),
            ("d42 + 'd42", {"d42"}),
            ("case (s) 2'b01: q <= x; default: q <= y; endcase",
             {"s", "q", "x", "y"}),
        ],
    )
    def test_mixed_expressions(self, expression, expected):
        assert set(expression_identifiers(expression)) == expected

    def test_property_random_literal_spellings(self):
        """Property-style sweep: a generated literal next to a known
        identifier never contributes tokens of its own."""
        from hypothesis import given, settings
        from hypothesis import strategies as st

        literal = st.builds(
            lambda size, signed, base, digits: (
                (str(size) if size else "") + "'" + signed + base + digits
            ),
            st.one_of(st.none(), st.integers(min_value=1, max_value=64)),
            st.sampled_from(["", "s", "S"]),
            st.sampled_from(list("bBoOdDhH")),
            st.text(
                alphabet="0123456789abcdefABCDEFxzXZ?_", min_size=1,
                max_size=8,
            ),
        )

        @given(literal=literal)
        @settings(max_examples=200, deadline=None)
        def check(literal):
            found = set(expression_identifiers(f"alpha + {literal} + omega"))
            assert found == {"alpha", "omega"}, (literal, found)

        check()

    def test_property_identifiers_always_survive(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        ident = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,10}", fullmatch=True)

        @given(names=st.lists(ident, min_size=1, max_size=4, unique=True))
        @settings(max_examples=100, deadline=None)
        def check(names):
            from repro.rtl.netlist import _EXPR_KEYWORDS

            expression = " + ".join(names)
            expected = {n for n in names if n not in _EXPR_KEYWORDS}
            assert set(expression_identifiers(expression)) == expected

        check()
