"""Tests for the RTL interpreter: the emitted netlists actually run.

These tests stand in for the paper's cycle-exact RTL validation: the
generated modules -- PEs, regfiles, DMA, whole arrays -- are executed
cycle by cycle and must behave as the hardware they describe.
"""

import pytest

from repro.core import Bounds, compile_design, matmul_spec
from repro.core.dataflow import input_stationary, output_stationary
from repro.core.sparsity import csr_b_matrix
from repro.rtl.lowering import lower_design
from repro.rtl.netlist import Module, Netlist, RTLError
from repro.rtl.sim import RTLSimulator, parse_expression, parse_statement


def _single_module_netlist(module: Module) -> Netlist:
    netlist = Netlist(module.name)
    netlist.add(module)
    return netlist


class TestExpressionParsing:
    def test_sized_literal(self):
        assert parse_expression("16'd42") == ("literal", 42, 16)

    def test_binary_literal(self):
        assert parse_expression("1'b1") == ("literal", 1, 1)

    def test_precedence(self):
        # a + b * c parses the multiply first.
        node = parse_expression("a + b * c")
        assert node[1] == "+"
        assert node[3][1] == "*"

    def test_slice(self):
        node = parse_expression("bus[15:8]")
        assert node[0] == "slice"

    def test_memory_index(self):
        node = parse_expression("mem[ptr]")
        assert node[0] == "index"

    def test_concat(self):
        node = parse_expression("{16'd1, 16'd2}")
        assert node[0] == "concat"

    def test_replication(self):
        node = parse_expression("{8{1'b0}}")
        assert node[0] == "repl"

    def test_guarded_statement(self):
        cond, lvalue, rhs = parse_statement("if (en) r <= r + 8'd1;")
        assert cond is not None
        assert lvalue == ("ref", "r")

    def test_unguarded_statement(self):
        cond, lvalue, _ = parse_statement("r <= 8'd0;")
        assert cond is None

    def test_garbage_rejected(self):
        with pytest.raises(RTLError):
            parse_expression("a @ b")


class TestCounterModule:
    def _counter(self) -> RTLSimulator:
        module = Module("counter")
        module.input("clk")
        module.input("rst")
        module.input("en")
        module.output("count", 8)
        module.reg("count_r", 8)
        module.sync(
            ["if (en) count_r <= count_r + 8'd1;"], ["count_r <= 8'd0;"]
        )
        module.assign("count", "count_r")
        return RTLSimulator(_single_module_netlist(module))

    def test_counts_when_enabled(self):
        sim = self._counter()
        sim.reset()
        sim.poke("en", 1)
        sim.step(5)
        assert sim.peek("count") == 5

    def test_holds_when_disabled(self):
        sim = self._counter()
        sim.reset()
        sim.poke("en", 1)
        sim.step(3)
        sim.poke("en", 0)
        sim.step(4)
        assert sim.peek("count") == 3

    def test_reset_clears(self):
        sim = self._counter()
        sim.poke("en", 1)
        sim.step(3)
        sim.reset()
        assert sim.peek("count") == 0

    def test_width_wraps(self):
        sim = self._counter()
        sim.reset()
        sim.poke("en", 1)
        sim.step(258)
        assert sim.peek("count") == 2  # 8-bit wrap


class TestGeneratedModules:
    @pytest.fixture(scope="class")
    def netlist(self):
        design = compile_design(
            matmul_spec(), Bounds({"i": 2, "j": 2, "k": 2}), output_stationary()
        )
        return lower_design(design)

    def test_pe_time_counter_runs(self, netlist):
        sim = RTLSimulator(netlist, top="matmul_pe")
        sim.reset()
        sim.step(7)
        assert sim.peek("t_counter") == 7

    def test_pe_pipeline_delays_operand(self, netlist):
        """A moving operand crosses the PE with exactly its pipeline
        depth (Figure 3's registers)."""
        sim = RTLSimulator(netlist, top="matmul_pe")
        sim.reset()
        sim.poke("a_in", 42)
        assert sim.peek("a_out") != 42  # not combinational
        sim.step(1)
        assert sim.peek("a_out") == 42

    def test_stationary_hold_register(self, netlist):
        sim = RTLSimulator(netlist, top="matmul_pe")
        sim.reset()
        sim.poke("c_in", 99)
        sim.poke("c_load", 1)
        sim.step(1)
        sim.poke("c_load", 0)
        sim.poke("c_in", 7)
        sim.step(3)
        assert sim.peek("c_hold") == 99  # held until the next load

    def test_feedforward_regfile_module(self):
        """The Figure 14c FIFO: data exits in entry order."""
        from repro.core.memspec import HardcodedParams, dense_matrix_buffer

        membufs = {
            "B": dense_matrix_buffer(
                "B", 2, 2,
                hardcoded_read=HardcodedParams(spans={0: 2, 1: 2}, wavefront=True),
            )
        }
        design = compile_design(
            matmul_spec(), Bounds({"i": 2, "j": 2, "k": 2}),
            output_stationary(), membufs=membufs,
        )
        netlist = lower_design(design)
        name = next(n for n in netlist.modules if "rf_b_feedforward" in n)
        sim = RTLSimulator(netlist, top=name)
        sim.reset()
        for value in (11, 22, 33):
            sim.poke("wr_data", value)
            sim.poke("wr_en", 1)
            sim.step(1)
        sim.poke("wr_en", 0)
        assert sim.peek("rd_valid") == 1
        outs = []
        for _ in range(3):
            outs.append(sim.peek("rd_data"))
            sim.poke("rd_en", 1)
            sim.step(1)
        assert outs == [11, 22, 33]

    def test_dma_inflight_counter(self, netlist):
        sim = RTLSimulator(netlist, top="matmul_dma")
        sim.reset()
        assert sim.peek("req_ready") == 1
        sim.poke("req_valid", 1)
        sim.step(1)
        assert sim.peek("inflight") == 1
        # A one-deep DMA refuses further requests while one is in flight.
        assert sim.peek("req_ready") == 0
        sim.poke("req_valid", 0)
        sim.poke("dram_resp_valid", 1)
        sim.step(1)
        assert sim.peek("inflight") == 0
        sim.poke("dram_resp_valid", 0)
        assert sim.peek("req_ready") == 1

    def test_full_array_settles_and_clocks(self, netlist):
        """The whole hierarchical top simulates without X-loops."""
        sim = RTLSimulator(netlist)
        sim.reset()
        sim.poke("start", 1)
        sim.step(1)
        assert sim.peek("busy") == 1
        sim.step(5)
        # Every PE's time counter advanced together (the global start).
        assert sim.peek("spatial_array.pe_0_0.t_counter") == 6
        assert sim.peek("spatial_array.pe_1_1.t_counter") == 6


class TestSparseGeneratedModules:
    def test_pruned_pe_regfile_ports_respond(self):
        design = compile_design(
            matmul_spec(),
            Bounds({"i": 2, "j": 2, "k": 2}),
            input_stationary(),
            sparsity=csr_b_matrix(matmul_spec()),
        )
        netlist = lower_design(design)
        sim = RTLSimulator(netlist, top="matmul_pe")
        sim.reset()
        sim.poke("en", 1)
        sim.poke("c_rf_rd_data", 17)
        # The pruned variable's datapath forwards regfile reads to writes.
        assert sim.peek("c_rf_wr_data") == 17
        assert sim.peek("c_rf_rd_req") == 1
