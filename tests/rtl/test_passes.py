"""Unit tests for the netlist optimization pass pipeline (repro.rtl.passes)."""

import pytest

from repro.rtl.netlist import Module, Netlist, RTLError
from repro.rtl.passes import (
    OPT_LEVELS,
    PASS_PIPELINE_VERSION,
    PassResult,
    collapse_chains,
    const_fold,
    cse,
    dead_nets,
    fold_expression,
    run_passes,
    total_rewrites,
    unparse,
)
from repro.rtl.sim import RTLSimulator, parse_expression


def _netlist(module: Module) -> Netlist:
    netlist = Netlist(module.name)
    netlist.add(module)
    return netlist


def _base_module(name="m") -> Module:
    m = Module(name)
    m.input("clk")
    return m


# --- const_fold -----------------------------------------------------------


class TestConstFold:
    def _fold_rhs(self, rhs: str, widths=None) -> str:
        node, count = fold_expression(parse_expression(rhs), widths or {})
        return unparse(node) if count else rhs

    def test_literal_addition_folds(self):
        m = _base_module()
        m.output("q", 32)
        m.assign("q", "16'd3 + 16'd1")
        result = const_fold(_netlist(m))
        assert result.rewrites == 1
        assert parse_expression(m.assigns[0].rhs) == ("literal", 4, 17)

    def test_add_zero_identity(self):
        m = _base_module()
        m.input("x", 8)
        m.output("q", 8)
        m.assign("q", "x + 8'd0")
        const_fold(_netlist(m))
        assert m.assigns[0].rhs == "x"

    def test_multiply_by_zero(self):
        m = _base_module()
        m.input("x", 8)
        m.output("q", 8)
        m.assign("q", "x * 8'd0")
        const_fold(_netlist(m))
        assert parse_expression(m.assigns[0].rhs)[0] == "literal"

    def test_never_firing_guard_dropped(self):
        m = _base_module()
        m.reg("r", 8)
        m.output("q", 8)
        m.assign("q", "r")
        m.sync(["if (1'd0) r <= 8'd1;", "r <= r + 8'd1;"])
        const_fold(_netlist(m))
        assert m.sync_blocks[0].statements == ["r <= r + 8'd1;"]

    def test_always_firing_guard_unguarded(self):
        m = _base_module()
        m.reg("r", 8)
        m.output("q", 8)
        m.assign("q", "r")
        m.sync(["if (1'd1) r <= 8'd2;"])
        const_fold(_netlist(m))
        assert m.sync_blocks[0].statements == ["r <= 8'd2;"]

    def test_concat_fold_suppressed_when_width_changes(self):
        # (x + 8'd0) inside a concat has inferred width 32; folding it to
        # x (width 8) would repack the concat, so the fold must not fire.
        m = _base_module()
        m.input("x", 8)
        m.input("y", 8)
        m.output("q", 40)
        m.assign("q", "{x + 8'd0, y}")
        before = m.assigns[0].rhs
        const_fold(_netlist(m))
        assert m.assigns[0].rhs == before

    def test_negative_results_never_fold(self):
        # 0 - 1 is negative in the simulator's unmasked binop semantics;
        # no literal can represent it, so the fold must stay away.
        m = _base_module()
        m.output("q", 8)
        m.assign("q", "8'd0 - 8'd1")
        before = m.assigns[0].rhs
        const_fold(_netlist(m))
        assert m.assigns[0].rhs == before

    def test_folding_preserves_simulation(self):
        m = _base_module()
        m.input("x", 8)
        m.output("q", 16)
        m.assign("q", "(x + 8'd0) + (8'd2 * 8'd3)")
        netlist = _netlist(m)
        opt, _results = run_passes(netlist, 1)
        for value in (0, 7, 255):
            a = RTLSimulator(netlist)
            b = RTLSimulator(opt)
            a.poke("x", value)
            b.poke("x", value)
            a.step()
            b.step()
            assert a.peek("q") == b.peek("q")


# --- collapse_chains ------------------------------------------------------


class TestCollapseChains:
    def test_alias_wire_collapses(self):
        m = _base_module()
        m.input("x", 8)
        m.wire("alias_w", 8)
        m.output("q", 8)
        m.assign("alias_w", "x")
        m.assign("q", "alias_w + 8'd1")
        result = collapse_chains(_netlist(m))
        assert result.rewrites == 1
        assert [a.rhs for a in m.assigns] == ["x + 8'd1"]
        assert all(n.name != "alias_w" for n in m.nets)

    def test_port_alias_not_collapsed(self):
        m = _base_module()
        m.input("x", 8)
        m.output("q", 8)
        m.assign("q", "x")
        assert collapse_chains(_netlist(m)).rewrites == 0

    def test_narrower_alias_of_wider_source_not_collapsed(self):
        # alias masks the source to 4 bits; substitution would widen.
        m = _base_module()
        m.input("x", 8)
        m.wire("narrow", 4)
        m.output("q", 8)
        m.assign("narrow", "x")
        m.assign("q", "narrow")
        assert collapse_chains(_netlist(m)).rewrites == 0

    def test_width_sensitive_use_blocks_unequal_widths(self):
        # alias is wider than its source and appears as a concat part:
        # substituting would change the packing width.
        m = _base_module()
        m.input("x", 4)
        m.wire("wide", 8)
        m.output("q", 12)
        m.assign("wide", "x")
        m.assign("q", "{wide, x}")
        assert collapse_chains(_netlist(m)).rewrites == 0

    def test_multi_driver_alias_not_collapsed(self):
        m = _base_module()
        m.input("x", 8)
        child = Module("leaf")
        child.input("clk")
        child.output("o", 8)
        child.assign("o", "8'd5")
        m.wire("w", 8)
        m.output("q", 8)
        m.assign("w", "x")
        m.instantiate(child, "c0", {"clk": "clk", "o": "w"})
        m.assign("q", "w")
        netlist = _netlist(m)
        netlist.add(child)
        assert collapse_chains(netlist).rewrites == 0


# --- cse ------------------------------------------------------------------


class TestCSE:
    def test_duplicate_cone_shares_first_target(self):
        m = _base_module()
        m.input("a", 8)
        m.input("b", 8)
        m.wire("s1", 16)
        m.wire("s2", 16)
        m.output("q", 16)
        m.assign("s1", "a + b")
        m.assign("s2", "b + a")  # commutative: same canonical form
        m.assign("q", "s1 & s2")
        result = cse(_netlist(m))
        assert result.rewrites == 1
        assert m.assigns[1].rhs == "s1"

    def test_narrower_source_never_substituted(self):
        m = _base_module()
        m.input("a", 8)
        m.wire("n", 4)
        m.wire("w", 16)
        m.output("q", 16)
        m.assign("n", "a + a")
        m.assign("w", "a + a")
        m.assign("q", "w")
        assert cse(_netlist(m)).rewrites == 0

    def test_cse_preserves_simulation(self):
        m = _base_module()
        m.input("a", 8)
        m.input("b", 8)
        m.wire("s1", 16)
        m.wire("s2", 16)
        m.output("q", 16)
        m.assign("s1", "a + b")
        m.assign("s2", "a + b")
        m.assign("q", "s1 * s2")
        netlist = _netlist(m)
        opt, _results = run_passes(netlist, 2)
        for a_val, b_val in ((0, 0), (3, 4), (255, 255)):
            x = RTLSimulator(netlist)
            y = RTLSimulator(opt)
            for sim in (x, y):
                sim.poke("a", a_val)
                sim.poke("b", b_val)
                sim.step()
            assert x.peek("q") == y.peek("q")


# --- dead_nets ------------------------------------------------------------


class TestDeadNets:
    def test_unread_wire_removed(self):
        m = _base_module()
        m.input("x", 8)
        m.wire("unused", 8)
        m.output("q", 8)
        m.assign("unused", "x + 8'd1")
        m.assign("q", "x")
        result = dead_nets(_netlist(m))
        assert result.rewrites == 1
        assert [n.name for n in m.nets] == []
        assert len(m.assigns) == 1

    def test_self_incrementing_counter_removed(self):
        # The classic free-running counter nothing reads: its only read
        # is its own increment, so it must cascade away.
        m = _base_module()
        m.input("x", 8)
        m.reg("t_counter", 32)
        m.output("q", 8)
        m.sync(["t_counter <= t_counter + 32'd1;"], ["t_counter <= 32'd0;"])
        m.assign("q", "x")
        result = dead_nets(_netlist(m))
        assert result.rewrites == 1
        assert [n.name for n in m.nets] == []
        assert m.sync_blocks == []

    def test_read_by_live_logic_kept(self):
        m = _base_module()
        m.reg("counter", 8)
        m.output("q", 8)
        m.sync(["counter <= counter + 8'd1;"])
        m.assign("q", "counter")
        assert dead_nets(_netlist(m)).rewrites == 0

    def test_instance_connected_net_kept(self):
        child = Module("leaf")
        child.input("clk")
        child.input("i", 8)
        child.output("o", 8)
        child.assign("o", "i")
        m = _base_module("top")
        m.input("x", 8)
        m.wire("w", 8)
        m.output("q", 8)
        m.instantiate(child, "c0", {"clk": "clk", "i": "x", "o": "w"})
        m.assign("q", "w")
        netlist = Netlist("top")
        netlist.add(child)
        netlist.add(m)
        assert dead_nets(netlist).rewrites == 0

    def test_dead_chain_cascades(self):
        m = _base_module()
        m.input("x", 8)
        m.wire("a", 8)
        m.wire("b", 8)
        m.output("q", 8)
        m.assign("a", "x + 8'd1")
        m.assign("b", "a + 8'd1")  # b reads a; nothing reads b
        m.assign("q", "x")
        result = dead_nets(_netlist(m))
        assert result.rewrites == 2
        assert m.nets == []


# --- the pipeline ---------------------------------------------------------


class TestRunPasses:
    def test_input_never_mutated(self):
        m = _base_module()
        m.input("x", 8)
        m.wire("dead", 8)
        m.output("q", 8)
        m.assign("dead", "x")
        m.assign("q", "x + 8'd0")
        netlist = _netlist(m)
        opt, results = run_passes(netlist, 2)
        assert len(netlist.top.assigns) == 2
        assert len(netlist.top.nets) == 1
        assert netlist.opt_level == 0
        assert opt.opt_level == 2
        assert opt.pass_results == results
        assert total_rewrites(results) >= 2

    def test_opt_level_zero_is_identity(self):
        m = _base_module()
        m.output("q", 8)
        m.assign("q", "8'd1 + 8'd2")
        netlist = _netlist(m)
        opt, results = run_passes(netlist, 0)
        assert results == []
        assert opt.top.assigns[0].rhs == "8'd1 + 8'd2"

    def test_unknown_opt_level_rejected(self):
        with pytest.raises(ValueError, match="opt_level"):
            run_passes(Netlist("t"), 3)

    def test_unknown_pass_rejected(self):
        with pytest.raises(ValueError, match="unknown pass"):
            run_passes(Netlist("t"), 2, passes=["nonsense"])

    def test_pass_result_reporting(self):
        result = PassResult("demo")
        result.add("m1", 2)
        result.add("m2", 0)
        result.add("m1", 1)
        assert result.rewrites == 3
        assert result.to_dict() == {
            "pass": "demo",
            "rewrites": 3,
            "by_module": {"m1": 3},
        }
        assert "demo" in repr(result)

    def test_levels_are_cumulative_pipelines(self):
        assert OPT_LEVELS[0] == ()
        assert set(OPT_LEVELS[1]) < set(OPT_LEVELS[2])
        assert isinstance(PASS_PIPELINE_VERSION, int)

    def test_profiler_records_pass_scopes(self):
        from repro.obs.profile import Profiler, set_profiler

        m = _base_module()
        m.output("q", 8)
        m.assign("q", "8'd1 + 8'd2")
        profiler = Profiler(enabled=True)
        previous = set_profiler(profiler)
        try:
            run_passes(_netlist(m), 2)
        finally:
            set_profiler(previous)
        labels = {record.label for record in profiler.records()}
        assert any(label.startswith("rtl.passes.") for label in labels)


# --- unparse round-trips --------------------------------------------------


class TestUnparse:
    @pytest.mark.parametrize(
        "text",
        [
            "a + b",
            "(a + b) * c",
            "x[7:0]",
            "mem[addr + 8'd1]",
            "{a, b, 2'd3}",
            "{4{nibble}}",
            "!(a == b) | (c < 8'd9)",
            "~x & y",
            "-x + y",
        ],
    )
    def test_round_trip_preserves_ast_semantics(self, text):
        node = parse_expression(text)
        assert parse_expression(unparse(node)) is not None
        # Unparse of the reparse must be a fixpoint.
        rendered = unparse(node)
        assert unparse(parse_expression(rendered)) == rendered

    def test_unparse_rejects_garbage(self):
        with pytest.raises(RTLError):
            unparse(("mystery", 1))
