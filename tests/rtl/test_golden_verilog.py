"""Golden-file test for the Verilog backend.

Verilog emission must be deterministic (same design -> byte-identical
output) and stable across refactors; this pins the 2x2x2
output-stationary matmul design to a checked-in snapshot.  If the backend
changes intentionally, regenerate with::

    python -c "from repro.core import *; from repro.rtl.lowering import lower_design; \\
        open('tests/data/matmul_2x2x2_os.v','w').write(lower_design(compile_design( \\
        matmul_spec(), Bounds({'i':2,'j':2,'k':2}), output_stationary())).emit())"
"""

from pathlib import Path

from repro.core import Bounds, compile_design, matmul_spec
from repro.core.dataflow import output_stationary
from repro.rtl.lowering import lower_design

GOLDEN = Path(__file__).resolve().parent.parent / "data" / "matmul_2x2x2_os.v"


def _emit() -> str:
    design = compile_design(
        matmul_spec(), Bounds({"i": 2, "j": 2, "k": 2}), output_stationary()
    )
    return lower_design(design).emit()


class TestGoldenVerilog:
    def test_matches_snapshot(self):
        assert _emit() == GOLDEN.read_text()

    def test_emission_deterministic(self):
        assert _emit() == _emit()

    def test_snapshot_is_structurally_sound(self):
        text = GOLDEN.read_text()
        assert text.count("module ") == text.count("endmodule")
        assert "module matmul_top (" in text
        assert "module matmul_pe (" in text
        # 4 PE instances for the 2x2 array.
        assert text.count("matmul_pe pe_") == 4
