"""Tests for Verilog emission and structural lint (repro.rtl)."""

import pytest

from repro.analysis.diagnostics import Severity
from repro.analysis.netlist import check_module, check_netlist
from repro.rtl.netlist import Instance, Module, Netlist
from repro.rtl.verilog import emit_module, emit_netlist


def lint_module(module: Module, netlist: Netlist) -> list:
    """Error-severity module findings in the legacy string format."""
    return [
        d.legacy_text()
        for d in check_module(module, netlist)
        if d.severity >= Severity.ERROR
    ]


def lint_netlist(netlist: Netlist) -> list:
    """Error-severity netlist findings in the legacy string format."""
    return [
        d.legacy_text()
        for d in check_netlist(netlist)
        if d.severity >= Severity.ERROR
    ]


def _counter_module() -> Module:
    m = Module("counter")
    m.input("clk")
    m.input("rst")
    m.output("count", 8)
    m.reg("count_r", 8)
    m.sync(["count_r <= count_r + 8'd1;"], ["count_r <= 8'd0;"])
    m.assign("count", "count_r")
    return m


class TestEmission:
    def test_module_structure(self):
        text = emit_module(_counter_module())
        assert text.startswith("module counter (")
        assert text.rstrip().endswith("endmodule")
        assert "input clk" in text
        assert "output [7:0] count" in text
        assert "reg [7:0] count_r;" in text
        assert "always @(posedge clk) begin" in text
        assert "if (rst) begin" in text
        assert "assign count = count_r;" in text

    def test_memory_array_declaration(self):
        m = Module("mem")
        m.input("clk")
        m.reg("data", 32, depth=16)
        text = emit_module(m)
        assert "reg [31:0] data [0:15];" in text

    def test_netlist_emits_children_first(self):
        nl = Netlist("top")
        child = _counter_module()
        nl.add(child)
        top = Module("top")
        top.input("clk")
        top.input("rst")
        top.output("out", 8)
        top.wire("cnt", 8)
        top.assign("out", "cnt")
        top.instantiate(child, "c0", {"clk": "clk", "rst": "rst", "count": "cnt"})
        nl.add(top)
        text = emit_netlist(nl)
        assert text.index("module counter") < text.index("module top")
        assert text.count("endmodule") == 2

    def test_instance_connections(self):
        nl = Netlist("top")
        child = _counter_module()
        nl.add(child)
        top = Module("top")
        top.input("clk")
        top.input("rst")
        top.wire("cnt", 8)
        top.instantiate(child, "c0", {"clk": "clk", "rst": "rst", "count": "cnt"})
        nl.add(top)
        text = emit_netlist(nl)
        assert ".clk(clk)" in text
        assert ".count(cnt)" in text


class TestLint:
    def _netlist_with(self, module: Module) -> Netlist:
        nl = Netlist(module.name)
        nl.add(module)
        return nl

    def test_clean_module(self):
        m = _counter_module()
        assert lint_module(m, self._netlist_with(m)) == []

    def test_undeclared_identifier_detected(self):
        m = Module("m")
        m.input("clk")
        m.output("q")
        m.assign("q", "ghost_signal")
        problems = lint_module(m, self._netlist_with(m))
        assert any("ghost_signal" in p for p in problems)

    def test_undriven_output_detected(self):
        m = Module("m")
        m.input("clk")
        m.output("q")
        problems = lint_module(m, self._netlist_with(m))
        assert any("never driven" in p for p in problems)

    def test_assign_to_reg_detected(self):
        m = Module("m")
        m.input("clk")
        m.reg("r")
        m.assign("r", "1'b1")
        problems = lint_module(m, self._netlist_with(m))
        assert any("sync block" in p for p in problems)

    def test_sync_drive_of_wire_detected(self):
        m = Module("m")
        m.input("clk")
        m.wire("w")
        m.sync(["w <= 1'b1;"])
        problems = lint_module(m, self._netlist_with(m))
        assert any("non-reg" in p for p in problems)

    def test_guarded_sync_statement_accepted(self):
        m = Module("m")
        m.input("clk")
        m.input("en")
        m.reg("r", 8)
        m.sync(["if (en) r <= r + 8'd1;"])
        assert lint_module(m, self._netlist_with(m)) == []

    def test_unknown_child_module_detected(self):
        nl = Netlist("top")
        top = Module("top")
        top.input("clk")
        top.instances.append(Instance("ghost", "g0", {}))
        nl.add(top)
        problems = lint_netlist(nl)
        assert any("unknown" in p for p in problems)

    def test_unconnected_input_detected(self):
        nl = Netlist("top")
        child = _counter_module()
        nl.add(child)
        top = Module("top")
        top.input("clk")
        top.wire("cnt", 8)
        top.instantiate(child, "c0", {"clk": "clk", "count": "cnt"})  # rst missing
        nl.add(top)
        problems = lint_netlist(nl)
        assert any("unconnected" in p and "rst" in p for p in problems)

    def test_connection_to_missing_port_detected(self):
        nl = Netlist("top")
        child = _counter_module()
        nl.add(child)
        top = Module("top")
        top.input("clk")
        top.input("rst")
        top.wire("cnt", 8)
        top.instantiate(
            child, "c0",
            {"clk": "clk", "rst": "rst", "count": "cnt", "bogus": "clk"},
        )
        nl.add(top)
        problems = lint_netlist(nl)
        assert any("missing" in p and "bogus" in p for p in problems)

    def test_missing_top_detected(self):
        nl = Netlist("nothing")
        assert lint_netlist(nl) == ["top module 'nothing' is missing"]

    def test_cycle_detected(self):
        nl = Netlist("a")
        a = Module("a")
        a.input("clk")
        b = Module("b")
        b.input("clk")
        a.instantiate(b, "b0", {"clk": "clk"})
        b.instantiate(a, "a0", {"clk": "clk"})
        nl.add(a)
        nl.add(b)
        problems = lint_netlist(nl)
        assert any("cycle" in p for p in problems)


class TestDeprecatedLintFacade:
    """repro.rtl.lint warns but keeps its legacy string contract."""

    def test_lint_module_warns_and_matches_analyzer(self):
        from repro.rtl import lint

        m = _counter_module()
        nl = Netlist(m.name)
        nl.add(m)
        with pytest.warns(DeprecationWarning, match="check_module"):
            assert lint.lint_module(m, nl) == lint_module(m, nl)

    def test_lint_netlist_warns_and_matches_analyzer(self):
        from repro.rtl import lint

        nl = Netlist("nothing")
        with pytest.warns(DeprecationWarning, match="check_netlist"):
            assert lint.lint_netlist(nl) == [
                "top module 'nothing' is missing"
            ]

    def test_facade_no_longer_reexported(self):
        import repro.rtl as rtl

        assert "lint_module" not in rtl.__all__
        assert "lint_netlist" not in rtl.__all__
