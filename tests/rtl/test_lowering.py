"""Tests for lowering compiled designs to netlists and Verilog."""

import pytest

from repro.core import compile_design
from repro.core.balancing import row_shift_scheme
from repro.core.dataflow import hexagonal, input_stationary, output_stationary
from repro.core.memspec import block_crs_buffer, csr_buffer, dense_matrix_buffer
from repro.core.sparsity import a100_two_four, csr_b_matrix
from repro.rtl.lowering import lower_design


@pytest.fixture
def dense_design(spec, bounds4):
    return compile_design(spec, bounds4, output_stationary())


@pytest.fixture
def sparse_design(spec, bounds4):
    return compile_design(
        spec, bounds4, input_stationary(), sparsity=csr_b_matrix(spec)
    )


class TestModuleInventory:
    def test_dense_modules(self, dense_design):
        nl = lower_design(dense_design)
        names = set(nl.modules)
        assert "matmul_pe" in names
        assert "matmul_array" in names
        assert "matmul_dma" in names
        assert "matmul_top" in names
        assert any(n.startswith("matmul_rf_") for n in names)

    def test_pe_instances_match_pe_count(self, dense_design):
        nl = lower_design(dense_design)
        array = nl.module("matmul_array")
        pe_instances = [
            i for i in array.instances if i.module_name == "matmul_pe"
        ]
        assert len(pe_instances) == dense_design.pe_count

    def test_balancer_emitted_when_present(self, spec, bounds4):
        design = compile_design(
            spec, bounds4, input_stationary(), balancing=row_shift_scheme(2)
        )
        nl = lower_design(design)
        assert "matmul_balancer" in nl.modules

    def test_no_balancer_by_default(self, dense_design):
        nl = lower_design(dense_design)
        assert "matmul_balancer" not in nl.modules

    def test_membuf_modules(self, spec, bounds4):
        design = compile_design(
            spec,
            bounds4,
            output_stationary(),
            membufs={
                "A": dense_matrix_buffer("A", 4, 4),
                "B": csr_buffer("B", rows=4),
            },
        )
        nl = lower_design(design)
        assert "matmul_membuf_A" in nl.modules
        assert "matmul_membuf_B" in nl.modules

    def test_compressed_membuf_has_metadata_srams(self, spec, bounds4):
        design = compile_design(
            spec, bounds4, output_stationary(),
            membufs={"B": csr_buffer("B", rows=4)},
        )
        nl = lower_design(design)
        membuf = nl.module("matmul_membuf_B")
        names = {n.name for n in membuf.nets}
        assert any("row_ids" in n for n in names)
        assert any("coords" in n for n in names)

    def test_block_crs_membuf_has_four_stages(self, spec, bounds4):
        design = compile_design(
            spec, bounds4, output_stationary(),
            membufs={"W": block_crs_buffer("W", block_rows=4)},
        )
        nl = lower_design(design)
        membuf = nl.module("matmul_membuf_W")
        stage_valids = [
            n.name for n in membuf.nets if n.name.endswith("_valid") and "stage" in n.name
        ]
        assert len(stage_valids) == 4  # Figure 12


class TestPEStructure:
    def test_pe_has_time_counter(self, dense_design):
        """Every Stellar PE carries the Figure 11 time counter."""
        nl = lower_design(dense_design)
        pe = nl.module("matmul_pe")
        assert "t_counter" in {n.name for n in pe.nets}

    def test_pruned_variable_has_rf_ports(self, sparse_design):
        """After the Figure 4 rewrite, c talks to regfiles directly."""
        nl = lower_design(sparse_design)
        pe = nl.module("matmul_pe")
        port_names = {p.name for p in pe.ports}
        assert "c_rf_rd_data" in port_names
        assert "c_rf_wr_data" in port_names
        assert "c_in" not in port_names

    def test_dense_variable_has_pipe_ports(self, dense_design):
        nl = lower_design(dense_design)
        pe = nl.module("matmul_pe")
        port_names = {p.name for p in pe.ports}
        assert "a_in" in port_names and "a_out" in port_names

    def test_stationary_variable_holds(self, sparse_design):
        nl = lower_design(sparse_design)
        pe = nl.module("matmul_pe")
        assert "b_hold" in {n.name for n in pe.nets}

    def test_optimistic_bundle_widens_ports(self, spec, bounds4):
        """Figure 5: OptimisticSkip produces 4x-wide bundle wires."""
        design = compile_design(
            spec, bounds4, output_stationary(), sparsity=a100_two_four(spec)
        )
        nl = lower_design(design)
        pe = nl.module("matmul_pe")
        a_in = pe.port("a_in")
        assert a_in.width == 32 * 4


class TestLintCleanliness:
    @pytest.mark.parametrize("transform", [
        output_stationary(), input_stationary(), hexagonal(),
    ])
    def test_dense_designs_lint_clean(self, spec, bounds4, transform):
        design = compile_design(spec, bounds4, transform)
        assert lower_design(design).lint() == []

    def test_sparse_design_lints_clean(self, sparse_design):
        assert lower_design(sparse_design).lint() == []

    def test_full_design_lints_clean(self, spec, bounds4):
        design = compile_design(
            spec,
            bounds4,
            input_stationary(),
            sparsity=csr_b_matrix(spec),
            balancing=row_shift_scheme(2),
            membufs={
                "A": dense_matrix_buffer("A", 4, 4),
                "B": csr_buffer("B", rows=4),
            },
        )
        assert lower_design(design).lint() == []

    def test_dma_inflight_variant_lints_clean(self, dense_design):
        assert lower_design(dense_design, max_inflight_dma=16).lint() == []


class TestVerilogOutput:
    def test_verilog_has_all_modules(self, dense_design):
        nl = lower_design(dense_design)
        text = nl.emit()
        for name in nl.modules:
            assert f"module {name} (" in text

    def test_dma_inflight_encoded(self, dense_design):
        text = lower_design(dense_design, max_inflight_dma=16).emit()
        assert "16" in text
