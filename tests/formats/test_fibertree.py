"""Tests for the fibertree tensor representation (Section III-E, [31])."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.memspec import AxisType
from repro.formats.fibertree import FibertreeTensor


CSR_AXES = [AxisType.DENSE, AxisType.COMPRESSED]
CSC_LIKE = [AxisType.COMPRESSED, AxisType.COMPRESSED]


def _sparse(rng, shape, density=0.4):
    return (rng.random(shape) < density) * rng.integers(1, 9, shape)


class TestConstruction:
    def test_csr_roundtrip(self, rng):
        dense = _sparse(rng, (5, 6))
        tensor = FibertreeTensor.from_dense(dense, CSR_AXES)
        assert np.array_equal(tensor.to_dense(), dense)

    def test_doubly_compressed_roundtrip(self, rng):
        dense = _sparse(rng, (5, 6), 0.2)
        tensor = FibertreeTensor.from_dense(dense, CSC_LIKE)
        assert np.array_equal(tensor.to_dense(), dense)

    def test_bitvector_axis_roundtrip(self, rng):
        dense = _sparse(rng, (4, 8))
        tensor = FibertreeTensor.from_dense(
            dense, [AxisType.DENSE, AxisType.BITVECTOR]
        )
        assert np.array_equal(tensor.to_dense(), dense)

    def test_linked_list_axis_roundtrip(self, rng):
        dense = _sparse(rng, (4, 8))
        tensor = FibertreeTensor.from_dense(
            dense, [AxisType.DENSE, AxisType.LINKED_LIST]
        )
        assert np.array_equal(tensor.to_dense(), dense)

    def test_three_dimensional(self, rng):
        dense = _sparse(rng, (3, 4, 5), 0.3)
        tensor = FibertreeTensor.from_dense(
            dense, [AxisType.DENSE, AxisType.COMPRESSED, AxisType.COMPRESSED]
        )
        assert np.array_equal(tensor.to_dense(), dense)

    def test_rank_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            FibertreeTensor.from_dense(np.zeros((2, 2)), [AxisType.DENSE])

    @settings(max_examples=25, deadline=None)
    @given(
        rows=st.integers(1, 6),
        cols=st.integers(1, 6),
        density=st.floats(0.0, 1.0),
        seed=st.integers(0, 2**31 - 1),
        fmt=st.sampled_from(
            [
                [AxisType.DENSE, AxisType.COMPRESSED],
                [AxisType.COMPRESSED, AxisType.COMPRESSED],
                [AxisType.DENSE, AxisType.BITVECTOR],
                [AxisType.DENSE, AxisType.LINKED_LIST],
            ]
        ),
    )
    def test_property_roundtrip_all_formats(self, rows, cols, density, seed, fmt):
        rng = np.random.default_rng(seed)
        dense = _sparse(rng, (rows, cols), density)
        tensor = FibertreeTensor.from_dense(dense, fmt)
        assert np.array_equal(tensor.to_dense(), dense)


class TestAccess:
    def test_read_present_and_absent(self, rng):
        dense = np.zeros((3, 3))
        dense[1, 2] = 7
        tensor = FibertreeTensor.from_dense(dense, CSR_AXES)
        assert tensor.read((1, 2)) == 7
        assert tensor.read((0, 0)) == 0

    def test_read_wrong_rank_rejected(self, rng):
        tensor = FibertreeTensor.from_dense(np.zeros((2, 2)), CSR_AXES)
        with pytest.raises(ValueError):
            tensor.read((0,))

    def test_nnz(self, rng):
        dense = _sparse(rng, (5, 5))
        tensor = FibertreeTensor.from_dense(dense, CSR_AXES)
        assert tensor.nnz == np.count_nonzero(dense)

    def test_nonzeros_iteration(self):
        dense = np.zeros((3, 3))
        dense[0, 1] = 4
        dense[2, 0] = 5
        tensor = FibertreeTensor.from_dense(dense, CSR_AXES)
        found = dict(tensor.nonzeros())
        assert found == {(0, 1): 4, (2, 0): 5}


class TestFootprints:
    def test_sparse_format_beats_dense_on_sparse_data(self, rng):
        dense = np.zeros((16, 16))
        dense[0, 0] = 1
        sparse_fmt = FibertreeTensor.from_dense(dense, CSC_LIKE)
        dense_fmt = FibertreeTensor.from_dense(
            dense, [AxisType.DENSE, AxisType.DENSE]
        )
        assert sparse_fmt.footprint_bits() < dense_fmt.footprint_bits()

    def test_dense_format_beats_sparse_on_dense_data(self, rng):
        dense = rng.integers(1, 9, (8, 8))
        sparse_fmt = FibertreeTensor.from_dense(dense, CSR_AXES)
        dense_fmt = FibertreeTensor.from_dense(
            dense, [AxisType.DENSE, AxisType.DENSE]
        )
        assert dense_fmt.footprint_bits() <= sparse_fmt.footprint_bits()

    def test_bitvector_metadata_is_extent_bits(self):
        dense = np.zeros((1, 64))
        dense[0, 3] = 1
        tensor = FibertreeTensor.from_dense(
            dense, [AxisType.DENSE, AxisType.BITVECTOR]
        )
        # 64 mask bits + 32 value bits.
        assert tensor.footprint_bits(element_bits=32) == 64 + 32
