"""Tests for CSR/CSC matrices and sparse matmul substrates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats.csr import (
    CSCMatrix,
    CSRMatrix,
    outer_product_partials,
    spgemm_reference,
)


def _random_sparse(rng, rows, cols, density):
    return (rng.random((rows, cols)) < density) * rng.integers(1, 9, (rows, cols))


class TestCSR:
    def test_roundtrip(self, rng):
        dense = _random_sparse(rng, 6, 5, 0.4)
        assert np.array_equal(CSRMatrix.from_dense(dense).to_dense(), dense)

    def test_nnz_and_density(self, rng):
        dense = np.zeros((4, 4))
        dense[0, 0] = dense[2, 3] = 1
        csr = CSRMatrix.from_dense(dense)
        assert csr.nnz == 2
        assert csr.density == pytest.approx(2 / 16)

    def test_row_access(self):
        dense = np.array([[0, 5, 0], [1, 0, 2]])
        csr = CSRMatrix.from_dense(dense)
        cols, vals = csr.row(1)
        assert list(cols) == [0, 2]
        assert list(vals) == [1, 2]

    def test_row_lengths(self):
        dense = np.array([[0, 5, 0], [1, 0, 2], [0, 0, 0]])
        csr = CSRMatrix.from_dense(dense)
        assert list(csr.row_lengths()) == [1, 2, 0]

    def test_row_imbalance(self):
        balanced = CSRMatrix.from_dense(np.eye(4))
        assert balanced.row_imbalance() == pytest.approx(1.0)
        skewed = np.zeros((4, 4))
        skewed[0, :] = 1
        skewed[1, 0] = 1
        assert CSRMatrix.from_dense(skewed).row_imbalance() > 1.0

    def test_transpose(self, rng):
        dense = _random_sparse(rng, 5, 7, 0.3)
        csr = CSRMatrix.from_dense(dense)
        assert np.array_equal(csr.transpose().to_dense(), dense.T)

    def test_inconsistent_structure_rejected(self):
        with pytest.raises(ValueError):
            CSRMatrix((2, 2), np.array([0, 1, 3]), np.array([0]), np.array([1.0]))

    def test_column_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            CSRMatrix(
                (2, 2), np.array([0, 1, 1]), np.array([5]), np.array([1.0])
            )

    def test_non_matrix_rejected(self):
        with pytest.raises(ValueError):
            CSRMatrix.from_dense(np.zeros(4))

    @settings(max_examples=25, deadline=None)
    @given(
        rows=st.integers(1, 8),
        cols=st.integers(1, 8),
        density=st.floats(0.0, 1.0),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_property_roundtrip(self, rows, cols, density, seed):
        rng = np.random.default_rng(seed)
        dense = _random_sparse(rng, rows, cols, density)
        assert np.array_equal(CSRMatrix.from_dense(dense).to_dense(), dense)


class TestCSC:
    def test_column_access(self):
        dense = np.array([[0, 5], [1, 0], [0, 2]])
        csc = CSCMatrix.from_dense(dense)
        rows, vals = csc.column(1)
        assert list(rows) == [0, 2]
        assert list(vals) == [5, 2]

    def test_roundtrip(self, rng):
        dense = _random_sparse(rng, 5, 4, 0.4)
        assert np.array_equal(CSCMatrix.from_dense(dense).to_dense(), dense)

    def test_nnz(self, rng):
        dense = _random_sparse(rng, 5, 4, 0.4)
        assert CSCMatrix.from_dense(dense).nnz == np.count_nonzero(dense)


class TestSpGEMM:
    def test_matches_numpy(self, rng):
        A = _random_sparse(rng, 5, 6, 0.4)
        B = _random_sparse(rng, 6, 4, 0.4)
        result = spgemm_reference(
            CSRMatrix.from_dense(A), CSRMatrix.from_dense(B)
        )
        assert np.allclose(result.to_dense(), A @ B)

    def test_dimension_mismatch_rejected(self, rng):
        A = CSRMatrix.from_dense(np.eye(3))
        B = CSRMatrix.from_dense(np.eye(4))
        with pytest.raises(ValueError):
            spgemm_reference(A, B)

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(1, 7),
        density=st.floats(0.0, 0.8),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_property_spgemm_equals_numpy(self, n, density, seed):
        rng = np.random.default_rng(seed)
        A = _random_sparse(rng, n, n, density)
        B = _random_sparse(rng, n, n, density)
        result = spgemm_reference(
            CSRMatrix.from_dense(A), CSRMatrix.from_dense(B)
        )
        got = result.to_dense()
        want = (A @ B).astype(float)
        padded = np.zeros_like(want)
        if got.size:
            padded[: got.shape[0], : got.shape[1]] = got
        assert np.allclose(padded, want)


class TestOuterProducts:
    def test_partials_sum_to_product(self, rng):
        """OuterSPACE's multiply phase: the K partial matrices sum to AB."""
        A = _random_sparse(rng, 4, 5, 0.5)
        B = _random_sparse(rng, 5, 4, 0.5)
        partials = outer_product_partials(
            CSCMatrix.from_dense(A), CSRMatrix.from_dense(B)
        )
        assert len(partials) == 5  # one per k
        acc = np.zeros((4, 4))
        for partial in partials:
            for r, c, v in partial:
                acc[r, c] += v
        assert np.allclose(acc, A @ B)

    def test_partial_sizes(self, rng):
        """Partial k has nnz(A[:,k]) * nnz(B[k,:]) products."""
        A = _random_sparse(rng, 4, 4, 0.5)
        B = _random_sparse(rng, 4, 4, 0.5)
        partials = outer_product_partials(
            CSCMatrix.from_dense(A), CSRMatrix.from_dense(B)
        )
        for k, partial in enumerate(partials):
            expected = np.count_nonzero(A[:, k]) * np.count_nonzero(B[k, :])
            assert len(partial) == expected

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            outer_product_partials(
                CSCMatrix.from_dense(np.eye(3)), CSRMatrix.from_dense(np.eye(4))
            )
