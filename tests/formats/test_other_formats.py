"""Tests for bitvector, linked-list, and block-CRS formats + conversions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats.bitvector import BitvectorMatrix
from repro.formats.block_crs import BlockCRSMatrix
from repro.formats.convert import (
    dense_to_format,
    format_footprint_bits,
    roundtrip_equal,
)
from repro.formats.linked_list import LinkedListFiber, LinkedListMatrix


def _sparse(rng, shape, density=0.4):
    return (rng.random(shape) < density) * rng.integers(1, 9, shape)


class TestBitvector:
    def test_roundtrip(self, rng):
        dense = _sparse(rng, (5, 8))
        assert np.array_equal(BitvectorMatrix.from_dense(dense).to_dense(), dense)

    def test_read_via_popcount(self):
        dense = np.array([[0, 3, 0, 7]])
        bv = BitvectorMatrix.from_dense(dense)
        assert bv.read(0, 1) == 3
        assert bv.read(0, 3) == 7
        assert bv.read(0, 0) == 0

    def test_inconsistent_popcount_rejected(self):
        with pytest.raises(ValueError):
            BitvectorMatrix((1, 4), [0b0101], [np.array([1.0])])

    def test_mask_beyond_columns_rejected(self):
        with pytest.raises(ValueError):
            BitvectorMatrix((1, 2), [0b100], [np.array([1.0])])

    def test_footprint(self, rng):
        dense = _sparse(rng, (4, 8))
        bv = BitvectorMatrix.from_dense(dense)
        assert bv.footprint_bits(32) == 4 * 8 + bv.nnz * 32


class TestLinkedList:
    def test_fiber_append_and_iterate(self):
        fiber = LinkedListFiber()
        fiber.append(3, "a")
        fiber.append(7, "b")
        assert list(fiber) == [(3, "a"), (7, "b")]

    def test_insert_sorted(self):
        fiber = LinkedListFiber()
        for coord in (5, 1, 3):
            fiber.insert_sorted(coord, coord * 10)
        assert [c for c, _ in fiber] == [1, 3, 5]

    def test_insert_sorted_combines_duplicates(self):
        fiber = LinkedListFiber()
        fiber.insert_sorted(2, 10, combine=lambda a, b: a + b)
        fiber.insert_sorted(2, 5, combine=lambda a, b: a + b)
        assert list(fiber) == [(2, 15)]
        assert len(fiber) == 1

    def test_lookup_counts_pointer_hops(self):
        fiber = LinkedListFiber()
        for coord in range(8):
            fiber.append(coord, coord)
        before = fiber.pointer_hops
        fiber.lookup(7)
        assert fiber.pointer_hops - before == 8  # walked the whole chain

    def test_matrix_roundtrip(self, rng):
        dense = _sparse(rng, (5, 6))
        assert np.array_equal(LinkedListMatrix.from_dense(dense).to_dense(), dense)

    def test_accumulate(self):
        matrix = LinkedListMatrix((2, 4))
        matrix.accumulate(0, 2, 5)
        matrix.accumulate(0, 2, 3)
        matrix.accumulate(1, 0, 1)
        out = matrix.to_dense()
        assert out[0, 2] == 8
        assert out[1, 0] == 1


class TestBlockCRS:
    def test_roundtrip(self, rng):
        dense = _sparse(rng, (8, 8), 0.3)
        assert np.array_equal(
            BlockCRSMatrix.from_dense(dense, block=4).to_dense(), dense
        )

    def test_only_nonzero_blocks_stored(self):
        dense = np.zeros((8, 8))
        dense[0:4, 4:8] = 1
        bcrs = BlockCRSMatrix.from_dense(dense, block=4)
        assert bcrs.stored_blocks == 1

    def test_read(self):
        dense = np.zeros((8, 8))
        dense[2, 6] = 9
        bcrs = BlockCRSMatrix.from_dense(dense, block=4)
        assert bcrs.read(2, 6) == 9
        assert bcrs.read(0, 0) == 0

    def test_indivisible_shape_rejected(self):
        with pytest.raises(ValueError):
            BlockCRSMatrix.from_dense(np.zeros((6, 8)), block=4)

    def test_footprint_counts_blocks(self):
        dense = np.zeros((8, 8))
        dense[0, 0] = 1
        bcrs = BlockCRSMatrix.from_dense(dense, block=4)
        # One 4x4 block of data plus indptr/block_col metadata.
        assert bcrs.footprint_bits(32, 32) == 16 * 32 + (3 + 1) * 32


class TestConvert:
    @pytest.mark.parametrize(
        "fmt",
        [
            "csr",
            "csc",
            "bitvector",
            "linked_list",
            "block_crs",
            "fibertree:Dense,Compressed",
            "fibertree:Compressed,Compressed",
        ],
    )
    def test_roundtrip_equal(self, rng, fmt):
        dense = _sparse(rng, (8, 8), 0.35).astype(float)
        assert roundtrip_equal(dense, fmt)

    def test_unknown_format_rejected(self, rng):
        with pytest.raises(ValueError):
            dense_to_format(np.zeros((2, 2)), "mystery")

    def test_footprints_rank_formats_sensibly(self, rng):
        """For a very sparse matrix, compressed formats beat bitvector
        metadata only when the dimension is large enough; both beat a
        pointer-heavy linked list."""
        dense = np.zeros((32, 32))
        dense[0, 0] = dense[5, 7] = 1.0
        csr_bits = format_footprint_bits(dense, "csr")
        ll_bits = format_footprint_bits(dense, "linked_list")
        assert csr_bits < ll_bits or csr_bits < 32 * 32 * 32

    @settings(max_examples=20, deadline=None)
    @given(
        density=st.floats(0.0, 1.0),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_property_all_conversions_lossless(self, density, seed):
        rng = np.random.default_rng(seed)
        dense = _sparse(rng, (8, 8), density).astype(float)
        for fmt in ("csr", "csc", "bitvector", "linked_list", "block_crs"):
            assert roundtrip_equal(dense, fmt)
