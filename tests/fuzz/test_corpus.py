"""Regression replay of the committed fuzz corpus.

Every artifact under ``tests/data/fuzz_corpus/`` is a counterexample
the fuzzer once found (and shrank): the harness bug, simulator bug, or
lowering bug it condemned has since been fixed, so replaying the case
through its original oracle must now *agree* (``ok`` or ``illegal``).
A regression that resurrects one of these bugs fails here with the
artifact's name and original verdict in the assertion message.

The parametrization is automatic: dropping a new ``.json`` artifact
into the corpus directory adds a test case, no code change needed.
"""

import os

import pytest

from repro.fuzz import replay_case
from repro.fuzz.corpus import corpus_paths, load_artifact, load_case

CORPUS_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "data", "fuzz_corpus"
)

ARTIFACTS = corpus_paths(CORPUS_DIR)


def test_corpus_is_not_empty():
    # The corpus carries the bugs this harness has already caught; an
    # empty directory means the artifacts were lost, not that the code
    # is clean.
    assert ARTIFACTS, f"no fuzz corpus artifacts under {CORPUS_DIR}"


@pytest.mark.parametrize(
    "path", ARTIFACTS, ids=[os.path.basename(p) for p in ARTIFACTS]
)
def test_artifact_replays_green(path):
    artifact = load_artifact(path)
    case = load_case(path)
    verdict = replay_case(case)
    original = artifact.get("verdict", {})
    assert verdict.agreed, (
        f"{os.path.basename(path)} regressed: oracle {case.oracle} now"
        f" reports {verdict.status!r} ({verdict.detail}); the originally"
        f" fixed failure was {original.get('status')!r}"
        f" ({original.get('detail')})"
    )


@pytest.mark.parametrize(
    "path", ARTIFACTS, ids=[os.path.basename(p) for p in ARTIFACTS]
)
def test_artifact_is_canonical(path):
    """Artifacts are canonical JSON and name themselves consistently."""
    import json

    from repro.fuzz.corpus import ARTIFACT_VERSION, artifact_name

    artifact = load_artifact(path)
    assert artifact["artifact_version"] == ARTIFACT_VERSION
    case = load_case(path)
    assert os.path.basename(path) == artifact_name(case)
    raw = open(path, "r", encoding="utf-8").read()
    assert raw == json.dumps(artifact, sort_keys=True, indent=2) + "\n"
