"""Tests of the differential fuzzing harness itself.

Three layers:

* the *generator* -- deterministic in ``(seed, index)``, legal by
  construction, adversarial mutations materialize as ``SpecError``;
* the *campaign* -- same seed, same fingerprint, across runs; the CLI
  honours the check/verify 0/1/2 exit contract;
* the *reducer* -- an intentionally-injected simulator bug (the
  vectorized sparse path silently dropping an iteration point) is
  caught by the scalar-vs-vectorized oracle and shrunk to a corpus
  artifact of a handful of iteration-space points.
"""

import json

import pytest

from repro.cli import main
from repro.fuzz import (
    ORACLE_CODES,
    OracleContext,
    load_case,
    oracle_names,
    replay_case,
    run_campaign,
    run_oracle,
    shrink_case,
)
from repro.fuzz.generate import FuzzCase, generate_case, generate_cases
from repro.fuzz.shrink import case_cost
from repro.obs.metrics import MetricsRegistry
from repro.sim.spatial_array import SpatialArraySim


class TestGenerator:
    def test_same_seed_same_cases(self):
        first = generate_cases(11, 8, oracle_names())
        second = generate_cases(11, 8, oracle_names())
        assert [c.case_id for c in first] == [c.case_id for c in second]

    def test_different_seeds_differ(self):
        a = generate_cases(0, 8, oracle_names())
        b = generate_cases(1, 8, oracle_names())
        assert [c.case_id for c in a] != [c.case_id for c in b]

    def test_oracles_assigned_round_robin(self):
        cases = generate_cases(0, 12, oracle_names())
        assert [c.oracle for c in cases[:6]] == oracle_names()
        assert [c.oracle for c in cases[6:]] == oracle_names()

    def test_case_roundtrips_through_json(self):
        case = generate_case(3, 5, oracle_names())
        clone = FuzzCase.from_dict(json.loads(json.dumps(case.to_dict())))
        assert clone.case_id == case.case_id

    def test_unknown_case_version_is_rejected(self):
        payload = generate_case(0, 0, oracle_names()).to_dict()
        payload["version"] = 999
        with pytest.raises(ValueError, match="version"):
            FuzzCase.from_dict(payload)

    def test_bmm_transforms_are_lifted_to_rank_four(self):
        case = generate_case(0, 0, oracle_names()).replace(
            spec_name="bmm",
            bounds={"n": 2, "i": 2, "j": 2, "k": 2},
            mutation=None,
        )
        transform = case.build_transform()
        assert len(transform.matrix) == 4
        assert transform.space_dims == 2

    def test_singular_mutation_raises_on_materialization(self):
        from repro.core.functionality import SpecError

        case = generate_case(0, 0, oracle_names()).replace(
            mutation="singular-transform"
        )
        with pytest.raises(SpecError):
            case.build_transform()

    def test_singular_mutation_is_an_agreed_illegal_verdict(self):
        case = generate_case(0, 0, oracle_names()).replace(
            oracle="sim.scalar_vs_vectorized", mutation="singular-transform"
        )
        with OracleContext() as ctx:
            verdict = run_oracle(case, ctx)
        assert verdict.status == "illegal"
        assert verdict.agreed


class TestOracleRegistry:
    def test_six_oracles_with_distinct_codes(self):
        assert len(oracle_names()) == 6
        codes = [ORACLE_CODES[name] for name in oracle_names()]
        assert len(set(codes)) == 6
        assert all(code.startswith("STL-FZ-") for code in codes)

    def test_unknown_oracle_is_an_error(self):
        case = generate_case(0, 0, oracle_names()).replace(oracle="nope")
        with OracleContext() as ctx:
            with pytest.raises(ValueError, match="nope"):
                run_oracle(case, ctx)


class TestCampaign:
    def test_same_seed_same_fingerprint(self):
        first = run_campaign(seed=5, cases=6)
        second = run_campaign(seed=5, cases=6)
        assert first.fingerprint == second.fingerprint
        assert first.entries == second.entries

    def test_counters_live_in_the_campaign_registry(self):
        registry = MetricsRegistry()
        report = run_campaign(seed=5, cases=3, registry=registry)
        assert report.metrics["fuzz.cases"] == 3
        assert registry.counter("fuzz.cases").value == 3

    def test_unknown_oracle_name_is_rejected(self):
        with pytest.raises(ValueError, match="unknown oracle"):
            run_campaign(seed=0, cases=1, oracles=["sim.bogus"])


class TestCli:
    def test_clean_campaign_exits_zero(self, capsys):
        assert main(["fuzz", "--seed", "5", "--cases", "2"]) == 0
        out = capsys.readouterr().out
        assert "fuzz campaign: seed=5 cases=2" in out
        assert "all oracles agreed" in out

    def test_json_report_shape(self, capsys):
        assert main(["fuzz", "--seed", "5", "--cases", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["seed"] == 5
        assert payload["cases"] == 2
        assert payload["mismatches"] == []
        assert set(payload["tally"]) <= set(oracle_names())

    def test_unknown_oracle_is_a_usage_error(self, capsys):
        assert main(["fuzz", "--cases", "1", "--oracle", "sim.bogus"]) == 2
        assert "unknown oracle" in capsys.readouterr().err

    def test_replay_of_missing_artifact_is_a_usage_error(self, capsys):
        assert main(["fuzz", "--replay", "/no/such/artifact.json"]) == 2
        assert "no such artifact" in capsys.readouterr().err

    def test_replay_of_malformed_artifact_is_a_usage_error(
        self, tmp_path, capsys
    ):
        path = tmp_path / "bad.json"
        path.write_text('{"case": {"version": 1}}')
        assert main(["fuzz", "--replay", str(path)]) == 2
        assert "malformed fuzz case" in capsys.readouterr().err


@pytest.fixture
def injected_vectorize_bug(monkeypatch):
    """The vectorized sparse path silently drops the last valid point."""
    original = SpatialArraySim._valid_points

    def buggy(self, tensors):
        points = original(self, tensors)
        return points[:-1] if self.vectorize else points

    monkeypatch.setattr(SpatialArraySim, "_valid_points", buggy)


class TestInjectedBugIsCaughtAndShrunk:
    # Seed 3 puts a sparse b-csr matmul (the only shape that reaches
    # _valid_points) at case index 3 of the scalar-vs-vectorized stream.
    SEED, CASES = 3, 4

    def test_mutation_is_caught_shrunk_and_replayable(
        self, tmp_path, injected_vectorize_bug
    ):
        report = run_campaign(
            seed=self.SEED,
            cases=self.CASES,
            oracles=["sim.scalar_vs_vectorized"],
            corpus_dir=str(tmp_path),
        )
        assert len(report.mismatches) == 1
        entry = report.mismatches[0]
        assert entry["status"] == "mismatch"
        assert report.metrics["fuzz.mismatches"] == 1
        assert report.metrics["fuzz.shrink_steps"] >= 1

        # The reducer got the counterexample down to a trivial core.
        assert entry["shrunk_points"] <= 8

        case = load_case(entry["artifact"])
        assert case.points == entry["shrunk_points"]
        assert case.sparsity_name == "b-csr"  # dense never reproduces

        # Replaying the artifact with the bug still live re-condemns it.
        assert not replay_case(case).agreed

        diag = report.diagnostics[0]
        assert diag.code == ORACLE_CODES["sim.scalar_vs_vectorized"]
        assert diag.layer == "fuzz"

    def test_fixed_build_replays_the_artifact_green(self, tmp_path):
        # Without the injected bug the same campaign is clean...
        report = run_campaign(
            seed=self.SEED,
            cases=self.CASES,
            oracles=["sim.scalar_vs_vectorized"],
            corpus_dir=str(tmp_path),
        )
        assert report.mismatches == []
        # ...which is exactly the contract test_corpus.py enforces for
        # every committed artifact.


class TestShrinker:
    def test_always_failing_case_shrinks_to_the_floor(self, monkeypatch):
        import repro.fuzz.shrink as shrink_mod

        class _Disagreed:
            agreed = False

        monkeypatch.setattr(
            shrink_mod, "run_oracle", lambda case, ctx: _Disagreed()
        )
        case = generate_case(0, 0, oracle_names()).replace(
            spec_name="matmul",
            bounds={"i": 6, "j": 4, "k": 5},
            transform_name="hexagonal",
            sparsity_name="b-csr",
            balancing_name="row-shift",
            densities={"A": 0.4, "B": 0.6},
            mutation="skewed-bounds",
        )
        minimized, steps = shrink_case(case, ctx=None)
        assert minimized.points == 1
        assert minimized.bounds == {"i": 1, "j": 1, "k": 1}
        assert minimized.sparsity_name == "dense"
        assert minimized.balancing_name == "none"
        assert minimized.mutation is None
        assert minimized.transform_name == "output-stationary"
        assert steps >= 1

    def test_never_reproducing_candidate_keeps_the_original(self, monkeypatch):
        import repro.fuzz.shrink as shrink_mod

        class _Agreed:
            agreed = True

        monkeypatch.setattr(
            shrink_mod, "run_oracle", lambda case, ctx: _Agreed()
        )
        case = generate_case(0, 0, oracle_names())
        minimized, _steps = shrink_case(case, ctx=None)
        assert minimized.case_id == case.case_id

    def test_cost_orders_smaller_cases_first(self):
        case = generate_case(0, 0, oracle_names()).replace(
            bounds={"i": 4, "j": 4, "k": 4}
        )
        halved = case.replace(bounds={"i": 2, "j": 4, "k": 4})
        assert case_cost(halved) < case_cost(case)
