"""Tests for the merger study (Figures 18-19, Section VI-D)."""

import numpy as np
import pytest

from repro.baselines.mergers import (
    flattened_merge,
    merge_reference,
    row_partitioned_merge,
    sparch_partial_matrices,
    sweep_mergers,
)
from repro.formats.csr import CSRMatrix, spgemm_reference
from repro.workloads import synthesize_all


def _sparse(rng, n, density=0.4):
    return (rng.random((n, n)) < density) * rng.integers(1, 5, (n, n))


class TestMergeReference:
    def test_combines_duplicates(self):
        partials = [[(0, 0, 1.0), (0, 1, 2.0)], [(0, 0, 3.0)]]
        merged = merge_reference(partials)
        assert merged == [(0, 0, 4.0), (0, 1, 2.0)]

    def test_sorted_output(self, rng):
        partials = [[(1, 1, 1.0), (0, 2, 1.0)], [(0, 0, 1.0)]]
        merged = merge_reference(partials)
        assert merged == sorted(merged)


class TestSpArchOrder:
    def test_partials_reconstruct_product(self, rng):
        """Merging all SpArch-order partials reproduces A x A."""
        dense = _sparse(rng, 10)
        a = CSRMatrix.from_dense(dense)
        rounds = sparch_partial_matrices(a, ways=4)
        merged = merge_reference([p for rnd in rounds for p in rnd])
        want = spgemm_reference(a, a).to_dense()
        got = np.zeros_like(want)
        for r, c, v in merged:
            got[r, c] = v
        assert np.allclose(got, want)

    def test_round_sizes(self, rng):
        dense = _sparse(rng, 12, 0.6)
        a = CSRMatrix.from_dense(dense)
        rounds = sparch_partial_matrices(a, ways=4)
        assert all(len(rnd) <= 4 for rnd in rounds)


class TestMergerModels:
    def test_flattened_throughput_cap(self, rng):
        """The flattened merger never exceeds its comparator-matrix
        throughput of 16 merged elements per cycle."""
        partials = [[(r, c, 1.0) for c in range(40)] for r in range(8)]
        result = flattened_merge(partials, throughput=16)
        assert result.elements_per_cycle <= 16

    def test_row_partitioned_balanced_exceeds_16(self):
        """Figure 18's four winners: with balanced rows, 32 row PEs beat
        the flattened merger's 16/cycle cap."""
        partials = [[(r, c, 1.0) for c in range(64)] for r in range(64)]
        row = row_partitioned_merge(partials, pe_count=32)
        flat = flattened_merge(partials, throughput=16)
        assert row.elements_per_cycle > flat.elements_per_cycle

    def test_row_partitioned_starves_on_imbalance(self):
        """One giant row serializes a single PE (Figure 19a's weakness)."""
        partials = [[(0, c, 1.0) for c in range(256)]]
        row = row_partitioned_merge(partials, pe_count=32)
        assert row.elements_per_cycle <= 1.0

    def test_both_mergers_count_same_elements(self, rng):
        dense = _sparse(rng, 10)
        a = CSRMatrix.from_dense(dense)
        rounds = sparch_partial_matrices(a, ways=8)
        for rnd in rounds:
            flat = flattened_merge(rnd)
            row = row_partitioned_merge(rnd)
            assert flat.merged_elements == row.merged_elements

    def test_empty_partials(self):
        assert flattened_merge([]).merged_elements == 0
        assert row_partitioned_merge([]).merged_elements == 0


class TestFigure18:
    @pytest.fixture(scope="class")
    def comparisons(self):
        matrices = synthesize_all(max_rows=96, seed=7)
        return sweep_mergers(matrices)

    def test_at_least_a_third_reach_80_percent(self, comparisons):
        """'The row-partitioned mergers achieve at least 80% of the
        flattened merger's performance on over a third of the SuiteSPARSE
        matrices.'"""
        ge80 = sum(c.relative >= 0.8 for c in comparisons)
        assert ge80 >= len(comparisons) / 3

    def test_some_matrices_favor_row_partitioned(self, comparisons):
        """'On four of the matrices, the smaller, row-partitioned merger
        performed better' -- the named winners must win here too."""
        winners = {c.name for c in comparisons if c.relative > 1.0}
        assert len(winners) >= 4
        assert "poisson3Da" in winners
        assert "cop20k_A" in winners

    def test_power_law_matrices_starve_row_partitioned(self, comparisons):
        """Heavy-tailed row lengths are exactly where the cheap merger
        loses."""
        by_name = {c.name: c for c in comparisons}
        for name in ("web-Google", "wiki-Vote", "cit-Patents", "webbase-1M"):
            assert by_name[name].relative < 0.8

    def test_flattened_near_peak_everywhere(self, comparisons):
        """The flattened merger is insensitive to imbalance: it stays near
        its 16/cycle ceiling on every matrix."""
        for c in comparisons:
            assert c.flattened_epc > 10
