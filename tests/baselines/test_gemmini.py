"""Tests for the Gemmini study (Figure 16a, Table III, Figure 17, Sec VI-B)."""

import pytest

from repro.baselines import gemmini
from repro.workloads import resnet50_layers


@pytest.fixture(scope="module")
def layers():
    return resnet50_layers()


class TestUtilization:
    def test_figure16a_ratio(self, layers):
        """Stellar-Gemmini reaches ~90% of handwritten utilization."""
        handwritten = gemmini.network_utilization(layers, stellar=False)
        stellar = gemmini.network_utilization(layers, stellar=True)
        assert 0.85 <= stellar / handwritten <= 0.95

    def test_stellar_never_beats_handwritten_per_layer(self, layers):
        for layer in layers:
            h = gemmini.handwritten_layer(layer)
            s = gemmini.stellar_layer(layer)
            assert s.utilization <= h.utilization
            assert s.cycles >= h.cycles

    def test_utilization_bounded(self, layers):
        for layer in layers:
            result = gemmini.handwritten_layer(layer)
            assert 0 < result.utilization <= 1.0

    def test_edge_layers_utilize_worse(self, layers):
        """Small-M layers amortize tile overheads poorly."""
        by_name = {L.name: gemmini.handwritten_layer(L) for L in layers}
        assert by_name["res5_3x3"].utilization < by_name["res2_3x3"].utilization

    def test_cycles_cover_all_macs(self, layers):
        for layer in layers:
            result = gemmini.handwritten_layer(layer)
            assert result.cycles * gemmini.PE_COUNT >= result.macs


class TestTable3Area:
    def test_total_overhead_is_13_percent(self):
        """Table III: 3,282K -> 3,699K um^2 (+13%)."""
        handwritten = gemmini.handwritten_area()
        stellar = gemmini.stellar_area()
        assert stellar.total / handwritten.total == pytest.approx(1.127, abs=0.02)

    @pytest.mark.parametrize(
        "component,original,generated",
        [
            ("Matmul array", 334_000, 420_000),
            ("SRAMs", 2_225_000, 2_247_000),
            ("Regfiles", 25_000, 104_000),
            ("Loop unrollers", 259_000, 482_000),
            ("Dma", 102_000, 109_000),
            ("Host CPU", 337_000, 337_000),
        ],
    )
    def test_component_calibration(self, component, original, generated):
        """Each component within 5% of Table III's reported value."""
        handwritten = gemmini.handwritten_area()
        stellar = gemmini.stellar_area()
        assert handwritten[component] == pytest.approx(original, rel=0.05)
        assert stellar[component] == pytest.approx(generated, rel=0.05)

    def test_totals_match_paper(self):
        assert gemmini.handwritten_area().total == pytest.approx(
            3_282_000, rel=0.02
        )
        assert gemmini.stellar_area().total == pytest.approx(3_699_000, rel=0.02)

    def test_regfile_growth(self):
        """Stellar regfiles grow ~4x (25K -> 104K)."""
        ratio = (
            gemmini.stellar_area()["Regfiles"]
            / gemmini.handwritten_area()["Regfiles"]
        )
        assert 3.5 <= ratio <= 4.7


class TestFrequency:
    def test_section6b_frequencies(self):
        """Handwritten caps at ~700 MHz; Stellar reaches ~1 GHz."""
        handwritten = gemmini.handwritten_max_frequency_mhz()
        stellar = gemmini.stellar_max_frequency_mhz()
        assert handwritten == pytest.approx(700, rel=0.05)
        assert stellar == pytest.approx(1000, rel=0.08)
        assert stellar > handwritten

    def test_unroller_is_handwritten_bottleneck(self):
        from repro.area.timing import (
            centralized_unroller_path_ns,
            pe_critical_path_ns,
        )

        assert centralized_unroller_path_ns(7, 12) > pe_critical_path_ns(1)


class TestFigure17Energy:
    def test_overhead_range(self, layers):
        """Figure 17: 7% best to 30% worst across ResNet-50 layers."""
        conv_layers = [L for L in layers if L.name != "fc1000"]
        overheads = []
        for layer in conv_layers:
            handwritten = gemmini.layer_energy_report(layer, stellar=False)
            stellar = gemmini.layer_energy_report(layer, stellar=True)
            overheads.append(stellar.pj_per_mac / handwritten.pj_per_mac - 1)
        assert min(overheads) == pytest.approx(0.07, abs=0.03)
        assert max(overheads) == pytest.approx(0.30, abs=0.05)

    def test_overhead_correlates_with_utilization(self, layers):
        """The worst overheads land on the worst-utilizing layers."""
        conv_layers = [L for L in layers if L.name != "fc1000"]
        pairs = []
        for layer in conv_layers:
            util = gemmini.stellar_layer(layer).utilization
            h = gemmini.layer_energy_report(layer, stellar=False)
            s = gemmini.layer_energy_report(layer, stellar=True)
            pairs.append((util, s.pj_per_mac / h.pj_per_mac))
        best = min(pairs, key=lambda p: p[1])
        worst = max(pairs, key=lambda p: p[1])
        assert worst[0] < best[0]

    def test_energy_positive(self, layers):
        for layer in layers[:4]:
            report = gemmini.layer_energy_report(layer, stellar=True)
            assert report.pj_per_mac > 0
