"""Tests for the SCNN study (Figure 15)."""

import pytest

from repro.baselines import scnn
from repro.workloads import alexnet_pruned_layers


@pytest.fixture(scope="module")
def layers():
    return alexnet_pruned_layers()


class TestFigure15:
    def test_relative_performance_band(self, layers):
        """Stellar-SCNN achieves 83%-94% of the handwritten design."""
        ratios = [scnn.relative_performance(L) for L in layers]
        assert min(ratios) == pytest.approx(0.83, abs=0.03)
        assert max(ratios) == pytest.approx(0.94, abs=0.03)
        assert all(0.80 <= r <= 0.97 for r in ratios)

    def test_stellar_slower_on_every_layer(self, layers):
        for layer in layers:
            assert scnn.stellar_layer(layer).cycles > scnn.handwritten_layer(layer).cycles

    def test_network_results_shape(self, layers):
        handwritten, stellar = scnn.network_results(layers)
        assert len(handwritten) == len(stellar) == len(layers)


class TestUtilizationModel:
    def test_utilization_bounded(self, layers):
        for layer in layers:
            result = scnn.handwritten_layer(layer)
            assert 0 < result.utilization < 1.0

    def test_sparser_weights_fragment_more(self):
        """Lower density -> more multiplier-slot fragmentation."""
        dense = scnn._fragmentation_factor(0.9, window=16, chunk=4)
        sparse = scnn._fragmentation_factor(0.3, window=16, chunk=4)
        assert sparse < dense

    def test_full_density_no_fragmentation(self):
        assert scnn._fragmentation_factor(1.0, window=16, chunk=4) == pytest.approx(1.0)

    def test_zero_density_degenerate(self):
        assert scnn._fragmentation_factor(0.0, window=16, chunk=4) == 1.0

    def test_bank_conflict_factor(self):
        factor = scnn._bank_conflict_factor()
        assert 0.5 < factor < 1.0

    def test_more_banks_fewer_conflicts(self):
        assert scnn._bank_conflict_factor(banks=64) > scnn._bank_conflict_factor(banks=16)

    def test_cycles_track_effective_macs(self, layers):
        for layer in layers:
            result = scnn.handwritten_layer(layer)
            ideal = layer.effective_macs / (scnn.PE_COUNT * scnn.MULTS_PER_PE)
            assert result.cycles >= ideal


class TestOverheadAmortization:
    def test_large_layers_amortize_better(self, layers):
        """conv1 (most work per tile, fewest switches) keeps the highest
        ratio among the early layers; conv2 with many tiles fares worst."""
        ratios = {L.name: scnn.relative_performance(L) for L in layers}
        assert ratios["conv2"] == min(ratios.values())

    def test_tile_counts_positive(self, layers):
        for layer in layers:
            assert scnn._tile_count(layer) >= 1
