"""Sensitivity sweeps over the baseline models.

Beyond matching the paper's reported points, the models must move the
right way when their inputs move -- these sweeps pin the monotonicities
an architect would rely on when extrapolating from the reproduction.
"""

import pytest

from repro.baselines import gemmini, outerspace as osp, scnn
from repro.workloads import synthesize
from repro.workloads.alexnet import SparseConvLayer
from repro.workloads.resnet50 import ConvLayer


class TestSCNNSensitivity:
    def _layer(self, weight_density, activation_density=0.6):
        return SparseConvLayer(
            "probe", 64, 64, 3, 14, weight_density, activation_density
        )

    def test_utilization_improves_with_density(self):
        """Fragmentation eases as fibers fill up."""
        utils = [
            scnn.handwritten_layer(self._layer(d)).utilization
            for d in (0.2, 0.4, 0.6, 0.8, 1.0)
        ]
        assert utils == sorted(utils)

    def test_effective_macs_scale_with_density(self):
        sparse = self._layer(0.25)
        dense = self._layer(0.75)
        assert dense.effective_macs == pytest.approx(3 * sparse.effective_macs)

    def test_relative_performance_band_is_stable(self):
        """The Stellar/handwritten ratio stays in a sane band across
        densities -- it is an overhead story, not a sparsity story."""
        for density in (0.2, 0.5, 0.9):
            ratio = scnn.relative_performance(self._layer(density))
            assert 0.75 <= ratio <= 0.99


class TestGemminiSensitivity:
    def test_utilization_improves_with_m(self):
        """Longer streamed dimensions amortize the tile fill."""
        utils = []
        for out_size in (7, 14, 28, 56):
            layer = ConvLayer("probe", 64, 64, 3, 1, out_size)
            utils.append(gemmini.handwritten_layer(layer).utilization)
        assert utils == sorted(utils)

    def test_aligned_dims_utilize_fully(self):
        layer = ConvLayer("aligned", 16, 16, 1, 1, 64)
        result = gemmini.handwritten_layer(layer)
        assert result.utilization > 0.98

    def test_misaligned_n_wastes_columns(self):
        aligned = ConvLayer("a", 16, 16, 1, 1, 64)  # n = 16
        misaligned = ConvLayer("m", 16, 17, 1, 1, 64)  # n = 17 -> 2 tiles
        assert (
            gemmini.handwritten_layer(misaligned).utilization
            < gemmini.handwritten_layer(aligned).utilization
        )


class TestOuterSpaceSensitivity:
    @pytest.fixture(scope="class")
    def matrix(self):
        return synthesize("scircuit", max_rows=96, seed=3)

    def test_more_bandwidth_never_hurts(self, matrix):
        slow = osp.simulate(matrix, dram_bandwidth=8)
        fast = osp.simulate(matrix, dram_bandwidth=32)
        assert fast.gflops >= slow.gflops

    def test_lower_latency_never_hurts(self, matrix):
        high = osp.simulate(matrix, dram_latency=200)
        low = osp.simulate(matrix, dram_latency=50)
        assert low.gflops >= high.gflops

    def test_gflops_bounded_by_compute(self, matrix):
        """No configuration beats the 256-PE arithmetic bound."""
        result = osp.simulate(matrix, max_inflight=64, dram_bandwidth=1024)
        peak = 2 * osp.PE_COUNT * osp.CLOCK_GHZ  # MACs/cycle * GHz
        assert result.gflops <= peak
