"""Tests for the OuterSPACE study (Figure 16b, Section VI-C)."""

import pytest

from repro.baselines import outerspace as osp
from repro.formats.csr import CSRMatrix
from repro.workloads import synthesize_all

import numpy as np


@pytest.fixture(scope="module")
def matrices():
    return synthesize_all(max_rows=96, seed=7)


class TestFlopAccounting:
    def test_multiply_phase_flops(self, rng):
        dense = (rng.random((6, 6)) < 0.5) * rng.integers(1, 5, (6, 6))
        a = CSRMatrix.from_dense(dense)
        flops = osp.multiply_phase_flops(a)
        expected = 2 * sum(
            np.count_nonzero(dense[:, k]) * np.count_nonzero(dense[k, :])
            for k in range(6)
        )
        assert flops == expected

    def test_empty_matrix(self):
        a = CSRMatrix.from_dense(np.zeros((4, 4)))
        assert osp.multiply_phase_flops(a) == 0


class TestTransferStructure:
    def test_pointer_fraction_below_ten_percent(self, rng):
        """Section VI-C: pointer reads comprise <10% of total traffic."""
        dense = (rng.random((32, 32)) < 0.3) * rng.integers(1, 5, (32, 32))
        a = CSRMatrix.from_dense(dense)
        transfers = osp.partial_sum_transfers(a) + osp.input_transfers(a)
        pointer_bytes = sum(t.size_bytes for t in transfers if t.is_pointer)
        total = sum(t.size_bytes for t in transfers)
        assert 0 < pointer_bytes / total < 0.10

    def test_every_vector_depends_on_its_pointer(self, rng):
        dense = (rng.random((16, 16)) < 0.3) * rng.integers(1, 5, (16, 16))
        transfers = osp.partial_sum_transfers(CSRMatrix.from_dense(dense))
        for idx, transfer in enumerate(transfers):
            if not transfer.is_pointer:
                dep = transfer.dependency
                assert dep is not None and transfers[dep].is_pointer


class TestFigure16b:
    def test_default_dma_average(self, matrices):
        """The initial Stellar-generated accelerator averages ~1.42 GFLOP/s."""
        results = osp.sweep(matrices, max_inflight=osp.DEFAULT_MAX_INFLIGHT)
        avg = osp.average_gflops(results)
        assert 1.1 <= avg <= 1.8

    def test_improved_dma_average(self, matrices):
        """16 in-flight requests lift throughput toward (but still below)
        OuterSPACE's reported 2.9 GFLOP/s."""
        results = osp.sweep(matrices, max_inflight=osp.IMPROVED_MAX_INFLIGHT)
        avg = osp.average_gflops(results)
        assert 1.9 <= avg <= osp.PAPER_REPORTED_GFLOPS

    def test_fix_improves_every_matrix(self, matrices):
        base = osp.sweep(matrices, max_inflight=osp.DEFAULT_MAX_INFLIGHT)
        improved = osp.sweep(matrices, max_inflight=osp.IMPROVED_MAX_INFLIGHT)
        for slow, fast in zip(base, improved):
            assert fast.gflops >= slow.gflops

    def test_memory_bound(self, matrices):
        """These extremely sparse matmuls are memory-bound: the accelerator
        spends its time in the DMA, not the multipliers."""
        results = osp.sweep(matrices, max_inflight=osp.DEFAULT_MAX_INFLIGHT)
        for result in results:
            assert result.memory_cycles > result.compute_cycles

    def test_bandwidth_constant_across_configs(self, matrices):
        """The paper's fix explicitly does not change DRAM bandwidth."""
        name = next(iter(matrices))
        slow = osp.simulate(matrices[name], max_inflight=1, dram_bandwidth=16)
        fast = osp.simulate(matrices[name], max_inflight=16, dram_bandwidth=16)
        assert slow.flops == fast.flops

    def test_result_fields(self, matrices):
        result = osp.simulate(next(iter(matrices.values())), name="test")
        assert result.name == "test"
        assert result.cycles >= max(result.compute_cycles, result.memory_cycles) - 1
        assert result.gflops > 0
