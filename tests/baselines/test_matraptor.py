"""Tests for the MatRaptor-style row-wise SpGEMM baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.matraptor import spgemm_rowwise
from repro.formats.csr import CSRMatrix, spgemm_reference


def _sparse(rng, n, density=0.4):
    return (rng.random((n, n)) < density) * rng.integers(1, 5, (n, n)).astype(float)


class TestCorrectness:
    def test_matches_reference(self, rng):
        a = CSRMatrix.from_dense(_sparse(rng, 10))
        b = CSRMatrix.from_dense(_sparse(rng, 10))
        result = spgemm_rowwise(a, b)
        want = spgemm_reference(a, b)
        assert np.allclose(result.output.to_dense(), want.to_dense())

    def test_empty_inputs(self):
        a = CSRMatrix.from_dense(np.zeros((4, 4)))
        result = spgemm_rowwise(a, a)
        assert result.multiplies == 0
        assert result.cycles >= 1

    def test_dimension_mismatch_rejected(self):
        a = CSRMatrix.from_dense(np.eye(3))
        b = CSRMatrix.from_dense(np.eye(4))
        with pytest.raises(ValueError):
            spgemm_rowwise(a, b)

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(2, 9),
        density=st.floats(0.1, 0.7),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_property_rowwise_equals_reference(self, n, density, seed):
        rng = np.random.default_rng(seed)
        a = CSRMatrix.from_dense(_sparse(rng, n, density))
        b = CSRMatrix.from_dense(_sparse(rng, n, density))
        result = spgemm_rowwise(a, b)
        want = spgemm_reference(a, b).to_dense()
        got = result.output.to_dense()
        padded = np.zeros_like(want)
        if got.size:
            padded[: got.shape[0], : got.shape[1]] = got
        assert np.allclose(padded, want)


class TestCostModel:
    def test_multiplies_counted_exactly(self, rng):
        dense_a = _sparse(rng, 8)
        dense_b = _sparse(rng, 8)
        a, b = CSRMatrix.from_dense(dense_a), CSRMatrix.from_dense(dense_b)
        result = spgemm_rowwise(a, b)
        expected = sum(
            np.count_nonzero(dense_a[:, k]) * np.count_nonzero(dense_b[k, :])
            for k in range(8)
        )
        assert result.multiplies == expected

    def test_pointer_hops_grow_with_row_density(self, rng):
        sparse = CSRMatrix.from_dense(_sparse(rng, 12, 0.1))
        dense = CSRMatrix.from_dense(_sparse(rng, 12, 0.8))
        r_sparse = spgemm_rowwise(sparse, sparse)
        r_dense = spgemm_rowwise(dense, dense)
        assert r_dense.pointer_hops > r_sparse.pointer_hops

    def test_cycles_at_least_lane_work(self, rng):
        a = CSRMatrix.from_dense(_sparse(rng, 10))
        result = spgemm_rowwise(a, a)
        from repro.baselines.matraptor import PE_COUNT

        assert result.cycles >= result.accumulator_ops / PE_COUNT

    def test_throughput_metric(self, rng):
        a = CSRMatrix.from_dense(_sparse(rng, 10))
        result = spgemm_rowwise(a, a)
        assert 0 < result.macs_per_cycle <= 8
