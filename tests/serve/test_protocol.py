"""Request-schema validation and the dedup fingerprint."""

import json

import pytest

from repro.serve.protocol import (
    PROTOCOL_VERSION,
    RequestError,
    encode,
    error_message,
    jsonable,
    parse_line,
    request_key,
    validate_request,
)


def err(obj):
    with pytest.raises(RequestError) as excinfo:
        validate_request(obj)
    return excinfo.value


class TestParseLine:
    def test_valid_json(self):
        assert parse_line(b'{"type": "ping"}') == {"type": "ping"}

    def test_malformed_json_is_bad_json(self):
        with pytest.raises(RequestError) as excinfo:
            parse_line(b"{nope")
        assert excinfo.value.code == "bad-json"

    def test_bad_utf8_is_bad_json(self):
        with pytest.raises(RequestError) as excinfo:
            parse_line(b'"\xff\xfe"')
        assert excinfo.value.code == "bad-json"


class TestValidate:
    def test_non_object_rejected(self):
        assert err([1, 2]).code == "bad-request"
        assert err("ping").code == "bad-request"

    def test_unknown_type_rejected(self):
        assert err({"type": "frobnicate"}).code == "unknown-type"
        assert err({}).code == "unknown-type"

    def test_simple_types_normalize(self):
        for rtype in ("ping", "metrics", "shutdown"):
            assert validate_request({"type": rtype}) == {"type": rtype}

    def test_simple_types_reject_extra_fields(self):
        assert err({"type": "ping", "x": 1}).code == "unknown-field"

    def test_sweep_defaults_resolved(self):
        request = validate_request({"type": "sweep", "suite": "alexnet"})
        assert request == {
            "type": "sweep",
            "suite": "alexnet",
            "table": None,
            "cap": 8,
            "seed": 7,
            "autotune": False,
            "halving": False,
            "eta": 2,
            "constraint": None,
            "objective": "cycles",
            "budget": None,
        }

    def test_sweep_needs_exactly_one_source(self):
        assert err({"type": "sweep"}).code == "bad-request"
        assert (
            err(
                {"type": "sweep", "suite": "alexnet", "table": []}
            ).code
            == "bad-request"
        )

    def test_unknown_suite(self):
        error = err({"type": "sweep", "suite": "nope"})
        assert error.code == "unknown-suite"
        assert "alexnet" in str(error)  # names the alternatives

    def test_non_string_suite(self):
        assert err({"type": "sweep", "suite": 7}).code == "bad-request"

    def test_table_must_be_structured(self):
        assert err({"type": "sweep", "table": "rows"}).code == "bad-request"

    def test_bad_bounds(self):
        base = {"type": "sweep", "suite": "alexnet"}
        assert err({**base, "cap": 0}).code == "bad-bounds"
        assert err({**base, "cap": 10_000}).code == "bad-bounds"
        assert err({**base, "cap": "8"}).code == "bad-bounds"
        assert err({**base, "cap": True}).code == "bad-bounds"
        assert err({**base, "seed": -1}).code == "bad-bounds"
        assert err({**base, "budget": 0}).code == "bad-bounds"

    def test_bad_objective_and_autotune(self):
        base = {"type": "sweep", "suite": "alexnet"}
        assert err({**base, "objective": "speed"}).code == "bad-objective"
        assert err({**base, "autotune": 1}).code == "bad-request"

    def test_halving_fields_validate(self):
        base = {"type": "sweep", "suite": "alexnet"}
        assert err({**base, "halving": 1}).code == "bad-request"
        assert err({**base, "eta": 0}).code == "bad-bounds"
        assert err({**base, "eta": "two"}).code == "bad-bounds"

    def test_bad_constraint_rejected(self):
        base = {"type": "sweep", "suite": "alexnet"}
        assert err({**base, "constraint": 7}).code == "bad-constraint"
        assert err({**base, "constraint": "latency<=3"}).code == (
            "bad-constraint"
        )
        assert err({**base, "constraint": "cycles=3"}).code == (
            "bad-constraint"
        )

    def test_constraint_is_canonicalized(self):
        request = validate_request(
            {
                "type": "sweep",
                "suite": "alexnet",
                "constraint": " area<=120000.0 , power>=0.5 ",
            }
        )
        assert request["constraint"] == "area<=120000,power>=0.5"
        # An all-whitespace clause list collapses to no constraint.
        empty = validate_request(
            {"type": "sweep", "suite": "alexnet", "constraint": " , "}
        )
        assert empty["constraint"] is None

    def test_unknown_field_rejected(self):
        error = err({"type": "sweep", "suite": "alexnet", "jobs": 4})
        assert error.code == "unknown-field"
        assert "jobs" in str(error)

    def test_explore_normalizes(self):
        request = validate_request({"type": "explore"})
        assert request == {
            "type": "explore",
            "spec": "matmul",
            "size": 4,
            "seed": 0,
        }

    def test_explore_bounds(self):
        assert err({"type": "explore", "spec": "nope"}).code == "unknown-spec"
        assert err({"type": "explore", "size": 0}).code == "bad-bounds"
        assert err({"type": "explore", "size": 1000}).code == "bad-bounds"


class TestRequestKey:
    def test_defaults_collapse_onto_explicit_spelling(self):
        implicit = validate_request({"type": "sweep", "suite": "alexnet"})
        explicit = validate_request(
            {"type": "sweep", "suite": "alexnet", "cap": 8, "seed": 7}
        )
        assert request_key(implicit) == request_key(explicit)

    def test_result_determining_fields_change_the_key(self):
        base = validate_request({"type": "sweep", "suite": "alexnet"})
        for delta in (
            {"suite": "resnet50"},
            {"cap": 4},
            {"seed": 11},
            {"autotune": True},
            {"halving": True},
            {"eta": 3},
            {"constraint": "area<=120000"},
        ):
            other = validate_request(
                {"type": "sweep", "suite": "alexnet", **delta}
            )
            assert request_key(base) != request_key(other)

    def test_inline_table_contents_keyed(self):
        row = {"name": "l0", "m": 4, "k": 4, "n": 4}
        one = validate_request({"type": "sweep", "table": [row]})
        two = validate_request(
            {"type": "sweep", "table": [{**row, "m": 8}]}
        )
        assert request_key(one) != request_key(two)

    def test_sweep_and_explore_never_collide(self):
        sweep = validate_request({"type": "sweep", "suite": "alexnet"})
        explore = validate_request({"type": "explore"})
        assert request_key(sweep) != request_key(explore)


class TestEncoding:
    def test_encode_is_one_json_line(self):
        line = encode({"type": "row", "index": 0})
        assert line.endswith(b"\n") and line.count(b"\n") == 1
        assert json.loads(line) == {"type": "row", "index": 0}

    def test_jsonable_strips_numpy(self):
        np = pytest.importorskip("numpy")
        out = jsonable(
            {
                "cycles": np.int64(7),
                "util": np.float64(0.5),
                "shape": (4, 4),
                "grid": np.arange(2),
            }
        )
        assert out == {
            "cycles": 7, "util": 0.5, "shape": [4, 4], "grid": [0, 1]
        }
        json.dumps(out)  # round-trips

    def test_error_message_shape(self):
        message = error_message("bad-json", "nope")
        assert message == {
            "type": "error", "code": "bad-json", "message": "nope"
        }

    def test_protocol_version_is_an_int(self):
        assert isinstance(PROTOCOL_VERSION, int)
