"""Differential tests: the serve path against the batch path.

The workload table is *fuzz-generated* -- drawn from the same seeded
generator the fuzzing harness uses -- and evaluated twice: once through
a live :class:`EvalServer` via :class:`ServeClient`, once in-process
through :func:`evaluate_suite`.  The two must agree byte-for-byte after
JSON canonicalization, both for a lone request and for two identical
requests coalesced by in-flight deduplication (where the late joiner
replays the buffered stream).

This file also covers the tracer-forwarding path end to end: the
production sweep evaluator installs a sink tracer that forwards the DSE
layer's obs trace events as ``trace`` messages, so a real sweep streams
per-point spans -- and a dedup joiner sees the *same* trace/row
interleaving the original subscriber saw.
"""

import json
import threading

from repro.exec.cache import CompileCache
from repro.exec.suite import build_table_suite, evaluate_suite
from repro.fuzz.generate import generate_cases
from repro.serve.protocol import jsonable

from .test_server import harness  # noqa: F401 - shared server fixture

CAP, SEED = 6, 7


def fuzz_table():
    """A workload table drawn from the fuzz generator's matmul stream."""
    cases = [
        c
        for c in generate_cases(0, 12, ["exec.halving_eta1_vs_exhaustive"])
        if c.mutation is None
    ]
    table = []
    for case in cases[:3]:
        table.append(
            {
                "name": f"fuzz-{case.index}",
                "m": case.bounds["i"],
                "k": case.bounds["k"],
                "n": case.bounds["j"],
                "a_density": case.densities.get("A", 1.0),
                "b_density": case.densities.get("B", 1.0),
            }
        )
    return table


TABLE = fuzz_table()


def batch_rows():
    result = evaluate_suite(
        build_table_suite(TABLE, cap=CAP, seed=SEED),
        jobs=1,
        cache=CompileCache(),
    )
    return jsonable(result.rows)


class TestFuzzSweepDifferential:
    def test_server_rows_are_byte_identical_to_batch(self, harness):  # noqa: F811
        h = harness()
        traces = []
        result = h.client.sweep(
            table=TABLE, cap=CAP, seed=SEED, on_trace=traces.append
        )
        assert json.dumps(result["rows"]) == json.dumps(batch_rows())
        # The production evaluator forwarded the DSE layer's obs tracer
        # events: one per-point span per layer, at least.
        assert len(traces) >= len(TABLE)
        assert {t["component"] for t in traces} == {"dse"}
        span_names = [t["event"] for t in traces]
        for row in result["rows"]:
            assert row["name"] in span_names

    def test_dedup_replay_is_byte_identical_including_traces(self, harness):  # noqa: F811
        h = harness()
        release = threading.Event()
        real = h.server._evaluator

        def gated(request, emit_row, emit_trace):
            assert release.wait(30)
            return real(request, emit_row, emit_trace)

        h.server._evaluator = gated

        streams = [None, None]

        def client_run(slot):
            traces, rows = [], []
            result = h.client.sweep(
                table=TABLE,
                cap=CAP,
                seed=SEED,
                on_row=lambda index, row: rows.append((index, row)),
                on_trace=traces.append,
            )
            streams[slot] = {
                "rows": result["rows"],
                "streamed": rows,
                "traces": traces,
                "dedup": result["dedup"],
            }

        first = threading.Thread(target=client_run, args=(0,))
        second = threading.Thread(target=client_run, args=(1,))
        first.start()
        second.start()
        h.wait_active(2)
        release.set()
        first.join(timeout=60)
        second.join(timeout=60)
        assert streams[0] is not None and streams[1] is not None

        # One evaluation, two byte-identical result streams.
        assert sorted(s["dedup"] for s in streams) == [False, True]
        expected = json.dumps(batch_rows())
        for stream in streams:
            assert json.dumps(stream["rows"]) == expected

        # The dedup joiner replayed the exact trace/row interleaving the
        # original subscriber saw -- same events, same order, same
        # payloads (timestamps included: they are the *same* messages).
        assert json.dumps(streams[0]["streamed"]) == json.dumps(
            streams[1]["streamed"]
        )
        assert json.dumps(streams[0]["traces"]) == json.dumps(
            streams[1]["traces"]
        )
        assert len(streams[0]["traces"]) >= len(TABLE)
        assert h.client.metrics()["server"]["dedup_hits"] == 1
