"""``repro serve`` and ``repro sweep --server`` through the real CLI."""

import json
import threading
import time

import pytest

from repro.cli import main as cli_main
from repro.serve import ServeClient


@pytest.fixture
def daemon(tmp_path):
    socket_path = str(tmp_path / "serve.sock")
    thread = threading.Thread(
        target=cli_main,
        args=(
            [
                "serve", "--socket", socket_path, "--jobs", "1",
                "--no-disk-cache",
            ],
        ),
        daemon=True,
    )
    thread.start()
    client = ServeClient(socket_path, timeout=60.0)
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        try:
            client.ping()
            break
        except Exception:
            time.sleep(0.05)
    else:
        raise AssertionError("daemon never came up")
    yield socket_path
    client.shutdown()
    thread.join(timeout=15)
    assert not thread.is_alive()


class TestServeCommand:
    def test_requires_exactly_one_bind(self, capsys):
        assert cli_main(["serve"]) == 2
        assert "exactly one" in capsys.readouterr().err
        assert cli_main(["serve", "--socket", "/tmp/x", "--port", "1"]) == 2

    def test_sweep_routes_through_the_daemon(self, daemon, tmp_path, capsys):
        table = tmp_path / "net.json"
        table.write_text(
            json.dumps(
                [
                    {"name": "l0", "m": 4, "k": 4, "n": 4},
                    {"name": "l1", "m": 6, "k": 4, "n": 5},
                ]
            )
        )
        assert cli_main(
            ["sweep", str(table), "--server", daemon, "--json"]
        ) == 0
        served = json.loads(capsys.readouterr().out)
        assert served["suite"] == "net"
        assert len(served["rows"]) == 2
        assert served["dedup"] is False

        # The daemon's rows are byte-identical to the batch CLI's.
        assert cli_main(
            ["sweep", str(table), "--no-disk-cache", "--json"]
        ) == 0
        batch = json.loads(capsys.readouterr().out)
        assert json.dumps(served["rows"]) == json.dumps(batch["rows"])

    def test_sweep_human_output_names_the_server(self, daemon, capsys):
        assert cli_main(
            ["sweep", "alexnet", "--server", daemon, "--cap", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "via server" in out
        assert "cases" in out

    def test_server_error_exits_2(self, daemon, capsys):
        assert cli_main(
            ["sweep", "missing-table.json", "--server", daemon]
        ) == 2
        assert "no such workload table" in capsys.readouterr().err

    def test_unreachable_server_exits_2(self, tmp_path, capsys):
        assert cli_main(
            [
                "sweep", "alexnet",
                "--server", str(tmp_path / "nowhere.sock"),
            ]
        ) == 2
        assert "cannot reach" in capsys.readouterr().err
