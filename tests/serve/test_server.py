"""End-to-end tests of the evaluation daemon over a unix socket.

Each test boots a real :class:`EvalServer` in a background thread.
Deterministic concurrency (the two-client dedup and drain tests) comes
from the ``evaluator`` injection point: a test-controlled evaluator
blocks on an event, so the test *knows* the second client arrives
while the first is in flight, instead of hoping a sleep wins a race.
"""

import json
import socket
import threading
import time

import pytest

from repro.exec.cache import CompileCache
from repro.exec.suite import SuiteError, build_table_suite, evaluate_suite
from repro.serve import EvalServer, ServeClient, ServeError
from repro.serve.protocol import jsonable

TABLE = [
    {"name": "l0", "m": 4, "k": 4, "n": 4},
    {"name": "l1", "m": 6, "k": 4, "n": 5, "b_density": 0.5},
]


class ServerHarness:
    def __init__(self, tmp_path, **kwargs):
        kwargs.setdefault("use_disk_cache", False)
        kwargs.setdefault("jobs", 1)
        kwargs.setdefault("drain_timeout", 5.0)
        self.server = EvalServer(**kwargs)
        self.socket_path = str(tmp_path / "serve.sock")
        ready = threading.Event()
        self.thread = threading.Thread(
            target=self.server.run,
            kwargs={
                "socket_path": self.socket_path,
                "ready": lambda _address: ready.set(),
            },
            daemon=True,
        )
        self.thread.start()
        assert ready.wait(10), "server never came up"
        self.client = ServeClient(self.socket_path, timeout=60.0)

    def stop(self):
        if self.thread.is_alive():
            self.server.stop()
            self.thread.join(timeout=15)
        assert not self.thread.is_alive()

    def wait_active(self, count, timeout=10.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            metrics = self.client.metrics()["server"]
            if metrics["active_requests"] >= count:
                return metrics
            time.sleep(0.01)
        raise AssertionError(f"never saw {count} active requests")


@pytest.fixture
def harness(tmp_path):
    harnesses = []

    def start(**kwargs):
        h = ServerHarness(tmp_path, **kwargs)
        harnesses.append(h)
        return h

    yield start
    for h in harnesses:
        h.stop()


class TestControlRequests:
    def test_ping_and_metrics(self, harness):
        h = harness()
        assert h.client.ping()["type"] == "pong"
        metrics = h.client.metrics()
        server = metrics["server"]
        for key in (
            "requests", "errors", "dedup_hits", "rows_streamed",
            "evaluations", "active_requests", "queue_depth",
            "latency_p50_s", "latency_p99_s", "uptime_s", "workers",
        ):
            assert key in server
        # The compile-cache registry rides along in the merged snapshot.
        assert isinstance(metrics["metrics"], dict)
        assert "exec.cache.hits" in metrics["metrics"]

    def test_shutdown_stops_the_server(self, harness):
        h = harness()
        reply = h.client.shutdown()
        assert reply["type"] == "shutting-down"
        h.thread.join(timeout=15)
        assert not h.thread.is_alive()


class TestNegativePaths:
    def raw_connection(self, h):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(30)
        sock.connect(h.socket_path)
        return sock, sock.makefile("rwb")

    def roundtrip(self, stream, line: bytes):
        stream.write(line + b"\n")
        stream.flush()
        return json.loads(stream.readline())

    def test_errors_are_structured_and_connection_survives(self, harness):
        h = harness()
        sock, stream = self.raw_connection(h)
        try:
            cases = [
                (b"{malformed", "bad-json"),
                (b'{"type": "frobnicate"}', "unknown-type"),
                (b'{"type": "sweep", "suite": "nope"}', "unknown-suite"),
                (b'{"type": "sweep", "suite": "alexnet", "cap": 0}',
                 "bad-bounds"),
                (b'{"type": "sweep"}', "bad-request"),
                (b'{"type": "sweep", "suite": "alexnet", "jobs": 4}',
                 "unknown-field"),
            ]
            for line, code in cases:
                reply = self.roundtrip(stream, line)
                assert reply["type"] == "error"
                assert reply["code"] == code
                assert reply["message"]
            # The connection is still perfectly usable afterwards.
            assert self.roundtrip(stream, b'{"type": "ping"}')["type"] == "pong"
        finally:
            stream.close()
            sock.close()

    def test_bad_table_is_a_suite_error_terminal(self, harness):
        h = harness()
        with pytest.raises(ServeError) as excinfo:
            h.client.sweep(table=[{"name": "l0", "m": 0, "k": 4, "n": 4}])
        assert excinfo.value.code == "suite-error"
        assert "must be positive" in str(excinfo.value)

    def test_evaluator_crash_is_internal_error_and_server_survives(
        self, harness
    ):
        def exploding(request, emit_row):
            raise RuntimeError("boom")

        h = harness(evaluator=exploding)
        with pytest.raises(ServeError) as excinfo:
            h.client.sweep(suite="alexnet")
        assert excinfo.value.code == "internal-error"
        assert "boom" in str(excinfo.value)
        assert h.client.ping()["type"] == "pong"

    def test_suite_error_from_evaluator_keeps_its_code(self, harness):
        def failing(request, emit_row):
            raise SuiteError("row 3: no good")

        h = harness(evaluator=failing)
        with pytest.raises(ServeError) as excinfo:
            h.client.sweep(suite="alexnet")
        assert excinfo.value.code == "suite-error"


class TestStreaming:
    def test_rows_stream_in_order_before_the_terminal(self, harness):
        def evaluator(request, emit_row):
            for index in range(5):
                emit_row(index, {"name": f"l{index}", "cycles": index})
            return {"aggregates": {"cases": 5}}

        h = harness(evaluator=evaluator)
        messages = list(h.client.request({"type": "sweep", "suite": "alexnet"}))
        kinds = [message["type"] for message in messages]
        assert kinds == ["row"] * 5 + ["result"]
        assert [m["index"] for m in messages[:-1]] == list(range(5))
        assert messages[-1]["aggregates"] == {"cases": 5}

    def test_stream_is_deterministic_across_repeats(self, harness):
        h = harness()
        first = h.client.sweep(table=TABLE)
        second = h.client.sweep(table=TABLE)
        assert json.dumps(first["rows"]) == json.dumps(second["rows"])

    def test_real_sweep_rows_match_the_batch_engine(self, harness):
        h = harness()
        result = h.client.sweep(table=TABLE, cap=8, seed=7)
        suite = build_table_suite(TABLE, cap=8, seed=7)
        expected = evaluate_suite(suite, cache=CompileCache())
        assert json.dumps(result["rows"]) == json.dumps(
            jsonable(expected.rows)
        )
        assert result["aggregates"]["cases"] == len(TABLE)
        assert result["dedup"] is False

    def test_explore_request_streams_design_points(self, harness):
        h = harness()
        result = h.client.explore(spec="matmul", size=2, seed=0)
        assert result["points"] == len(result["rows"]) > 0
        assert result["best_adp"]
        assert set(result["pareto"]) <= {
            row["name"] for row in result["rows"]
        }


class TestTraces:
    def test_traces_interleave_with_rows_in_emission_order(self, harness):
        def evaluator(request, emit_row, emit_trace):
            emit_trace({"event": "rung_start", "rung": 0})
            emit_row(0, {"name": "l0", "cycles": 1})
            emit_trace({"event": "rung_finish", "rung": 0})
            return {"aggregates": {"cases": 1}}

        h = harness(evaluator=evaluator)
        messages = list(h.client.request({"type": "sweep", "suite": "alexnet"}))
        kinds = [message["type"] for message in messages]
        assert kinds == ["trace", "row", "trace", "result"]
        assert messages[0]["event"] == {"event": "rung_start", "rung": 0}
        assert h.client.metrics()["server"]["traces_streamed"] == 2

    def test_on_trace_callback_sees_events_and_result_omits_them(
        self, harness
    ):
        def evaluator(request, emit_row, emit_trace):
            emit_trace({"event": "rung_start", "rung": 0})
            emit_row(0, {"name": "l0", "cycles": 1})
            return {"aggregates": {"cases": 1}}

        h = harness(evaluator=evaluator)
        traces = []
        result = h.client.sweep(suite="alexnet", on_trace=traces.append)
        assert traces == [{"event": "rung_start", "rung": 0}]
        assert [row["name"] for row in result["rows"]] == ["l0"]
        assert "trace" not in result

    def test_legacy_two_argument_evaluator_still_works(self, harness):
        def evaluator(request, emit_row):
            emit_row(0, {"name": "l0", "cycles": 1})
            return {"aggregates": {"cases": 1}}

        h = harness(evaluator=evaluator)
        result = h.client.sweep(suite="alexnet")
        assert [row["name"] for row in result["rows"]] == ["l0"]
        assert h.client.metrics()["server"]["traces_streamed"] == 0

    def test_dedup_replay_preserves_the_trace_row_interleaving(
        self, harness
    ):
        release = threading.Event()

        def evaluator(request, emit_row, emit_trace):
            emit_trace({"event": "rung_start", "rung": 0})
            emit_row(0, {"name": "l0", "cycles": 1})
            assert release.wait(30)
            emit_trace({"event": "rung_finish", "rung": 0})
            return {"aggregates": {"cases": 1}}

        h = harness(evaluator=evaluator)
        streams = [None, None]

        def run(slot):
            client = ServeClient(h.socket_path, timeout=60.0)
            streams[slot] = [
                (m["type"], m.get("event"), m.get("row"))
                for m in client.request({"type": "sweep", "suite": "alexnet"})
                if m["type"] != "result"
            ]

        first = threading.Thread(target=run, args=(0,))
        first.start()
        h.wait_active(1)
        # The joiner arrives after a trace and a row are already out;
        # the buffered prefix must replay in original order.
        second = threading.Thread(target=run, args=(1,))
        second.start()
        h.wait_active(2)
        release.set()
        for thread in (first, second):
            thread.join(timeout=30)

        assert streams[0] == streams[1]
        assert [kind for kind, _e, _r in streams[0]] == [
            "trace", "row", "trace"
        ]

    def test_real_halving_sweep_streams_rung_traces(self, harness):
        h = harness()
        traces = []
        result = h.client.sweep(
            table=TABLE, cap=8, seed=7, halving=True, on_trace=traces.append
        )
        from repro.exec.halving import halving_autotune_suite
        from repro.exec.suite import build_table_suite

        expected = halving_autotune_suite(
            build_table_suite(TABLE, cap=8, seed=7),
            jobs=1, cache=CompileCache(),
        )
        assert json.dumps(result["rows"]) == json.dumps(
            jsonable(expected.rows)
        )
        assert result["mode"] == "halving"
        assert [r["fidelity"] for r in result["rungs"]] == [
            s.fidelity for s in expected.rungs
        ]
        events = [t["event"] for t in traces]
        assert events.count("rung_start") == len(expected.rungs)
        assert events.count("rung_finish") == len(expected.rungs)


class TestDedup:
    def test_concurrent_identical_requests_share_one_evaluation(
        self, harness
    ):
        release = threading.Event()
        calls = []

        def evaluator(request, emit_row):
            calls.append(request["suite"])
            assert release.wait(30)
            for index in range(3):
                emit_row(index, {"name": f"l{index}", "cycles": 10 + index})
            return {"suite": request["suite"], "aggregates": {"cases": 3}}

        h = harness(evaluator=evaluator)
        results = [None, None]

        def run(slot):
            client = ServeClient(h.socket_path, timeout=60.0)
            results[slot] = client.sweep(suite="alexnet")

        threads = [
            threading.Thread(target=run, args=(slot,)) for slot in (0, 1)
        ]
        for thread in threads:
            thread.start()
        # Both requests are provably in flight before the evaluation is
        # allowed to produce anything.
        h.wait_active(2)
        release.set()
        for thread in threads:
            thread.join(timeout=30)

        assert calls == ["alexnet"]  # exactly one evaluation ran
        assert json.dumps(results[0]["rows"]) == json.dumps(
            results[1]["rows"]
        )
        assert sorted(r["dedup"] for r in results) == [False, True]
        server = h.client.metrics()["server"]
        assert server["dedup_hits"] == 1
        assert server["evaluations"] == 1
        assert server["rows_streamed"] == 3

    def test_different_requests_do_not_coalesce(self, harness):
        release = threading.Event()
        calls = []

        def evaluator(request, emit_row):
            calls.append(request["suite"])
            assert release.wait(30)
            return {"suite": request["suite"]}

        h = harness(evaluator=evaluator)
        results = {}

        def run(suite):
            client = ServeClient(h.socket_path, timeout=60.0)
            results[suite] = client.sweep(suite=suite)

        threads = [
            threading.Thread(target=run, args=(suite,))
            for suite in ("alexnet", "resnet50")
        ]
        for thread in threads:
            thread.start()
        h.wait_active(2)
        release.set()
        for thread in threads:
            thread.join(timeout=30)

        assert sorted(calls) == ["alexnet", "resnet50"]
        assert h.client.metrics()["server"]["dedup_hits"] == 0

    def test_sequential_repeats_are_not_dedup(self, harness):
        h = harness()
        first = h.client.sweep(table=TABLE)
        second = h.client.sweep(table=TABLE)
        assert first["dedup"] is False
        assert second["dedup"] is False  # nothing in flight to join


class TestGracefulShutdown:
    def test_in_flight_request_drains_before_exit(self, harness):
        release = threading.Event()

        def evaluator(request, emit_row):
            assert release.wait(30)
            emit_row(0, {"name": "l0", "cycles": 1})
            return {"aggregates": {"cases": 1}}

        h = harness(evaluator=evaluator)
        result = {}

        def run():
            client = ServeClient(h.socket_path, timeout=60.0)
            result["value"] = client.sweep(suite="alexnet")

        worker = threading.Thread(target=run)
        worker.start()
        h.wait_active(1)
        assert h.client.shutdown()["type"] == "shutting-down"
        release.set()
        worker.join(timeout=30)
        h.thread.join(timeout=30)
        assert not h.thread.is_alive()
        # The in-flight client still received its full result.
        assert result["value"]["aggregates"] == {"cases": 1}
        assert [row["name"] for row in result["value"]["rows"]] == ["l0"]

    def test_requests_after_shutdown_are_refused_as_draining(self, harness):
        release = threading.Event()

        def evaluator(request, emit_row):
            assert release.wait(30)
            return {"ok": True}

        h = harness(evaluator=evaluator)
        hold = threading.Thread(
            target=lambda: ServeClient(h.socket_path, timeout=60.0).sweep(
                suite="alexnet"
            )
        )
        hold.start()
        h.wait_active(1)

        # One pipelined connection: shutdown, then another request.
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(30)
        sock.connect(h.socket_path)
        stream = sock.makefile("rwb")
        try:
            stream.write(b'{"type": "shutdown"}\n')
            stream.write(b'{"type": "sweep", "suite": "alexnet"}\n')
            stream.flush()
            assert json.loads(stream.readline())["type"] == "shutting-down"
            refused = json.loads(stream.readline())
            assert refused["type"] == "error"
            assert refused["code"] == "draining"
        finally:
            stream.close()
            sock.close()
            release.set()
            hold.join(timeout=30)


class TestParseAddress:
    def test_classification(self):
        from repro.serve.client import parse_address

        assert parse_address("/tmp/serve.sock") == ("unix", "/tmp/serve.sock")
        assert parse_address("relative.sock") == ("unix", "relative.sock")
        assert parse_address("9999") == ("tcp", ("127.0.0.1", 9999))
        assert parse_address("127.0.0.1:9999") == (
            "tcp", ("127.0.0.1", 9999)
        )
        assert parse_address(":9999") == ("tcp", ("127.0.0.1", 9999))
        # A path with a colon is still a path.
        assert parse_address("/tmp/a:b/serve.sock")[0] == "unix"
        # host:notaport falls back to a unix path.
        assert parse_address("host:abc")[0] == "unix"


class TestTcpTransport:
    def test_sweep_over_tcp(self):
        def evaluator(request, emit_row):
            emit_row(0, {"name": "l0", "cycles": 1})
            return {"aggregates": {"cases": 1}}

        server = EvalServer(
            jobs=1, use_disk_cache=False, evaluator=evaluator,
            drain_timeout=5.0,
        )
        address = {}
        ready = threading.Event()

        def remember(bound):
            address["value"] = bound
            ready.set()

        thread = threading.Thread(
            target=server.run,
            kwargs={"port": 0, "ready": remember},
            daemon=True,
        )
        thread.start()
        assert ready.wait(10)
        client = ServeClient(address["value"], timeout=30.0)
        result = client.sweep(suite="alexnet")
        assert [row["name"] for row in result["rows"]] == ["l0"]
        assert client.metrics()["server"]["requests"] >= 1
        client.shutdown()
        thread.join(timeout=15)
        assert not thread.is_alive()
