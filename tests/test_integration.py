"""End-to-end integration tests across subsystems.

These tests exercise whole paper flows: spec -> compile -> simulate ->
Verilog; ISA-driven data movement feeding a spatial array; and the
property that *any* legal space-time transform preserves functional
behaviour (the deepest claim behind the dataflow axis).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Accelerator, Bounds, compile_design, matmul_spec
from repro.core.dataflow import (
    SpaceTimeTransform,
    output_stationary,
    validate_schedule,
)
from repro.core.expr import SpecError
from repro.core.memspec import csr_buffer, dense_matrix_buffer
from repro.core.sparsity import csr_b_matrix
from repro.formats import CSRMatrix
from repro.isa import Machine, StellarDriver
from repro.rtl.lowering import lower_design
from repro.sim.spatial_array import SpatialArraySim


def _random_unimodular(rng) -> SpaceTimeTransform:
    """A random unimodular 3x3 matrix built from elementary row operations
    on the identity -- always invertible with integer inverse."""
    matrix = np.eye(3, dtype=int)
    for _ in range(rng.integers(1, 6)):
        src, dst = rng.choice(3, size=2, replace=False)
        matrix[dst] += int(rng.integers(-2, 3)) * matrix[src]
    return SpaceTimeTransform(matrix.tolist())


class TestTransformGenerality:
    """Functionality and dataflow are orthogonal: any causally-legal
    transform computes the same results."""

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_property_random_unimodular_transforms(self, seed):
        rng = np.random.default_rng(seed)
        transform = _random_unimodular(rng)
        spec = matmul_spec()
        try:
            validate_schedule(spec, transform)
        except SpecError:
            return  # causality violation: legitimately rejected
        n = 3
        bounds = Bounds({"i": n, "j": n, "k": n})
        A = rng.integers(-5, 6, (n, n))
        B = rng.integers(-5, 6, (n, n))
        design = compile_design(spec, bounds, transform)
        result = SpatialArraySim(design).run({"A": A, "B": B})
        assert np.array_equal(result.outputs["C"], A @ B)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_property_random_transforms_lower_to_clean_rtl(self, seed):
        rng = np.random.default_rng(seed)
        transform = _random_unimodular(rng)
        spec = matmul_spec()
        try:
            validate_schedule(spec, transform)
        except SpecError:
            return
        design = compile_design(spec, Bounds({"i": 3, "j": 3, "k": 3}), transform)
        assert lower_design(design).lint() == []


class TestFullSystemFlow:
    """ISA-driven data movement into buffers, then array execution."""

    DIM = 4

    def test_dram_to_buffer_to_array(self, rng):
        # 1. Place matrices in DRAM and move them in through the ISA.
        A = rng.integers(1, 6, (self.DIM, self.DIM)).astype(float)
        Bd = (
            (rng.random((self.DIM, self.DIM)) < 0.5)
            * rng.integers(1, 6, (self.DIM, self.DIM))
        ).astype(float)
        B = CSRMatrix.from_dense(Bd)

        machine = Machine(
            [
                dense_matrix_buffer("SRAM_A", self.DIM, self.DIM),
                csr_buffer("SRAM_B", rows=self.DIM),
            ]
        )
        machine.dram.place_array(0x1000, A)
        machine.dram.place_array(0x2000, B.data.astype(float))
        machine.dram.place_array(0x3000, B.indices.astype(float))
        machine.dram.place_array(0x4000, B.indptr.astype(float))

        driver = StellarDriver(machine)
        driver.set_src_and_dst("DRAM", "SRAM_A")
        driver.set_data_addr(driver.FOR_SRC, 0x1000)
        for axis in range(2):
            driver.set_span(driver.FOR_BOTH, axis, self.DIM)
            driver.set_axis(driver.FOR_BOTH, axis, driver.DENSE)
        driver.set_stride(driver.FOR_BOTH, 0, 1)
        driver.set_stride(driver.FOR_BOTH, 1, self.DIM)
        move_cycles = driver.stellar_issue()

        driver.set_src_and_dst("DRAM", "SRAM_B")
        driver.set_data_addr(driver.FOR_SRC, 0x2000)
        driver.set_metadata_addr(driver.FOR_SRC, 0, driver.ROW_ID, 0x4000)
        driver.set_metadata_addr(driver.FOR_SRC, 0, driver.COORDS, 0x3000)
        driver.set_span(driver.FOR_BOTH, 0, driver.ENTIRE_AXIS)
        driver.set_span(driver.FOR_BOTH, 1, self.DIM)
        driver.set_stride(driver.FOR_BOTH, 0, 1)
        driver.set_axis(driver.FOR_BOTH, 0, driver.COMPRESSED)
        driver.set_axis(driver.FOR_BOTH, 1, driver.DENSE)
        move_cycles += driver.stellar_issue()

        # 2. Execute the sparse array on the buffered contents.
        a_in = machine.buffer("SRAM_A").to_dense_matrix(self.DIM, self.DIM)
        b_in = machine.buffer("SRAM_B").to_dense_matrix(self.DIM, self.DIM)
        spec = matmul_spec()
        from repro.core.dataflow import input_stationary

        design = compile_design(
            spec,
            Bounds({"i": self.DIM, "j": self.DIM, "k": self.DIM}),
            input_stationary(),
            sparsity=csr_b_matrix(spec),
        )
        result = SpatialArraySim(design).run({"A": a_in, "B": b_in})

        # 3. The end-to-end product matches numpy on the original data.
        assert np.allclose(result.outputs["C"], A @ Bd)
        assert move_cycles > 0
        total_cycles = move_cycles + result.cycles
        assert total_cycles > result.cycles  # data movement is not free

    def test_accelerator_facade_full_loop(self, rng):
        """Accelerator -> build -> simulate + Verilog + area in one flow."""
        accelerator = Accelerator(
            spec=matmul_spec(),
            bounds={"i": 4, "j": 4, "k": 4},
            transform=output_stationary(),
        )
        design = accelerator.build()
        A = rng.integers(-3, 4, (4, 4))
        B = rng.integers(-3, 4, (4, 4))
        result = design.run({"A": A, "B": B})
        assert np.array_equal(result.outputs["C"], A @ B)
        verilog = design.to_verilog()
        assert "matmul_top" in verilog
        assert design.to_netlist().lint() == []
        assert design.area_report().total > 0


class TestCrossSubsystemConsistency:
    def test_simulator_agrees_with_interpreter_on_conv(self, rng):
        from repro.core.functionality import conv1d_spec

        spec = conv1d_spec()
        bounds = Bounds({"ox": 4, "oc": 3, "f": 3})
        I = rng.integers(-4, 5, (4 + 3 - 1,))
        W = rng.integers(-4, 5, (3, 3))
        transform = SpaceTimeTransform([[1, 0, 0], [0, 1, 0], [1, 1, 1]])
        design = compile_design(spec, bounds, transform)
        sim_out = SpatialArraySim(design).run({"I": I, "W": W}).outputs
        ref_out = spec.interpret(bounds, {"I": I, "W": W})
        assert np.array_equal(sim_out["O"], ref_out["O"])

    def test_area_scales_with_array_size(self):
        from repro.core.dataflow import output_stationary
        from repro.area.model import estimate_design_area

        spec = matmul_spec()
        small = compile_design(
            spec, Bounds({"i": 2, "j": 2, "k": 2}), output_stationary()
        )
        large = compile_design(
            spec, Bounds({"i": 8, "j": 8, "k": 8}), output_stationary()
        )
        assert (
            estimate_design_area(large)["Matmul array"]
            > 10 * estimate_design_area(small)["Matmul array"]
        )
