"""Tests for the Listing 7 driver and the ISA executor."""

import numpy as np
import pytest

from repro.core.memspec import csr_buffer, dense_matrix_buffer
from repro.formats import CSRMatrix
from repro.isa import Machine, StellarDriver

DIM = 4


@pytest.fixture
def machine():
    return Machine(
        [dense_matrix_buffer("SRAM_A", DIM, DIM), csr_buffer("SRAM_B", DIM)]
    )


@pytest.fixture
def driver(machine):
    return StellarDriver(machine)


def _dense_move(driver, addr, dim=DIM, dst="SRAM_A"):
    """Listing 7's first snippet."""
    driver.set_src_and_dst("DRAM", dst)
    driver.set_data_addr(driver.FOR_SRC, addr)
    for axis in range(2):
        driver.set_span(driver.FOR_BOTH, axis, dim)
        driver.set_axis(driver.FOR_BOTH, axis, driver.DENSE)
    driver.set_stride(driver.FOR_BOTH, 0, 1)
    driver.set_stride(driver.FOR_BOTH, 1, dim)
    return driver.stellar_issue()


def _csr_move(driver, data_addr, coord_addr, rowid_addr, rows=DIM):
    """Listing 7's second snippet."""
    driver.set_src_and_dst("DRAM", "SRAM_B")
    driver.set_data_addr(driver.FOR_SRC, data_addr)
    driver.set_metadata_addr(driver.FOR_SRC, 0, driver.ROW_ID, rowid_addr)
    driver.set_metadata_addr(driver.FOR_SRC, 0, driver.COORDS, coord_addr)
    driver.set_span(driver.FOR_BOTH, 0, driver.ENTIRE_AXIS)
    driver.set_span(driver.FOR_BOTH, 1, rows)
    driver.set_stride(driver.FOR_BOTH, 0, 1)
    driver.set_metadata_stride(driver.FOR_BOTH, 0, 0, driver.COORDS, 1)
    driver.set_metadata_stride(driver.FOR_BOTH, 1, 0, driver.ROW_ID, 1)
    driver.set_axis(driver.FOR_BOTH, 0, driver.COMPRESSED)
    driver.set_axis(driver.FOR_BOTH, 1, driver.DENSE)
    return driver.stellar_issue()


class TestDenseMoves:
    def test_dense_move_in(self, machine, driver, rng):
        data = rng.integers(1, 9, (DIM, DIM)).astype(float)
        machine.dram.place_array(0x1000, data)
        cycles = _dense_move(driver, 0x1000)
        got = machine.buffer("SRAM_A").to_dense_matrix(DIM, DIM)
        assert np.array_equal(got, data)
        assert cycles > 0

    def test_dense_move_strided(self, machine, driver, rng):
        """A submatrix move: the row stride skips over unused columns."""
        big = rng.integers(1, 9, (DIM, 2 * DIM)).astype(float)
        machine.dram.place_array(0x1000, big)
        driver.set_src_and_dst("DRAM", "SRAM_A")
        driver.set_data_addr(driver.FOR_SRC, 0x1000)
        for axis in range(2):
            driver.set_span(driver.FOR_BOTH, axis, DIM)
            driver.set_axis(driver.FOR_BOTH, axis, driver.DENSE)
        driver.set_stride(driver.FOR_BOTH, 0, 1)
        driver.set_stride(driver.FOR_BOTH, 1, 2 * DIM)
        driver.stellar_issue()
        got = machine.buffer("SRAM_A").to_dense_matrix(DIM, DIM)
        assert np.array_equal(got, big[:, :DIM])

    def test_dense_writeback(self, machine, driver, rng):
        data = rng.integers(1, 9, (DIM, DIM)).astype(float)
        machine.dram.place_array(0x1000, data)
        _dense_move(driver, 0x1000)
        # Move back out to a different DRAM region.
        driver.set_src_and_dst("SRAM_A", "DRAM")
        driver.set_data_addr(driver.FOR_DST, 0x8000)
        for axis in range(2):
            driver.set_span(driver.FOR_BOTH, axis, DIM)
            driver.set_axis(driver.FOR_BOTH, axis, driver.DENSE)
        driver.set_stride(driver.FOR_BOTH, 0, 1)
        driver.set_stride(driver.FOR_BOTH, 1, DIM)
        driver.stellar_issue()
        out = np.array(machine.dram.read_block(0x8000, DIM * DIM)).reshape(DIM, DIM)
        assert np.array_equal(out, data)


class TestCSRMoves:
    def test_csr_move_in(self, machine, driver, rng):
        dense = (rng.random((DIM, DIM)) < 0.5) * rng.integers(1, 9, (DIM, DIM))
        csr = CSRMatrix.from_dense(dense)
        machine.dram.place_array(0x2000, csr.data.astype(float))
        machine.dram.place_array(0x3000, csr.indices.astype(float))
        machine.dram.place_array(0x4000, csr.indptr.astype(float))
        cycles = _csr_move(driver, 0x2000, 0x3000, 0x4000)
        got = machine.buffer("SRAM_B").to_dense_matrix(DIM, DIM)
        assert np.array_equal(got, dense)
        assert cycles > 0

    def test_csr_metadata_stored(self, machine, driver, rng):
        dense = np.eye(DIM) * 3
        csr = CSRMatrix.from_dense(dense)
        machine.dram.place_array(0x2000, csr.data.astype(float))
        machine.dram.place_array(0x3000, csr.indices.astype(float))
        machine.dram.place_array(0x4000, csr.indptr.astype(float))
        _csr_move(driver, 0x2000, 0x3000, 0x4000)
        store = machine.buffer("SRAM_B")
        assert store.metadata[(0, "ROW_ID")] == list(csr.indptr)
        assert store.metadata[(0, "COORD")] == list(csr.indices)

    def test_csr_move_requires_metadata_addrs(self, driver):
        driver.set_src_and_dst("DRAM", "SRAM_B")
        driver.set_data_addr(driver.FOR_SRC, 0x2000)
        driver.set_span(driver.FOR_BOTH, 0, driver.ENTIRE_AXIS)
        driver.set_span(driver.FOR_BOTH, 1, DIM)
        driver.set_axis(driver.FOR_BOTH, 0, driver.COMPRESSED)
        driver.set_axis(driver.FOR_BOTH, 1, driver.DENSE)
        with pytest.raises(RuntimeError):
            driver.stellar_issue()


class TestExecutor:
    def test_issue_before_config_rejected(self, driver):
        with pytest.raises(RuntimeError):
            driver.stellar_issue()

    def test_config_resets_between_issues(self, machine, driver, rng):
        data = rng.integers(1, 9, (DIM, DIM)).astype(float)
        machine.dram.place_array(0x1000, data)
        _dense_move(driver, 0x1000)
        with pytest.raises(RuntimeError):
            driver.stellar_issue()  # src/dst were cleared

    def test_unknown_buffer_rejected(self, driver):
        with pytest.raises(KeyError):
            driver.set_src_and_dst("DRAM", "NOPE")

    def test_instruction_history_records_encoded_stream(self, machine, driver, rng):
        data = rng.integers(1, 9, (DIM, DIM)).astype(float)
        machine.dram.place_array(0x1000, data)
        _dense_move(driver, 0x1000)
        assert len(driver.history) == 9  # 8 config + 1 issue
        assert all(isinstance(t, tuple) and len(t) == 3 for t in driver.history)

    def test_issue_counter(self, machine, driver, rng):
        data = rng.integers(1, 9, (DIM, DIM)).astype(float)
        machine.dram.place_array(0x1000, data)
        _dense_move(driver, 0x1000)
        _dense_move(driver, 0x1000)
        assert driver.executor.issued_transfers == 2

    def test_cycles_accumulate_on_machine(self, machine, driver, rng):
        data = rng.integers(1, 9, (DIM, DIM)).astype(float)
        machine.dram.place_array(0x1000, data)
        _dense_move(driver, 0x1000)
        assert machine.total_cycles > 0

    def test_deeper_dma_is_no_slower(self, rng):
        """The Section VI-C knob is available through the machine too."""
        data = rng.integers(1, 9, (DIM, DIM)).astype(float)
        cycles = []
        for inflight in (1, 16):
            machine = Machine(
                [dense_matrix_buffer("SRAM_A", DIM, DIM)],
                dma_max_inflight=inflight,
            )
            machine.dram.place_array(0x1000, data)
            driver = StellarDriver(machine)
            cycles.append(_dense_move(driver, 0x1000))
        assert cycles[1] <= cycles[0]
