"""Tests for the Table II instruction encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.encoding import (
    ENTIRE_AXIS,
    AxisTypeCode,
    Instruction,
    MetadataType,
    Opcode,
    Target,
    decode,
    encode,
    make,
)


class TestEncodeDecode:
    def test_roundtrip_simple(self):
        inst = make(Opcode.SET_SPAN, Target.FOR_BOTH, axis=1, value=16)
        assert decode(*inst.encode()) == inst

    def test_target_bits_in_rs1(self):
        """Table II: rs1[19:16] selects src, dst, or both."""
        inst = make(Opcode.SET_ADDRESS, Target.FOR_SRC, value=0x1000)
        _, rs1, __ = inst.encode()
        assert (rs1 >> 16) & 0xF == int(Target.FOR_SRC)

    def test_axis_in_rs1_low_bits(self):
        inst = make(Opcode.SET_SPAN, Target.FOR_DST, axis=3, value=4)
        _, rs1, __ = inst.encode()
        assert rs1 & 0xFF == 3

    def test_metadata_type_encoded(self):
        inst = make(
            Opcode.SET_METADATA_ADDRESS,
            Target.FOR_SRC,
            axis=0,
            metadata_type=int(MetadataType.COORD),
            value=0x2000,
        )
        decoded = decode(*inst.encode())
        assert decoded.metadata_type == int(MetadataType.COORD)

    def test_value_in_rs2(self):
        inst = make(Opcode.SET_ADDRESS, value=0xDEADBEEF)
        _, __, rs2 = inst.encode()
        assert rs2 == 0xDEADBEEF

    def test_64bit_value_masked(self):
        inst = make(Opcode.SET_ADDRESS, value=(1 << 65) + 5)
        _, __, rs2 = inst.encode()
        assert rs2 == 5

    def test_axis_out_of_range_rejected(self):
        inst = make(Opcode.SET_SPAN, axis=300)
        with pytest.raises(ValueError):
            inst.encode()

    def test_unknown_opcode_rejected(self):
        with pytest.raises(ValueError):
            decode(99, 0, 0)

    def test_entire_axis_sentinel(self):
        inst = make(Opcode.SET_SPAN, value=ENTIRE_AXIS)
        assert decode(*inst.encode()).value == ENTIRE_AXIS

    @settings(max_examples=60, deadline=None)
    @given(
        opcode=st.sampled_from(list(Opcode)),
        target=st.sampled_from(list(Target)),
        axis=st.integers(0, 255),
        metadata_type=st.integers(0, 3),
        value=st.integers(0, 2**63 - 1),
    )
    def test_property_roundtrip(self, opcode, target, axis, metadata_type, value):
        inst = Instruction(opcode, target, axis, metadata_type, value)
        assert decode(*encode(inst)) == inst


class TestEnums:
    def test_axis_type_codes_cover_fibertree(self):
        names = {c.name for c in AxisTypeCode}
        assert names == {"DENSE", "COMPRESSED", "BITVECTOR", "LINKED_LIST"}

    def test_metadata_types(self):
        assert MetadataType.ROW_ID != MetadataType.COORD

    def test_opcodes_cover_table2(self):
        names = {o.name for o in Opcode}
        for required in (
            "SET_ADDRESS",
            "SET_SPAN",
            "SET_DATA_STRIDE",
            "SET_METADATA_STRIDE",
            "SET_AXIS_TYPE",
            "SET_CONSTANT",
        ):
            assert required in names
