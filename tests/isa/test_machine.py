"""Unit tests for the ISA machine model (DRAM space, buffer stores)."""

import numpy as np
import pytest

from repro.core.memspec import csr_buffer, dense_matrix_buffer
from repro.isa.machine import BufferStore, DRAMSpace, Machine


class TestDRAMSpace:
    def test_place_and_read(self):
        dram = DRAMSpace()
        end = dram.place_array(0x100, np.array([1.0, 2.0, 3.0]))
        assert end == 0x103
        assert dram.read_word(0x101) == 2.0

    def test_unwritten_reads_zero(self):
        assert DRAMSpace().read_word(0xDEAD) == 0

    def test_write_word(self):
        dram = DRAMSpace()
        dram.write_word(5, 7.5)
        assert dram.read_word(5) == 7.5

    def test_read_block(self):
        dram = DRAMSpace()
        dram.place_array(10, np.array([4, 5, 6]))
        assert dram.read_block(10, 3) == [4, 5, 6]

    def test_multidimensional_flattened(self):
        dram = DRAMSpace()
        dram.place_array(0, np.arange(6).reshape(2, 3))
        assert dram.read_block(0, 6) == [0, 1, 2, 3, 4, 5]

    def test_len_counts_words(self):
        dram = DRAMSpace()
        dram.place_array(0, np.ones(4))
        assert len(dram) == 4


class TestBufferStore:
    def test_dense_reassembly(self):
        store = BufferStore(dense_matrix_buffer("A", 2, 2))
        store.data = [1, 2, 3, 4]
        assert np.array_equal(
            store.to_dense_matrix(2, 2), np.array([[1, 2], [3, 4]])
        )

    def test_csr_reassembly(self):
        store = BufferStore(csr_buffer("B", rows=2))
        store.data = [5.0, 7.0]
        store.metadata[(0, "ROW_ID")] = [0, 1, 2]
        store.metadata[(0, "COORD")] = [1, 0]
        dense = store.to_dense_matrix(2, 2)
        assert dense[0, 1] == 5.0
        assert dense[1, 0] == 7.0

    def test_clear(self):
        store = BufferStore(dense_matrix_buffer("A", 2, 2))
        store.data = [1]
        store.metadata[(0, "COORD")] = [0]
        store.clear()
        assert store.data == []
        assert store.metadata == {}

    def test_metadata_for_creates(self):
        store = BufferStore(csr_buffer("B", rows=2))
        stream = store.metadata_for(0, "ROW_ID")
        stream.append(0)
        assert store.metadata[(0, "ROW_ID")] == [0]


class TestMachine:
    def test_buffer_lookup(self):
        machine = Machine([dense_matrix_buffer("A", 2, 2)])
        assert machine.buffer("A").spec.name == "A"

    def test_unknown_buffer_rejected(self):
        machine = Machine([dense_matrix_buffer("A", 2, 2)])
        with pytest.raises(KeyError):
            machine.buffer("Z")

    def test_charge_transfers_accumulates(self):
        from repro.sim.dma import TransferDescriptor

        machine = Machine([dense_matrix_buffer("A", 2, 2)])
        cycles = machine.charge_transfers([TransferDescriptor(64)])
        assert cycles > 0
        assert machine.total_cycles == cycles
