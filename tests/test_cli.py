"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])

    def test_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.spec == "matmul"
        assert args.dataflow == "output-stationary"
        assert args.size == 4

    def test_trace_capacity_must_be_positive(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--capacity", "0"])
        assert "at least 1" in capsys.readouterr().err

    def test_transform_is_an_alias_for_dataflow(self):
        args = build_parser().parse_args(
            ["trace", "--transform", "weight-stationary"]
        )
        assert args.dataflow == "weight-stationary"


class TestCommands:
    def test_simulate_matches_reference(self, capsys):
        assert main(["simulate", "--size", "3"]) == 0
        out = capsys.readouterr().out
        assert "outputs-match-reference=True" in out

    def test_simulate_sparse(self, capsys):
        code = main(
            [
                "simulate",
                "--dataflow",
                "input-stationary",
                "--sparsity",
                "b-csr",
                "--size",
                "4",
            ]
        )
        assert code == 0
        assert "outputs-match-reference=True" in capsys.readouterr().out

    def test_simulate_conv1d(self, capsys):
        assert main(["simulate", "--spec", "conv1d", "--size", "3"]) == 0
        assert "outputs-match-reference=True" in capsys.readouterr().out

    def test_generate_to_stdout(self, capsys):
        assert main(["generate", "--size", "2"]) == 0
        out = capsys.readouterr().out
        assert "module matmul_top (" in out
        assert "endmodule" in out

    def test_generate_to_file(self, tmp_path, capsys):
        path = tmp_path / "design.v"
        assert main(["generate", "--size", "2", "-o", str(path)]) == 0
        assert "lint-clean" in capsys.readouterr().out
        assert "module matmul_pe (" in path.read_text()

    def test_area(self, capsys):
        assert main(["area", "--size", "4"]) == 0
        out = capsys.readouterr().out
        assert "Matmul array" in out
        assert "Total" in out

    def test_area_with_cpu(self, capsys):
        assert main(["area", "--size", "4", "--with-cpu"]) == 0
        assert "Host CPU" in capsys.readouterr().out

    def test_frameworks(self, capsys):
        assert main(["frameworks"]) == 0
        out = capsys.readouterr().out
        assert "Stellar" in out and "TeAAL" in out

    def test_explore(self, capsys):
        assert main(["explore", "--size", "3"]) == 0
        out = capsys.readouterr().out
        assert "pareto" in out
        assert "best area-delay product" in out

    def test_simulate_json(self, capsys):
        assert main(["simulate", "--size", "3", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["outputs_match_reference"] is True
        assert report["pe_count"] == 9
        assert report["counters"]["cycles"] > 0
        assert "custom.macs_skipped" not in report["counters"]  # dense run
        assert isinstance(report["counters"]["pe_utilization"], float)

    def test_area_json(self, capsys):
        assert main(["area", "--size", "4", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["total_um2"] == pytest.approx(
            sum(report["components_um2"].values())
        )
        assert report["pe_count"] == 16

    def test_trace_writes_both_artifacts(self, tmp_path, capsys):
        prefix = tmp_path / "trace"
        code = main(
            [
                "trace",
                "--spec",
                "matmul",
                "--transform",
                "output-stationary",
                "--size",
                "3",
                "-o",
                str(prefix),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trace events" in out
        assert "RTL cycles of waveforms" in out
        document = json.loads((tmp_path / "trace.json").read_text())
        assert document["traceEvents"]
        vcd = (tmp_path / "trace.vcd").read_text()
        assert "$timescale" in vcd and "$var wire" in vcd

    def test_trace_leaves_global_tracer_disabled(self, tmp_path):
        from repro.obs.trace import get_tracer

        assert main(["trace", "--size", "2", "-o", str(tmp_path / "t")]) == 0
        assert get_tracer().enabled is False

    def test_explore_profile(self, capsys):
        assert main(["explore", "--size", "3", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "per-pass timing:" in out
        assert "compile.elaborate" in out
        assert "dse.simulate" in out

    def test_balancing_option(self, capsys):
        code = main(
            [
                "simulate",
                "--dataflow",
                "input-stationary",
                "--sparsity",
                "b-csr",
                "--balancing",
                "row-shift",
                "--size",
                "4",
            ]
        )
        assert code == 0
        assert "outputs-match-reference=True" in capsys.readouterr().out
