"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])

    def test_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.spec == "matmul"
        assert args.dataflow == "output-stationary"
        assert args.size == 4


class TestCommands:
    def test_simulate_matches_reference(self, capsys):
        assert main(["simulate", "--size", "3"]) == 0
        out = capsys.readouterr().out
        assert "outputs-match-reference=True" in out

    def test_simulate_sparse(self, capsys):
        code = main(
            [
                "simulate",
                "--dataflow",
                "input-stationary",
                "--sparsity",
                "b-csr",
                "--size",
                "4",
            ]
        )
        assert code == 0
        assert "outputs-match-reference=True" in capsys.readouterr().out

    def test_simulate_conv1d(self, capsys):
        assert main(["simulate", "--spec", "conv1d", "--size", "3"]) == 0
        assert "outputs-match-reference=True" in capsys.readouterr().out

    def test_generate_to_stdout(self, capsys):
        assert main(["generate", "--size", "2"]) == 0
        out = capsys.readouterr().out
        assert "module matmul_top (" in out
        assert "endmodule" in out

    def test_generate_to_file(self, tmp_path, capsys):
        path = tmp_path / "design.v"
        assert main(["generate", "--size", "2", "-o", str(path)]) == 0
        assert "lint-clean" in capsys.readouterr().out
        assert "module matmul_pe (" in path.read_text()

    def test_area(self, capsys):
        assert main(["area", "--size", "4"]) == 0
        out = capsys.readouterr().out
        assert "Matmul array" in out
        assert "Total" in out

    def test_area_with_cpu(self, capsys):
        assert main(["area", "--size", "4", "--with-cpu"]) == 0
        assert "Host CPU" in capsys.readouterr().out

    def test_frameworks(self, capsys):
        assert main(["frameworks"]) == 0
        out = capsys.readouterr().out
        assert "Stellar" in out and "TeAAL" in out

    def test_explore(self, capsys):
        assert main(["explore", "--size", "3"]) == 0
        out = capsys.readouterr().out
        assert "pareto" in out
        assert "best area-delay product" in out

    def test_balancing_option(self, capsys):
        code = main(
            [
                "simulate",
                "--dataflow",
                "input-stationary",
                "--sparsity",
                "b-csr",
                "--balancing",
                "row-shift",
                "--size",
                "4",
            ]
        )
        assert code == 0
        assert "outputs-match-reference=True" in capsys.readouterr().out
