"""The unified diagnostic model: codes, severities, rendering."""

import json

import pytest

from repro.analysis import (
    AnalysisError,
    Diagnostic,
    Severity,
    errors_only,
    max_severity,
    render_json,
    render_text,
    suppress,
)
from repro.core.expr import SpecError


def _diag(code="STL-SP-004", severity=Severity.ERROR, **kwargs):
    kwargs.setdefault("message", "boom")
    return Diagnostic(code, severity, "spec", **kwargs)


def test_code_format_enforced():
    with pytest.raises(ValueError):
        Diagnostic("SP-004", Severity.ERROR, "spec", "boom")
    with pytest.raises(ValueError):
        Diagnostic("STL-SPEC-4", Severity.ERROR, "spec", "boom")
    Diagnostic("STL-NL-013", Severity.WARNING, "netlist", "fine")


def test_severity_ordering_and_parse():
    assert Severity.ERROR > Severity.WARNING > Severity.INFO
    assert Severity.parse("warning") is Severity.WARNING
    with pytest.raises(ValueError):
        Severity.parse("fatal")


def test_legacy_text_matches_old_lint_format():
    assert _diag(location="matmul_pe").legacy_text() == "matmul_pe: boom"
    assert _diag().legacy_text() == "boom"


def test_render_orders_most_severe_first():
    text = render_text(
        [
            _diag("STL-NL-012", Severity.WARNING, message="narrow"),
            _diag("STL-SP-004", Severity.ERROR, message="acausal"),
        ]
    )
    assert text.index("acausal") < text.index("narrow")
    assert "1 error(s)" in text and "1 warning(s)" in text
    assert render_text([]) == "no diagnostics"


def test_render_json_round_trips():
    payload = json.loads(render_json([_diag(suggestion="fix it")]))
    (entry,) = payload["diagnostics"]
    assert entry["code"] == "STL-SP-004"
    assert entry["severity"] == "error"
    assert entry["suggestion"] == "fix it"
    assert payload["counts"] == {"error": 1}


def test_filters():
    warning = _diag("STL-NL-012", Severity.WARNING)
    error = _diag()
    assert errors_only([warning, error]) == [error]
    assert suppress([warning, error], ["STL-SP-004"]) == [warning]
    assert max_severity([warning, error]) is Severity.ERROR
    assert max_severity([]) is None


def test_analysis_error_satisfies_both_legacy_exception_types():
    error = AnalysisError([_diag()])
    assert isinstance(error, SpecError)
    assert isinstance(error, RuntimeError)
    assert "STL-SP-004" in str(error)
    assert error.diagnostics[0].code == "STL-SP-004"
