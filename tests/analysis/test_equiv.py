"""Level 4 tests: netlist equivalence checking (STL-EQ-*)."""

import re

import pytest

from repro.analysis.equiv import check_equivalence
from repro.core import Accelerator, Bounds, matmul_spec
from repro.core.dataflow import output_stationary
from repro.rtl.lowering import lower_design
from repro.rtl.netlist import Netlist
from repro.rtl.passes import run_passes
from repro.rtl.sim import RTLSimulator


@pytest.fixture(scope="module")
def lowered():
    design = Accelerator(
        spec=matmul_spec(),
        bounds=Bounds({"i": 4, "j": 4, "k": 4}),
        transform=output_stationary(),
    ).build()
    return lower_design(design.compiled)


class TestEquivalenceProof:
    def test_optimized_design_proven_equivalent(self, lowered):
        optimized, results = run_passes(lowered, 2)
        assert sum(r.rewrites for r in results) > 0
        result = check_equivalence(lowered, optimized, design_name="matmul")
        assert result.ok
        assert result.diagnostics == []
        assert result.stats["modules"] > 0
        assert result.stats["cones"] > 0
        assert result.stats["differential_modules"] == result.stats["modules"]

    def test_identity_is_equivalent(self, lowered):
        result = check_equivalence(lowered, lowered.clone())
        assert result.ok
        assert result.stats["proved_structural"] == result.stats["cones"]

    def test_stats_round_trip(self, lowered):
        result = check_equivalence(lowered, lowered.clone())
        as_dict = result.to_dict()
        assert as_dict["ok"] is True
        assert as_dict["stats"]["modules"] == result.stats["modules"]


class TestInterfaceCheck:
    def test_port_width_mismatch_flagged(self, lowered):
        broken = lowered.clone()
        module = next(iter(broken.modules.values()))
        port = module.ports[-1]
        port.width += 1
        result = check_equivalence(lowered, broken)
        assert not result.ok
        assert any(d.code == "STL-EQ-002" for d in result.diagnostics)

    def test_missing_module_flagged(self, lowered):
        broken = lowered.clone()
        victim = next(n for n in broken.modules if n != broken.top_name)
        del broken.modules[victim]
        result = check_equivalence(lowered, broken)
        codes = {d.code for d in result.diagnostics}
        assert "STL-EQ-002" in codes

    def test_top_rename_flagged(self, lowered):
        broken = lowered.clone()
        broken.top_name = "somewhere_else"
        broken.modules["somewhere_else"] = broken.modules.pop(lowered.top_name)
        result = check_equivalence(lowered, broken)
        assert not result.ok


class TestMutationCatching:
    """Acceptance criterion: an intentionally broken pass is caught with an
    STL-EQ-* diagnostic naming the first divergent signal and cycle."""

    def _mutate_first_guard(self, netlist: Netlist) -> str:
        """A 'broken pass': drop the guard from a guarded sync statement."""
        for module in netlist.modules.values():
            for block in module.sync_blocks:
                for i, stmt in enumerate(block.statements):
                    match = re.match(r"if \((.+?)\) (.+)", stmt)
                    if match and "else" not in stmt:
                        block.statements[i] = match.group(2)
                        return module.name
        raise AssertionError("no guarded statement to mutate")

    def test_dropped_guard_caught_with_signal_and_cycle(self, lowered):
        broken = lowered.clone()
        mutated_module = self._mutate_first_guard(broken)
        result = check_equivalence(lowered, broken, design_name="matmul")
        assert not result.ok
        divergences = [
            d for d in result.diagnostics if d.code == "STL-EQ-003"
        ]
        assert divergences, [d.code for d in result.diagnostics]
        diag = divergences[0]
        # The message names the first divergent cycle and signal.
        match = re.search(
            r"divergence at cycle (\d+) on signal '([^']+)'", diag.message
        )
        assert match, diag.message
        assert int(match.group(1)) >= 1
        assert diag.location.startswith("matmul.")
        assert diag.severity.name == "ERROR"
        # The mutated module itself is localized by its own differential.
        assert any(
            f".{mutated_module}" in d.location or mutated_module in d.message
            for d in divergences
        )

    def test_combinational_mutation_refuted_symbolically(self, lowered):
        broken = lowered.clone()
        for module in broken.modules.values():
            for assign in module.assigns:
                if "+" in assign.rhs or "&" in assign.rhs:
                    assign.rhs = f"~({assign.rhs})"
                    mutated = True
                    break
            else:
                continue
            break
        else:
            pytest.skip("no combinational assign to mutate")
        result = check_equivalence(lowered, broken)
        assert not result.ok
        codes = {d.code for d in result.diagnostics}
        assert codes & {"STL-EQ-001", "STL-EQ-003"}


class TestByteIdenticalSimulation:
    """Acceptance criterion: optimized (opt_level=2) and unoptimized
    netlists produce byte-identical RTLSimulator outputs across >= 3
    random-stimulus seeds."""

    def test_lockstep_identical_across_seeds(self, lowered):
        import random

        optimized, _ = run_passes(lowered, 2)
        shared = sorted(
            set(lowered.modules) & set(optimized.modules)
        )
        assert shared
        for seed in (1, 7, 1234):
            for name in shared:
                before = RTLSimulator(lowered, top=name)
                after = RTLSimulator(optimized, top=name)
                inputs = [
                    p.name
                    for p in lowered.modules[name].ports
                    if p.direction.value == "input"
                    and p.name not in ("clk", "rst")
                ]
                rng = random.Random(seed)
                schedule = [
                    {
                        p: rng.getrandbits(
                            lowered.modules[name].port(p).width
                        )
                        for p in inputs
                    }
                    for _ in range(12)
                ]
                for sim in (before, after):
                    if "rst" in sim.top.values:
                        sim.poke("rst", 1)
                        sim.step()
                        sim.poke("rst", 0)
                outs = [
                    p.name
                    for p in lowered.modules[name].ports
                    if p.direction.value == "output"
                ]
                for pokes in schedule:
                    for sim in (before, after):
                        for port_name, value in pokes.items():
                            sim.poke(port_name, value)
                        sim.step()
                    got_before = bytes(
                        str([before.peek(o) for o in outs]), "ascii"
                    )
                    got_after = bytes(
                        str([after.peek(o) for o in outs]), "ascii"
                    )
                    assert got_before == got_after, (name, seed, pokes)
