"""Level 2 golden tests: netlist dataflow lint (STL-NL-*)."""

from repro.analysis import Severity, check_netlist
from repro.analysis.netlist import (
    check_module,
    infer_width,
    lhs_identifiers,
    sequential_assignments,
    WidthEnv,
)
from repro.core import Accelerator, Bounds
from repro.core.dataflow import output_stationary
import pytest

from repro.rtl.lowering import lower_design
from repro.rtl.netlist import (
    Assign,
    Module,
    Net,
    Netlist,
    Port,
    PortDir,
    SyncBlock,
)


def _module(name="m"):
    module = Module(name)
    module.ports.append(Port("clk", PortDir.INPUT, 1))
    return module


def _netlist(module):
    netlist = Netlist(module.name)
    netlist.add(module)
    return netlist


# --- Satellite: chained/else-arm LHS extraction -------------------------


def test_else_arm_assignments_both_extracted():
    stmt = "if (en) a <= x; else b <= y;"
    assert list(sequential_assignments(stmt)) == [("a", "x"), ("b", "y")]
    assert lhs_identifiers(stmt) == ["a", "b"]


def test_chained_sequential_statements_extracted():
    stmt = "a <= x; b <= y; if (go) c <= z;"
    assert [lhs for lhs, _ in sequential_assignments(stmt)] == ["a", "b", "c"]


def test_else_arm_target_counts_as_driven():
    module = _module()
    module.ports.append(Port("en", PortDir.INPUT, 1))
    module.ports.append(Port("a", PortDir.OUTPUT, 8))
    module.ports.append(Port("b", PortDir.OUTPUT, 8))
    module.nets.append(Net("a_r", 8, is_reg=True))
    module.nets.append(Net("b_r", 8, is_reg=True))
    module.assigns.append(Assign("a", "a_r"))
    module.assigns.append(Assign("b", "b_r"))
    module.sync_blocks.append(
        SyncBlock(["if (en) a_r <= 8'd1; else b_r <= 8'd2;"])
    )
    findings = check_module(module, _netlist(module))
    # The old lint missed b_r and would flag nothing here either, but it
    # also failed to attribute the else-arm drive; the analyzer must not
    # report b_r as undriven or either reg as a non-reg drive.
    assert findings == []


# --- Width inference -----------------------------------------------------


def test_width_inference_core_forms():
    module = _module()
    module.nets.append(Net("w8", 8))
    module.nets.append(Net("w16", 16))
    module.nets.append(Net("mem", 32, is_reg=True, depth=4))
    env = WidthEnv(module)
    assert infer_width("8'd3", env) == 8
    assert infer_width("w8 + 8'd1", env) == 8
    assert infer_width("w16[7:0]", env) == 8
    assert infer_width("w16[3]", env) == 1
    assert infer_width("{w8, w8}", env) == 16
    assert infer_width("{4{w8}}", env) == 32
    assert infer_width("w8 == 8'd7", env) == 1
    assert infer_width("mem[w8]", env) == 32


def test_width_mismatch_exact_diagnostic():
    module = _module()
    module.ports.append(Port("out", PortDir.OUTPUT, 8))
    module.nets.append(Net("wide", 16))
    module.assigns.append(Assign("wide", "16'd3"))
    module.assigns.append(Assign("out", "wide"))
    findings = check_module(module, _netlist(module))
    assert [d.code for d in findings] == ["STL-NL-012"]
    diag = findings[0]
    assert diag.severity is Severity.WARNING
    assert diag.location == "m"
    assert diag.message == (
        "width mismatch in assign out: target 'out' is 8 bits but"
        " expression is 16 bits"
    )


def test_combinational_loop_detected():
    module = _module()
    module.nets.append(Net("l1", 4))
    module.nets.append(Net("l2", 4))
    module.assigns.append(Assign("l1", "l2"))
    module.assigns.append(Assign("l2", "l1"))
    findings = check_module(module, _netlist(module))
    codes = [d.code for d in findings]
    assert "STL-NL-013" in codes
    loop = next(d for d in findings if d.code == "STL-NL-013")
    assert loop.severity is Severity.ERROR
    assert "l1" in loop.message and "l2" in loop.message


def test_multiple_sync_drivers_detected():
    module = _module()
    module.nets.append(Net("r", 8, is_reg=True))
    module.sync_blocks.append(SyncBlock(["r <= 8'd1;"]))
    module.sync_blocks.append(SyncBlock(["r <= 8'd2;"]))
    findings = check_module(module, _netlist(module))
    assert "STL-NL-014" in [d.code for d in findings]


def test_dead_net_detected():
    module = _module()
    module.nets.append(Net("unused", 4))
    findings = check_module(module, _netlist(module))
    assert [d.code for d in findings] == ["STL-NL-015"]
    assert findings[0].severity is Severity.WARNING


def test_reset_coverage_warns_only_with_reset_arm():
    module = _module()
    module.nets.append(Net("r1", 8, is_reg=True))
    module.nets.append(Net("r2", 8, is_reg=True))
    module.sync_blocks.append(
        SyncBlock(["r1 <= 8'd1; r2 <= 8'd2;"], reset_statements=["r1 <= 8'd0;"])
    )
    findings = check_module(module, _netlist(module))
    assert [d.code for d in findings] == ["STL-NL-016"]
    assert "r2" in findings[0].message
    # No reset arm at all: nothing to be inconsistent with.
    module.sync_blocks[0] = SyncBlock(["r1 <= 8'd1; r2 <= 8'd2;"])
    assert check_module(module, _netlist(module)) == []


# --- Legacy facade (deprecated) ------------------------------------------


def test_legacy_lint_returns_old_strings_and_warns():
    from repro.rtl.lint import lint_module

    module = _module()
    module.nets.append(Net("w", 8))
    module.assigns.append(Assign("w", "ghost"))
    with pytest.warns(DeprecationWarning):
        problems = lint_module(module, _netlist(module))
    assert problems == ["m: undeclared identifier 'ghost' in assign w"]


def test_legacy_lint_hides_warnings():
    from repro.rtl.lint import lint_module, lint_netlist

    module = _module()
    module.nets.append(Net("unused", 4))
    with pytest.warns(DeprecationWarning):
        assert lint_module(module, _netlist(module)) == []
    with pytest.warns(DeprecationWarning):
        assert lint_netlist(_netlist(module)) == []


def test_generated_design_is_clean_and_gate_passes(spec):
    design = Accelerator(
        spec=spec, bounds=Bounds({"i": 4, "j": 4, "k": 4}),
        transform=output_stationary(),
    ).build()
    netlist = lower_design(design.compiled)  # check=True by default
    assert check_netlist(netlist) == []


def test_missing_top_keeps_exact_legacy_string():
    from repro.rtl.lint import lint_netlist

    netlist = Netlist("nothing")
    findings = check_netlist(netlist)
    assert [d.code for d in findings] == ["STL-NL-011"]
    assert findings[0].legacy_text() == "top module 'nothing' is missing"
    with pytest.warns(DeprecationWarning):
        assert lint_netlist(netlist) == ["top module 'nothing' is missing"]
