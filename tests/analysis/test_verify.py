"""`repro verify`: the equivalence gate and its CLI exit-code contract."""

import json
import os

import pytest

from repro.analysis import SCHEMA_VERSION, run_verify
from repro.cli import main

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "examples",
)
QUICKSTART = os.path.join(EXAMPLES_DIR, "quickstart.py")


def test_run_verify_proves_quickstart():
    report = run_verify([QUICKSTART], opt_level=2)
    (target,) = report.targets
    assert target.ok
    assert not target.error
    assert target.result.ok
    assert sum(target.rewrites.values()) > 0
    assert report.total_rewrites() > 0
    assert report.diagnostics == []


def test_run_verify_opt_level_zero_trivially_clean():
    report = run_verify([QUICKSTART], opt_level=0)
    (target,) = report.targets
    assert target.ok
    assert sum(target.rewrites.values()) == 0


def test_run_verify_build_failure_becomes_diagnostic(tmp_path):
    path = tmp_path / "crashy.py"
    path.write_text("def build():\n    raise ValueError('nope')\n")
    report = run_verify([str(path)], opt_level=2)
    (target,) = report.targets
    assert not target.ok
    assert [d.code for d in target.diagnostics] == ["STL-CK-001"]
    assert "nope" in target.diagnostics[0].message


def test_report_serialization():
    report = run_verify([QUICKSTART], opt_level=1, cycles=8, seed=3)
    payload = report.to_dict()
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["opt_level"] == 1
    assert payload["cycles"] == 8
    assert payload["seed"] == 3
    (target,) = payload["targets"]
    assert target["ok"] is True
    assert payload["summary"]["total_rewrites"] == report.total_rewrites()
    text = report.text()
    assert "quickstart" in text
    assert "equivalent at opt_level 1" in text


# --- CLI exit-code contract: 0 clean / 1 diagnostics / 2 usage error -----


def test_cli_verify_clean_exits_zero(capsys):
    assert main(["verify", "--no-disk-cache", QUICKSTART]) == 0
    out = capsys.readouterr().out
    assert "quickstart" in out
    assert "verified" in out


def test_cli_verify_json_contract(capsys):
    assert main(
        ["verify", "--no-disk-cache", "--json", "--opt-level", "2", QUICKSTART]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["opt_level"] == 2
    assert payload["summary"]["total_rewrites"] > 0
    assert all(t["ok"] for t in payload["targets"])


def test_cli_verify_broken_build_exits_one(tmp_path, capsys):
    path = tmp_path / "crashy.py"
    path.write_text("def build():\n    raise ValueError('nope')\n")
    assert main(["verify", "--no-disk-cache", str(path)]) == 1
    assert "STL-CK-001" in capsys.readouterr().out


def test_cli_verify_usage_error_exits_two(capsys):
    assert main(["verify", "/no/such/path"]) == 2
    assert "no such file" in capsys.readouterr().err
    with pytest.raises(SystemExit) as excinfo:
        main(["verify", "--opt-level", "9", QUICKSTART])
    assert excinfo.value.code == 2


# --- Satellite: `repro check --json` carries the schema version ----------


def test_check_json_has_schema_version(capsys):
    assert main(["check", "--json", QUICKSTART]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema_version"] == SCHEMA_VERSION
    assert isinstance(SCHEMA_VERSION, int) and SCHEMA_VERSION >= 2
