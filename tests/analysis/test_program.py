"""Level 3 golden tests: ISA program verification (STL-PR-*)."""

import pytest

from repro.analysis import AnalysisError, Severity, check_program
from repro.analysis.program import machine_unit_names
from repro.core.memspec import csr_buffer, dense_matrix_buffer
from repro.isa import Machine, StellarDriver
from repro.isa.encoding import ENTIRE_AXIS, Opcode, Target, make

UNITS = {0: "DRAM", 1: "SRAM_A", 2: "SRAM_B"}


def _dense_load(unit=1, base=0x1000, rows=4, cols=4, write=False):
    src, dst = (unit, 0) if write else (0, unit)
    target = Target.FOR_DST if write else Target.FOR_SRC
    out = [
        make(Opcode.SET_SRC_AND_DST, value=(src << 8) | dst).encode(),
        make(Opcode.SET_ADDRESS, target, value=base).encode(),
    ]
    for axis, span in ((0, cols), (1, rows)):
        out.append(make(Opcode.SET_SPAN, axis=axis, value=span).encode())
        out.append(make(Opcode.SET_AXIS_TYPE, axis=axis, value=0).encode())
        out.append(make(Opcode.SET_DATA_STRIDE, axis=axis, value=1).encode())
    out.append(make(Opcode.ISSUE).encode())
    return out


def test_clean_dense_program():
    assert check_program(_dense_load(), UNITS) == []


def test_undecodable_opcode():
    findings = check_program([(99, 0, 0)], UNITS)
    assert [d.code for d in findings] == ["STL-PR-001"]
    assert findings[0].location == "instruction 0"


def test_out_of_range_immediate_exact_diagnostic():
    stream = [make(Opcode.SET_AXIS_TYPE, Target.FOR_BOTH, 0, 0, 9).encode()]
    findings = check_program(stream, UNITS)
    codes = [d.code for d in findings]
    assert "STL-PR-002" in codes
    diag = next(d for d in findings if d.code == "STL-PR-002")
    assert diag.severity is Severity.ERROR
    assert diag.message == (
        "set_axis_type immediate 9 is out of range"
        " (valid: 0=DENSE, 1=COMPRESSED, 2=BITVECTOR, 3=LINKED_LIST)"
    )


def test_issue_before_config():
    findings = check_program([make(Opcode.ISSUE).encode()], UNITS)
    assert [d.code for d in findings] == ["STL-PR-003"]


def test_unknown_unit_id():
    stream = [make(Opcode.SET_SRC_AND_DST, value=(0 << 8) | 7).encode()]
    findings = check_program(stream, UNITS)
    assert [d.code for d in findings[:1]] == ["STL-PR-004"]
    # Without a unit map the check is skipped.
    assert not any(
        d.code == "STL-PR-004" for d in check_program(stream, None)
    )


def test_compressed_transfer_missing_metadata():
    stream = [
        make(Opcode.SET_SRC_AND_DST, value=(0 << 8) | 2).encode(),
        make(Opcode.SET_ADDRESS, Target.FOR_SRC, value=0x1000).encode(),
        make(Opcode.SET_SPAN, axis=0, value=ENTIRE_AXIS).encode(),
        make(Opcode.SET_SPAN, axis=1, value=4).encode(),
        make(Opcode.SET_AXIS_TYPE, axis=0, value=1).encode(),
        make(Opcode.SET_AXIS_TYPE, axis=1, value=0).encode(),
        make(Opcode.ISSUE).encode(),
    ]
    findings = check_program(stream, UNITS)
    assert [d.code for d in findings] == ["STL-PR-005"]
    assert "metadata addresses" in findings[0].message


def test_dangling_config_warns():
    stream = [make(Opcode.SET_SPAN, axis=0, value=4).encode()]
    findings = check_program(stream, UNITS)
    assert [d.code for d in findings] == ["STL-PR-006"]
    assert findings[0].severity is Severity.WARNING


def test_overlapping_windows_write_only():
    read_read = _dense_load(unit=1) + _dense_load(unit=2)
    assert check_program(read_read, UNITS) == []
    read_write = _dense_load(unit=1) + _dense_load(unit=2, write=True)
    findings = check_program(read_write, UNITS)
    assert [d.code for d in findings] == ["STL-PR-007"]
    disjoint = _dense_load(unit=1) + _dense_load(unit=2, base=0x8000, write=True)
    assert check_program(disjoint, UNITS) == []


def test_buffer_to_buffer_rejected():
    stream = _dense_load()
    stream[0] = make(Opcode.SET_SRC_AND_DST, value=(1 << 8) | 2).encode()
    findings = check_program(stream, UNITS)
    assert "STL-PR-010" in [d.code for d in findings]


def test_machine_unit_names_matches_executor():
    machine = Machine(
        [dense_matrix_buffer("SRAM_A", 4, 4), csr_buffer("SRAM_B", 4)]
    )
    names = machine_unit_names(machine)
    driver = StellarDriver(machine)
    assert {name: uid for uid, name in names.items()} == dict(
        driver.executor.unit_ids
    )


def test_driver_gate_raises_analysis_error():
    machine = Machine([dense_matrix_buffer("SRAM_A", 4, 4)])
    driver = StellarDriver(machine)
    with pytest.raises(AnalysisError):
        driver.stellar_issue()  # no configuration at all


def test_driver_gate_opt_out_reaches_executor():
    machine = Machine([dense_matrix_buffer("SRAM_A", 4, 4)])
    driver = StellarDriver(machine, check=False)
    with pytest.raises(RuntimeError) as excinfo:
        driver.stellar_issue()
    assert not isinstance(excinfo.value, AnalysisError)
