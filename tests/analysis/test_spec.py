"""Level 1 golden tests: spec-legality diagnostics (STL-SP-*)."""

import pytest

from repro.analysis import AnalysisError, Severity, check_spec
from repro.core import Accelerator, Bounds, compile_design
from repro.core.balancing import LoadBalancingScheme, Range, Shift
from repro.core.dataflow import (
    SpaceTimeTransform,
    hexagonal,
    output_stationary,
)


@pytest.fixture
def bounds():
    return Bounds({"i": 4, "j": 4, "k": 4})


def _acausal():
    # Negated time row: every dependence runs backwards in time.
    return SpaceTimeTransform([[1, 0, 0], [0, 1, 0], [-1, -1, -1]])


def test_clean_design_has_no_diagnostics(spec, bounds):
    assert check_spec(spec, bounds, output_stationary()) == []


def test_acausal_transform_exact_diagnostic(spec, bounds):
    findings = check_spec(spec, bounds, _acausal())
    assert [d.code for d in findings] == ["STL-SP-004"] * 3
    by_name = {d.message.split("'")[1]: d for d in findings}
    diag = by_name["a"]
    assert diag.severity is Severity.ERROR
    assert diag.layer == "spec"
    assert diag.location == "matmul"
    assert diag.message == (
        "transform violates causality for 'a': time delta -1 < 0"
        " along difference vector (0, 1, 0)"
    )


def test_rank_mismatch_reported_before_anything_else(spec):
    findings = check_spec(
        spec, Bounds({"i": 4, "j": 4, "k": 4}), SpaceTimeTransform([[1, 0], [0, 1]])
    )
    assert [d.code for d in findings] == ["STL-SP-001"]


def test_missing_bounds_detected(spec):
    findings = check_spec(spec, Bounds({"i": 4, "j": 4}), output_stationary())
    assert [d.code for d in findings] == ["STL-SP-002"]
    assert "'k'" in findings[0].message or "k" in findings[0].message


def test_negative_coordinates_warn_not_error(spec, bounds):
    findings = check_spec(spec, bounds, hexagonal())
    assert [d.code for d in findings] == ["STL-SP-007"]
    assert findings[0].severity is Severity.WARNING


def test_unknown_balancing_iterator_detected(spec, bounds):
    scheme = LoadBalancingScheme(
        [Shift({"nope": Range(0, 1)}, {"j": Range(2, 3)})]
    )
    findings = check_spec(spec, bounds, output_stationary(), balancing=scheme)
    assert "STL-SP-010" in [d.code for d in findings]


def test_compile_gate_raises_analysis_error(spec, bounds):
    with pytest.raises(AnalysisError) as excinfo:
        compile_design(spec, bounds, _acausal())
    assert any(d.code == "STL-SP-004" for d in excinfo.value.diagnostics)


def test_compile_gate_opt_out(spec, bounds):
    # With check=False only the legacy validate_schedule runs (which also
    # rejects this transform but with the plain SpecError).
    from repro.core.expr import SpecError

    with pytest.raises(SpecError):
        compile_design(spec, bounds, _acausal(), check=False)


def test_accelerator_build_forwards_check(spec, bounds):
    acc = Accelerator(spec=spec, bounds=bounds, transform=_acausal())
    with pytest.raises(AnalysisError):
        acc.build()
