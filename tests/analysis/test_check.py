"""The check ladder, example discovery, and the CLI exit-code contract."""

import json
import os

import pytest

from repro.analysis import check_design, discover_examples, run_check
from repro.cli import main

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "examples",
)

BROKEN_EXAMPLE = """\
from repro import Accelerator, matmul_spec
from repro.core.dataflow import SpaceTimeTransform


def build():
    return Accelerator(
        spec=matmul_spec(),
        bounds={"i": 4, "j": 4, "k": 4},
        transform=SpaceTimeTransform([[1, 0, 0], [0, 1, 0], [-1, -1, -1]]),
    )
"""


def test_every_example_has_build_and_is_clean():
    targets = discover_examples([EXAMPLES_DIR])
    assert len(targets) >= 5
    assert all(not t.error for t in targets), [t.error for t in targets]
    report = run_check([EXAMPLES_DIR])
    for design in report.designs:
        assert design.diagnostics == [], (
            design.name,
            [d.render() for d in design.diagnostics],
        )
        assert design.levels == ["spec", "netlist", "program"]


def test_check_design_accepts_accelerator_and_generated_design(spec):
    from repro.core import Accelerator, Bounds
    from repro.core.dataflow import output_stationary

    acc = Accelerator(
        spec=spec, bounds=Bounds({"i": 4, "j": 4, "k": 4}),
        transform=output_stationary(),
    )
    assert check_design(acc).clean
    assert check_design(acc.build()).clean


def test_spec_errors_skip_later_levels(tmp_path):
    path = tmp_path / "broken_example.py"
    path.write_text(BROKEN_EXAMPLE)
    report = run_check([str(path)])
    (design,) = report.designs
    assert design.levels == ["spec"]
    assert {d.code for d in design.diagnostics} == {"STL-SP-004"}


def test_build_exception_becomes_diagnostic(tmp_path):
    path = tmp_path / "crashy.py"
    path.write_text("def build():\n    raise ValueError('nope')\n")
    report = run_check([str(path)])
    (design,) = report.designs
    assert [d.code for d in design.diagnostics] == ["STL-CK-001"]
    assert "nope" in design.diagnostics[0].message


def test_suppression_drops_codes(tmp_path):
    path = tmp_path / "broken_example.py"
    path.write_text(BROKEN_EXAMPLE)
    report = run_check([str(path)], suppress=["STL-SP-004"])
    assert report.diagnostics == []


BROKEN_NETLIST_EXAMPLE = """\
from repro.rtl.netlist import Assign, Module, Net, Netlist, Port, PortDir


def build():
    module = Module("busted")
    module.ports.append(Port("out", PortDir.OUTPUT, 8))
    module.nets.append(Net("wide", 16))
    module.assigns.append(Assign("wide", "16'd3"))
    module.assigns.append(Assign("out", "wide"))
    module.nets.append(Net("l1", 4))
    module.nets.append(Net("l2", 4))
    module.assigns.append(Assign("l1", "l2"))
    module.assigns.append(Assign("l2", "l1"))
    netlist = Netlist("busted")
    netlist.add(module)
    return netlist
"""

BROKEN_PROGRAM_EXAMPLE = """\
from repro.isa.encoding import Opcode, Target, make


def build():
    return [make(Opcode.SET_AXIS_TYPE, Target.FOR_BOTH, 0, 0, 9).encode(),
            make(Opcode.ISSUE).encode()]
"""


def test_single_layer_escape_hatches(tmp_path):
    netlist_path = tmp_path / "busted_netlist.py"
    netlist_path.write_text(BROKEN_NETLIST_EXAMPLE)
    report = run_check([str(netlist_path)])
    (design,) = report.designs
    assert design.levels == ["netlist"]
    assert {d.code for d in design.diagnostics} == {"STL-NL-012", "STL-NL-013"}

    program_path = tmp_path / "busted_program.py"
    program_path.write_text(BROKEN_PROGRAM_EXAMPLE)
    report = run_check([str(program_path)])
    (design,) = report.designs
    assert design.levels == ["program"]
    assert {d.code for d in design.diagnostics} == {"STL-PR-002", "STL-PR-003"}


# --- CLI exit-code contract: 0 clean / 1 diagnostics / 2 usage error -----


@pytest.mark.parametrize(
    "source",
    [BROKEN_EXAMPLE, BROKEN_NETLIST_EXAMPLE, BROKEN_PROGRAM_EXAMPLE],
    ids=["spec", "netlist", "program"],
)
def test_cli_exits_nonzero_on_each_broken_layer(tmp_path, capsys, source):
    path = tmp_path / "seeded.py"
    path.write_text(source)
    assert main(["check", str(path)]) == 1
    assert "FAIL" in capsys.readouterr().out


def test_cli_clean_examples_exit_zero(capsys):
    assert main(["check", os.path.join(EXAMPLES_DIR, "quickstart.py")]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_cli_diagnostics_exit_one(tmp_path, capsys):
    path = tmp_path / "broken_example.py"
    path.write_text(BROKEN_EXAMPLE)
    assert main(["check", str(path)]) == 1
    assert "STL-SP-004" in capsys.readouterr().out


def test_cli_fail_on_warning_tightens_gate(tmp_path, capsys):
    path = tmp_path / "warny.py"
    path.write_text(
        "from repro import Accelerator, matmul_spec\n"
        "from repro.core.dataflow import hexagonal\n\n\n"
        "def build():\n"
        "    return Accelerator(spec=matmul_spec(),\n"
        "                       bounds={'i': 4, 'j': 4, 'k': 4},\n"
        "                       transform=hexagonal())\n"
    )
    assert main(["check", str(path)]) == 0
    assert main(["check", "--fail-on", "warning", str(path)]) == 1
    assert "STL-SP-007" in capsys.readouterr().out


def test_cli_usage_error_exit_two(capsys):
    assert main(["check", "/no/such/path"]) == 2
    assert "no such file" in capsys.readouterr().err
    with pytest.raises(SystemExit) as excinfo:
        main(["check", "--fail-on", "bogus"])
    assert excinfo.value.code == 2


def test_cli_json_output(tmp_path, capsys):
    path = tmp_path / "broken_example.py"
    path.write_text(BROKEN_EXAMPLE)
    assert main(["check", "--json", str(path)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["errors"] == 3
    codes = {
        d["code"]
        for design in payload["designs"]
        for d in design["diagnostics"]
    }
    assert codes == {"STL-SP-004"}
