"""Cache-aware ``repro check``: memoized legality analysis shared with
the compiler's gate, including across processes via the disk store."""

import pytest

import repro.analysis.spec as spec_module
from repro.analysis import check_design
from repro.core import Accelerator, Bounds, matmul_spec
from repro.core.dataflow import output_stationary
from repro.exec.cache import CompileCache
from repro.exec.store import DiskStore


@pytest.fixture
def accelerator():
    return Accelerator(
        spec=matmul_spec(),
        bounds=Bounds({"i": 4, "j": 4, "k": 4}),
        transform=output_stationary(),
    )


@pytest.fixture
def transform_check_calls(monkeypatch):
    """Count invocations of the expensive domain-enumeration half."""
    calls = []
    original = spec_module.check_spec_transform

    def counting(*args, **kwargs):
        calls.append(1)
        return original(*args, **kwargs)

    monkeypatch.setattr(spec_module, "check_spec_transform", counting)
    return calls


def test_repeat_checks_share_one_enumeration(accelerator, transform_check_calls):
    cache = CompileCache()
    assert check_design(accelerator, cache=cache).clean
    assert check_design(accelerator, cache=cache).clean
    assert len(transform_check_calls) == 1
    hits, misses = cache.stats.by_stage["analysis.spec"]
    assert (hits, misses) == (1, 1)


def test_check_reuses_compile_gate_entries(accelerator, transform_check_calls):
    """The compiler's legality gate and ``repro check`` share the
    ``analysis.spec`` stage key, so either warms the other."""
    cache = CompileCache()
    cache.compile(
        accelerator.spec, accelerator.bounds, accelerator.transform
    )
    enumerations_after_compile = len(transform_check_calls)
    assert check_design(accelerator, cache=cache).clean
    assert len(transform_check_calls) == enumerations_after_compile


def test_persistent_cache_skips_enumeration_across_handles(
    accelerator, transform_check_calls, tmp_path
):
    root = str(tmp_path / "store")
    assert check_design(accelerator, cache=CompileCache(store=DiskStore(root))).clean
    cold_enumerations = len(transform_check_calls)
    assert cold_enumerations >= 1

    warm_cache = CompileCache(store=DiskStore(root))
    assert check_design(accelerator, cache=warm_cache).clean
    assert len(transform_check_calls) == cold_enumerations
    assert warm_cache.stats.disk_hits >= 1


def test_uncached_check_still_works(accelerator, transform_check_calls):
    assert check_design(accelerator).clean
    assert check_design(accelerator).clean
    assert len(transform_check_calls) == 2
