"""Tests for the calibrated area model (Table III, Sections IV-F/VI-D)."""

import pytest

from repro.area.model import (
    comparator_area,
    dma_area,
    estimate_design_area,
    flattened_merger_area,
    hierarchical_merger_area,
    loop_unroller_area,
    mac_area,
    membuf_area,
    pe_area,
    regfile_area,
    register_area,
    row_partitioned_merger_area,
    sram_area,
)
from repro.core import compile_design
from repro.core.dataflow import input_stationary, output_stationary
from repro.core.memspec import csr_buffer, dense_matrix_buffer
from repro.core.passes.regfile_opt import RegfileKind, RegfilePlan


class TestPrimitives:
    def test_mac_scales_superlinearly(self):
        assert mac_area(16) > 2 * mac_area(8)

    def test_int8_mac_calibration(self):
        assert mac_area(8) == pytest.approx(896, rel=0.05)

    def test_register_linear(self):
        assert register_area(64) == 2 * register_area(32)

    def test_sram_multiport_premium(self):
        assert sram_area(1024, ports=2) > sram_area(1024, ports=1)

    def test_comparator(self):
        assert comparator_area(64) == 2 * comparator_area(32)


class TestComponents:
    def test_time_counter_costs_area(self):
        """Table III's matmul-array delta: the Figure 11 time counter and
        global signals make a Stellar PE bigger."""
        plain = pe_area(8)
        stellar = pe_area(8, has_time_counter=True, has_global_signals=True)
        assert stellar > plain
        assert stellar / plain < 1.5  # but not absurdly so

    def test_io_ports_cost_area(self):
        assert pe_area(8, io_ports=3) > pe_area(8, io_ports=0)

    def test_regfile_kind_ordering(self):
        """Figure 14: the ladder's kinds are ordered by cost."""
        plans = [
            RegfilePlan("x", kind, 64, 1, 1)
            for kind in (
                RegfileKind.FEEDFORWARD,
                RegfileKind.TRANSPOSING,
                RegfileKind.EDGE,
                RegfileKind.CROSSBAR,
            )
        ]
        areas = [regfile_area(p) for p in plans]
        assert areas == sorted(areas)
        assert areas[-1] > 2 * areas[0]

    def test_sparse_membuf_costs_more(self):
        dense = membuf_area(dense_matrix_buffer("A", 16, 16))
        sparse = membuf_area(csr_buffer("B", rows=16))
        assert sparse > dense

    def test_dma_inflight_scaling(self):
        assert dma_area(16) > dma_area(1)

    def test_unroller_distribution_tradeoff(self):
        """Table III: distributed generators cost more area overall."""
        assert loop_unroller_area(7, centralized=False) > loop_unroller_area(
            7, centralized=True
        )


class TestDesignEstimates:
    def test_breakdown_structure(self, spec, bounds4):
        design = compile_design(spec, bounds4, output_stationary())
        report = estimate_design_area(design)
        assert report.total > 0
        for key in ("Matmul array", "Regfiles", "Loop unrollers", "Dma"):
            assert key in report.components

    def test_percentages_sum_to_100(self, spec, bounds4):
        design = compile_design(spec, bounds4, output_stationary())
        report = estimate_design_area(design)
        assert sum(report.percent(k) for k in report.components) == pytest.approx(100)

    def test_host_cpu_optional(self, spec, bounds4):
        design = compile_design(spec, bounds4, output_stationary())
        without = estimate_design_area(design)
        with_cpu = estimate_design_area(design, include_host_cpu=True)
        assert "Host CPU" in with_cpu.components
        assert with_cpu.total > without.total

    def test_balancer_adds_area(self, spec, bounds4):
        from repro.core.balancing import row_shift_scheme

        plain = compile_design(spec, bounds4, input_stationary())
        balanced = compile_design(
            spec, bounds4, input_stationary(), balancing=row_shift_scheme(2)
        )
        assert (
            "Load balancer" in estimate_design_area(balanced).components
        )
        assert "Load balancer" not in estimate_design_area(plain).components

    def test_membufs_counted(self, spec, bounds4):
        design = compile_design(
            spec, bounds4, output_stationary(),
            membufs={"A": dense_matrix_buffer("A", 4, 4)},
        )
        report = estimate_design_area(design)
        assert report["SRAMs"] > 0

    def test_table_renders(self, spec, bounds4):
        design = compile_design(spec, bounds4, output_stationary())
        text = estimate_design_area(design).table()
        assert "Total" in text and "%" in text


class TestMergerAreas:
    def test_section_6d_ratio(self):
        """SpArch's flattened mergers vs GAMMA-like row-partitioned ones:
        'GAMMA-like mergers, when synthesized with Stellar, consume 13x
        less area' (Section VI-D)."""
        flattened = flattened_merger_area(throughput=16)
        row = row_partitioned_merger_area(throughput=32)
        ratio = flattened / row
        assert 10 <= ratio <= 16

    def test_section_4f_hierarchical_ratio(self):
        """Section IV-F: SpArch's hierarchical mergers consumed ~13x the
        area of OuterSPACE's simpler non-hierarchical mergers."""
        hierarchical = hierarchical_merger_area(leaf_count=64)
        simple = row_partitioned_merger_area(throughput=32)
        ratio = hierarchical / simple
        assert 9 <= ratio <= 18

    def test_flattened_comparator_count(self):
        """SpArch uses 128 64-bit comparators for throughput 16."""
        comparators = (16 * 16) // 2
        assert comparators == 128

    def test_merger_areas_scale_with_throughput(self):
        assert flattened_merger_area(32) > flattened_merger_area(16)
        assert row_partitioned_merger_area(64) > row_partitioned_merger_area(32)
