"""Tests for the energy and timing models (Figure 17, Section VI-B, Fig 3)."""

import pytest

from repro.area.energy import energy_overhead_ratio, layer_energy
from repro.area.timing import (
    centralized_unroller_path_ns,
    design_max_frequency_mhz,
    distributed_unroller_path_ns,
    max_frequency_mhz,
    pe_critical_path_ns,
    schedule_cycles,
)
from repro.core import Bounds, matmul_spec
from repro.core.dataflow import SpaceTimeTransform, output_stationary


class TestEnergyModel:
    def _reports(self, utilization):
        macs = 100_000
        pe_cycles = int(macs / utilization)
        handwritten = layer_energy(
            macs, sram_bytes=5_000, regfile_bytes=macs // 16,
            pe_cycles=pe_cycles, stellar_generated=False,
        )
        stellar = layer_energy(
            macs, sram_bytes=5_000, regfile_bytes=macs // 16,
            pe_cycles=pe_cycles, stellar_generated=True,
        )
        return handwritten, stellar

    def test_stellar_always_costs_more(self):
        handwritten, stellar = self._reports(0.9)
        assert stellar.pj_per_mac > handwritten.pj_per_mac

    def test_overhead_grows_with_idleness(self):
        """Figure 17's mechanism: idle PE-cycles kept clocked by the
        global signals make low-utilization layers pay more."""
        _, busy = self._reports(0.95)
        _, idle = self._reports(0.45)
        hw_busy, _ = self._reports(0.95)
        hw_idle, _ = self._reports(0.45)
        busy_overhead = energy_overhead_ratio(busy, hw_busy)
        idle_overhead = energy_overhead_ratio(idle, hw_idle)
        assert idle_overhead > busy_overhead

    def test_components_decomposed(self):
        _, stellar = self._reports(0.7)
        assert "idle_clocking" in stellar.components_pj
        assert "time_counters" in stellar.components_pj
        assert "mac" in stellar.components_pj

    def test_zero_macs(self):
        report = layer_energy(0, 0, 0, 0, stellar_generated=True)
        assert report.pj_per_mac == 0.0

    def test_overhead_ratio_identity(self):
        handwritten, _ = self._reports(0.8)
        assert energy_overhead_ratio(handwritten, handwritten) == pytest.approx(1.0)


class TestTimingModel:
    def test_centralized_path_longer(self):
        """Section VI-B: the centralized unroller's chained address
        arithmetic is the frequency bottleneck."""
        central = centralized_unroller_path_ns(loop_levels=7, fanout=12)
        distributed = distributed_unroller_path_ns(levels_per_buffer=2)
        assert central > distributed

    def test_centralized_grows_with_levels(self):
        assert centralized_unroller_path_ns(9, 12) > centralized_unroller_path_ns(5, 12)

    def test_frequency_inverse(self):
        assert max_frequency_mhz(2.0) == pytest.approx(500.0)

    def test_invalid_path_rejected(self):
        with pytest.raises(ValueError):
            max_frequency_mhz(0)

    def test_broadcast_chain_limits_frequency(self):
        """Figure 3: an unpipelined (broadcast) design's critical path
        spans the array."""
        spec = matmul_spec()
        pipelined = output_stationary()
        broadcast = SpaceTimeTransform([[1, 0, 0], [0, 1, 0], [1, 0, 1]])
        addr_ns = distributed_unroller_path_ns()
        f_pipe = design_max_frequency_mhz(spec, pipelined, 16, addr_ns)
        f_bcast = design_max_frequency_mhz(spec, broadcast, 16, addr_ns)
        assert f_bcast < f_pipe / 4

    def test_schedule_cycles_grow_with_time_row(self):
        """Figure 3's other axis: deeper pipelining lengthens the
        schedule."""
        spec = matmul_spec()
        bounds = Bounds({"i": 4, "j": 4, "k": 4})
        base = schedule_cycles(spec, output_stationary(), bounds)
        deep = schedule_cycles(
            spec, output_stationary().with_time_row([2, 2, 2]), bounds
        )
        assert deep > base

    def test_pe_path_grows_with_span(self):
        assert pe_critical_path_ns(4) > pe_critical_path_ns(1)
