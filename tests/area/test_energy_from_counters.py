"""Tests for the simulator-to-energy bridge (energy_from_counters)."""


from repro.area.energy import energy_from_counters
from repro.core import Bounds, compile_design, matmul_spec
from repro.core.dataflow import output_stationary
from repro.sim.counters import PerfCounters
from repro.sim.spatial_array import SpatialArraySim


class TestEnergyFromCounters:
    def _simulate(self, rng, n=4):
        spec = matmul_spec()
        design = compile_design(
            spec, Bounds({"i": n, "j": n, "k": n}), output_stationary()
        )
        A = rng.integers(-3, 4, (n, n))
        B = rng.integers(-3, 4, (n, n))
        return SpatialArraySim(design).run({"A": A, "B": B})

    def test_from_real_simulation(self, rng):
        result = self._simulate(rng)
        report = energy_from_counters(result.counters)
        assert report.total_pj > 0
        assert report.macs == result.counters.macs
        assert "idle_clocking" in report.components_pj

    def test_handwritten_variant_cheaper(self, rng):
        result = self._simulate(rng)
        stellar = energy_from_counters(result.counters, stellar_generated=True)
        handwritten = energy_from_counters(
            result.counters, stellar_generated=False
        )
        assert stellar.total_pj > handwritten.total_pj

    def test_scales_with_traffic(self):
        lean = PerfCounters()
        lean.macs = 1000
        lean.pe_busy_cycles = 1000
        heavy = PerfCounters()
        heavy.macs = 1000
        heavy.pe_busy_cycles = 1000
        heavy.regfile_reads = 5000
        heavy.membuf_reads = 5000
        assert (
            energy_from_counters(heavy).total_pj
            > energy_from_counters(lean).total_pj
        )

    def test_idle_cycles_cost_energy(self):
        busy = PerfCounters()
        busy.macs = busy.pe_busy_cycles = 1000
        idle = PerfCounters()
        idle.macs = idle.pe_busy_cycles = 1000
        idle.pe_idle_cycles = 4000
        assert (
            energy_from_counters(idle).pj_per_mac
            > energy_from_counters(busy).pj_per_mac
        )

    def test_bigger_workload_costs_more(self, rng):
        small = energy_from_counters(self._simulate(rng, n=3).counters)
        large = energy_from_counters(self._simulate(rng, n=6).counters)
        assert large.total_pj > small.total_pj
