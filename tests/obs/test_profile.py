"""Unit tests for the wall-clock profiler."""

from repro.core import Accelerator, Bounds, matmul_spec, output_stationary
from repro.obs.profile import Profiler, get_profiler, profiling, set_profiler


def ticking_clock(step=1.0):
    """A fake perf_counter advancing by ``step`` per read."""
    state = {"now": 0.0}

    def clock():
        state["now"] += step
        return state["now"]

    return clock


class TestScope:
    def test_accumulates_per_label(self):
        profiler = Profiler(enabled=True, clock=ticking_clock(0.5))
        for _ in range(3):
            with profiler.scope("compile.prune"):
                pass
        (record,) = profiler.records()
        assert record.label == "compile.prune"
        assert record.calls == 3
        assert record.total_s == 1.5
        assert record.mean_s == 0.5
        assert record.min_s == record.max_s == 0.5

    def test_disabled_scope_is_noop(self):
        clock_reads = []

        def clock():
            clock_reads.append(1)
            return 0.0

        profiler = Profiler(enabled=False, clock=clock)
        with profiler.scope("anything"):
            pass
        assert len(profiler) == 0
        assert clock_reads == []  # never even read the clock

    def test_records_sorted_most_expensive_first(self):
        profiler = Profiler(enabled=True)
        profiler.record("cheap", 0.001)
        profiler.record("dear", 0.5)
        assert [r.label for r in profiler.records()] == ["dear", "cheap"]

    def test_exception_still_recorded(self):
        profiler = Profiler(enabled=True, clock=ticking_clock())
        try:
            with profiler.scope("boom"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert profiler.records()[0].calls == 1


class TestTable:
    def test_empty(self):
        assert Profiler().table() == "(no profile samples recorded)"

    def test_columns_and_totals(self):
        profiler = Profiler(enabled=True)
        profiler.record("compile.elaborate", 0.002)
        profiler.record("compile.elaborate", 0.004)
        profiler.record("dse.simulate", 0.010)
        table = profiler.table()
        header, *rows = table.splitlines()
        assert header.split() == [
            "pass", "calls", "total", "(ms)", "mean", "(us)", "max", "(us)",
            "share",
        ]
        assert rows[0].startswith("dse.simulate")  # most expensive first
        assert rows[-1].split()[0] == "total"
        assert rows[-1].split()[1] == "3"

    def test_reset(self):
        profiler = Profiler(enabled=True)
        profiler.record("x", 1.0)
        profiler.reset()
        assert len(profiler) == 0


class TestGlobalInstall:
    def test_disabled_by_default(self):
        assert get_profiler().enabled is False

    def test_set_profiler_returns_previous(self):
        original = get_profiler()
        mine = Profiler(enabled=True)
        previous = set_profiler(mine)
        try:
            assert previous is original
            assert get_profiler() is mine
        finally:
            set_profiler(original)

    def test_profiling_context_captures_compiler_passes(self):
        accelerator = Accelerator(
            spec=matmul_spec(),
            bounds=Bounds({"i": 2, "j": 2, "k": 2}),
            transform=output_stationary(),
        )
        with profiling() as profiler:
            accelerator.build()
        labels = {r.label for r in profiler.records()}
        assert "compile.elaborate" in labels
        assert "compile.map_spacetime" in labels
        assert get_profiler() is not profiler
