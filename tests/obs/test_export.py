"""Tests for the Chrome trace_event and VCD exporters.

The VCD tests use a minimal in-test parser so the golden-file check
exercises the actual file format (header, timescale, ``$var``
declarations, value-change records) rather than writer internals.
"""

import io
import json

import pytest

from repro.core import Accelerator, Bounds, matmul_spec, output_stationary
from repro.obs.export import (
    PID_CYCLES,
    PID_WALL,
    VCDWriter,
    _vcd_identifier,
    chrome_trace,
    dump_rtl_vcd,
    write_chrome_trace,
)
from repro.obs.trace import Tracer


def parse_vcd(text):
    """Minimal VCD reader: header fields, declared vars, value changes.

    Returns ``(timescale, vars, changes)`` where ``vars`` maps the dotted
    signal path to ``(width, identifier_code)`` and ``changes`` maps each
    timestamp (the ``$dumpvars`` block is timestamp 0) to a
    ``code -> value`` dict.
    """
    lines = text.splitlines()
    timescale = None
    variables = {}
    scopes = []
    header_end = None
    for index, line in enumerate(lines):
        tokens = line.split()
        if not tokens:
            continue
        if tokens[0] == "$timescale":
            timescale = tokens[1]
        elif tokens[0] == "$scope":
            assert tokens[1] == "module"
            scopes.append(tokens[2])
        elif tokens[0] == "$upscope":
            scopes.pop()
        elif tokens[0] == "$var":
            assert tokens[1] == "wire"
            width, code, name = int(tokens[2]), tokens[3], tokens[4]
            variables[".".join(scopes + [name])] = (width, code)
        elif tokens[0] == "$enddefinitions":
            header_end = index
            break
    assert header_end is not None, "missing $enddefinitions"
    assert not scopes, "unbalanced $scope/$upscope"

    changes = {}
    current = None
    for line in lines[header_end + 1:]:
        line = line.strip()
        if not line or line == "$end":
            continue
        if line == "$dumpvars":
            current = changes.setdefault(0, {})
        elif line.startswith("#"):
            current = changes.setdefault(int(line[1:]), {})
        elif line.startswith("b"):
            value, code = line[1:].split()
            current[code] = int(value, 2)
        else:
            current[line[1:]] = int(line[0])
    return timescale, variables, changes


class TestVCDIdentifiers:
    def test_first_codes(self):
        assert _vcd_identifier(0) == "!"
        assert _vcd_identifier(1) == '"'

    def test_unique_and_printable(self):
        codes = [_vcd_identifier(i) for i in range(300)]
        assert len(set(codes)) == 300
        assert all(33 <= ord(c) <= 126 for code in codes for c in code)


class TestVCDWriter:
    def test_round_trip_through_parser(self):
        buffer = io.StringIO()
        writer = VCDWriter(buffer)
        writer.add_signal("top.clk", 1)
        writer.add_signal("top.core.bus", 4)
        writer.sample(0, {"top.clk": 0, "top.core.bus": 9})
        writer.sample(1, {"top.clk": 1, "top.core.bus": 9})
        writer.sample(2, {"top.clk": 1, "top.core.bus": 9})  # no change

        timescale, variables, changes = parse_vcd(buffer.getvalue())
        assert timescale == "1ns"
        assert variables["top.clk"][0] == 1
        assert variables["top.core.bus"][0] == 4
        clk, bus = variables["top.clk"][1], variables["top.core.bus"][1]
        assert changes[0] == {clk: 0, bus: 9}
        assert changes[1] == {clk: 1}  # only the changed signal
        assert 2 not in changes

    def test_values_masked_to_width(self):
        buffer = io.StringIO()
        writer = VCDWriter(buffer)
        writer.add_signal("n", 4)
        writer.sample(0, {"n": 0})
        writer.sample(1, {"n": 0x1F})  # 5 bits into a 4-bit wire
        _, variables, changes = parse_vcd(buffer.getvalue())
        assert changes[1][variables["n"][1]] == 0xF

    def test_declarations_frozen_after_first_sample(self):
        writer = VCDWriter(io.StringIO())
        writer.add_signal("a", 1)
        writer.sample(0, {"a": 0})
        with pytest.raises(ValueError):
            writer.add_signal("b", 1)

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            VCDWriter(io.StringIO()).add_signal("a", 0)


class TestDumpRTLVCD:
    @pytest.fixture(scope="class")
    def design(self):
        return Accelerator(
            spec=matmul_spec(),
            bounds=Bounds({"i": 2, "j": 2, "k": 2}),
            transform=output_stationary(),
        ).build()

    def test_golden_dump_reparses(self, design, tmp_path):
        sim = design.rtl_simulator()
        declared = sim.signal_values()
        path = tmp_path / "dump.vcd"
        cycles = dump_rtl_vcd(sim, str(path), cycles=8)
        assert cycles == 8

        timescale, variables, changes = parse_vcd(path.read_text())
        assert timescale == "1ns"
        # Every simulator signal is declared, with the netlist width.
        assert set(variables) == set(declared)
        for name, (width, _code) in variables.items():
            assert width == declared[name][1], name
        # The $dumpvars block initialises every declared signal.
        known_codes = {code for _width, code in variables.values()}
        assert set(changes[0]) == known_codes
        # Later records only reference declared identifier codes.
        for time_, values in changes.items():
            assert time_ <= 8
            assert set(values) <= known_codes
        # The design is alive: something toggles after reset.
        assert any(time_ > 0 for time_ in changes)

    def test_signal_filter(self, design, tmp_path):
        sim = design.rtl_simulator()
        chosen = sorted(sim.signal_values())[:3]
        path = tmp_path / "filtered.vcd"
        dump_rtl_vcd(sim, str(path), cycles=2, signals=chosen)
        _, variables, _ = parse_vcd(path.read_text())
        assert set(variables) == set(chosen)

    def test_unknown_signal_rejected(self, design, tmp_path):
        sim = design.rtl_simulator()
        with pytest.raises(ValueError, match="no_such"):
            dump_rtl_vcd(
                sim, str(tmp_path / "x.vcd"), cycles=1, signals=["no_such.sig"]
            )


class TestChromeTrace:
    def _tracer(self):
        tracer = Tracer(enabled=True)
        tracer.begin("run", component="sim.array", cycle=0)
        tracer.instant("timestep", component="sim.array", cycle=3, live=4)
        tracer.end("run", component="sim.array", cycle=9)
        tracer.complete("xfer", component="sim.dma", start_cycle=2, duration=5)
        with tracer.span("compile", component="compiler"):
            pass
        return tracer

    def test_document_shape(self):
        document = chrome_trace(self._tracer())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names == {"simulated cycles", "wall clock"}

    def test_domains_map_to_processes(self):
        events = chrome_trace(self._tracer())["traceEvents"]
        by_name = {e["name"]: e for e in events if e["ph"] != "M"}
        assert by_name["timestep"]["pid"] == PID_CYCLES
        assert by_name["compile"]["pid"] == PID_WALL

    def test_event_kinds(self):
        events = chrome_trace(self._tracer())["traceEvents"]
        phases = [e["ph"] for e in events if e["ph"] != "M"]
        assert phases == ["B", "i", "E", "X", "X"]
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["s"] == "t"
        assert instant["args"] == {"live": 4}
        xfer = next(e for e in events if e["name"] == "xfer")
        assert (xfer["ts"], xfer["dur"]) == (2.0, 5.0)

    def test_threads_keyed_by_component(self):
        events = chrome_trace(self._tracer())["traceEvents"]
        array = next(e for e in events if e["name"] == "run")
        dma = next(e for e in events if e["name"] == "xfer")
        assert array["tid"] != dma["tid"]

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(self._tracer(), str(path))
        document = json.loads(path.read_text())
        assert len(document["traceEvents"]) == count
        assert count == 5 + 2 + 3  # events + process meta + thread meta
