"""Unit tests for the metrics registry."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_name,
)


class TestCounter:
    def test_inc(self):
        c = Counter("reqs")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_inc_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("reqs").inc(-1)

    def test_direct_assignment(self):
        c = Counter("cycles")
        c.value = 42
        assert c.snapshot() == 42

    def test_reset(self):
        c = Counter("reqs")
        c.inc(3)
        c.reset()
        assert c.value == 0


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("occupancy")
        g.set(10)
        g.add(-3)
        assert g.value == 7


class TestHistogram:
    def test_bucketing(self):
        h = Histogram("lat", boundaries=[1, 10, 100])
        for v in (0, 1, 5, 50, 1000):
            h.observe(v)
        snap = h.snapshot()
        assert snap["buckets"]["le=1"] == 2  # 0 and 1
        assert snap["buckets"]["le=10"] == 1  # 5
        assert snap["buckets"]["le=100"] == 1  # 50
        assert snap["buckets"]["le=+Inf"] == 1  # 1000
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(1056)

    def test_mean(self):
        h = Histogram("lat", boundaries=[10])
        h.observe(4)
        h.observe(6)
        assert h.mean == pytest.approx(5.0)

    def test_boundaries_must_ascend(self):
        with pytest.raises(ValueError):
            Histogram("lat", boundaries=[10, 5])

    def test_boundaries_required(self):
        with pytest.raises(ValueError):
            Histogram("lat", boundaries=[])


class TestRenderName:
    def test_plain(self):
        assert render_name("sim.cycles", {}) == "sim.cycles"

    def test_labels_sorted(self):
        assert (
            render_name("hits", {"way": 2, "bank": 0}) == "hits{bank=0,way=2}"
        )


class TestRegistry:
    def test_get_or_create_returns_same_handle(self):
        registry = MetricsRegistry()
        a = registry.counter("sim.macs")
        b = registry.counter("sim.macs")
        assert a is b
        a.inc()
        assert b.value == 1

    def test_labels_distinguish_series(self):
        registry = MetricsRegistry()
        r0 = registry.counter("reads", bank=0)
        r1 = registry.counter("reads", bank=1)
        assert r0 is not r1
        r0.inc(2)
        assert registry.get("reads", bank=0).value == 2
        assert registry.get("reads", bank=1).value == 0

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_as_dict_sorted_and_json_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.gauge("a").set(1.5)
        registry.histogram("c", boundaries=[1]).observe(0)
        snapshot = registry.as_dict()
        assert list(snapshot) == ["a", "b", "c"]
        assert json.loads(registry.to_json()) == snapshot

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("n").inc(9)
        registry.reset()
        assert registry.get("n").value == 0

    def test_len_and_names(self):
        registry = MetricsRegistry()
        registry.counter("one")
        registry.counter("two", k="v")
        assert len(registry) == 2
        assert registry.names() == ["one", "two{k=v}"]


class TestHistogramQuantile:
    def test_empty_histogram_is_zero(self):
        hist = Histogram("h", boundaries=[1, 2, 4])
        assert hist.quantile(0.5) == 0.0

    def test_out_of_range_rejected(self):
        hist = Histogram("h", boundaries=[1])
        with pytest.raises(ValueError):
            hist.quantile(-0.1)
        with pytest.raises(ValueError):
            hist.quantile(1.1)

    def test_interpolates_within_bucket(self):
        hist = Histogram("h", boundaries=[10, 20, 30])
        for value in (5, 15, 25, 28):
            hist.observe(value)
        # rank 2 of 4 lands at the top of the (10, 20] bucket.
        assert hist.quantile(0.5) == pytest.approx(20.0)
        assert 0.0 < hist.quantile(0.25) <= 10.0
        assert 20.0 < hist.quantile(0.9) <= 30.0

    def test_overflow_clamps_to_last_boundary(self):
        hist = Histogram("h", boundaries=[1, 2])
        hist.observe(100)
        assert hist.quantile(0.99) == 2.0

    def test_monotone_in_q(self):
        hist = Histogram("h", boundaries=[0.001, 0.01, 0.1, 1.0, 10.0])
        for value in (0.005, 0.005, 0.02, 0.3, 0.3, 0.3, 2.0, 15.0):
            hist.observe(value)
        quantiles = [hist.quantile(q / 10) for q in range(11)]
        assert quantiles == sorted(quantiles)


class TestSnapshot:
    def test_snapshot_decouples_from_live_metrics(self):
        registry = MetricsRegistry()
        counter = registry.counter("serve.requests")
        counter.inc(3)
        view = registry.snapshot()
        counter.inc(5)
        assert view["serve.requests"] == 3
        assert registry.snapshot()["serve.requests"] == 8

    def test_prefix_filters_by_metric_name(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests").inc()
        registry.counter("exec.cache.hits").inc()
        registry.gauge("serve.queue_depth", pool="a").set(2)
        view = registry.snapshot(prefix="serve.")
        assert sorted(view) == [
            "serve.queue_depth{pool=a}", "serve.requests"
        ]

    def test_snapshot_includes_histogram_structure(self):
        registry = MetricsRegistry()
        registry.histogram("lat", boundaries=[1, 2]).observe(1.5)
        view = registry.snapshot()
        assert view["lat"]["count"] == 1
        assert view["lat"]["buckets"]["le=2"] == 1
