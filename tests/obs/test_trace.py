"""Unit tests for the structured event tracer.

Includes the overhead guarantees the subsystem is designed around: the
disabled path adds zero events, and the enabled ring buffer caps memory
by dropping the oldest events beyond capacity.
"""

import numpy as np
import pytest

from repro.core import Accelerator, Bounds, matmul_spec, output_stationary
from repro.obs.trace import Tracer, get_tracer, set_tracer, tracing


class TestDisabledPath:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(capacity=16, enabled=False)
        tracer.instant("a", cycle=1)
        tracer.begin("b")
        tracer.end("b")
        tracer.complete("c", start_cycle=0, duration=5)
        with tracer.span("d"):
            pass
        assert len(tracer) == 0
        assert tracer.events() == []
        assert tracer.dropped == 0

    def test_global_tracer_disabled_by_default(self):
        assert get_tracer().enabled is False

    def test_instrumented_run_adds_zero_events_when_disabled(self):
        baseline = len(get_tracer())
        acc = Accelerator(
            spec=matmul_spec(),
            bounds=Bounds({"i": 3, "j": 3, "k": 3}),
            transform=output_stationary(),
        )
        design = acc.build()
        design.run({"A": np.eye(3, dtype=int), "B": np.eye(3, dtype=int)})
        assert len(get_tracer()) == baseline == 0


class TestRingBuffer:
    def test_capacity_caps_memory_and_drops_oldest(self):
        tracer = Tracer(capacity=10, enabled=True)
        for i in range(25):
            tracer.instant(f"e{i}", cycle=i)
        events = tracer.events()
        assert len(events) == 10
        assert tracer.dropped == 15
        # The newest events survive; the oldest were dropped.
        assert [e.name for e in events] == [f"e{i}" for i in range(15, 25)]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_clear(self):
        tracer = Tracer(capacity=2, enabled=True)
        for i in range(5):
            tracer.instant(f"e{i}")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0


class TestEventShapes:
    def test_cycle_domain_instant(self):
        tracer = Tracer(enabled=True)
        tracer.instant("tick", component="sim", cycle=7, live=3)
        (event,) = tracer.events()
        assert event.kind == "I"
        assert event.domain == "cycle"
        assert event.cycle == 7
        assert event.payload == {"live": 3}

    def test_wall_domain_instant(self):
        tracer = Tracer(enabled=True)
        tracer.instant("note")
        (event,) = tracer.events()
        assert event.domain == "wall"
        assert event.cycle is None

    def test_begin_end_pair(self):
        tracer = Tracer(enabled=True)
        tracer.begin("run", cycle=0)
        tracer.end("run", cycle=9)
        begin, end = tracer.events()
        assert (begin.kind, end.kind) == ("B", "E")
        assert end.ts == 9.0

    def test_complete_carries_duration(self):
        tracer = Tracer(enabled=True)
        tracer.complete("xfer", start_cycle=4, duration=11, bytes=64)
        (event,) = tracer.events()
        assert event.kind == "X"
        assert (event.ts, event.dur) == (4.0, 11.0)

    def test_span_measures_wall_time(self):
        times = iter([1.0, 3.5])
        tracer = Tracer(enabled=True, clock=lambda: next(times))
        with tracer.span("work", component="compiler"):
            pass
        (event,) = tracer.events()
        assert event.kind == "X"
        assert event.domain == "wall"
        assert event.dur == pytest.approx(2.5e6)  # microseconds


class TestGlobalInstall:
    def test_set_tracer_returns_previous(self):
        original = get_tracer()
        mine = Tracer(enabled=True)
        previous = set_tracer(mine)
        try:
            assert previous is original
            assert get_tracer() is mine
        finally:
            set_tracer(original)

    def test_tracing_context_restores(self):
        original = get_tracer()
        with tracing(capacity=8) as tracer:
            assert get_tracer() is tracer
            assert tracer.enabled
            assert tracer.capacity == 8
        assert get_tracer() is original

    def test_instrumented_run_is_captured_when_enabled(self):
        acc = Accelerator(
            spec=matmul_spec(),
            bounds=Bounds({"i": 2, "j": 2, "k": 2}),
            transform=output_stationary(),
        )
        with tracing() as tracer:
            design = acc.build()
            design.run({"A": np.eye(2, dtype=int), "B": np.eye(2, dtype=int)})
        components = {e.component for e in tracer.events()}
        assert "compiler" in components
        assert "sim.array" in components
        names = [e.name for e in tracer.events()]
        assert "timestep" in names
