"""Tests for cross-process merge support in the observability primitives."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import Profiler
from repro.obs.trace import Tracer


class TestProfilerMerge:
    def test_merge_accumulates(self):
        a = Profiler(enabled=True)
        b = Profiler(enabled=True)
        a.record("compile", 0.5)
        b.record("compile", 0.25)
        b.record("simulate", 1.0)
        a.merge(b)
        records = {r.label: r for r in a.records()}
        assert records["compile"].calls == 2
        assert records["compile"].total_s == pytest.approx(0.75)
        assert records["compile"].min_s == pytest.approx(0.25)
        assert records["compile"].max_s == pytest.approx(0.5)
        assert records["simulate"].calls == 1

    def test_merge_into_empty(self):
        a = Profiler()
        b = Profiler(enabled=True)
        b.record("x", 0.1)
        a.merge(b)
        assert len(a) == 1

    def test_source_unchanged(self):
        a = Profiler(enabled=True)
        b = Profiler(enabled=True)
        b.record("x", 0.1)
        a.merge(b)
        a.record("x", 0.2)
        assert {r.label: r.calls for r in b.records()} == {"x": 1}


class TestTracerMerge:
    def test_merge_appends_events_and_dropped(self):
        a = Tracer(enabled=True)
        b = Tracer(capacity=2, enabled=True)
        a.instant("parent", component="t", cycle=0)
        for i in range(3):  # overflows b's capacity: 1 drop
            b.instant(f"child{i}", component="t", cycle=i)
        a.merge(b)
        names = [e.name for e in a.events()]
        assert names == ["parent", "child1", "child2"]
        assert a.dropped == 1

    def test_merge_respects_destination_capacity(self):
        a = Tracer(capacity=2, enabled=True)
        b = Tracer(enabled=True)
        for i in range(3):
            b.instant(f"e{i}", component="t", cycle=i)
        a.merge(b)
        assert len(a) == 2
        assert a.dropped == 1


class TestRegistryMerge:
    def test_counters_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("hits").inc(2)
        b.counter("hits").inc(3)
        b.counter("misses", stage="compile").inc(1)
        a.merge(b)
        assert a.counter("hits").value == 5
        assert a.counter("misses", stage="compile").value == 1

    def test_gauges_take_latest(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("depth").set(4)
        b.gauge("depth").set(9)
        a.merge(b)
        assert a.gauge("depth").value == 9

    def test_histograms_add_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        boundaries = (1.0, 10.0)
        a.histogram("lat", boundaries).observe(0.5)
        b.histogram("lat", boundaries).observe(5.0)
        b.histogram("lat", boundaries).observe(50.0)
        a.merge(b)
        merged = a.histogram("lat", boundaries)
        assert merged.count == 3
        assert merged.sum == pytest.approx(55.5)
        assert merged.bucket_counts == [1, 1, 1]

    def test_histogram_boundary_mismatch_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat", (1.0,)).observe(0.5)
        b.histogram("lat", (2.0,)).observe(0.5)
        with pytest.raises(ValueError, match="boundary mismatch"):
            a.merge(b)

    def test_kind_mismatch_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x").inc()
        b.gauge("x").set(1)
        with pytest.raises(ValueError, match="cannot merge"):
            a.merge(b)

    def test_merge_source_unchanged(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("hits").inc(3)
        a.merge(b)
        a.counter("hits").inc(1)
        assert b.counter("hits").value == 3
