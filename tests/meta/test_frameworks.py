"""Tests for the Table I framework comparison registry."""

import pytest

from repro.meta.frameworks import (
    FRAMEWORKS,
    get,
    render_table,
    stellar_distinguishers,
)


class TestRegistry:
    def test_all_table1_columns_present(self):
        names = {f.name for f in FRAMEWORKS}
        assert names == {
            "PolySA",
            "AutoSA",
            "Interstellar",
            "Tabla",
            "Sparseloop",
            "TeAAL",
            "SAM",
            "DSAGen",
            "Spatial",
            "Stellar",
        }

    def test_get(self):
        assert get("TeAAL").load_balancing is True

    def test_get_unknown_rejected(self):
        with pytest.raises(KeyError):
            get("HLS4ML")

    def test_dense_frameworks_lack_sparse_structures(self):
        for name in ("PolySA", "AutoSA", "Interstellar", "Tabla"):
            assert get(name).sparse_data_structures is False

    def test_modeling_frameworks_lack_rtl(self):
        for name in ("Sparseloop", "TeAAL", "SAM"):
            framework = get(name)
            assert framework.simulators is True
            assert framework.synthesizable_rtl is False

    def test_implicit_dataflow_marked(self):
        assert get("DSAGen").dataflow == "implicit"
        assert get("Spatial").dataflow == "implicit"


class TestStellarRow:
    def test_stellar_has_all_five_axes(self):
        stellar = get("Stellar")
        assert stellar.functionality is True
        assert stellar.dataflow is True
        assert stellar.sparse_data_structures is True
        assert stellar.load_balancing is True
        assert stellar.private_memory_buffers is True

    def test_stellar_generates_rtl_with_isa(self):
        stellar = get("Stellar")
        assert stellar.synthesizable_rtl is True
        assert stellar.isa_level is True

    def test_distinguishers(self):
        """Table I's punchlines: only Stellar offers an ISA-level
        interface, and only Stellar combines sparse structures with
        synthesizable RTL."""
        flags = stellar_distinguishers()
        assert flags["only_isa_level"]
        assert flags["only_sparse_plus_rtl"]
        assert flags["all_five_axes"]


class TestRendering:
    def test_renders_all_rows_and_columns(self):
        text = render_table()
        for name in ("PolySA", "Stellar", "TeAAL"):
            assert name in text
        for row in ("Functionality", "ISA-level", "Load-balancing"):
            assert row in text

    def test_implicit_rendered(self):
        assert "Implicit" in render_table()
