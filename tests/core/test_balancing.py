"""Tests for load-balancing specs (Section III-D, Listings 3-4)."""

import pytest

from repro.core import SpecError, matmul_spec
from repro.core.balancing import (
    LoadBalancingScheme,
    Offset,
    Range,
    Shift,
    flexible_pe_scheme,
    row_shift_scheme,
)

ORDER = ("i", "j", "k")


class TestRange:
    def test_contains(self):
        r = Range(2, 5)
        assert 2 in r and 4 in r
        assert 5 not in r and 1 not in r

    def test_extent(self):
        assert Range(2, 5).extent == 3

    def test_empty_rejected(self):
        with pytest.raises(SpecError):
            Range(3, 3)


class TestShift:
    def test_listing3_bias_vector(self):
        """Shift i = N -> 2N, j, k  to  i = 0 -> N, j, k+1."""
        n = 4
        shift = Shift(
            src={"i": Range(n, 2 * n)},
            dst={"i": Range(0, n), "k": Offset(1)},
        )
        # Bias maps target iterations back onto source work: i + N, k - 1.
        assert shift.bias_vector(ORDER) == (n, 0, -1)

    def test_listing4_bias_vector(self):
        shift = Shift(src={}, dst={"i": Range(0, 1), "j": Range(0, 4)})
        assert shift.bias_vector(ORDER) == (0, 0, 0)

    def test_row_granular(self):
        n = 4
        shift = Shift(
            src={"i": Range(n, 2 * n)},
            dst={"i": Range(0, n), "k": Offset(1)},
        )
        assert shift.is_row_granular(ORDER)

    def test_pe_granular(self):
        """Listing 4: no source constraint -> individual PEs balance."""
        shift = Shift(src={}, dst={"i": Range(0, 1), "j": Range(0, 4)})
        assert not shift.is_row_granular(ORDER)

    def test_mismatched_extents_not_row_granular(self):
        shift = Shift(src={"i": Range(0, 8)}, dst={"i": Range(0, 4)})
        assert not shift.is_row_granular(ORDER)

    def test_constrained_axes(self):
        shift = Shift(src={}, dst={"i": Range(0, 1), "j": Range(0, 4)})
        assert shift.constrained_axes() == frozenset({"i", "j"})

    def test_offset_not_constrained(self):
        shift = Shift(
            src={"i": Range(4, 8)}, dst={"i": Range(0, 4), "k": Offset(1)}
        )
        assert shift.constrained_axes() == frozenset({"i"})

    def test_invalid_dst_clause_rejected(self):
        with pytest.raises(SpecError):
            Shift(src={}, dst={"i": 5})

    def test_validate_against_spec(self):
        spec = matmul_spec()
        shift = Shift(src={"z": Range(0, 4)}, dst={})
        with pytest.raises(SpecError):
            shift.validate_against(spec)


class TestScheme:
    def test_disabled_by_default(self):
        assert LoadBalancingScheme().is_disabled()

    def test_row_scheme_prunes_nothing(self):
        """Figure 10a: row-granular balancing preserves connections."""
        scheme = row_shift_scheme(4)
        assert scheme.pruned_axes(ORDER) == frozenset()

    def test_flexible_scheme_prunes(self):
        """Figure 10b: PE-granular balancing prunes constrained axes."""
        scheme = flexible_pe_scheme(4)
        assert scheme.pruned_axes(ORDER) == frozenset({"i", "j"})

    def test_scheme_validates_members(self):
        spec = matmul_spec()
        scheme = LoadBalancingScheme([Shift(src={"z": Range(0, 1)}, dst={})])
        with pytest.raises(SpecError):
            scheme.validate_against(spec)

    def test_add_chains(self):
        scheme = LoadBalancingScheme()
        scheme.add(Shift(src={}, dst={"i": Range(0, 1)})).add(
            Shift(src={}, dst={"j": Range(0, 1)})
        )
        assert len(scheme) == 2
