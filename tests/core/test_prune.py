"""Tests for the connection-pruning passes (Section IV-B, Figures 4-5, 10)."""

import pytest

from repro.core.balancing import (
    LoadBalancingScheme,
    Offset,
    Range,
    Shift,
    flexible_pe_scheme,
    row_shift_scheme,
)
from repro.core.iterspace import elaborate
from repro.core.passes.prune import (
    connection_survives,
    prune_for_balancing,
    prune_for_sparsity,
)
from repro.core.sparsity import (
    SparsityStructure,
    a100_two_four,
    csr_b_matrix,
    csr_csc_both,
    diagonal_a_matrix,
    empty_rows_of_a,
)

ORDER = ("i", "j", "k")


@pytest.fixture
def itsp(spec, bounds4):
    return elaborate(spec, bounds4)


class TestSurvivalRule:
    """The worked example of Section IV-B, decomposed."""

    def test_partial_sums_pruned_by_csr(self):
        """c: Dep = {i, j}, d = (0,0,1); skipping j with deps(j) = {k} and
        d[k] != 0 makes the expanded j data-dependent -> prune."""
        assert not connection_survives(
            (0, 0, 1), frozenset({"i", "j"}), {"j": frozenset({"k"})}, ORDER
        )

    def test_a_matrix_survives_csr(self):
        """a: Dep = {i, k}; j is not in its dependence set, so moving
        along compressed j still delivers the right value."""
        assert connection_survives(
            (0, 1, 0), frozenset({"i", "k"}), {"j": frozenset({"k"})}, ORDER
        )

    def test_stationary_b_survives_csr(self):
        assert connection_survives(
            (1, 0, 0), frozenset({"j", "k"}), {"j": frozenset({"k"})}, ORDER
        )

    def test_direct_flow_along_skipped_dep_axis_pruned(self):
        """A variable moving along its own skipped identity axis cannot
        trust neighbours."""
        assert not connection_survives(
            (0, 1, 0), frozenset({"j"}), {"j": frozenset({"k"})}, ORDER
        )


class TestSparsityPruning:
    def test_figure4_rewrite(self, itsp, spec):
        """Listing 5 + Figure 4: B CSR removes c's connections only."""
        pruned, report = prune_for_sparsity(itsp, csr_b_matrix(spec))
        assert report.pruned_variables == ["c"]
        assert pruned.conns_for("c") == []
        assert len(pruned.conns_for("a")) == 48
        assert len(pruned.conns_for("b")) == 48

    def test_figure4_adds_io(self, itsp, spec):
        pruned, _ = prune_for_sparsity(itsp, csr_b_matrix(spec))
        assert len(pruned.io_for("c")) > len(itsp.io_for("c"))

    def test_outer_product_prunes_only_c(self, itsp, spec):
        """A CSC + B CSR (Listing 2, lines 1-3): both operand flows
        survive; only accumulation is pruned."""
        pruned, report = prune_for_sparsity(itsp, csr_csc_both(spec))
        assert report.pruned_variables == ["c"]
        assert len(pruned.conns_for("a")) == 48
        assert len(pruned.conns_for("b")) == 48

    def test_diagonal_restricts_points(self, itsp, spec):
        """Listing 2 line 5: a structured skip removes iteration points."""
        pruned, report = prune_for_sparsity(itsp, diagonal_a_matrix(spec))
        assert report.removed_points == 64 - 16  # only i == k survives
        assert all(p.coords[0] == p.coords[2] for p in pruned.points)

    def test_diagonal_drops_dangling_conns(self, itsp, spec):
        pruned, _ = prune_for_sparsity(itsp, diagonal_a_matrix(spec))
        for conn in pruned.p2p_conns:
            assert pruned.has_point(conn.src) and pruned.has_point(conn.dst)

    def test_empty_rows_prunes_accumulation(self, itsp, spec):
        """Listing 2 line 7: skipping k when a row of A is empty makes the
        expanded k depend on i, pruning partial-sum and operand flows that
        cross k or i."""
        pruned, report = prune_for_sparsity(itsp, empty_rows_of_a(spec))
        # c (Dep = {i,j}, d along k): k not in Dep(c) -> survives.
        assert "c" not in report.pruned_variables
        # a (Dep = {i,k}, d = (0,1,0)): k in Dep, deps(k) = {i}, d[i] = 0,
        # d[k] = 0 -> survives.
        assert "a" not in report.pruned_variables
        # b (Dep = {j,k}, d = (1,0,0)): k in Dep and deps(k) = {i} moves -> pruned.
        assert "b" in report.pruned_variables

    def test_a100_widens_instead_of_pruning(self, itsp, spec):
        """Figure 5: OptimisticSkip keeps connections as wider bundles."""
        pruned, report = prune_for_sparsity(itsp, a100_two_four(spec))
        assert report.pruned_variables == []
        # a and b depend on k: their connections are widened to bundles.
        assert report.widened_variables.get("a") == 4
        assert report.widened_variables.get("b") == 4
        assert all(c.bundle == 4 for c in pruned.conns_for("a"))
        # c's identity is (i, j): untouched.
        assert all(c.bundle == 1 for c in pruned.conns_for("c"))

    def test_dense_structure_is_noop(self, itsp):
        pruned, report = prune_for_sparsity(itsp, SparsityStructure())
        assert report.pruned_variables == []
        assert pruned.conn_count() == itsp.conn_count()


class TestBalancingPruning:
    def test_row_granular_preserves_conns(self, itsp):
        """Figure 10a: whole-row balancing keeps all connections."""
        pruned, report = prune_for_balancing(itsp, row_shift_scheme(2))
        assert report.pruned_variables == []
        assert pruned.conn_count() == itsp.conn_count()

    def test_pe_granular_prunes_flows(self, itsp):
        """Figure 10b / Listing 4: per-PE balancing prunes variables
        flowing along the constrained axes."""
        pruned, report = prune_for_balancing(itsp, flexible_pe_scheme(4))
        # a flows along j, b flows along i: both constrained.
        assert set(report.pruned_variables) == {"a", "b"}
        assert pruned.conns_for("a") == []
        assert pruned.conns_for("b") == []
        # c flows along k: unconstrained.
        assert len(pruned.conns_for("c")) == 48

    def test_disabled_scheme_is_noop(self, itsp):
        pruned, report = prune_for_balancing(itsp, LoadBalancingScheme())
        assert pruned is itsp
        assert report.pruned_variables == []

    def test_offset_only_shift_prunes_nothing(self, itsp):
        scheme = LoadBalancingScheme(
            [Shift(src={"i": Range(2, 4)}, dst={"i": Range(0, 2), "k": Offset(1)})]
        )
        pruned, report = prune_for_balancing(itsp, scheme)
        assert report.pruned_variables == []
