"""Tests for GeneratedDesign's report conveniences (energy, RTL sim)."""

import pytest

from repro.core import Accelerator, matmul_spec, output_stationary


@pytest.fixture
def design():
    return Accelerator(
        spec=matmul_spec(),
        bounds={"i": 3, "j": 3, "k": 3},
        transform=output_stationary(),
    ).build()


class TestEnergyReport:
    def test_from_run(self, design, rng):
        A = rng.integers(-3, 4, (3, 3))
        B = rng.integers(-3, 4, (3, 3))
        result = design.run({"A": A, "B": B})
        report = design.energy_report(result)
        assert report.total_pj > 0
        assert report.macs == 27

    def test_stellar_flag_passthrough(self, design, rng):
        A = rng.integers(-3, 4, (3, 3))
        B = rng.integers(-3, 4, (3, 3))
        result = design.run({"A": A, "B": B})
        stellar = design.energy_report(result, stellar_generated=True)
        handwritten = design.energy_report(result, stellar_generated=False)
        assert stellar.total_pj > handwritten.total_pj


class TestRTLSimulatorHandle:
    def test_pe_level(self, design):
        sim = design.rtl_simulator(top="matmul_pe")
        sim.reset()
        sim.step(3)
        assert sim.peek("t_counter") == 3

    def test_top_level(self, design):
        sim = design.rtl_simulator()
        sim.reset()
        sim.poke("start", 1)
        sim.step(1)
        assert sim.peek("busy") == 1
