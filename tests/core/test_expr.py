"""Unit tests for the expression language (repro.core.expr)."""

import numpy as np
import pytest
from fractions import Fraction

from repro.core.expr import (
    WILDCARD,
    AffineIndexExpr,
    Bounds,
    Comparison,
    Const,
    EvalContext,
    Index,
    IndexValue,
    Local,
    Select,
    SpecError,
    Tensor,
    exact_inverse,
    indices,
    maximum,
    minimum,
)


class TestIndex:
    def test_name(self):
        assert Index("i").name == "i"

    def test_invalid_name_rejected(self):
        with pytest.raises(SpecError):
            Index("2bad")

    def test_empty_name_rejected(self):
        with pytest.raises(SpecError):
            Index("")

    def test_indices_helper(self):
        i, j, k = indices("i j k")
        assert [x.name for x in (i, j, k)] == ["i", "j", "k"]

    def test_evaluate(self):
        bounds = Bounds({"i": 4})
        assert Index("i").evaluate({"i": 3}, bounds) == 3

    def test_free_indices(self):
        assert Index("i").free_indices() == frozenset({"i"})

    def test_hashable(self):
        assert len({Index("i"), Index("i"), Index("j")}) == 2


class TestBoundMarkers:
    def test_lower_bound_evaluates(self):
        bounds = Bounds({"k": 5})
        marker = Index("k").lower_bound
        assert marker.evaluate({}, bounds) == 0

    def test_upper_bound_evaluates(self):
        bounds = Bounds({"k": 5})
        marker = Index("k").upper_bound
        assert marker.evaluate({}, bounds) == 4

    def test_explicit_range(self):
        bounds = Bounds({"k": (2, 7)})
        assert Index("k").lower_bound.evaluate({}, bounds) == 2
        assert Index("k").upper_bound.evaluate({}, bounds) == 7

    def test_no_free_indices(self):
        assert Index("k").upper_bound.free_indices() == frozenset()

    def test_arithmetic_rejected(self):
        with pytest.raises(SpecError):
            Index("k").lower_bound + 1

    def test_repr(self):
        assert "lowerBound" in repr(Index("k").lower_bound)
        assert "upperBound" in repr(Index("k").upper_bound)


class TestAffineIndexExpr:
    def test_offset(self):
        i = Index("i")
        expr = i - 1
        assert isinstance(expr, AffineIndexExpr)
        assert expr.evaluate({"i": 3}, Bounds({"i": 4})) == 2

    def test_offset_from(self):
        i = Index("i")
        assert (i - 1).offset_from(i) == -1
        assert (i + 2).offset_from(i) == 2
        assert i.offset_from(i) == 0

    def test_offset_from_other_index_is_none(self):
        i, j = Index("i"), Index("j")
        assert (j - 1).offset_from(i) is None

    def test_scaled_index_has_no_unit_offset(self):
        i = Index("i")
        assert (2 * i).offset_from(i) is None

    def test_combination(self):
        i, j = Index("i"), Index("j")
        expr = 2 * i + j - 3
        assert expr.evaluate({"i": 2, "j": 5}, Bounds({"i": 4, "j": 8})) == 6

    def test_subtraction_cancels(self):
        i = Index("i")
        expr = (i + 1) - i
        assert expr.free_indices() == frozenset()
        assert expr.evaluate({}, Bounds({})) == 1

    def test_non_integer_scale_rejected(self):
        with pytest.raises(SpecError):
            Index("i") * 1.5


class TestBounds:
    def test_size(self):
        assert Bounds({"i": 7}).size("i") == 7

    def test_empty_range_rejected(self):
        with pytest.raises(SpecError):
            Bounds({"i": (3, 2)})

    def test_domain_lexicographic(self):
        bounds = Bounds({"i": 2, "j": 2})
        assert list(bounds.domain(["i", "j"])) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_domain_respects_order(self):
        bounds = Bounds({"i": 2, "j": 3})
        points = list(bounds.domain(["j", "i"]))
        assert len(points) == 6
        assert points[0] == (0, 0)
        assert points[-1] == (2, 1)

    def test_point_count(self):
        assert Bounds({"i": 3, "j": 4}).point_count(["i", "j"]) == 12

    def test_contains(self):
        bounds = Bounds({"i": 2})
        assert "i" in bounds
        assert "z" not in bounds


class TestValueExpressions:
    def _ctx(self, tensors, env=None):
        def read(symbol, coords):
            return tensors[symbol.name][coords]

        return EvalContext(env or {}, Bounds({"i": 4, "j": 4}), read)

    def test_tensor_access(self):
        A = Tensor("A", 2)
        data = {"A": np.arange(16).reshape(4, 4)}
        ctx = self._ctx(data, {"i": 1, "j": 2})
        i, j = Index("i"), Index("j")
        assert A[i, j].evaluate(ctx) == 6

    def test_rank_mismatch_rejected(self):
        A = Tensor("A", 2)
        with pytest.raises(SpecError):
            A[Index("i")]

    def test_arithmetic(self):
        A = Tensor("A", 2)
        i, j = Index("i"), Index("j")
        data = {"A": np.full((4, 4), 3)}
        ctx = self._ctx(data, {"i": 0, "j": 0})
        expr = A[i, j] * 2 + 1
        assert expr.evaluate(ctx) == 7

    def test_comparison(self):
        A = Tensor("A", 2)
        i, j = Index("i"), Index("j")
        data = {"A": np.zeros((4, 4))}
        ctx = self._ctx(data, {"i": 0, "j": 0})
        cond = A[i, j] == 0
        assert isinstance(cond, Comparison)
        assert bool(cond.evaluate(ctx)) is True

    def test_select(self):
        ctx = self._ctx({}, {"i": 2})
        expr = Select(Const(1) == 1, 10, 20)
        assert expr.evaluate(ctx) == 10
        expr = Select(Const(1) == 2, 10, 20)
        assert expr.evaluate(ctx) == 20

    def test_min_max(self):
        ctx = self._ctx({})
        assert minimum(3, 5).evaluate(ctx) == 3
        assert maximum(3, 5).evaluate(ctx) == 5

    def test_index_value(self):
        ctx = self._ctx({}, {"i": 3})
        assert IndexValue(Index("i")).evaluate(ctx) == 3

    def test_data_dependent_access_flag(self):
        A = Tensor("A", 2)
        P = Tensor("P", 1)
        i, j = Index("i"), Index("j")
        access = A[P[i], j]
        assert access.is_data_dependent
        plain = A[i, j]
        assert not plain.is_data_dependent

    def test_data_dependent_access_evaluates(self):
        A = Tensor("A", 2)
        P = Tensor("P", 1)
        i, j = Index("i"), Index("j")
        data = {
            "A": np.arange(16).reshape(4, 4),
            "P": np.array([3, 2, 1, 0]),
        }
        ctx = self._ctx(data, {"i": 0, "j": 1})
        # A[P[0], 1] == A[3, 1] == 13
        assert A[P[i], j].evaluate(ctx) == 13

    def test_wildcard_subscript(self):
        A = Tensor("A", 2)
        i = Index("i")
        access = A[i, WILDCARD]
        assert access.free_indices() == frozenset({"i"})

    def test_wildcard_cannot_evaluate(self):
        A = Tensor("A", 2)
        i = Index("i")
        ctx = self._ctx({"A": np.zeros((4, 4))}, {"i": 0})
        with pytest.raises(SpecError):
            A[i, WILDCARD].evaluate(ctx)

    def test_references(self):
        A, B = Tensor("A", 2), Tensor("B", 2)
        i, j = Index("i"), Index("j")
        expr = A[i, j] + B[i, j] * 2
        names = sorted(a.target.name for a in expr.references())
        assert names == ["A", "B"]

    def test_subscript_offsets(self):
        a = Local("a", 3)
        i, j, k = indices("i j k")
        access = a[i, j - 1, k]
        assert access.subscript_offsets(("i", "j", "k")) == (0, -1, 0)

    def test_subscript_offsets_none_for_bounds(self):
        a = Local("a", 3)
        i, j, k = indices("i j k")
        access = a[i, j.lower_bound, k]
        assert access.subscript_offsets(("i", "j", "k")) is None


class TestExactInverse:
    def test_identity(self):
        inv = exact_inverse([[1, 0], [0, 1]])
        assert inv == ((Fraction(1), Fraction(0)), (Fraction(0), Fraction(1)))

    def test_known_inverse(self):
        inv = exact_inverse([[1, 0, 0], [0, 1, 0], [1, 1, 1]])
        # Row 3 of the inverse recovers k = t - x - y.
        assert inv[2] == (Fraction(-1), Fraction(-1), Fraction(1))

    def test_fractional_inverse(self):
        inv = exact_inverse([[2, 0], [0, 2]])
        assert inv[0][0] == Fraction(1, 2)

    def test_singular_rejected(self):
        with pytest.raises(SpecError):
            exact_inverse([[1, 1], [1, 1]])

    def test_non_square_rejected(self):
        with pytest.raises(SpecError):
            exact_inverse([[1, 0, 0], [0, 1, 0]])

    def test_inverse_roundtrip(self):
        matrix = [[0, 0, 1], [0, 1, 0], [1, 1, 1]]
        inv = exact_inverse(matrix)
        # matrix @ inv == identity
        n = 3
        for r in range(n):
            for c in range(n):
                acc = sum(Fraction(matrix[r][m]) * inv[m][c] for m in range(n))
                assert acc == (1 if r == c else 0)
