"""Tests for the register-file optimization ladder (Section IV-D, Fig 14)."""


from repro.core.dataflow import output_stationary
from repro.core.iterspace import IODirection, elaborate
from repro.core.memspec import HardcodedParams, dense_matrix_buffer
from repro.core.passes.regfile_opt import (
    RegfileKind,
    choose_regfile,
    consumption_order,
)


class TestChooseRegfile:
    def test_matching_orders_feedforward(self):
        order = [(0, 0), (0, 1), (1, 0), (1, 1)]
        plan = choose_regfile("x", order, list(order))
        assert plan.kind is RegfileKind.FEEDFORWARD

    def test_transposed_orders(self):
        producer = [(0, 0), (0, 1), (1, 0), (1, 1)]
        consumer = [(0, 0), (1, 0), (0, 1), (1, 1)]
        plan = choose_regfile("x", producer, consumer)
        assert plan.kind is RegfileKind.TRANSPOSING

    def test_permutation_gives_edge(self):
        producer = [(0, 0), (0, 1), (1, 0), (1, 1)]
        consumer = [(1, 1), (0, 0), (1, 0), (0, 1)]
        plan = choose_regfile("x", producer, consumer)
        assert plan.kind is RegfileKind.EDGE

    def test_data_dependent_falls_back(self):
        order = [(0, 0)]
        plan = choose_regfile("x", order, order, data_dependent=True)
        assert plan.kind is RegfileKind.CROSSBAR

    def test_unknown_order_falls_back(self):
        plan = choose_regfile("x", None, [(0, 0)])
        assert plan.kind is RegfileKind.CROSSBAR

    def test_disjoint_sets_fall_back(self):
        plan = choose_regfile("x", [(0, 0)], [(5, 5)])
        assert plan.kind is RegfileKind.CROSSBAR

    def test_ladder_prefers_cheapest(self):
        """Identical orders are also permutations and transposable when
        symmetric; the ladder must still pick FEEDFORWARD."""
        order = [(0, 0), (1, 1)]
        plan = choose_regfile("x", order, list(order))
        assert plan.kind is RegfileKind.FEEDFORWARD

    def test_search_width_ordering(self):
        """Figure 14: output ports observe 1 entry (feedforward), an edge
        (edge/transposing), or everything (crossbar)."""
        order = [(i, j) for i in range(4) for j in range(4)]
        ff = choose_regfile("x", order, list(order))
        xb = choose_regfile("x", order, list(order), data_dependent=True)
        assert ff.search_width() == 1
        assert xb.search_width() == len(order)

    def test_relative_costs_monotone(self):
        costs = [
            RegfileKind.FEEDFORWARD.relative_cost,
            RegfileKind.TRANSPOSING.relative_cost,
            RegfileKind.EDGE.relative_cost,
            RegfileKind.CROSSBAR.relative_cost,
        ]
        assert costs == sorted(costs)


class TestConsumptionOrder:
    def test_figure13b_wavefront(self, spec, bounds4):
        """Under the output-stationary dataflow, B's elements are consumed
        in the anti-diagonal order of Figure 13b."""
        itsp = elaborate(spec, bounds4)
        order = consumption_order(itsp, output_stationary(), "b")
        assert order is not None
        assert order[0] == (0, 0)
        assert set(order[1:3]) == {(1, 0), (0, 1)}
        # Each wavefront has constant coordinate sum.
        sums = [sum(e) for e in order]
        assert sums == sorted(sums)

    def test_all_elements_once(self, spec, bounds4):
        itsp = elaborate(spec, bounds4)
        order = consumption_order(itsp, output_stationary(), "b")
        assert len(order) == 16
        assert len(set(order)) == 16

    def test_output_direction(self, spec, bounds4):
        itsp = elaborate(spec, bounds4)
        order = consumption_order(
            itsp, output_stationary(), "c", IODirection.OUTPUT
        )
        assert order is not None
        assert len(order) == 16  # one per C(i, j)

    def test_none_for_unknown_variable(self, spec, bounds4):
        itsp = elaborate(spec, bounds4)
        assert consumption_order(itsp, output_stationary(), "zzz") is None


class TestFigure13EndToEnd:
    def test_wavefront_membuf_matches_array_order(self, spec, bounds4):
        """The full Figure 13 scenario: a hardcoded wavefront memory
        buffer's emission order equals the output-stationary array's
        consumption order for B -> the ladder picks FEEDFORWARD."""
        membuf = dense_matrix_buffer(
            "B",
            4,
            4,
            hardcoded_read=HardcodedParams(
                spans={0: 4, 1: 4},
                data_strides={0: 1, 1: 4},
                wavefront=True,
            ),
        )
        itsp = elaborate(spec, bounds4)
        consumer = consumption_order(itsp, output_stationary(), "b")
        producer = membuf.provable_read_order()
        plan = choose_regfile("b", producer, consumer)
        assert plan.kind is RegfileKind.FEEDFORWARD

    def test_row_major_membuf_needs_edge(self, spec, bounds4):
        """Without the wavefront hardcoding, the orders differ and the
        ladder falls back to an edge regfile."""
        membuf = dense_matrix_buffer(
            "B",
            4,
            4,
            hardcoded_read=HardcodedParams(spans={0: 4, 1: 4}),
        )
        itsp = elaborate(spec, bounds4)
        consumer = consumption_order(itsp, output_stationary(), "b")
        producer = membuf.provable_read_order()
        plan = choose_regfile("b", producer, consumer)
        assert plan.kind in (RegfileKind.EDGE, RegfileKind.TRANSPOSING)
