"""Tests for the design-space exploration module."""

import numpy as np
import pytest

from repro.core import Bounds, SpecError, matmul_spec
from repro.core.balancing import LoadBalancingScheme, row_shift_scheme
from repro.core.dataflow import (
    SpaceTimeTransform,
    hexagonal,
    input_stationary,
    output_stationary,
)
from repro.core.sparsity import SparsityStructure, csr_b_matrix
from repro.dse import DesignPoint, explore


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(5)
    n = 6
    a = rng.integers(1, 5, (n, n))
    b = np.zeros((n, n), dtype=int)
    b[0, :] = rng.integers(1, 5, n)
    b[3, 1] = 2
    return Bounds({"i": n, "j": n, "k": n}), {"A": a, "B": b}


@pytest.fixture(scope="module")
def result(workload):
    bounds, tensors = workload
    spec = matmul_spec()
    return explore(
        spec,
        bounds,
        tensors,
        transforms={
            "output-stationary": output_stationary(),
            "input-stationary": input_stationary(),
            "hexagonal": hexagonal(),
        },
        sparsities={
            "dense": SparsityStructure(),
            "B-csr": csr_b_matrix(spec),
        },
        balancings={
            "none": LoadBalancingScheme(),
            "row-shift": row_shift_scheme(3),
        },
    )


class TestExplore:
    def test_full_cross_product(self, result):
        assert len(result) == 3 * 2 * 2

    def test_names_encode_axes(self, result):
        names = {p.name for p in result}
        assert "output-stationary / B-csr / row-shift" in names

    def test_metrics_populated(self, result):
        for point in result:
            assert point.cycles > 0
            assert 0 < point.utilization <= 1
            assert point.area_um2 > 0
            assert point.pe_count > 0

    def test_sparse_skipping_reduces_cycles(self, result):
        by_name = {p.name: p for p in result}
        dense = by_name["input-stationary / dense / none"]
        sparse = by_name["input-stationary / B-csr / none"]
        assert sparse.cycles < dense.cycles

    def test_balancing_helps_on_imbalanced_workload(self, result):
        by_name = {p.name: p for p in result}
        plain = by_name["input-stationary / B-csr / none"]
        balanced = by_name["input-stationary / B-csr / row-shift"]
        assert balanced.cycles <= plain.cycles

    def test_illegal_transforms_skipped(self, workload):
        bounds, tensors = workload
        spec = matmul_spec()
        bad = SpaceTimeTransform([[1, 0, 0], [0, 1, 0], [1, 1, -1]])
        result = explore(
            spec,
            bounds,
            tensors,
            transforms={"good": output_stationary(), "bad": bad},
        )
        assert len(result) == 1

    def test_all_illegal_raises(self, workload):
        bounds, tensors = workload
        spec = matmul_spec()
        bad = SpaceTimeTransform([[1, 0, 0], [0, 1, 0], [1, 1, -1]])
        with pytest.raises(SpecError):
            explore(spec, bounds, tensors, transforms={"bad": bad})


class TestParetoFrontier:
    def test_frontier_nonempty_subset(self, result):
        frontier = result.pareto_frontier()
        assert 0 < len(frontier) <= len(result)

    def test_frontier_mutually_nondominated(self, result):
        frontier = result.pareto_frontier()
        for p in frontier:
            assert not any(q.dominates(p) for q in frontier if q is not p)

    def test_every_point_dominated_or_on_frontier(self, result):
        frontier = result.pareto_frontier()
        frontier_ids = {id(p) for p in frontier}
        for p in result:
            if id(p) not in frontier_ids:
                assert any(q.dominates(p) for q in result)

    def test_frontier_sorted_by_cycles(self, result):
        cycles = [p.cycles for p in result.pareto_frontier()]
        assert cycles == sorted(cycles)


class TestSelections:
    def test_best_by_each_metric(self, result):
        fastest = result.best_by("cycles")
        smallest = result.best_by("area")
        assert fastest.cycles == min(p.cycles for p in result)
        assert smallest.area_um2 == min(p.area_um2 for p in result)

    def test_best_by_adp(self, result):
        best = result.best_by("adp")
        assert best.area_delay_product == min(
            p.area_delay_product for p in result
        )

    def test_unknown_metric_rejected(self, result):
        with pytest.raises(ValueError):
            result.best_by("coolness")

    def test_table_renders(self, result):
        text = result.table()
        assert "pareto" in text
        assert text.count("\n") == len(result)


class TestDominance:
    def _point(self, cycles, area):
        return DesignPoint("p", "t", "s", "b", cycles, 0.5, area, 4, 2, [])

    def test_strict_dominance(self):
        assert self._point(10, 100).dominates(self._point(20, 200))

    def test_tradeoff_not_dominated(self):
        a, b = self._point(10, 200), self._point(20, 100)
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_equal_not_dominating(self):
        a, b = self._point(10, 100), self._point(10, 100)
        assert not a.dominates(b)
