"""Tests for functional specifications (paper Section III-A, Listing 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Bounds, Index, Local, SpecError
from repro.core.functionality import (
    AssignmentKind,
    FunctionalSpec,
    batched_matmul_spec,
    conv1d_spec,
    matmul_spec,
)


class TestSpecConstruction:
    def test_listing1_builds(self, spec):
        assert spec.name == "matmul"
        assert len(spec.assignments) == 7

    def test_assignment_kinds(self, spec):
        kinds = [a.kind for a in spec.assignments]
        assert kinds == [
            AssignmentKind.INPUT,
            AssignmentKind.INPUT,
            AssignmentKind.INIT,
            AssignmentKind.COMPUTE,
            AssignmentKind.COMPUTE,
            AssignmentKind.COMPUTE,
            AssignmentKind.OUTPUT,
        ]

    def test_locals_discovered(self, spec):
        assert sorted(v.name for v in spec.locals()) == ["a", "b", "c"]

    def test_tensors_discovered(self, spec):
        assert sorted(t.name for t in spec.input_tensors()) == ["A", "B"]
        assert [t.name for t in spec.output_tensors()] == ["C"]

    def test_duplicate_indices_rejected(self):
        i = Index("i")
        with pytest.raises(SpecError):
            FunctionalSpec("bad", [i, i])

    def test_empty_indices_rejected(self):
        with pytest.raises(SpecError):
            FunctionalSpec("bad", [])

    def test_unknown_index_rejected(self):
        i, z = Index("i"), Index("z")
        a = Local("a", 1)
        spec = FunctionalSpec("s", [i])
        with pytest.raises(SpecError):
            spec.let(a[z], 0)

    def test_wrong_local_rank_rejected(self):
        i, j = Index("i"), Index("j")
        a = Local("a", 1)  # should be rank 2
        spec = FunctionalSpec("s", [i, j])
        with pytest.raises(SpecError):
            spec.let(a[i], 0)

    def test_lhs_must_be_access(self, spec):
        with pytest.raises(SpecError):
            spec.let(42, 0)

    def test_macs_per_point(self, spec):
        assert spec.macs_per_point() == 1

    def test_no_data_dependent_accesses_in_matmul(self, spec):
        assert not spec.has_data_dependent_accesses()


class TestDifferenceVectors:
    def test_matmul_difference_vectors(self, spec):
        assert spec.difference_vector("a") == (0, 1, 0)
        assert spec.difference_vector("b") == (1, 0, 0)
        assert spec.difference_vector("c") == (0, 0, 1)

    def test_all_vectors(self, spec):
        assert spec.difference_vectors() == {
            "a": (0, 1, 0),
            "b": (1, 0, 0),
            "c": (0, 0, 1),
        }

    def test_variable_without_recurrence(self, spec):
        assert spec.difference_vector("nonexistent") is None

    def test_conv1d_vectors(self):
        spec = conv1d_spec()
        assert spec.difference_vector("img") == (0, 1, 0)
        assert spec.difference_vector("wgt") == (1, 0, 0)
        assert spec.difference_vector("acc") == (0, 0, 1)


class TestDependenceSets:
    def test_input_variables(self, spec):
        # a carries A(i, k): identified by i and k.
        assert spec.dependence_set("a") == frozenset({"i", "k"})
        assert spec.dependence_set("b") == frozenset({"j", "k"})

    def test_output_variable(self, spec):
        # c is emptied into C(i, j): identified by i and j.
        assert spec.dependence_set("c") == frozenset({"i", "j"})


class TestInterpreter:
    def test_matmul_matches_numpy(self, spec, small_matrices):
        A, B = small_matrices
        bounds = Bounds({"i": 4, "j": 4, "k": 4})
        out = spec.interpret(bounds, {"A": A, "B": B})
        assert np.array_equal(out["C"], A @ B)

    def test_rectangular_matmul(self, spec, rng):
        A = rng.integers(-3, 4, (2, 5))
        B = rng.integers(-3, 4, (5, 3))
        bounds = Bounds({"i": 2, "j": 3, "k": 5})
        out = spec.interpret(bounds, {"A": A, "B": B})
        assert np.array_equal(out["C"], A @ B)

    def test_size_one_reduction(self, spec, rng):
        A = rng.integers(-3, 4, (3, 1))
        B = rng.integers(-3, 4, (1, 3))
        bounds = Bounds({"i": 3, "j": 3, "k": 1})
        out = spec.interpret(bounds, {"A": A, "B": B})
        assert np.array_equal(out["C"], A @ B)

    def test_missing_bounds_rejected(self, spec):
        with pytest.raises(SpecError):
            spec.interpret(Bounds({"i": 4, "j": 4}), {})

    def test_missing_tensor_rejected(self, spec):
        bounds = Bounds({"i": 2, "j": 2, "k": 2})
        with pytest.raises(SpecError):
            spec.interpret(bounds, {"A": np.zeros((2, 2))})

    def test_conv1d_matches_reference(self, rng):
        spec = conv1d_spec()
        N, OC, F = 5, 3, 3
        I = rng.integers(-4, 5, (N + F - 1,))
        W = rng.integers(-4, 5, (OC, F))
        out = spec.interpret(Bounds({"ox": N, "oc": OC, "f": F}), {"I": I, "W": W})
        ref = np.array(
            [[sum(I[x + f] * W[oc, f] for f in range(F)) for oc in range(OC)]
             for x in range(N)]
        )
        assert np.array_equal(out["O"], ref)

    def test_batched_matmul_matches_numpy(self, rng):
        spec = batched_matmul_spec()
        A = rng.integers(-3, 4, (2, 3, 4))
        B = rng.integers(-3, 4, (2, 4, 3))
        bounds = Bounds({"n": 2, "i": 3, "j": 3, "k": 4})
        out = spec.interpret(bounds, {"A": A, "B": B})
        assert np.array_equal(out["C"], A @ B)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=6),
        m=st.integers(min_value=1, max_value=6),
        k=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_property_matmul_equals_numpy(self, n, m, k, seed):
        """The reference interpreter is semantically a matmul for every
        domain size (hypothesis over shapes and data)."""
        rng = np.random.default_rng(seed)
        A = rng.integers(-9, 10, (n, k))
        B = rng.integers(-9, 10, (k, m))
        spec = matmul_spec()
        out = spec.interpret(Bounds({"i": n, "j": m, "k": k}), {"A": A, "B": B})
        assert np.array_equal(out["C"], A @ B)


class TestAssignmentQueries:
    def test_assignments_for(self, spec):
        assert len(spec.assignments_for("c")) == 2

    def test_compute_assignment(self, spec):
        compute = spec.compute_assignment("c")
        assert compute is not None
        assert compute.kind is AssignmentKind.COMPUTE

    def test_boundary_conditions(self, spec):
        init = spec.assignments_for("c")[0]
        assert init.boundary_conditions() == {"k": "lb"}
