"""Tests for the IterationSpace IR (Section IV-B, Figure 9)."""

import pytest

from repro.core import Bounds, SpecError
from repro.core.dataflow import (
    SpaceTimeTransform,
    input_stationary,
    output_stationary,
)
from repro.core.iterspace import (
    IODirection,
    Point,
    apply_transform,
    elaborate,
)


@pytest.fixture
def itsp(spec, bounds4):
    return elaborate(spec, bounds4)


class TestElaborate:
    def test_point_count(self, itsp):
        assert len(itsp.points) == 64  # 4^3

    def test_connection_variables(self, itsp):
        assert itsp.connected_variables() == frozenset({"a", "b", "c"})

    def test_connection_counts(self, itsp):
        # Each variable flows along one axis: 4*4*3 in-domain links.
        for variable in ("a", "b", "c"):
            assert len(itsp.conns_for(variable)) == 48

    def test_connection_offsets_match_difference_vectors(self, itsp, spec):
        for variable, d in spec.difference_vectors().items():
            offsets = {c.offset() for c in itsp.conns_for(variable)}
            assert offsets == {d}

    def test_input_io_at_boundaries(self, itsp):
        a_inputs = [
            io
            for io in itsp.io_for("a")
            if io.direction is IODirection.INPUT
        ]
        # a is loaded on the j = lb plane: 16 points.
        assert len(a_inputs) == 16
        assert all(io.point.coords[1] == 0 for io in a_inputs)
        assert all(io.tensor == "A" for io in a_inputs)

    def test_output_io_at_upper_boundary(self, itsp):
        c_outputs = [
            io for io in itsp.io_for("c") if io.direction is IODirection.OUTPUT
        ]
        # C is emitted on the k = ub plane: 16 points.
        assert len(c_outputs) == 16
        assert all(io.point.coords[2] == 3 for io in c_outputs)
        assert all(io.tensor == "C" for io in c_outputs)

    def test_missing_bounds_rejected(self, spec):
        with pytest.raises(SpecError):
            elaborate(spec, Bounds({"i": 4, "j": 4}))


class TestRewrites:
    def test_without_conns_removes_and_replaces(self, itsp):
        rewritten = itsp.without_conns(["c"])
        assert rewritten.conns_for("c") == []
        assert len(rewritten.conns_for("a")) == 48
        # Endpoints gained IO connections.
        c_io = rewritten.io_for("c")
        assert len(c_io) > len(itsp.io_for("c"))

    def test_without_conns_no_io_replacement(self, itsp):
        rewritten = itsp.without_conns(["c"], replace_with_io=False)
        assert rewritten.conns_for("c") == []
        assert len(rewritten.io_for("c")) == len(itsp.io_for("c"))

    def test_widened_sets_bundle(self, itsp):
        widened = itsp.widened("a", 4)
        assert all(c.bundle == 4 for c in widened.conns_for("a"))
        assert all(c.bundle == 1 for c in widened.conns_for("b"))


class TestApplyTransform:
    def test_output_stationary_pe_count(self, itsp):
        array = apply_transform(itsp, output_stationary())
        assert array.pe_count == 16

    def test_pe_folding(self, itsp):
        """Multiple iteration points fold onto each PE across timesteps."""
        array = apply_transform(itsp, output_stationary())
        for pe in array.pes.values():
            assert pe.timestep_count == 4  # one per k

    def test_physical_conn_offsets(self, itsp):
        array = apply_transform(itsp, input_stationary())
        c_conns = array.conns_for("c")
        assert len(c_conns) == 1
        conn = c_conns[0]
        assert conn.space_offset == (1, 0)
        assert conn.time_offset == 1

    def test_stationary_conn(self, itsp):
        array = apply_transform(itsp, input_stationary())
        b_conns = array.conns_for("b")
        assert len(b_conns) == 1
        assert b_conns[0].is_stationary

    def test_broadcast_detected(self, itsp):
        t = SpaceTimeTransform([[1, 0, 0], [0, 1, 0], [1, 0, 1]])
        array = apply_transform(itsp, t)
        a_conns = array.conns_for("a")
        assert a_conns[0].is_broadcast

    def test_causality_violation_rejected(self, itsp):
        t = SpaceTimeTransform([[1, 0, 0], [0, 1, 0], [1, 1, -1]])
        with pytest.raises(SpecError):
            apply_transform(itsp, t)

    def test_rank_mismatch_rejected(self, itsp):
        t = SpaceTimeTransform([[1, 0], [0, 1]], space_dims=1)
        with pytest.raises(SpecError):
            apply_transform(itsp, t)

    def test_schedule_length(self, itsp):
        array = apply_transform(itsp, output_stationary())
        assert array.schedule_length == 10

    def test_utilization_bound(self, itsp):
        array = apply_transform(itsp, output_stationary())
        # 64 work points over 16 PEs x 10 steps.
        assert array.utilization_bound() == pytest.approx(0.4)

    def test_wire_length_nonzero_for_moving(self, itsp):
        array = apply_transform(itsp, output_stationary())
        assert array.total_wire_length() > 0


class TestPoint:
    def test_equality_and_hash(self):
        assert Point((1, 2)) == Point((1, 2))
        assert len({Point((1, 2)), Point((1, 2))}) == 1

    def test_inequality(self):
        assert Point((1, 2)) != Point((2, 1))
