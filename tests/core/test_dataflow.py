"""Tests for space-time transforms (paper Section III-B, Figure 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Bounds, SpecError, matmul_spec
from repro.core.dataflow import (
    SpaceTimeTransform,
    classify_dataflow,
    hexagonal,
    identity,
    input_stationary,
    output_stationary,
    validate_schedule,
    weight_stationary,
)


class TestConstruction:
    def test_identity(self):
        t = identity(3)
        assert t.apply((1, 2, 3)) == (1, 2, 3)

    def test_singular_rejected(self):
        with pytest.raises(SpecError):
            SpaceTimeTransform([[1, 1, 0], [1, 1, 0], [0, 0, 1]])

    def test_non_square_rejected(self):
        with pytest.raises(SpecError):
            SpaceTimeTransform([[1, 0], [0, 1], [1, 1]])

    def test_space_time_split(self):
        t = output_stationary()
        assert t.space_dims == 2
        assert t.time_dims == 1


class TestMapping:
    def test_equation_1_example(self):
        """Paper Section III-B: with T = identity, the MAC at i=1, j=2,
        k=3 maps to PE (1, 2) at timestep 3."""
        t = identity(3)
        st_coords = t.apply((1, 2, 3))
        assert st_coords[:2] == (1, 2)
        assert st_coords[2] == 3

    def test_output_stationary_space(self):
        t = output_stationary()
        assert t.space((2, 3, 1)) == (2, 3)  # x=i, y=j
        assert t.time((2, 3, 1)) == (6,)  # t=i+j+k

    def test_input_stationary_space(self):
        t = input_stationary()
        assert t.space((2, 3, 1)) == (1, 3)  # x=k, y=j

    def test_unapply_roundtrip(self):
        t = input_stationary()
        for point in [(0, 0, 0), (1, 2, 3), (3, 1, 2)]:
            assert t.unapply(t.apply(point)) == point

    def test_unapply_non_integer_returns_none(self):
        t = SpaceTimeTransform([[2, 0], [0, 1]], space_dims=1)
        assert t.unapply((1, 0)) is None  # i would be 1/2

    def test_wrong_rank_rejected(self):
        t = output_stationary()
        with pytest.raises(SpecError):
            t.apply((1, 2))
        with pytest.raises(SpecError):
            t.unapply((1, 2))

    @settings(max_examples=40, deadline=None)
    @given(
        point=st.tuples(
            st.integers(-8, 8), st.integers(-8, 8), st.integers(-8, 8)
        )
    )
    def test_property_roundtrip_all_named_transforms(self, point):
        for t in (output_stationary(), input_stationary(), weight_stationary(),
                  hexagonal(), identity(3)):
            assert t.unapply(t.apply(point)) == point


class TestDisplacement:
    def test_paper_worked_example(self):
        """Section IV-B: input-stationary T maps the partial-sum difference
        vector (0,0,1) to (dx=1, dy=0, dt=1): sums travel vertically."""
        t = input_stationary()
        assert t.displacement((0, 0, 1)) == (1, 0, 1)

    def test_stationary_weight(self):
        t = input_stationary()
        # b flows along i with difference vector (1,0,0); space part zero.
        assert t.is_stationary((1, 0, 0))
        assert not t.is_stationary((0, 0, 1))

    def test_pipeline_depth(self):
        t = output_stationary()
        assert t.pipeline_depth((0, 1, 0)) == 1

    def test_double_time_row_doubles_depth(self):
        t = output_stationary().with_time_row([2, 2, 2])
        assert t.pipeline_depth((0, 1, 0)) == 2

    def test_with_time_row_preserves_space(self):
        t = output_stationary().with_time_row([1, 1, 2])
        assert t.space((2, 3, 1)) == (2, 3)


class TestFootprints:
    def test_output_stationary_rectangular(self):
        t = output_stationary()
        fp = t.footprint(Bounds({"i": 4, "j": 4, "k": 4}), ("i", "j", "k"))
        assert fp.pe_count == 16
        assert fp.is_rectangular()

    def test_schedule_length(self):
        t = output_stationary()
        fp = t.footprint(Bounds({"i": 4, "j": 4, "k": 4}), ("i", "j", "k"))
        # t = i + j + k ranges over [0, 9].
        assert fp.schedule_length == 10

    def test_hexagonal_footprint_not_rectangular(self):
        """Figure 2c: the hexagonal transform unrolls all three indices
        onto a 2-D plane, producing a non-rectangular (hexagonal) array."""
        t = hexagonal()
        fp = t.footprint(Bounds({"i": 4, "j": 4, "k": 4}), ("i", "j", "k"))
        assert not fp.is_rectangular()
        assert fp.pe_count > 16  # more PEs than a 4x4 projection

    def test_hexagonal_is_2d(self):
        t = hexagonal()
        fp = t.footprint(Bounds({"i": 3, "j": 3, "k": 3}), ("i", "j", "k"))
        assert all(len(pos) == 2 for pos in fp.positions)


class TestClassification:
    def test_input_stationary_roles(self):
        spec = matmul_spec()
        roles = classify_dataflow(spec, input_stationary())
        assert roles["b"] == "stationary"
        assert roles["a"] == "moving"
        assert roles["c"] == "moving"

    def test_output_stationary_roles(self):
        spec = matmul_spec()
        roles = classify_dataflow(spec, output_stationary())
        assert roles["c"] == "stationary"
        assert roles["a"] == "moving"
        assert roles["b"] == "moving"

    def test_broadcast_detected(self):
        """A transform whose time row ignores j makes a (which flows along
        j) a zero-time-delta broadcast chain."""
        spec = matmul_spec()
        t = SpaceTimeTransform([[1, 0, 0], [0, 1, 0], [1, 0, 1]])
        roles = classify_dataflow(spec, t)
        assert roles["a"] == "broadcast"


class TestScheduleValidation:
    def test_named_transforms_valid(self):
        spec = matmul_spec()
        for t in (output_stationary(), input_stationary(), hexagonal()):
            validate_schedule(spec, t)  # must not raise

    def test_causality_violation_rejected(self):
        spec = matmul_spec()
        t = SpaceTimeTransform([[1, 0, 0], [0, 1, 0], [1, 1, -1]])
        with pytest.raises(SpecError):
            validate_schedule(spec, t)
