"""Tests for the merge/sort functional specs (Section III-A's
data-dependent idiom; the Figure 19a merger as a Stellar spec)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Bounds, compile_design
from repro.core.dataflow import SpaceTimeTransform
from repro.core.library import (
    MERGE_SENTINEL,
    merge_sorted_spec,
    sort_network_spec,
)
from repro.core.passes.regfile_opt import RegfileKind
from repro.rtl.lowering import lower_design


def _padded(fiber, length):
    out = np.full(length, MERGE_SENTINEL)
    out[: len(fiber)] = fiber
    return out


class TestMergeSpec:
    def _merge(self, lane_pairs, steps):
        spec = merge_sorted_spec()
        lanes = len(lane_pairs)
        A = np.stack([_padded(a, steps + 1) for a, _ in lane_pairs])
        B = np.stack([_padded(b, steps + 1) for _, b in lane_pairs])
        out = spec.interpret(Bounds({"l": lanes, "t": steps}), {"A": A, "B": B})
        return out["M"]

    def test_basic_merge(self):
        merged = self._merge([([1, 4, 9], [2, 3, 10])], steps=6)
        assert list(merged[0]) == [1, 2, 3, 4, 9, 10]

    def test_uneven_lists(self):
        merged = self._merge([([5], [1, 2, 3])], steps=4)
        assert list(merged[0]) == [1, 2, 3, 5]

    def test_one_empty_list(self):
        merged = self._merge([([], [1, 2])], steps=2)
        assert list(merged[0]) == [1, 2]

    def test_multiple_lanes_merge_independently(self):
        merged = self._merge(
            [([1, 3], [2, 4]), ([10, 30], [20, 40])], steps=4
        )
        assert list(merged[0]) == [1, 2, 3, 4]
        assert list(merged[1]) == [10, 20, 30, 40]

    def test_duplicates_preserved(self):
        merged = self._merge([([2, 2], [2])], steps=3)
        assert list(merged[0]) == [2, 2, 2]

    def test_is_data_dependent(self):
        assert merge_sorted_spec().has_data_dependent_accesses()

    @settings(max_examples=25, deadline=None)
    @given(
        a=st.lists(st.integers(-50, 50), max_size=8),
        b=st.lists(st.integers(-50, 50), min_size=1, max_size=8),
    )
    def test_property_merge_equals_sorted_concat(self, a, b):
        a, b = sorted(a), sorted(b)
        steps = len(a) + len(b)
        merged = self._merge([(a, b)], steps=steps)
        assert list(merged[0]) == sorted(a + b)


class TestMergeCompilation:
    """The merger compiles through the regular flow: Section IV-F's point
    that even non-affine-friendly structures can be built from the
    functionality language, paying the baseline-regfile cost."""

    @pytest.fixture
    def design(self):
        spec = merge_sorted_spec()
        transform = SpaceTimeTransform([[1, 0], [0, 1]])  # x=l, t=t
        return compile_design(spec, Bounds({"l": 4, "t": 8}), transform)

    def test_one_pe_per_lane(self, design):
        assert design.pe_count == 4

    def test_regfiles_fall_back_to_crossbar(self, design):
        """Data-dependent accesses force the Figure 14a baseline."""
        for plan in design.regfile_plans.values():
            assert plan.kind is RegfileKind.CROSSBAR

    def test_pointers_flow_through_time(self, design):
        for variable in ("pa", "pb"):
            conns = design.array.conns_for(variable)
            assert len(conns) == 1
            assert conns[0].is_stationary  # pointer stays in its lane PE

    def test_verilog_lints_clean(self, design):
        assert lower_design(design).lint() == []


class TestSortNetwork:
    def _sort(self, values):
        spec = sort_network_spec()
        n = len(values)
        out = spec.interpret(
            Bounds({"p": n, "e": n}), {"V": np.asarray(values)}
        )
        return list(out["S"])

    def test_small(self):
        assert self._sort([3, 1, 2]) == [1, 2, 3]

    def test_already_sorted(self):
        assert self._sort([1, 2, 3, 4]) == [1, 2, 3, 4]

    def test_reverse_sorted(self):
        assert self._sort([5, 4, 3, 2, 1]) == [1, 2, 3, 4, 5]

    def test_duplicates(self):
        assert self._sort([2, 1, 2, 1]) == [1, 1, 2, 2]

    def test_single_element(self):
        assert self._sort([7]) == [7]

    @settings(max_examples=25, deadline=None)
    @given(values=st.lists(st.integers(-99, 99), min_size=1, max_size=9))
    def test_property_sorts_everything(self, values):
        assert self._sort(values) == sorted(values)

    def test_negative_values_within_sentinel_range(self):
        assert self._sort([-5, 5, 0]) == [-5, 0, 5]
