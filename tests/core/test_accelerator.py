"""Tests for the Accelerator facade (the Figure 1 design flow)."""

import numpy as np
import pytest

from repro.core import Accelerator, Bounds, output_stationary, input_stationary
from repro.core.sparsity import csr_b_matrix
from repro.core.balancing import row_shift_scheme


@pytest.fixture
def acc(spec):
    return Accelerator(
        spec=spec,
        bounds={"i": 4, "j": 4, "k": 4},
        transform=output_stationary(),
    )


class TestFacade:
    def test_bounds_from_mapping(self, acc):
        assert isinstance(acc.bounds, Bounds)

    def test_build(self, acc):
        design = acc.build()
        assert design.pe_count == 16
        assert design.name == "matmul"

    def test_run_produces_correct_outputs(self, acc, small_matrices):
        A, B = small_matrices
        result = acc.build().run({"A": A, "B": B})
        assert np.array_equal(result.outputs["C"], A @ B)

    def test_to_verilog(self, acc):
        verilog = acc.build().to_verilog()
        assert "module matmul_top" in verilog
        assert "endmodule" in verilog

    def test_to_netlist_lints_clean(self, acc):
        assert acc.build().to_netlist().lint() == []

    def test_area_report(self, acc):
        report = acc.build().area_report()
        assert report.total > 0
        assert "Matmul array" in report.components

    def test_summary(self, acc):
        assert "matmul" in acc.build().summary()


class TestAxisReplacement:
    """Each with_* helper swaps exactly one design concern."""

    def test_with_transform(self, acc):
        other = acc.with_transform(input_stationary())
        assert other.spec is acc.spec
        assert other.transform is not acc.transform
        design = other.build()
        assert design.dataflow_roles["b"] == "stationary"

    def test_with_sparsity(self, acc, spec):
        other = acc.with_sparsity(csr_b_matrix(spec)).with_transform(
            input_stationary()
        )
        design = other.build()
        assert design.pruned_variables() == ["c"]

    def test_with_balancing(self, acc):
        other = acc.with_balancing(row_shift_scheme(2))
        assert other.build().balancer is not None
        assert acc.build().balancer is None

    def test_with_bounds(self, acc):
        other = acc.with_bounds({"i": 2, "j": 2, "k": 2})
        assert other.build().pe_count == 4

    def test_original_unchanged(self, acc):
        acc.with_bounds({"i": 2, "j": 2, "k": 2})
        assert acc.build().pe_count == 16

    def test_replacement_preserves_correctness(self, acc, small_matrices):
        """Changing the dataflow axis never changes functional results."""
        A, B = small_matrices
        for other in (
            acc,
            acc.with_transform(input_stationary()),
        ):
            result = other.build().run({"A": A, "B": B})
            assert np.array_equal(result.outputs["C"], A @ B)
