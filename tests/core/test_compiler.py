"""Integration tests for the full compilation pipeline (Section IV, Fig 7)."""

import pytest

from repro.core import SpecError, compile_design
from repro.core.balancing import flexible_pe_scheme, row_shift_scheme
from repro.core.dataflow import (
    SpaceTimeTransform,
    hexagonal,
    input_stationary,
    output_stationary,
)
from repro.core.memspec import HardcodedParams, csr_buffer, dense_matrix_buffer
from repro.core.passes.regfile_opt import RegfileKind
from repro.core.sparsity import a100_two_four, csr_b_matrix, csr_csc_both


class TestDenseCompilation:
    def test_output_stationary(self, spec, bounds4):
        design = compile_design(spec, bounds4, output_stationary())
        assert design.pe_count == 16
        assert design.array.schedule_length == 10
        assert design.pruned_variables() == []

    def test_dataflow_roles(self, spec, bounds4):
        design = compile_design(spec, bounds4, input_stationary())
        assert design.dataflow_roles["b"] == "stationary"

    def test_hexagonal(self, spec, bounds4):
        design = compile_design(spec, bounds4, hexagonal())
        assert design.pe_count > 16

    def test_regfiles_for_all_io_variables(self, spec, bounds4):
        design = compile_design(spec, bounds4, output_stationary())
        assert set(design.regfile_plans) == {"a", "b", "c"}

    def test_summary_mentions_design(self, spec, bounds4):
        design = compile_design(spec, bounds4, output_stationary())
        text = design.summary()
        assert "16 PEs" in text
        assert "regfile[b]" in text

    def test_illegal_schedule_rejected(self, spec, bounds4):
        bad = SpaceTimeTransform([[1, 0, 0], [0, 1, 0], [1, 1, -1]])
        with pytest.raises(SpecError):
            compile_design(spec, bounds4, bad)


class TestSparseCompilation:
    def test_csr_prunes_accumulation(self, spec, bounds4):
        design = compile_design(
            spec, bounds4, input_stationary(), sparsity=csr_b_matrix(spec)
        )
        assert design.pruned_variables() == ["c"]
        assert design.array.conns_for("c") == []

    def test_sparse_regfiles_fall_back_to_crossbar(self, spec, bounds4):
        """Variables whose identity involves a compressed iterator get the
        searching baseline regfile (Section IV-D)."""
        design = compile_design(
            spec, bounds4, input_stationary(), sparsity=csr_b_matrix(spec)
        )
        # b and c depend on the skipped j.
        assert design.regfile_plans["b"].kind is RegfileKind.CROSSBAR
        assert design.regfile_plans["c"].kind is RegfileKind.CROSSBAR

    def test_outer_product_compiles(self, spec, bounds4):
        design = compile_design(
            spec, bounds4, output_stationary(), sparsity=csr_csc_both(spec)
        )
        assert "c" in design.pruned_variables()

    def test_a100_keeps_connections(self, spec, bounds4):
        design = compile_design(
            spec, bounds4, output_stationary(), sparsity=a100_two_four(spec)
        )
        assert design.pruned_variables() == []
        assert any(c.bundle == 4 for c in design.array.conns)


class TestBalancedCompilation:
    def test_row_scheme_plan(self, spec, bounds4):
        design = compile_design(
            spec, bounds4, input_stationary(), balancing=row_shift_scheme(2)
        )
        assert design.balancer is not None
        assert design.balancer.granularity == "row"
        assert design.balancer.bias_vectors == [(2, 0, -1)]

    def test_flexible_scheme_plan_and_pruning(self, spec, bounds4):
        design = compile_design(
            spec, bounds4, input_stationary(), balancing=flexible_pe_scheme(4)
        )
        assert design.balancer.granularity == "pe"
        assert set(design.pruned_variables()) == {"a", "b"}

    def test_no_balancer_by_default(self, spec, bounds4):
        design = compile_design(spec, bounds4, input_stationary())
        assert design.balancer is None


class TestMembufIntegration:
    def test_wavefront_membuf_unlocks_feedforward(self, spec, bounds4):
        """The Listing 6 / Figure 13 path through the full compiler."""
        membufs = {
            "B": dense_matrix_buffer(
                "B",
                4,
                4,
                hardcoded_read=HardcodedParams(
                    spans={0: 4, 1: 4}, wavefront=True
                ),
            )
        }
        design = compile_design(
            spec, bounds4, output_stationary(), membufs=membufs
        )
        assert design.regfile_plans["b"].kind is RegfileKind.FEEDFORWARD

    def test_unhardcoded_membuf_keeps_crossbar(self, spec, bounds4):
        membufs = {"B": dense_matrix_buffer("B", 4, 4)}
        design = compile_design(
            spec, bounds4, output_stationary(), membufs=membufs
        )
        assert design.regfile_plans["b"].kind is RegfileKind.CROSSBAR

    def test_membufs_recorded(self, spec, bounds4):
        membufs = {"B": csr_buffer("B", rows=4)}
        design = compile_design(spec, bounds4, output_stationary(), membufs=membufs)
        assert "B" in design.membufs


class TestSeparationOfConcerns:
    """The paper's core pitch: each axis can change independently."""

    def test_same_spec_many_dataflows(self, spec, bounds4):
        designs = [
            compile_design(spec, bounds4, t)
            for t in (output_stationary(), input_stationary(), hexagonal())
        ]
        pe_counts = {d.pe_count for d in designs}
        assert len(pe_counts) >= 2  # dataflow alone changes the array

    def test_sparsity_changes_only_connections(self, spec, bounds4):
        dense = compile_design(spec, bounds4, input_stationary())
        sparse = compile_design(
            spec, bounds4, input_stationary(), sparsity=csr_b_matrix(spec)
        )
        assert dense.pe_count == sparse.pe_count
        assert len(sparse.array.conns) < len(dense.array.conns)

    def test_balancing_changes_only_balancer_for_row_scheme(self, spec, bounds4):
        plain = compile_design(spec, bounds4, input_stationary())
        balanced = compile_design(
            spec, bounds4, input_stationary(), balancing=row_shift_scheme(2)
        )
        assert len(plain.array.conns) == len(balanced.array.conns)
        assert plain.balancer is None and balanced.balancer is not None
