"""Tests for memory-buffer specs (Sections III-E/IV-C, Listings 6, Figs 12-13)."""

import pytest

from repro.core import SpecError
from repro.core.memspec import (
    AxisType,
    Bitvector,
    Compressed,
    Dense,
    HardcodedParams,
    LinkedList,
    MemoryBufferSpec,
    bitvector_matrix_buffer,
    block_crs_buffer,
    csc_buffer,
    csr_buffer,
    dense_matrix_buffer,
    linked_list_buffer,
)


class TestAxisFormats:
    def test_dense_has_no_metadata(self):
        assert Dense(4).metadata_kinds() == ()

    def test_compressed_metadata(self):
        assert Compressed().metadata_kinds() == ("ROW_ID", "COORD")

    def test_bitvector_metadata(self):
        assert Bitvector().metadata_kinds() == ("BITMASK",)

    def test_linked_list_metadata(self):
        assert LinkedList().metadata_kinds() == ("NEXT_PTR", "COORD")

    def test_stage_latencies_ordered(self):
        """Indirect axes cost more pipeline latency than dense ones."""
        assert Dense().stage_latency() < Compressed().stage_latency()
        assert Compressed().stage_latency() <= LinkedList().stage_latency()

    def test_sparse_flag(self):
        assert not AxisType.DENSE.is_sparse
        assert AxisType.COMPRESSED.is_sparse


class TestHardcodedParams:
    def test_listing6_wavefront_order(self):
        """Figure 13a: the hardcoded 4x4 buffer emits anti-diagonals,
        larger first coordinate first within each diagonal."""
        params = HardcodedParams(
            spans={0: 4, 1: 4}, data_strides={0: 1, 1: 4}, wavefront=True
        )
        order = params.emission_order()
        assert order[0] == (0, 0)
        assert order[1:3] == [(1, 0), (0, 1)]
        assert order[3:6] == [(2, 0), (1, 1), (0, 2)]
        assert order[-1] == (3, 3)
        assert len(order) == 16

    def test_row_major_order(self):
        params = HardcodedParams(spans={0: 2, 1: 2})
        assert params.emission_order() == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_partial_spans_not_fully_specified(self):
        params = HardcodedParams(spans={0: 4})
        assert not params.is_fully_specified(2)

    def test_emission_requires_full_spans(self):
        with pytest.raises(SpecError):
            HardcodedParams(spans={}).emission_order()


class TestMemoryBufferSpec:
    def test_empty_axes_rejected(self):
        with pytest.raises(SpecError):
            MemoryBufferSpec("b", [])

    def test_invalid_capacity_rejected(self):
        with pytest.raises(SpecError):
            MemoryBufferSpec("b", [Dense(4)], capacity_bytes=0)

    def test_csr_pipeline(self):
        """CSR = Dense over Compressed (Section III-E's worked example)."""
        spec = csr_buffer("B", rows=8)
        assert [a.axis_type for a in spec.axes] == [
            AxisType.DENSE,
            AxisType.COMPRESSED,
        ]
        assert spec.pipeline_stage_latencies() == (1, 2)
        assert spec.access_latency() == 4

    def test_block_crs_four_stages(self):
        """Figure 12: block-CRS generates four pipeline stages."""
        spec = block_crs_buffer("W", block_rows=4)
        assert spec.rank == 4
        assert [a.axis_type for a in spec.axes] == [
            AxisType.DENSE,
            AxisType.COMPRESSED,
            AxisType.DENSE,
            AxisType.DENSE,
        ]

    def test_metadata_sram_count(self):
        assert csr_buffer("B", rows=8).metadata_sram_count() == 2
        assert dense_matrix_buffer("A", 4, 4).metadata_sram_count() == 0
        assert linked_list_buffer("L", rows=4).metadata_sram_count() == 2
        assert bitvector_matrix_buffer("V", rows=4).metadata_sram_count() == 1

    def test_capacity_elements(self):
        spec = dense_matrix_buffer("A", 4, 4, capacity_bytes=1024, element_bits=32)
        assert spec.capacity_elements() == 256

    def test_provable_read_order_requires_hardcoding(self):
        spec = dense_matrix_buffer("A", 4, 4)
        assert spec.provable_read_order() is None

    def test_provable_read_order_with_hardcoding(self):
        spec = dense_matrix_buffer(
            "A",
            4,
            4,
            hardcoded_read=HardcodedParams(spans={0: 4, 1: 4}, wavefront=True),
        )
        order = spec.provable_read_order()
        assert order is not None and order[0] == (0, 0)

    def test_sparse_buffer_order_not_provable(self):
        """Sparse axes emit data-dependent orders even when hardcoded."""
        spec = csr_buffer(
            "B", rows=4, hardcoded_read=HardcodedParams(spans={0: 4, 1: 4})
        )
        assert spec.provable_read_order() is None

    def test_csc_buffer(self):
        spec = csc_buffer("A", cols=8)
        assert spec.axes[0].axis_type is AxisType.DENSE
        assert spec.axes[1].axis_type is AxisType.COMPRESSED
