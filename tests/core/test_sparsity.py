"""Tests for sparse data-structure specs (Section III-C, Listing 2)."""

import pytest

from repro.core import Index, SpecError, Tensor, matmul_spec
from repro.core.sparsity import (
    Skip,
    SparsityStructure,
    a100_two_four,
    csr_b_matrix,
    csr_csc_both,
    diagonal_a_matrix,
    empty_rows_of_a,
)


class TestSkip:
    def test_csr_expansion_deps(self):
        """Skip j when B(k, j) == 0: j_expanded = f(k, j_compressed)."""
        j, k = Index("j"), Index("k")
        B = Tensor("B", 2)
        skip = Skip([j], B[k, j] == 0)
        assert skip.expansion_dependencies() == {"j": frozenset({"k"})}

    def test_structured_condition(self):
        i, k = Index("i"), Index("k")
        skip = Skip([i, k], i != k)
        assert skip.is_structured()
        deps = skip.expansion_dependencies()
        assert deps["i"] == frozenset({"k"})
        assert deps["k"] == frozenset({"i"})

    def test_tensor_condition_not_structured(self):
        j, k = Index("j"), Index("k")
        B = Tensor("B", 2)
        assert not Skip([j], B[k, j] == 0).is_structured()

    def test_condition_tensors(self):
        j, k = Index("j"), Index("k")
        B = Tensor("B", 2)
        skip = Skip([j], B[k, j] == 0)
        assert [t.name for t in skip.condition_tensors()] == ["B"]

    def test_empty_skip_rejected(self):
        j, k = Index("j"), Index("k")
        B = Tensor("B", 2)
        with pytest.raises(SpecError):
            Skip([], B[k, j] == 0)

    def test_optimistic_needs_bundle(self):
        j, k = Index("j"), Index("k")
        B = Tensor("B", 2)
        with pytest.raises(SpecError):
            Skip([j], B[k, j] == 0, optimistic=True, bundle=1)

    def test_bundle_without_optimistic_rejected(self):
        j, k = Index("j"), Index("k")
        B = Tensor("B", 2)
        with pytest.raises(SpecError):
            Skip([j], B[k, j] == 0, bundle=4)

    def test_validate_against_unknown_index(self):
        spec = matmul_spec()
        z = Index("z")
        B = Tensor("B", 2)
        skip = Skip([z], B[Index("k"), Index("j")] == 0)
        with pytest.raises(SpecError):
            skip.validate_against(spec)

    def test_validate_against_unknown_condition_index(self):
        spec = matmul_spec()
        j, z = Index("j"), Index("z")
        B = Tensor("B", 2)
        skip = Skip([j], B[z, j] == 0)
        with pytest.raises(SpecError):
            skip.validate_against(spec)

    def test_repr_mentions_kind(self):
        j, k = Index("j"), Index("k")
        B = Tensor("B", 2)
        assert "Skip" in repr(Skip([j], B[k, j] == 0))
        assert "OptimisticSkip" in repr(
            Skip([j], B[k, j] == 0, optimistic=True, bundle=4)
        )


class TestSparsityStructure:
    def test_dense_by_default(self):
        assert SparsityStructure().is_dense()

    def test_merged_expansion_deps(self):
        spec = matmul_spec()
        structure = csr_csc_both(spec)
        deps = structure.expansion_dependencies()
        assert deps["i"] == frozenset({"k"})
        assert deps["j"] == frozenset({"k"})

    def test_skipped_iterators(self):
        spec = matmul_spec()
        assert csr_csc_both(spec).skipped_iterators() == frozenset({"i", "j"})

    def test_optimistic_bundles_excluded_from_expansion(self):
        spec = matmul_spec()
        structure = a100_two_four(spec)
        assert structure.expansion_dependencies() == {}
        assert structure.optimistic_bundles() == {"k": 4}

    def test_len_and_iter(self):
        spec = matmul_spec()
        structure = csr_csc_both(spec)
        assert len(structure) == 2
        assert len(list(structure)) == 2


class TestCanonicalStructures:
    def test_csr_b(self):
        """Listing 5."""
        spec = matmul_spec()
        structure = csr_b_matrix(spec)
        assert structure.skipped_iterators() == frozenset({"j"})
        structure.validate_against(spec)

    def test_diagonal(self):
        """Listing 2 line 5."""
        spec = matmul_spec()
        structure = diagonal_a_matrix(spec)
        assert structure.skipped_iterators() == frozenset({"i", "k"})
        assert all(s.is_structured() for s in structure)

    def test_empty_rows(self):
        """Listing 2 line 7: wildcard row condition."""
        spec = matmul_spec()
        structure = empty_rows_of_a(spec)
        skip = structure.skips[0]
        assert skip.skipped_names == ("k",)
        # The wildcard access contributes i to the expansion dependencies.
        assert skip.expansion_dependencies()["k"] == frozenset({"i"})

    def test_a100(self):
        """Figure 5: 2:4 structured sparsity."""
        spec = matmul_spec()
        structure = a100_two_four(spec)
        skip = structure.skips[0]
        assert skip.optimistic
        assert skip.bundle == 4
