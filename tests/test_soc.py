"""Tests for the SoC integration layer (shared L2, host CPU, tiling)."""

import numpy as np
import pytest

from repro.core import Accelerator, matmul_spec
from repro.core.dataflow import output_stationary
from repro.sim.dram import DRAMModel
from repro.soc import CachedMemorySystem, L2Cache, StellarSoC


@pytest.fixture
def design():
    return Accelerator(
        spec=matmul_spec(),
        bounds={"i": 4, "j": 4, "k": 4},
        transform=output_stationary(),
    ).build()


class TestL2Cache:
    def test_first_access_misses(self):
        cache = L2Cache()
        assert cache.access(0x1000) is False

    def test_second_access_hits(self):
        cache = L2Cache()
        cache.access(0x1000)
        assert cache.access(0x1000) is True

    def test_same_line_hits(self):
        cache = L2Cache(line_bytes=64)
        cache.access(0x1000)
        assert cache.access(0x1000 + 63) is True
        assert cache.access(0x1000 + 64) is False

    def test_lru_eviction(self):
        cache = L2Cache(capacity_bytes=2 * 64 * 1, line_bytes=64, ways=2)
        # One set, two ways: the third distinct line evicts the LRU.
        cache.access(0 * 64)
        cache.access(1 * 64)
        cache.access(2 * 64)  # evicts line 0
        assert cache.evictions == 1
        assert cache.access(0 * 64) is False

    def test_lru_refresh_on_hit(self):
        cache = L2Cache(capacity_bytes=2 * 64, line_bytes=64, ways=2)
        cache.access(0 * 64)
        cache.access(1 * 64)
        cache.access(0 * 64)  # refresh line 0
        cache.access(2 * 64)  # should evict line 1, not line 0
        assert cache.access(0 * 64) is True

    def test_dirty_writeback_counted(self):
        cache = L2Cache(capacity_bytes=2 * 64, line_bytes=64, ways=2)
        cache.access(0 * 64, is_write=True)
        cache.access(1 * 64)
        cache.access(2 * 64)  # evicts dirty line 0
        assert cache.writebacks == 1

    def test_access_range_counts_lines(self):
        cache = L2Cache(line_bytes=64)
        hit, missed = cache.access_range(0, 256)
        assert (hit, missed) == (0, 4)
        hit, missed = cache.access_range(0, 256)
        assert (hit, missed) == (4, 0)

    def test_hit_rate(self):
        cache = L2Cache()
        cache.access(0)
        cache.access(0)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            L2Cache(capacity_bytes=1000, line_bytes=64, ways=8)


class TestCachedMemorySystem:
    def test_no_cache_is_plain_dram(self):
        memory = CachedMemorySystem(DRAMModel(latency=90))
        done = memory.request(0, 64, address=0x1000)
        assert done >= 90

    def test_hot_data_served_faster(self):
        memory = CachedMemorySystem(
            DRAMModel(latency=90), L2Cache(hit_latency=20)
        )
        cold = memory.request(0, 64, address=0x1000)
        hot = memory.request(0, 64, address=0x1000)
        assert hot < cold

    def test_addressless_requests_bypass_cache(self):
        cache = L2Cache()
        memory = CachedMemorySystem(DRAMModel(latency=90), cache)
        memory.request(0, 64)
        assert cache.hits + cache.misses == 0


class TestStellarSoC:
    def test_tiled_matmul_correct(self, design, rng):
        soc = StellarSoC(design, l2=L2Cache())
        a = rng.integers(-3, 4, (8, 8))
        b = rng.integers(-3, 4, (8, 8))
        report = soc.run_tiled_matmul(a, b, tile=4)
        assert np.array_equal(report["output"], a @ b)

    def test_cycle_accounting(self, design, rng):
        soc = StellarSoC(design, l2=L2Cache())
        a = rng.integers(-3, 4, (8, 8))
        b = rng.integers(-3, 4, (8, 8))
        report = soc.run_tiled_matmul(a, b, tile=4)
        assert report["total_cycles"] == (
            report["host_cycles"]
            + report["memory_cycles"]
            + report["compute_cycles"]
        )
        assert report["host_cycles"] > 0
        assert len(report["tiles"]) == 8  # 2x2 output tiles x 2 k-tiles

    def test_l2_absorbs_operand_reuse(self, design, rng):
        """Section IV-F's mitigation: re-read tiles hit in the shared L2,
        so the cached SoC spends fewer memory cycles than an uncached one."""
        a = rng.integers(-3, 4, (16, 16))
        b = rng.integers(-3, 4, (16, 16))
        with_l2 = StellarSoC(design, l2=L2Cache())
        without_l2 = StellarSoC(design, l2=None)
        r_with = with_l2.run_tiled_matmul(a, b, tile=4)
        r_without = without_l2.run_tiled_matmul(a, b, tile=4)
        assert r_with["l2_hit_rate"] > 0.3
        assert r_with["memory_cycles"] < r_without["memory_cycles"]
        assert np.array_equal(r_with["output"], r_without["output"])

    def test_tile_mismatch_rejected(self, design, rng):
        soc = StellarSoC(design)
        a = rng.integers(0, 2, (8, 8))
        with pytest.raises(ValueError):
            soc.run_tiled_matmul(a, a, tile=8)  # design compiled for 4

    def test_indivisible_shape_rejected(self, design, rng):
        soc = StellarSoC(design)
        a = rng.integers(0, 2, (6, 6))
        with pytest.raises(ValueError):
            soc.run_tiled_matmul(a, a, tile=4)

    def test_rectangular_operands_rejected(self, design, rng):
        soc = StellarSoC(design)
        a = rng.integers(0, 2, (8, 4))
        b = rng.integers(0, 2, (4, 8))
        with pytest.raises(ValueError, match="square"):
            soc.run_tiled_matmul(a, b, tile=4)

    def test_uncached_soc_reports_zero_hit_rate(self, design, rng):
        soc = StellarSoC(design, l2=None)
        assert soc.l2 is None
        a = rng.integers(-3, 4, (8, 8))
        report = soc.run_tiled_matmul(a, a, tile=4)
        assert report["l2_hit_rate"] == 0.0
        assert np.array_equal(report["output"], a @ a)

    def test_wider_elements_cost_more_memory_cycles(self, design, rng):
        """Tile transfers are sized in bytes: 4-byte elements move four
        times the traffic of 1-byte elements over the same DRAM."""
        a = rng.integers(-3, 4, (8, 8))
        narrow = StellarSoC(design, element_bytes=1)
        wide = StellarSoC(design, element_bytes=4)
        r_narrow = narrow.run_tiled_matmul(a, a, tile=4)
        r_wide = wide.run_tiled_matmul(a, a, tile=4)
        assert r_wide["memory_cycles"] > r_narrow["memory_cycles"]
        assert r_wide["compute_cycles"] == r_narrow["compute_cycles"]

    def test_host_cycles_count_issue_instructions(self, design, rng):
        """Every tile invocation issues two DMA configure sequences
        (A tile + B tile) at the Table II instruction cost."""
        from repro.soc.soc import (
            HOST_CYCLES_PER_INSTRUCTION,
            INSTRUCTIONS_PER_TRANSFER,
        )

        soc = StellarSoC(design)
        a = rng.integers(-3, 4, (8, 8))
        report = soc.run_tiled_matmul(a, a, tile=4)
        transfers = 2 * len(report["tiles"])
        assert report["host_cycles"] == (
            transfers * INSTRUCTIONS_PER_TRANSFER * HOST_CYCLES_PER_INSTRUCTION
        )
