"""Shared fixtures for the Stellar reproduction test suite."""

import numpy as np
import pytest

from repro.core import Bounds, matmul_spec


@pytest.fixture
def spec():
    """A fresh matmul spec (paper Listing 1)."""
    return matmul_spec()


@pytest.fixture
def bounds4():
    return Bounds({"i": 4, "j": 4, "k": 4})


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def small_matrices(rng):
    """A pair of 4x4 integer matrices."""
    return (
        rng.integers(-5, 6, (4, 4)),
        rng.integers(-5, 6, (4, 4)),
    )
