"""Tests for the spatial-array simulator (Figures 6 and 11 behaviours)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Bounds, compile_design, matmul_spec
from repro.core.balancing import flexible_pe_scheme, row_shift_scheme
from repro.core.dataflow import hexagonal, input_stationary, output_stationary
from repro.core.sparsity import csr_b_matrix, csr_csc_both, diagonal_a_matrix
from repro.sim.spatial_array import SpatialArraySim


def _run(design, A, B):
    return SpatialArraySim(design).run({"A": A, "B": B})


class TestDenseExecution:
    @pytest.mark.parametrize(
        "transform",
        [output_stationary(), input_stationary(), hexagonal()],
        ids=["output-stationary", "input-stationary", "hexagonal"],
    )
    def test_matches_numpy(self, spec, bounds4, small_matrices, transform):
        A, B = small_matrices
        design = compile_design(spec, bounds4, transform)
        result = _run(design, A, B)
        assert np.array_equal(result.outputs["C"], A @ B)

    def test_cycle_count_is_schedule_length(self, spec, bounds4, small_matrices):
        A, B = small_matrices
        design = compile_design(spec, bounds4, output_stationary())
        result = _run(design, A, B)
        assert result.cycles == 10  # t = i + j + k over [0, 9]

    def test_utilization_matches_bound(self, spec, bounds4, small_matrices):
        A, B = small_matrices
        design = compile_design(spec, bounds4, output_stationary())
        result = _run(design, A, B)
        assert result.utilization == pytest.approx(
            design.array.utilization_bound()
        )

    def test_mac_count(self, spec, bounds4, small_matrices):
        A, B = small_matrices
        design = compile_design(spec, bounds4, output_stationary())
        result = _run(design, A, B)
        assert result.counters.macs == 64  # 4^3

    def test_fill_drain_overhead_charged(self, spec, bounds4, small_matrices):
        A, B = small_matrices
        design = compile_design(spec, bounds4, output_stationary())
        plain = SpatialArraySim(design).run({"A": A, "B": B})
        padded = SpatialArraySim(design, fill_drain_overhead=7).run(
            {"A": A, "B": B}
        )
        assert padded.cycles == plain.cycles + 7
        assert padded.utilization < plain.utilization

    def test_pipelined_time_row_stretches_schedule(self, spec, bounds4, small_matrices):
        """Figure 3: scaling the time row lengthens the schedule but the
        results are unchanged."""
        A, B = small_matrices
        base = compile_design(spec, bounds4, output_stationary())
        deep = compile_design(
            spec, bounds4, output_stationary().with_time_row([2, 2, 2])
        )
        r_base, r_deep = _run(base, A, B), _run(deep, A, B)
        assert np.array_equal(r_deep.outputs["C"], r_base.outputs["C"])
        assert r_deep.cycles > r_base.cycles

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(2, 5),
        seed=st.integers(0, 2**31 - 1),
        which=st.sampled_from(["os", "is", "hex"]),
    )
    def test_property_dataflow_never_changes_results(self, n, seed, which):
        """Functionality and dataflow are independent axes: any legal
        transform computes the same matmul."""
        rng = np.random.default_rng(seed)
        A = rng.integers(-6, 7, (n, n))
        B = rng.integers(-6, 7, (n, n))
        transform = {
            "os": output_stationary(),
            "is": input_stationary(),
            "hex": hexagonal(),
        }[which]
        spec = matmul_spec()
        design = compile_design(spec, Bounds({"i": n, "j": n, "k": n}), transform)
        result = SpatialArraySim(design).run({"A": A, "B": B})
        assert np.array_equal(result.outputs["C"], A @ B)


class TestSparseExecution:
    def test_csr_correctness(self, spec, bounds4, rng):
        A = rng.integers(-4, 5, (4, 4))
        B = rng.integers(-4, 5, (4, 4)) * (rng.random((4, 4)) < 0.4)
        design = compile_design(
            spec, bounds4, input_stationary(), sparsity=csr_b_matrix(spec)
        )
        result = _run(design, A, B)
        assert np.array_equal(result.outputs["C"], A @ B)

    def test_sparser_input_runs_faster(self, spec, rng):
        n = 8
        bounds = Bounds({"i": n, "j": n, "k": n})
        A = rng.integers(1, 5, (n, n))
        B_dense = rng.integers(1, 5, (n, n))
        B_sparse = B_dense * (rng.random((n, n)) < 0.2)
        design = compile_design(
            spec, bounds, input_stationary(), sparsity=csr_b_matrix(spec)
        )
        dense_run = _run(design, A, B_dense)
        sparse_run = _run(design, A, B_sparse)
        assert sparse_run.cycles < dense_run.cycles

    def test_empty_matrix(self, spec, bounds4, rng):
        A = rng.integers(1, 5, (4, 4))
        B = np.zeros((4, 4), dtype=int)
        design = compile_design(
            spec, bounds4, input_stationary(), sparsity=csr_b_matrix(spec)
        )
        result = _run(design, A, B)
        assert result.counters.macs == 0

    def test_outer_product_correctness(self, spec, bounds4, rng):
        A = rng.integers(-4, 5, (4, 4)) * (rng.random((4, 4)) < 0.5)
        B = rng.integers(-4, 5, (4, 4)) * (rng.random((4, 4)) < 0.5)
        design = compile_design(
            spec, bounds4, output_stationary(), sparsity=csr_csc_both(spec)
        )
        result = _run(design, A, B)
        assert np.array_equal(result.outputs["C"], A @ B)

    def test_diagonal_skip(self, spec, bounds4, rng):
        """Listing 2 line 5: only the i == k iterations execute."""
        A = np.diag(rng.integers(1, 5, 4))
        B = rng.integers(-4, 5, (4, 4))
        design = compile_design(
            spec, bounds4, output_stationary(), sparsity=diagonal_a_matrix(spec)
        )
        result = _run(design, A, B)
        assert result.counters.macs <= 16  # diagonal plane only

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(2, 6),
        density=st.floats(0.1, 0.9),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_property_sparse_correct_and_no_slower(self, n, density, seed):
        """Sparse execution is always correct and never slower than the
        dense schedule of the same design."""
        rng = np.random.default_rng(seed)
        A = rng.integers(-5, 6, (n, n))
        B = rng.integers(-5, 6, (n, n)) * (rng.random((n, n)) < density)
        spec = matmul_spec()
        bounds = Bounds({"i": n, "j": n, "k": n})
        design = compile_design(
            spec, bounds, input_stationary(), sparsity=csr_b_matrix(spec)
        )
        result = SpatialArraySim(design).run({"A": A, "B": B})
        assert np.array_equal(result.outputs["C"], A @ B)
        dense_schedule = 3 * (n - 1) + 1
        assert result.cycles <= dense_schedule


class TestLoadBalancedExecution:
    def _imbalanced(self, n, rng):
        A = rng.integers(1, 5, (n, n))
        B = np.zeros((n, n), dtype=int)
        B[0, :] = rng.integers(1, 5, n)  # one long row, rest nearly empty
        B[n // 2, 0] = 3
        return A, B

    def test_balancing_reduces_cycles(self, spec, rng):
        """Figure 6: adjacent-row balancing shortens imbalanced runs."""
        n = 8
        bounds = Bounds({"i": n, "j": n, "k": n})
        A, B = self._imbalanced(n, rng)
        base = compile_design(
            spec, bounds, input_stationary(), sparsity=csr_b_matrix(spec)
        )
        balanced = compile_design(
            spec,
            bounds,
            input_stationary(),
            sparsity=csr_b_matrix(spec),
            balancing=row_shift_scheme(n // 2),
        )
        r_base = _run(base, A, B)
        r_bal = _run(balanced, A, B)
        assert r_bal.cycles < r_base.cycles
        assert r_bal.counters.balancer_shifts > 0

    def test_balancing_preserves_results(self, spec, rng):
        n = 8
        bounds = Bounds({"i": n, "j": n, "k": n})
        A, B = self._imbalanced(n, rng)
        balanced = compile_design(
            spec,
            bounds,
            input_stationary(),
            sparsity=csr_b_matrix(spec),
            balancing=row_shift_scheme(n // 2),
        )
        result = _run(balanced, A, B)
        assert np.array_equal(result.outputs["C"], A @ B)

    def test_balanced_never_slower(self, spec, rng):
        """Balancing may be a no-op but must never lengthen the schedule."""
        n = 6
        bounds = Bounds({"i": n, "j": n, "k": n})
        for _ in range(5):
            A = rng.integers(1, 5, (n, n))
            B = rng.integers(0, 3, (n, n)) * (rng.random((n, n)) < 0.5)
            base = compile_design(
                spec, bounds, input_stationary(), sparsity=csr_b_matrix(spec)
            )
            balanced = compile_design(
                spec,
                bounds,
                input_stationary(),
                sparsity=csr_b_matrix(spec),
                balancing=row_shift_scheme(n // 2),
            )
            assert _run(balanced, A, B).cycles <= _run(base, A, B).cycles

    def test_pe_granular_balancing(self, spec, rng):
        n = 8
        bounds = Bounds({"i": n, "j": n, "k": n})
        A, B = self._imbalanced(n, rng)
        balanced = compile_design(
            spec,
            bounds,
            input_stationary(),
            sparsity=csr_b_matrix(spec),
            balancing=flexible_pe_scheme(n),
        )
        result = _run(balanced, A, B)
        assert np.array_equal(result.outputs["C"], A @ B)
