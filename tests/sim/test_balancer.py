"""Tests for the load-balancer makespan simulators (Figure 6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.balancing import (
    LoadBalancingScheme,
    flexible_pe_scheme,
    row_shift_scheme,
)
from repro.sim.balancer import (
    balanced_makespan,
    spatial_balanced_makespan,
    speedup_from_balancing,
    unbalanced_makespan,
)


class TestUnbalanced:
    def test_longest_queue_dominates(self):
        result = unbalanced_makespan([10, 2, 1, 1])
        assert result.cycles == 10

    def test_empty(self):
        assert unbalanced_makespan([]).cycles == 0

    def test_utilization(self):
        result = unbalanced_makespan([4, 4, 4, 4])
        assert result.utilization() == 1.0


class TestShiftBased:
    def test_listing3_scheme_helps(self):
        """Rows [N, 2N) donate to rows [0, N) when those idle."""
        scheme = row_shift_scheme(2)
        # Rows 0-1 idle early; rows 2-3 overloaded.
        result = balanced_makespan([1, 1, 9, 9], scheme)
        base = unbalanced_makespan([1, 1, 9, 9])
        assert result.cycles < base.cycles
        assert result.shifts > 0

    def test_disabled_scheme_is_unbalanced(self):
        result = balanced_makespan([5, 1], LoadBalancingScheme())
        assert result.cycles == 5
        assert result.shifts == 0

    def test_flexible_scheme(self):
        scheme = flexible_pe_scheme(2)
        result = balanced_makespan([9, 1, 1, 1], scheme)
        # Row 0 is the only target; it has the most work, so nothing moves.
        assert result.cycles == 9

    def test_work_conserved(self):
        scheme = row_shift_scheme(2)
        work = [1, 1, 9, 9]
        result = balanced_makespan(work, scheme)
        assert sum(result.per_row_busy) == sum(work)


class TestSpatialBalancer:
    def test_row_granularity_adjacent_only(self):
        """Figure 6: only direct adjacent rows can share work."""
        result = spatial_balanced_makespan([12, 0, 0, 0], "row")
        # Only row 1 can steal from row 0.
        assert result.cycles == 7  # 12 split ~6/6 between rows 0 and 1
        assert result.per_row_busy[2] == 0
        assert result.per_row_busy[3] == 0

    def test_pe_granularity_reaches_distant_rows(self):
        """A row with no working neighbour only gets work at PE
        granularity (each donor feeds at most one stealer per cycle)."""
        row = spatial_balanced_makespan([12, 12, 0, 0, 0], "row")
        pe = spatial_balanced_makespan([12, 12, 0, 0, 0], "pe")
        assert row.per_row_busy[3] == 0
        assert pe.per_row_busy[3] > 0
        assert pe.cycles <= row.cycles

    def test_pe_granularity_never_worse_than_row(self):
        for work in ([12, 0, 0, 0], [9, 1, 2, 0], [4, 4, 4, 4]):
            row = spatial_balanced_makespan(list(work), "row")
            pe = spatial_balanced_makespan(list(work), "pe")
            assert pe.cycles <= row.cycles

    def test_invalid_granularity_rejected(self):
        with pytest.raises(ValueError):
            spatial_balanced_makespan([1], "diagonal")

    def test_balanced_work_unchanged(self):
        result = spatial_balanced_makespan([4, 4, 4, 4], "pe")
        assert result.cycles == 4
        assert result.shifts == 0

    @settings(max_examples=30, deadline=None)
    @given(
        work=st.lists(st.integers(0, 40), min_size=2, max_size=12),
        granularity=st.sampled_from(["row", "pe"]),
    )
    def test_property_balancing_never_slower(self, work, granularity):
        if sum(work) == 0:
            return
        balanced = spatial_balanced_makespan(work, granularity)
        assert balanced.cycles <= max(work) if max(work) else True
        # All work is executed exactly once.
        assert sum(balanced.per_row_busy) == sum(work)

    @settings(max_examples=30, deadline=None)
    @given(work=st.lists(st.integers(0, 40), min_size=2, max_size=12))
    def test_property_makespan_lower_bound(self, work):
        """No schedule can beat ceil(total / rows)."""
        if sum(work) == 0:
            return
        balanced = spatial_balanced_makespan(work, "pe")
        assert balanced.cycles >= -(-sum(work) // len(work))


class TestSpeedup:
    def test_speedup_at_least_one(self):
        scheme = row_shift_scheme(2)
        assert speedup_from_balancing([1, 1, 9, 9], scheme) >= 1.0

    def test_no_speedup_when_balanced(self):
        scheme = row_shift_scheme(2)
        assert speedup_from_balancing([5, 5, 5, 5], scheme) == pytest.approx(1.0)
