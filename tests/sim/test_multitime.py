"""Tests for multi-dimensional-time transforms (4-index specs).

A spec with more indices than physical dimensions must fold the surplus
axes into *time*; the transform then has ``time_dims > 1`` and timesteps
order lexicographically.  The canonical case: a batched matmul on a 2-D
array, with the batch axis as the outer time dimension.
"""

import numpy as np
import pytest

from repro.core import Bounds, compile_design
from repro.core.dataflow import SpaceTimeTransform
from repro.core.functionality import batched_matmul_spec
from repro.sim.spatial_array import SpatialArraySim


@pytest.fixture(scope="module")
def transform():
    # space = (i, j); time = (n, i+j+k).
    return SpaceTimeTransform(
        [[0, 1, 0, 0], [0, 0, 1, 0], [1, 0, 0, 0], [0, 1, 1, 1]],
        space_dims=2,
    )


class TestBatchedMatmul:
    def test_transform_shape(self, transform):
        assert transform.space_dims == 2
        assert transform.time_dims == 2

    def test_correctness(self, transform, rng):
        spec = batched_matmul_spec()
        A = rng.integers(-3, 4, (2, 3, 4))
        B = rng.integers(-3, 4, (2, 4, 3))
        design = compile_design(
            spec, Bounds({"n": 2, "i": 3, "j": 3, "k": 4}), transform
        )
        result = SpatialArraySim(design).run({"A": A, "B": B})
        assert np.array_equal(result.outputs["C"], A @ B)

    def test_batch_folds_into_time(self, transform, rng):
        """Doubling the batch count doubles the schedule, not the array."""
        spec = batched_matmul_spec()
        designs = {}
        results = {}
        for batches in (1, 2):
            A = rng.integers(-3, 4, (batches, 3, 3))
            B = rng.integers(-3, 4, (batches, 3, 3))
            design = compile_design(
                spec, Bounds({"n": batches, "i": 3, "j": 3, "k": 3}), transform
            )
            designs[batches] = design
            results[batches] = SpatialArraySim(design).run({"A": A, "B": B})
        assert designs[1].pe_count == designs[2].pe_count
        assert results[2].cycles == 2 * results[1].cycles

    def test_pe_count_is_spatial_projection(self, transform):
        spec = batched_matmul_spec()
        design = compile_design(
            spec, Bounds({"n": 4, "i": 3, "j": 3, "k": 3}), transform
        )
        assert design.pe_count == 9  # 3x3 (i, j) plane only

    def test_timesteps_lexicographic(self, transform):
        """Batch 0's steps all precede batch 1's."""
        points = [(0, 1, 1, 1), (1, 0, 0, 0)]
        times = [transform.apply(p)[2:] for p in points]
        assert times[0] < times[1]
