"""Tests for the register-file simulators (Figure 14 variants)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.passes.regfile_opt import RegfileKind
from repro.sim.regfile import RegfileError, RegfileSim


class TestFeedforward:
    def test_in_order_reads(self):
        rf = RegfileSim(RegfileKind.FEEDFORWARD)
        rf.write((0, 0), 10)
        rf.write((0, 1), 20)
        assert rf.read((0, 0)) == 10
        assert rf.read((0, 1)) == 20

    def test_out_of_order_read_rejected(self):
        """The compiler proved order equality; the model enforces it."""
        rf = RegfileSim(RegfileKind.FEEDFORWARD)
        rf.write((0, 0), 10)
        rf.write((0, 1), 20)
        with pytest.raises(RegfileError):
            rf.read((0, 1))

    def test_empty_read_rejected(self):
        with pytest.raises(RegfileError):
            RegfileSim(RegfileKind.FEEDFORWARD).read((0,))

    def test_search_is_single_entry(self):
        rf = RegfileSim(RegfileKind.FEEDFORWARD)
        for n in range(8):
            rf.write((n,), n)
        for n in range(8):
            rf.read((n,))
        assert rf.searched_entries == 8  # one entry observed per read

    @settings(max_examples=25, deadline=None)
    @given(values=st.lists(st.integers(), min_size=1, max_size=30))
    def test_property_fifo_order(self, values):
        rf = RegfileSim(RegfileKind.FEEDFORWARD)
        for pos, value in enumerate(values):
            rf.write((pos,), value)
        out = [rf.read((pos,)) for pos in range(len(values))]
        assert out == values


class TestTransposing:
    def test_reads_transposed_coordinates(self):
        """Figure 14d: the regfile transposes the layout in its wiring."""
        rf = RegfileSim(RegfileKind.TRANSPOSING)
        rf.write((0, 1), "a")  # readable at (1, 0)
        rf.write((2, 3), "b")  # readable at (3, 2)
        assert rf.read((1, 0)) == "a"
        assert rf.read((3, 2)) == "b"

    def test_untransposed_read_rejected(self):
        rf = RegfileSim(RegfileKind.TRANSPOSING)
        rf.write((0, 1), "a")
        with pytest.raises(RegfileError):
            rf.read((0, 1))


class TestEdgeAndCrossbar:
    @pytest.mark.parametrize("kind", [RegfileKind.EDGE, RegfileKind.CROSSBAR])
    def test_any_order_reads(self, kind):
        rf = RegfileSim(kind)
        for n in range(6):
            rf.write((n,), n * 10)
        for n in (3, 0, 5, 1, 4, 2):
            assert rf.read((n,)) == n * 10

    def test_missing_coordinate_rejected(self):
        rf = RegfileSim(RegfileKind.CROSSBAR)
        rf.write((1,), 1)
        with pytest.raises(RegfileError):
            rf.read((9,))

    def test_crossbar_searches_all_entries(self):
        """Figure 14a: every output searches every entry."""
        rf = RegfileSim(RegfileKind.CROSSBAR)
        for n in range(10):
            rf.write((n,), n)
        rf.read((5,))
        assert rf.searched_entries == 10

    def test_edge_searches_one(self):
        rf = RegfileSim(RegfileKind.EDGE)
        for n in range(10):
            rf.write((n,), n)
        rf.read((5,))
        assert rf.searched_entries == 1

    def test_read_consumes(self):
        rf = RegfileSim(RegfileKind.CROSSBAR)
        rf.write((1,), 1)
        rf.read((1,))
        with pytest.raises(RegfileError):
            rf.read((1,))


class TestCommon:
    def test_capacity_enforced(self):
        rf = RegfileSim(RegfileKind.FEEDFORWARD, capacity=2)
        rf.write((0,), 0)
        rf.write((1,), 1)
        with pytest.raises(RegfileError):
            rf.write((2,), 2)

    def test_peek_does_not_consume(self):
        rf = RegfileSim(RegfileKind.CROSSBAR)
        rf.write((1,), 42)
        assert rf.peek((1,)) == 42
        assert rf.read((1,)) == 42

    def test_peek_missing_is_none(self):
        assert RegfileSim(RegfileKind.EDGE).peek((0,)) is None

    def test_peek_transposing(self):
        rf = RegfileSim(RegfileKind.TRANSPOSING)
        rf.write((0, 1), "a")
        assert rf.peek((1, 0)) == "a"

    def test_access_latency_ordering(self):
        ff = RegfileSim(RegfileKind.FEEDFORWARD)
        xb = RegfileSim(RegfileKind.CROSSBAR)
        assert ff.access_latency() < xb.access_latency()

    def test_counters(self):
        rf = RegfileSim(RegfileKind.EDGE)
        rf.write((0,), 0)
        rf.read((0,))
        assert rf.writes == 1 and rf.reads == 1
