"""Tests for the memory-buffer simulator (Figures 12-13)."""

import numpy as np
import pytest

from repro.core.memspec import (
    HardcodedParams,
    bitvector_matrix_buffer,
    block_crs_buffer,
    csr_buffer,
    dense_matrix_buffer,
    linked_list_buffer,
)
from repro.sim.membuf import MemBufSim


@pytest.fixture
def dense_buf():
    return MemBufSim(dense_matrix_buffer("A", 4, 4))


@pytest.fixture
def sparse_matrix(rng):
    return (rng.random((4, 4)) < 0.5) * rng.integers(1, 9, (4, 4))


class TestLoadAndRead:
    def test_dense_roundtrip(self, dense_buf, rng):
        data = rng.integers(0, 9, (4, 4))
        dense_buf.load(data)
        for r in range(4):
            for c in range(4):
                value, _ = dense_buf.read_element((r, c))
                assert value == data[r, c]

    def test_csr_roundtrip(self, sparse_matrix):
        buf = MemBufSim(csr_buffer("B", rows=4))
        buf.load(sparse_matrix)
        for r in range(4):
            for c in range(4):
                value, _ = buf.read_element((r, c))
                assert value == sparse_matrix[r, c]

    def test_bitvector_roundtrip(self, sparse_matrix):
        buf = MemBufSim(bitvector_matrix_buffer("V", rows=4))
        buf.load(sparse_matrix)
        assert np.allclose(buf.tensor.to_dense(), sparse_matrix)

    def test_linked_list_roundtrip(self, sparse_matrix):
        buf = MemBufSim(linked_list_buffer("L", rows=4))
        buf.load(sparse_matrix)
        assert np.allclose(buf.tensor.to_dense(), sparse_matrix)

    def test_empty_read_rejected(self, dense_buf):
        with pytest.raises(RuntimeError):
            dense_buf.read_element((0, 0))

    def test_capacity_enforced(self, rng):
        buf = MemBufSim(dense_matrix_buffer("A", 64, 64, capacity_bytes=64))
        with pytest.raises(ValueError):
            buf.load(rng.integers(1, 5, (64, 64)))


class TestTiming:
    def test_dense_access_latency(self, dense_buf, rng):
        dense_buf.load(rng.integers(0, 9, (4, 4)), start_cycle=0)
        start = dense_buf.busy_until
        _, done = dense_buf.read_element((0, 0), start_cycle=start)
        # Two dense stages + data SRAM read.
        assert done == start + 3

    def test_compressed_latency_higher(self, sparse_matrix):
        dense = MemBufSim(dense_matrix_buffer("A", 4, 4))
        sparse = MemBufSim(csr_buffer("B", rows=4))
        assert sparse.spec.access_latency() > dense.spec.access_latency()

    def test_stream_read_pipelines(self, dense_buf, rng):
        dense_buf.load(rng.integers(0, 9, (4, 4)))
        start = dense_buf.busy_until
        done = dense_buf.stream_read(16, start_cycle=start)
        # Pipelined: latency + n - 1.
        assert done == start + dense_buf.spec.access_latency() + 15

    def test_linked_list_stalls_per_element(self, sparse_matrix):
        ll = MemBufSim(linked_list_buffer("L", rows=4))
        ll.load(sparse_matrix)
        csr = MemBufSim(csr_buffer("B", rows=4))
        csr.load(sparse_matrix)
        ll_start, csr_start = ll.busy_until, csr.busy_until
        ll_done = ll.stream_read(16, start_cycle=ll_start)
        csr_done = csr.stream_read(16, start_cycle=csr_start)
        assert (ll_done - ll_start) > (csr_done - csr_start)

    def test_stream_of_zero(self, dense_buf, rng):
        dense_buf.load(rng.integers(0, 9, (4, 4)))
        assert dense_buf.stream_read(0, start_cycle=99) == 99


class TestEmissionOrders:
    def test_wavefront_emission(self, rng):
        spec = dense_matrix_buffer(
            "A",
            4,
            4,
            hardcoded_read=HardcodedParams(spans={0: 4, 1: 4}, wavefront=True),
        )
        buf = MemBufSim(spec)
        data = rng.integers(0, 9, (4, 4))
        buf.load(data)
        elements = buf.emit_elements()
        assert elements[0] == ((0, 0), data[0, 0])
        assert [e[0] for e in elements[1:3]] == [(1, 0), (0, 1)]

    def test_no_order_without_hardcoding(self, dense_buf, rng):
        dense_buf.load(rng.integers(0, 9, (4, 4)))
        assert dense_buf.emission_order() is None
        assert dense_buf.emit_elements() is None

    def test_rank_too_low_rejected(self, rng):
        from repro.core.memspec import Dense, MemoryBufferSpec

        vector_buf = MemBufSim(MemoryBufferSpec("X", [Dense(4)]))
        with pytest.raises(ValueError):
            vector_buf.load(rng.integers(0, 2, (2, 2)))

    def test_block_format_accepts_lower_rank(self, rng):
        """Block formats declare four axes but load 2-D matrices; the
        two outer axes describe the block structure (Figure 12)."""
        buf = MemBufSim(block_crs_buffer("W", block_rows=2, capacity_bytes=4096))
        data = np.zeros((8, 8))
        data[0:4, 4:8] = rng.integers(1, 5, (4, 4))
        buf.load(data)
        assert np.allclose(buf.tensor.to_dense(), data)
