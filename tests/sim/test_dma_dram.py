"""Tests for the DRAM and DMA models (the Section VI-C machinery)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.dma import DMASim, TransferDescriptor, pointer_chase_transfers
from repro.sim.dram import DRAMModel


class TestDRAMModel:
    def test_single_request_latency(self):
        dram = DRAMModel(latency=100, bandwidth_bytes=16)
        done = dram.request(0, 16)
        assert done == 101  # latency + 1 transfer cycle

    def test_large_transfer_occupies_bus(self):
        dram = DRAMModel(latency=100, bandwidth_bytes=16)
        done = dram.request(0, 160)
        assert done == 110

    def test_bus_serializes_transfers(self):
        dram = DRAMModel(latency=100, bandwidth_bytes=16)
        first = dram.request(0, 160)
        second = dram.request(1, 160)
        assert second == first + 10  # waits for the bus

    def test_counters(self):
        dram = DRAMModel()
        dram.request(0, 64)
        dram.request(0, 64)
        assert dram.total_requests == 2
        assert dram.total_bytes == 128

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DRAMModel(latency=0)
        with pytest.raises(ValueError):
            DRAMModel(bandwidth_bytes=0)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            DRAMModel().request(0, 0)

    def test_reset(self):
        dram = DRAMModel()
        dram.request(0, 64)
        dram.reset()
        assert dram.total_requests == 0


class TestDMASim:
    def test_independent_transfers_pipeline(self):
        dram = DRAMModel(latency=100, bandwidth_bytes=16)
        dma = DMASim(dram, max_inflight=16)
        transfers = [TransferDescriptor(16) for _ in range(10)]
        result = dma.run(transfers)
        # Latency paid once; transfers stream behind it.
        assert result.total_cycles < 100 + 10 * 4

    def test_inflight_one_serializes(self):
        dram = DRAMModel(latency=100, bandwidth_bytes=16)
        dma = DMASim(dram, max_inflight=1)
        transfers = [TransferDescriptor(16) for _ in range(10)]
        result = dma.run(transfers)
        assert result.total_cycles >= 10 * 100

    def test_dependency_enforced(self):
        dram = DRAMModel(latency=100, bandwidth_bytes=16)
        dma = DMASim(dram, max_inflight=16)
        transfers = [
            TransferDescriptor(8),
            TransferDescriptor(128, dependency=0),
        ]
        result = dma.run(transfers)
        # The dependent transfer cannot issue before cycle ~101.
        assert result.completions[1] > result.completions[0] + 100

    def test_invalid_dependency_rejected(self):
        dma = DMASim(DRAMModel(), max_inflight=4)
        with pytest.raises(ValueError):
            dma.run([TransferDescriptor(8, dependency=5)])

    def test_invalid_inflight_rejected(self):
        with pytest.raises(ValueError):
            DMASim(DRAMModel(), max_inflight=0)

    def test_empty_run(self):
        result = DMASim(DRAMModel(), max_inflight=4).run([])
        assert result.total_cycles == 0

    def test_effective_bandwidth(self):
        dram = DRAMModel(latency=10, bandwidth_bytes=16)
        dma = DMASim(dram, max_inflight=8)
        result = dma.run([TransferDescriptor(160) for _ in range(10)])
        assert 0 < result.effective_bandwidth() <= 16

    @settings(max_examples=20, deadline=None)
    @given(
        sizes=st.lists(st.integers(1, 256), min_size=1, max_size=40),
        lo=st.integers(1, 4),
        hi=st.integers(8, 32),
    )
    def test_property_more_inflight_never_slower(self, sizes, lo, hi):
        """Raising the in-flight limit can only help (the Section VI-C fix
        is monotone)."""
        transfers = [TransferDescriptor(s) for s in sizes]
        slow = DMASim(DRAMModel(latency=50), max_inflight=lo).run(list(transfers))
        fast = DMASim(DRAMModel(latency=50), max_inflight=hi).run(list(transfers))
        assert fast.total_cycles <= slow.total_cycles


class TestPointerChase:
    def test_transfer_structure(self):
        transfers = pointer_chase_transfers(vector_count=5, vector_bytes=128)
        assert len(transfers) == 10
        assert transfers[0].is_pointer
        assert transfers[1].dependency == 0
        assert transfers[3].dependency == 2

    def test_pointer_chasing_dominated_by_latency(self):
        """Section VI-C: pointers are <10% of traffic but dominate time at
        low in-flight limits."""
        transfers = pointer_chase_transfers(vector_count=50, vector_bytes=128)
        pointer_bytes = sum(t.size_bytes for t in transfers if t.is_pointer)
        total_bytes = sum(t.size_bytes for t in transfers)
        assert pointer_bytes / total_bytes < 0.10

        dram_slow = DRAMModel(latency=100, bandwidth_bytes=16)
        slow = DMASim(dram_slow, max_inflight=1).run(transfers)
        dram_fast = DRAMModel(latency=100, bandwidth_bytes=16)
        fast = DMASim(dram_fast, max_inflight=16).run(transfers)
        assert slow.total_cycles > 2 * fast.total_cycles

    def test_bandwidth_unchanged_between_configs(self):
        """The paper's fix adds in-flight requests *without changing total
        DRAM bandwidth* -- both configs share the same DRAM model."""
        d1 = DRAMModel(latency=100, bandwidth_bytes=16)
        d2 = DRAMModel(latency=100, bandwidth_bytes=16)
        assert d1.bandwidth_bytes == d2.bandwidth_bytes
