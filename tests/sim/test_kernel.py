"""Unit tests for the trace-compiled batched reference kernels.

The byte-identity sweep against the scalar interpreter lives in
``tests/exec/test_differential.py``; this file covers the tracer's
classification, the fallback contract, cache memoization (including the
``KERNEL_VERSION`` key axis), pickling for the disk store, and the obs
instrumentation.
"""

import pickle

import numpy as np
import pytest

from repro.core import Bounds, matmul_spec
from repro.core.expr import Index, Local, SpecError, Tensor
from repro.core.functionality import (
    FunctionalSpec,
    batched_matmul_spec,
    conv1d_spec,
)
from repro.core.library import merge_sorted_spec, sort_network_spec
from repro.exec.cache import CompileCache
from repro.obs.profile import Profiler, set_profiler
from repro.obs.trace import Tracer, set_tracer
from repro.sim import kernel as kernel_mod
from repro.sim.kernel import (
    CompiledKernel,
    KernelFallback,
    cached_kernel,
    compile_kernel,
    replay_interpret,
)


def _matmul_tensors(rng, i, j, k):
    return {"A": rng.integers(-5, 6, (i, k)), "B": rng.integers(-5, 6, (k, j))}


def _scan_without_init() -> FunctionalSpec:
    """A running sum whose spec forgot the ``k.lowerBound`` slot."""
    i, k = Index("i"), Index("k")
    X, Y = Tensor("X", 2), Tensor("Y", 1)
    acc = Local("acc", 2)
    spec = FunctionalSpec("noinit", [i, k])
    spec.let(acc[i, k], acc[i, k - 1] + X[i, k])
    spec.let(Y[i], acc[i, k.upper_bound])
    return spec


class TestTracing:
    def test_matmul_classification(self):
        kernel = compile_kernel(matmul_spec())
        assert isinstance(kernel, CompiledKernel)
        modes = {step.name: step.mode for step in kernel.steps}
        assert modes == {"a": "propagate", "b": "propagate", "c": "scan"}
        scan = next(s for s in kernel.steps if s.name == "c")
        assert scan.op == "+"
        assert scan.flow_axis == 2
        # Dependency order: the scan consumes a and b.
        assert [s.name for s in kernel.steps][-1] == "c"

    @pytest.mark.parametrize("factory", [conv1d_spec, batched_matmul_spec])
    def test_library_dense_specs_trace(self, factory):
        assert compile_kernel(factory()) is not None

    @pytest.mark.parametrize("factory", [merge_sorted_spec, sort_network_spec])
    def test_data_dependent_specs_fall_back(self, factory):
        assert compile_kernel(factory()) is None

    def test_multi_step_recurrence_falls_back(self):
        i, k = Index("i"), Index("k")
        X, Y = Tensor("X", 2), Tensor("Y", 1)
        acc = Local("acc", 2)
        spec = FunctionalSpec("stride2", [i, k])
        spec.let(acc[i, k.lower_bound], 0)
        spec.let(acc[i, k], acc[i, k - 2] + X[i, k])
        spec.let(Y[i], acc[i, k.upper_bound])
        assert compile_kernel(spec) is None

    def test_double_self_reference_falls_back(self):
        i, k = Index("i"), Index("k")
        X, Y = Tensor("X", 2), Tensor("Y", 1)
        acc = Local("acc", 2)
        spec = FunctionalSpec("double", [i, k])
        spec.let(acc[i, k.lower_bound], 0)
        spec.let(acc[i, k], acc[i, k - 1] + acc[i, k - 1])
        spec.let(Y[i], acc[i, k.upper_bound])
        assert compile_kernel(spec) is None

    def test_noncommutative_right_recurrence_falls_back(self):
        """``g - acc(k-1)`` alternates sign per step -- not an accumulate."""
        i, k = Index("i"), Index("k")
        X, Y = Tensor("X", 2), Tensor("Y", 1)
        acc = Local("acc", 2)
        spec = FunctionalSpec("altsign", [i, k])
        spec.let(acc[i, k.lower_bound], 0)
        spec.let(acc[i, k], X[i, k] - acc[i, k - 1])
        spec.let(Y[i], acc[i, k.upper_bound])
        assert compile_kernel(spec) is None

    def test_commutative_right_recurrence_traces(self):
        i, k = Index("i"), Index("k")
        X, Y = Tensor("X", 2), Tensor("Y", 1)
        acc = Local("acc", 2)
        spec = FunctionalSpec("rightsum", [i, k])
        spec.let(acc[i, k.lower_bound], 0)
        spec.let(acc[i, k], X[i, k] + acc[i, k - 1])
        spec.let(Y[i], acc[i, k.upper_bound])
        kernel = compile_kernel(spec)
        assert kernel is not None
        rng = np.random.default_rng(3)
        bounds = Bounds({"i": 3, "k": 5})
        tensors = {"X": rng.integers(-4, 5, (3, 5))}
        got = kernel.replay(bounds, tensors)
        want = spec.interpret(bounds, tensors, kernel=False)
        assert got["Y"].tobytes() == want["Y"].tobytes()


class TestFallbackContract:
    def test_missing_boundary_rule_replays_as_fallback(self):
        spec = _scan_without_init()
        kernel = compile_kernel(spec)
        assert kernel is not None  # compile is symbolic; the hole is dynamic
        bounds = Bounds({"i": 2, "k": 3})
        tensors = {"X": np.ones((2, 3), dtype=np.int64)}
        with pytest.raises(KernelFallback):
            kernel.replay(bounds, tensors)
        assert replay_interpret(spec, bounds, tensors) is None
        # The default interpret falls through to the scalar path, which
        # owns the precise diagnostic -- identical either way.
        with pytest.raises(SpecError, match="no boundary rule"):
            spec.interpret(bounds, tensors)
        with pytest.raises(SpecError, match="no boundary rule"):
            spec.interpret(bounds, tensors, kernel=False)

    def test_missing_tensor_raises_like_scalar(self):
        spec = matmul_spec()
        kernel = compile_kernel(spec)
        bounds = Bounds({"i": 2, "j": 2, "k": 2})
        with pytest.raises(SpecError, match="no data provided for tensor 'B'"):
            kernel.replay(bounds, {"A": np.ones((2, 2), dtype=np.int64)})
        with pytest.raises(SpecError, match="no data provided for tensor 'B'"):
            spec.interpret(
                bounds, {"A": np.ones((2, 2), dtype=np.int64)}, kernel=False
            )

    def test_missing_bounds_rejected_either_path(self):
        spec = matmul_spec()
        with pytest.raises(SpecError, match="bounds missing index 'k'"):
            spec.interpret(Bounds({"i": 2, "j": 2}), {})
        with pytest.raises(SpecError, match="bounds missing index 'k'"):
            compile_kernel(spec).replay(Bounds({"i": 2, "j": 2}), {})

    def test_interpret_default_matches_scalar(self):
        spec = matmul_spec()
        rng = np.random.default_rng(11)
        bounds = Bounds({"i": 4, "j": 3, "k": 5})
        tensors = _matmul_tensors(rng, 4, 3, 5)
        via_kernel = spec.interpret(bounds, tensors)
        scalar = spec.interpret(bounds, tensors, kernel=False)
        assert via_kernel["C"].dtype == scalar["C"].dtype
        assert via_kernel["C"].tobytes() == scalar["C"].tobytes()

    def test_nonzero_init_parity(self):
        i, k = Index("i"), Index("k")
        X, Y = Tensor("X", 2), Tensor("Y", 1)
        acc = Local("acc", 2)
        spec = FunctionalSpec("seeded", [i, k])
        spec.let(acc[i, k.lower_bound], 7)
        spec.let(acc[i, k], acc[i, k - 1] + X[i, k])
        spec.let(Y[i], acc[i, k.upper_bound])
        rng = np.random.default_rng(4)
        bounds = Bounds({"i": 3, "k": 4})
        tensors = {"X": rng.integers(-4, 5, (3, 4))}
        got = compile_kernel(spec).replay(bounds, tensors)
        want = spec.interpret(bounds, tensors, kernel=False)
        assert got["Y"].tobytes() == want["Y"].tobytes()


class TestMemoization:
    def test_cached_kernel_is_per_object(self):
        spec = matmul_spec()
        assert cached_kernel(spec) is cached_kernel(spec)
        assert cached_kernel(spec) is not cached_kernel(matmul_spec())

    def test_compile_cache_stage_and_hits(self):
        cache = CompileCache()
        spec = matmul_spec()
        first = cache.kernel(spec)
        second = cache.kernel(matmul_spec())  # same content, new object
        assert first is second
        hits, misses = cache.stats.by_stage["sim.kernel"]
        assert (hits, misses) == (1, 1)

    def test_fallback_none_is_cached_too(self):
        cache = CompileCache()
        assert cache.kernel(merge_sorted_spec()) is None
        assert cache.kernel(merge_sorted_spec()) is None
        hits, misses = cache.stats.by_stage["sim.kernel"]
        assert (hits, misses) == (1, 1)

    def test_kernel_version_is_a_key_axis(self, monkeypatch):
        cache = CompileCache()
        cache.kernel(matmul_spec())
        monkeypatch.setattr(kernel_mod, "KERNEL_VERSION", kernel_mod.KERNEL_VERSION + 1)
        cache.kernel(matmul_spec())
        hits, misses = cache.stats.by_stage["sim.kernel"]
        assert (hits, misses) == (0, 2)


class TestPickling:
    def test_compiled_kernel_roundtrips(self):
        """The disk store pickles non-array values; a kernel must survive
        and replay byte-identically afterwards."""
        spec = matmul_spec()
        kernel = compile_kernel(spec)
        clone = pickle.loads(pickle.dumps(kernel, protocol=4))
        rng = np.random.default_rng(9)
        bounds = Bounds({"i": 3, "j": 4, "k": 2})
        tensors = _matmul_tensors(rng, 3, 4, 2)
        assert (
            clone.replay(bounds, tensors)["C"].tobytes()
            == kernel.replay(bounds, tensors)["C"].tobytes()
        )


class TestObservability:
    def test_profiler_scopes(self):
        previous = set_profiler(Profiler(enabled=True))
        try:
            kernel = compile_kernel(matmul_spec())
            kernel.replay(
                Bounds({"i": 2, "j": 2, "k": 2}),
                {"A": np.ones((2, 2), dtype=np.int64),
                 "B": np.ones((2, 2), dtype=np.int64)},
            )
            from repro.obs.profile import get_profiler

            labels = {record.label for record in get_profiler().records()}
        finally:
            set_profiler(previous)
        assert "sim.kernel.compile" in labels
        assert "sim.kernel.replay" in labels

    def test_trace_events(self):
        previous = set_tracer(Tracer(enabled=True))
        try:
            spec = matmul_spec()
            kernel = compile_kernel(spec)
            kernel.replay(
                Bounds({"i": 2, "j": 2, "k": 2}),
                {"A": np.ones((2, 2), dtype=np.int64),
                 "B": np.ones((2, 2), dtype=np.int64)},
            )
            compile_kernel(merge_sorted_spec())
            from repro.obs.trace import get_tracer

            names = [event.name for event in get_tracer().events()]
        finally:
            set_tracer(previous)
        assert "kernel_compile" in names
        assert "kernel_replay" in names
        assert "kernel_fallback" in names
