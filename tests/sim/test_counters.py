"""Unit tests for the shared performance counters."""

import pytest

from repro.sim.counters import PerfCounters


class TestPerfCounters:
    def test_utilization(self):
        counters = PerfCounters()
        counters.pe_busy_cycles = 30
        counters.pe_idle_cycles = 70
        assert counters.pe_utilization == pytest.approx(0.3)

    def test_utilization_empty(self):
        assert PerfCounters().pe_utilization == 0.0

    def test_throughput(self):
        counters = PerfCounters()
        counters.macs = 200
        counters.cycles = 50
        assert counters.throughput_macs_per_cycle() == pytest.approx(4.0)

    def test_throughput_no_cycles(self):
        assert PerfCounters().throughput_macs_per_cycle() == 0.0

    def test_custom_counters(self):
        counters = PerfCounters()
        counters.bump("spills")
        counters.bump("spills", 4)
        assert counters.custom["spills"] == 5

    def test_as_dict_namespaces_custom(self):
        counters = PerfCounters()
        counters.bump("spills", 2)
        counters.macs = 7
        snapshot = counters.as_dict()
        assert snapshot["custom.spills"] == 2
        assert snapshot["macs"] == 7
        assert "pe_utilization" in snapshot

    def test_custom_cannot_shadow_builtin(self):
        counters = PerfCounters()
        counters.cycles = 100
        counters.bump("cycles", 3)  # a user counter named like a built-in
        snapshot = counters.as_dict()
        assert snapshot["cycles"] == 100
        assert snapshot["custom.cycles"] == 3

    def test_as_dict_values_are_ints_except_utilization(self):
        counters = PerfCounters()
        counters.pe_busy_cycles = 3
        counters.pe_idle_cycles = 1
        snapshot = counters.as_dict()
        for name, value in snapshot.items():
            if name == "pe_utilization":
                assert isinstance(value, float)
            else:
                assert isinstance(value, int)

    def test_backed_by_metrics_registry(self):
        counters = PerfCounters()
        counters.macs += 4
        counters.bump("merges")
        registry = counters.registry.as_dict()
        assert registry["sim.macs"] == 4
        assert registry["custom.merges"] == 1
