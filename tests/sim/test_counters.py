"""Unit tests for the shared performance counters."""

import pytest

from repro.sim.counters import PerfCounters


class TestPerfCounters:
    def test_utilization(self):
        counters = PerfCounters()
        counters.pe_busy_cycles = 30
        counters.pe_idle_cycles = 70
        assert counters.pe_utilization == pytest.approx(0.3)

    def test_utilization_empty(self):
        assert PerfCounters().pe_utilization == 0.0

    def test_throughput(self):
        counters = PerfCounters()
        counters.macs = 200
        counters.cycles = 50
        assert counters.throughput_macs_per_cycle() == pytest.approx(4.0)

    def test_throughput_no_cycles(self):
        assert PerfCounters().throughput_macs_per_cycle() == 0.0

    def test_custom_counters(self):
        counters = PerfCounters()
        counters.bump("spills")
        counters.bump("spills", 4)
        assert counters.custom["spills"] == 5

    def test_as_dict_includes_custom(self):
        counters = PerfCounters()
        counters.bump("spills", 2)
        counters.macs = 7
        snapshot = counters.as_dict()
        assert snapshot["spills"] == 2
        assert snapshot["macs"] == 7
        assert "pe_utilization" in snapshot
