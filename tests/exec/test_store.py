"""Tests for the disk-backed cache tier."""

import json
import os

import numpy as np
import pytest

from repro.exec.store import (
    MAGIC,
    DiskStore,
    default_cache_dir,
    store_stats_delta,
    store_stats_snapshot,
)


@pytest.fixture
def store(tmp_path):
    return DiskStore(str(tmp_path / "cache"), max_bytes=1 << 20)


KEY = "ab" + "cd" * 31  # shaped like a sha256 hex digest


class TestRoundTrip:
    def test_miss_on_empty_store(self, store):
        hit, value = store.get("stage", KEY)
        assert (hit, value) == (False, None)
        assert store.stats.misses == 1

    def test_pickle_value(self, store):
        assert store.put("stage", KEY, {"cycles": 42, "name": "x"})
        hit, value = store.get("stage", KEY)
        assert hit and value == {"cycles": 42, "name": "x"}
        assert store.stats.hits == 1 and store.stats.writes == 1

    def test_ndarray_uses_npy_not_pickle(self, store):
        array = np.arange(12, dtype=np.float32).reshape(3, 4)
        store.put("sim", KEY, array)
        header = _header_of(store, "sim", KEY)
        assert header["format"] == "npy"
        hit, value = store.get("sim", KEY)
        assert hit
        np.testing.assert_array_equal(value, array)
        assert value.dtype == array.dtype

    def test_array_mapping_uses_npz_not_pickle(self, store):
        tensors = {
            "A": np.arange(4, dtype=np.int64),
            "B": np.ones((2, 2)),
        }
        store.put("sim", KEY, tensors)
        assert _header_of(store, "sim", KEY)["format"] == "npz"
        hit, value = store.get("sim", KEY)
        assert hit and set(value) == {"A", "B"}
        np.testing.assert_array_equal(value["A"], tensors["A"])
        np.testing.assert_array_equal(value["B"], tensors["B"])

    def test_stages_do_not_collide(self, store):
        store.put("s1", KEY, "one")
        store.put("s2", KEY, "two")
        assert store.get("s1", KEY) == (True, "one")
        assert store.get("s2", KEY) == (True, "two")

    def test_second_handle_sees_entries(self, store):
        store.put("stage", KEY, [1, 2, 3])
        other = DiskStore(store.root)
        assert other.get("stage", KEY) == (True, [1, 2, 3])


class TestFailureModes:
    """Every bad entry is a miss; nothing ever raises out of the store."""

    def test_corrupted_payload_is_a_miss(self, store):
        store.put("stage", KEY, {"x": 1})
        path = store.entry_path("stage", KEY)
        raw = bytearray(open(path, "rb").read())
        raw[-1] ^= 0xFF
        open(path, "wb").write(bytes(raw))
        assert store.get("stage", KEY) == (False, None)
        assert store.stats.corrupt == 1
        assert not os.path.exists(path)  # bad entry deleted

    def test_truncated_entry_is_a_miss(self, store):
        store.put("stage", KEY, {"x": 1})
        path = store.entry_path("stage", KEY)
        raw = open(path, "rb").read()
        open(path, "wb").write(raw[: len(raw) // 2])
        assert store.get("stage", KEY) == (False, None)
        assert store.stats.corrupt == 1

    def test_bad_magic_is_a_miss(self, store):
        store.put("stage", KEY, 7)
        path = store.entry_path("stage", KEY)
        open(path, "wb").write(b"NOTSTELLAR" + b"\x00" * 64)
        assert store.get("stage", KEY) == (False, None)

    @pytest.mark.parametrize("field", ["schema", "fingerprint"])
    def test_version_mismatch_is_a_miss(self, store, field):
        store.put("stage", KEY, "value")
        path = store.entry_path("stage", KEY)
        _rewrite_header(path, {field: 999999})
        assert store.get("stage", KEY) == (False, None)
        assert store.stats.corrupt == 1

    def test_stage_mismatch_is_a_miss(self, store):
        # An entry renamed (or hard-linked) across stage directories must
        # not be served under the wrong stage.
        store.put("stage", KEY, "value")
        source = store.entry_path("stage", KEY)
        target = store.entry_path("other", KEY)
        os.makedirs(os.path.dirname(target), exist_ok=True)
        os.rename(source, target)
        assert store.get("other", KEY) == (False, None)

    def test_unpicklable_value_degrades_to_pass_through(self, store):
        assert store.put("stage", KEY, lambda: 0) is False
        assert store.stats.write_failures == 1
        assert store.get("stage", KEY) == (False, None)

    def test_unwritable_root_degrades_to_pass_through(self, store, monkeypatch):
        # Simulate a read-only filesystem (chmod is no barrier when the
        # suite runs as root).
        monkeypatch.setattr(
            os, "makedirs", _raise_oserror, raising=True
        )
        assert store.put("stage", KEY, 1) is False
        assert store.stats.write_failures == 1

    def test_torn_npz_with_consistent_header_is_a_miss(self, store):
        """A truncated ``.npz`` payload whose header still checks out.

        The checksum guards the bytes on disk, not their decodability:
        a torn write that lands a *self-consistent* header over a
        truncated archive (header rewritten during GC-era compaction,
        payload cut mid-copy) passes every ``_validate`` check and only
        fails inside ``np.load``.  That decode failure must be a plain
        corrupt-miss, never an exception out of ``get``.
        """
        import hashlib

        tensors = {"A": np.arange(64, dtype=np.int64).reshape(8, 8)}
        store.put("sim", KEY, tensors)
        path = store.entry_path("sim", KEY)
        raw = open(path, "rb").read()
        rest = raw[len(MAGIC):]
        newline = rest.find(b"\n")
        header = json.loads(rest[:newline].decode())
        torn = rest[newline + 1:][: header["size"] // 2]
        # Re-seal the header over the truncated payload so size and
        # sha256 both validate -- only the npz decode can now fail.
        header["size"] = len(torn)
        header["sha256"] = hashlib.sha256(torn).hexdigest()
        blob = MAGIC + json.dumps(header, sort_keys=True).encode() + b"\n" + torn
        open(path, "wb").write(blob)

        assert store.get("sim", KEY) == (False, None)
        assert store.stats.corrupt == 1
        assert store.stats.misses == 1
        assert store.stats.hits == 0
        assert not os.path.exists(path)  # bad entry deleted

        # The store stays fully usable: rewrite, read back, and GC.
        assert store.put("sim", KEY, tensors)
        hit, value = store.get("sim", KEY)
        assert hit
        np.testing.assert_array_equal(value["A"], tensors["A"])
        assert store.gc() == 0

    def test_torn_npz_mid_gc_stays_collectable(self, store):
        """A torn entry left on disk never wedges the byte-budget GC."""
        import hashlib

        tensors = {"A": np.ones((16, 16))}
        store.put("sim", KEY, tensors)
        path = store.entry_path("sim", KEY)
        raw = open(path, "rb").read()
        rest = raw[len(MAGIC):]
        newline = rest.find(b"\n")
        header = json.loads(rest[:newline].decode())
        torn = rest[newline + 1:][:16]
        header["size"] = len(torn)
        header["sha256"] = hashlib.sha256(torn).hexdigest()
        open(path, "wb").write(
            MAGIC + json.dumps(header, sort_keys=True).encode() + b"\n" + torn
        )

        # GC sees the torn file as one more LRU entry and evicts it
        # under a budget squeeze instead of choking on its contents.
        store.max_bytes = 1
        assert store.gc() >= 1
        assert not os.path.exists(path)
        assert store.get("sim", KEY) == (False, None)


class TestVersioningAndGC:
    def test_entries_live_under_version_tag(self, store):
        store.put("stage", KEY, 1)
        assert store.entry_path("stage", KEY).startswith(store.version_dir)
        assert store.version_tag in store.entry_path("stage", KEY)

    def test_gc_removes_other_version_directories(self, store):
        store.put("stage", KEY, 1)
        stale = os.path.join(store.root, "v0-fp0", "stage")
        os.makedirs(stale)
        open(os.path.join(stale, "old.entry"), "wb").write(b"x")
        store.gc()
        assert not os.path.exists(os.path.join(store.root, "v0-fp0"))
        assert store.get("stage", KEY)[0]  # live version untouched

    def test_gc_enforces_byte_budget_lru(self, store, tmp_path):
        keys = [f"{i:02d}" + "ee" * 31 for i in range(4)]
        payload = b"z" * 4096
        for index, key in enumerate(keys):
            store.put("stage", key, payload)
            os.utime(store.entry_path("stage", key), (1000 + index, 1000 + index))
        # Re-read the oldest entry: its recency bump must save it.
        os.utime(store.entry_path("stage", keys[0]), (2000, 2000))
        store.max_bytes = 2 * (4096 + 256)
        store.gc()
        assert store.total_bytes() <= store.max_bytes
        assert store.get("stage", keys[0])[0]
        assert not store.get("stage", keys[1])[0]
        assert store.stats.evicted >= 1

    def test_clear_removes_everything(self, store):
        store.put("stage", KEY, 1)
        store.clear()
        assert store.total_bytes() == 0
        assert store.get("stage", KEY) == (False, None)


class TestEnvironment:
    def test_default_cache_dir_fallback(self, monkeypatch):
        monkeypatch.delenv("STELLAR_CACHE_DIR", raising=False)
        assert default_cache_dir().endswith(os.path.join(".cache", "stellar-repro"))

    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("STELLAR_CACHE_DIR", str(tmp_path))
        assert default_cache_dir() == str(tmp_path)

    @pytest.mark.parametrize("value", ["", "0", "off", "none", " OFF "])
    def test_env_disables_persistence(self, monkeypatch, value):
        monkeypatch.setenv("STELLAR_CACHE_DIR", value)
        assert default_cache_dir() is None
        assert DiskStore.default() is None

    def test_explicit_root_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("STELLAR_CACHE_DIR", "off")
        store = DiskStore.default(str(tmp_path / "explicit"))
        assert store is not None and store.root == str(tmp_path / "explicit")

    def test_max_bytes_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("STELLAR_CACHE_MAX_BYTES", "12345")
        assert DiskStore(str(tmp_path)).max_bytes == 12345


class TestStatsPlumbing:
    def test_snapshot_delta(self, store):
        before = store_stats_snapshot(store)
        store.put("stage", KEY, 1)
        store.get("stage", KEY)
        delta = store_stats_delta(before, store_stats_snapshot(store))
        assert delta["writes"] == 1 and delta["hits"] == 1
        assert delta["bytes_written"] > 0

    def test_none_snapshots(self):
        assert store_stats_snapshot(None) is None
        assert store_stats_delta(None, None) is None

    def test_spawn_config_reconstructs(self, store):
        twin = DiskStore(**store.spawn_config())
        assert (twin.root, twin.max_bytes) == (store.root, store.max_bytes)


def _raise_oserror(*_args, **_kwargs):
    raise OSError(30, "Read-only file system")


def _header_of(store, stage, key):
    raw = open(store.entry_path(stage, key), "rb").read()
    rest = raw[len(MAGIC):]
    return json.loads(rest[: rest.find(b"\n")].decode())


def _rewrite_header(path, overrides):
    raw = open(path, "rb").read()
    rest = raw[len(MAGIC):]
    newline = rest.find(b"\n")
    header = json.loads(rest[:newline].decode())
    header.update(overrides)
    blob = MAGIC + json.dumps(header, sort_keys=True).encode() + rest[newline:]
    open(path, "wb").write(blob)


class TestPerStageGC:
    def fill(self, store, stage, count, size=4096, base=1000):
        keys = [f"{i:02d}" + "ab" * 31 for i in range(count)]
        for index, key in enumerate(keys):
            store.put(stage, key, b"z" * size)
            os.utime(
                store.entry_path(stage, key),
                (base + index, base + index),
            )
        return keys

    def test_water_fill_protects_small_stages(self, store):
        # One entry of compile-stage product, many bulky sim entries:
        # the global LRU would evict the compile entry; per-stage GC
        # must not.
        compile_keys = self.fill(store, "compile", 1, size=512, base=100)
        sim_keys = self.fill(store, "sim.dense", 8, size=8192, base=2000)
        store.max_bytes = 4 * (8192 + 256)
        report = store.gc_report(per_stage=True)
        assert store.get("compile", compile_keys[0])[0]  # survived
        assert report.get("sim.dense", 0) >= 1
        assert "compile" not in report
        # LRU within the over-budget stage: oldest sim entries went.
        assert not store.get("sim.dense", sim_keys[0])[0]
        assert store.get("sim.dense", sim_keys[-1])[0]

    def test_global_lru_would_have_taken_the_compile_entry(self, store):
        # The counterfactual for the test above.
        compile_keys = self.fill(store, "compile", 1, size=512, base=100)
        self.fill(store, "sim.dense", 8, size=8192, base=2000)
        store.max_bytes = 4 * (8192 + 256)
        store.gc_report(per_stage=False)
        assert not store.get("compile", compile_keys[0])[0]

    def test_stage_budgets_water_fill(self, store):
        self.fill(store, "small", 1, size=100)
        self.fill(store, "big", 4, size=8192)
        store.max_bytes = 10_000
        budgets = store.stage_budgets()
        # The small stage keeps what it has; slack flows to the big one.
        assert budgets["small"] < 1000
        assert budgets["big"] > store.max_bytes // 2
        assert sum(budgets.values()) <= store.max_bytes

    def test_weights_env_knob(self, store, monkeypatch):
        self.fill(store, "compile", 4, size=4096)
        self.fill(store, "sim", 4, size=4096)
        store.max_bytes = 4 * (4096 + 256)
        monkeypatch.setenv("STELLAR_CACHE_STAGE_WEIGHTS", "compile=3,sim=1")
        budgets = store.stage_budgets()
        assert budgets["compile"] > budgets["sim"]

    def test_malformed_weights_are_ignored(self, store, monkeypatch):
        self.fill(store, "a", 2, size=4096)
        monkeypatch.setenv("STELLAR_CACHE_STAGE_WEIGHTS", "nonsense,,x=,y=-2")
        budgets = store.stage_budgets()  # equal-weight fallback
        assert "a" in budgets

    def test_env_knob_turns_gc_per_stage(self, store, monkeypatch):
        compile_keys = self.fill(store, "compile", 1, size=512, base=100)
        self.fill(store, "sim.dense", 8, size=8192, base=2000)
        store.max_bytes = 4 * (8192 + 256)
        monkeypatch.setenv("STELLAR_CACHE_GC_PER_STAGE", "1")
        store.gc()  # per_stage=None defers to the environment
        assert store.get("compile", compile_keys[0])[0]

    def test_gc_returns_total_of_report(self, store):
        self.fill(store, "sim", 6, size=8192)
        store.max_bytes = 2 * (8192 + 256)
        evicted = store.gc(per_stage=True)
        assert evicted >= 4  # 6 entries, room for 2
        assert store.stats.evicted == evicted
        assert store.total_bytes() <= store.max_bytes

    def test_gc_skipped_while_lock_held_elsewhere(self, store):
        import fcntl

        self.fill(store, "sim", 4, size=8192)
        store.max_bytes = 1
        os.makedirs(store.root, exist_ok=True)
        with open(os.path.join(store.root, ".gc.lock"), "a+b") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            assert store.gc_report(per_stage=True) == {}
            assert store.gc_report(per_stage=False) == {}
        # Lock released: the collection proceeds.
        assert store.gc_report(per_stage=False)

    def test_gc_lock_file_is_not_treated_as_stale_version(self, store):
        store.put("stage", KEY, 1)
        store.gc()  # creates .gc.lock in the root
        assert os.path.exists(os.path.join(store.root, ".gc.lock"))
        report = store.gc_report()
        assert "<stale-versions>" not in report
        assert os.path.exists(os.path.join(store.root, ".gc.lock"))

    def test_concurrent_reads_during_gc_degrade_to_misses(self, store):
        # A reader racing an eviction sees a miss, never an error.
        keys = self.fill(store, "sim", 4, size=8192)
        store.max_bytes = 1
        store.gc()
        for key in keys:
            hit, value = store.get("sim", key)
            assert (hit, value) == (False, None)
