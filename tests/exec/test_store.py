"""Tests for the disk-backed cache tier."""

import json
import os

import numpy as np
import pytest

from repro.exec.store import (
    MAGIC,
    DiskStore,
    default_cache_dir,
    store_stats_delta,
    store_stats_snapshot,
)


@pytest.fixture
def store(tmp_path):
    return DiskStore(str(tmp_path / "cache"), max_bytes=1 << 20)


KEY = "ab" + "cd" * 31  # shaped like a sha256 hex digest


class TestRoundTrip:
    def test_miss_on_empty_store(self, store):
        hit, value = store.get("stage", KEY)
        assert (hit, value) == (False, None)
        assert store.stats.misses == 1

    def test_pickle_value(self, store):
        assert store.put("stage", KEY, {"cycles": 42, "name": "x"})
        hit, value = store.get("stage", KEY)
        assert hit and value == {"cycles": 42, "name": "x"}
        assert store.stats.hits == 1 and store.stats.writes == 1

    def test_ndarray_uses_npy_not_pickle(self, store):
        array = np.arange(12, dtype=np.float32).reshape(3, 4)
        store.put("sim", KEY, array)
        header = _header_of(store, "sim", KEY)
        assert header["format"] == "npy"
        hit, value = store.get("sim", KEY)
        assert hit
        np.testing.assert_array_equal(value, array)
        assert value.dtype == array.dtype

    def test_array_mapping_uses_npz_not_pickle(self, store):
        tensors = {
            "A": np.arange(4, dtype=np.int64),
            "B": np.ones((2, 2)),
        }
        store.put("sim", KEY, tensors)
        assert _header_of(store, "sim", KEY)["format"] == "npz"
        hit, value = store.get("sim", KEY)
        assert hit and set(value) == {"A", "B"}
        np.testing.assert_array_equal(value["A"], tensors["A"])
        np.testing.assert_array_equal(value["B"], tensors["B"])

    def test_stages_do_not_collide(self, store):
        store.put("s1", KEY, "one")
        store.put("s2", KEY, "two")
        assert store.get("s1", KEY) == (True, "one")
        assert store.get("s2", KEY) == (True, "two")

    def test_second_handle_sees_entries(self, store):
        store.put("stage", KEY, [1, 2, 3])
        other = DiskStore(store.root)
        assert other.get("stage", KEY) == (True, [1, 2, 3])


class TestFailureModes:
    """Every bad entry is a miss; nothing ever raises out of the store."""

    def test_corrupted_payload_is_a_miss(self, store):
        store.put("stage", KEY, {"x": 1})
        path = store.entry_path("stage", KEY)
        raw = bytearray(open(path, "rb").read())
        raw[-1] ^= 0xFF
        open(path, "wb").write(bytes(raw))
        assert store.get("stage", KEY) == (False, None)
        assert store.stats.corrupt == 1
        assert not os.path.exists(path)  # bad entry deleted

    def test_truncated_entry_is_a_miss(self, store):
        store.put("stage", KEY, {"x": 1})
        path = store.entry_path("stage", KEY)
        raw = open(path, "rb").read()
        open(path, "wb").write(raw[: len(raw) // 2])
        assert store.get("stage", KEY) == (False, None)
        assert store.stats.corrupt == 1

    def test_bad_magic_is_a_miss(self, store):
        store.put("stage", KEY, 7)
        path = store.entry_path("stage", KEY)
        open(path, "wb").write(b"NOTSTELLAR" + b"\x00" * 64)
        assert store.get("stage", KEY) == (False, None)

    @pytest.mark.parametrize("field", ["schema", "fingerprint"])
    def test_version_mismatch_is_a_miss(self, store, field):
        store.put("stage", KEY, "value")
        path = store.entry_path("stage", KEY)
        _rewrite_header(path, {field: 999999})
        assert store.get("stage", KEY) == (False, None)
        assert store.stats.corrupt == 1

    def test_stage_mismatch_is_a_miss(self, store):
        # An entry renamed (or hard-linked) across stage directories must
        # not be served under the wrong stage.
        store.put("stage", KEY, "value")
        source = store.entry_path("stage", KEY)
        target = store.entry_path("other", KEY)
        os.makedirs(os.path.dirname(target), exist_ok=True)
        os.rename(source, target)
        assert store.get("other", KEY) == (False, None)

    def test_unpicklable_value_degrades_to_pass_through(self, store):
        assert store.put("stage", KEY, lambda: 0) is False
        assert store.stats.write_failures == 1
        assert store.get("stage", KEY) == (False, None)

    def test_unwritable_root_degrades_to_pass_through(self, store, monkeypatch):
        # Simulate a read-only filesystem (chmod is no barrier when the
        # suite runs as root).
        monkeypatch.setattr(
            os, "makedirs", _raise_oserror, raising=True
        )
        assert store.put("stage", KEY, 1) is False
        assert store.stats.write_failures == 1


class TestVersioningAndGC:
    def test_entries_live_under_version_tag(self, store):
        store.put("stage", KEY, 1)
        assert store.entry_path("stage", KEY).startswith(store.version_dir)
        assert store.version_tag in store.entry_path("stage", KEY)

    def test_gc_removes_other_version_directories(self, store):
        store.put("stage", KEY, 1)
        stale = os.path.join(store.root, "v0-fp0", "stage")
        os.makedirs(stale)
        open(os.path.join(stale, "old.entry"), "wb").write(b"x")
        store.gc()
        assert not os.path.exists(os.path.join(store.root, "v0-fp0"))
        assert store.get("stage", KEY)[0]  # live version untouched

    def test_gc_enforces_byte_budget_lru(self, store, tmp_path):
        keys = [f"{i:02d}" + "ee" * 31 for i in range(4)]
        payload = b"z" * 4096
        for index, key in enumerate(keys):
            store.put("stage", key, payload)
            os.utime(store.entry_path("stage", key), (1000 + index, 1000 + index))
        # Re-read the oldest entry: its recency bump must save it.
        os.utime(store.entry_path("stage", keys[0]), (2000, 2000))
        store.max_bytes = 2 * (4096 + 256)
        store.gc()
        assert store.total_bytes() <= store.max_bytes
        assert store.get("stage", keys[0])[0]
        assert not store.get("stage", keys[1])[0]
        assert store.stats.evicted >= 1

    def test_clear_removes_everything(self, store):
        store.put("stage", KEY, 1)
        store.clear()
        assert store.total_bytes() == 0
        assert store.get("stage", KEY) == (False, None)


class TestEnvironment:
    def test_default_cache_dir_fallback(self, monkeypatch):
        monkeypatch.delenv("STELLAR_CACHE_DIR", raising=False)
        assert default_cache_dir().endswith(os.path.join(".cache", "stellar-repro"))

    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("STELLAR_CACHE_DIR", str(tmp_path))
        assert default_cache_dir() == str(tmp_path)

    @pytest.mark.parametrize("value", ["", "0", "off", "none", " OFF "])
    def test_env_disables_persistence(self, monkeypatch, value):
        monkeypatch.setenv("STELLAR_CACHE_DIR", value)
        assert default_cache_dir() is None
        assert DiskStore.default() is None

    def test_explicit_root_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("STELLAR_CACHE_DIR", "off")
        store = DiskStore.default(str(tmp_path / "explicit"))
        assert store is not None and store.root == str(tmp_path / "explicit")

    def test_max_bytes_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("STELLAR_CACHE_MAX_BYTES", "12345")
        assert DiskStore(str(tmp_path)).max_bytes == 12345


class TestStatsPlumbing:
    def test_snapshot_delta(self, store):
        before = store_stats_snapshot(store)
        store.put("stage", KEY, 1)
        store.get("stage", KEY)
        delta = store_stats_delta(before, store_stats_snapshot(store))
        assert delta["writes"] == 1 and delta["hits"] == 1
        assert delta["bytes_written"] > 0

    def test_none_snapshots(self):
        assert store_stats_snapshot(None) is None
        assert store_stats_delta(None, None) is None

    def test_spawn_config_reconstructs(self, store):
        twin = DiskStore(**store.spawn_config())
        assert (twin.root, twin.max_bytes) == (store.root, store.max_bytes)


def _raise_oserror(*_args, **_kwargs):
    raise OSError(30, "Read-only file system")


def _header_of(store, stage, key):
    raw = open(store.entry_path(stage, key), "rb").read()
    rest = raw[len(MAGIC):]
    return json.loads(rest[: rest.find(b"\n")].decode())


def _rewrite_header(path, overrides):
    raw = open(path, "rb").read()
    rest = raw[len(MAGIC):]
    newline = rest.find(b"\n")
    header = json.loads(rest[:newline].decode())
    header.update(overrides)
    blob = MAGIC + json.dumps(header, sort_keys=True).encode() + rest[newline:]
    open(path, "wb").write(blob)
