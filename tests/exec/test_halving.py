"""Tests for repro.exec.halving: multi-fidelity successive halving.

The differential anchor is ``eta=1``: the ladder degenerates to one
exact rung, so halving must reproduce the exhaustive autotuner row for
row.  The pruning runs (``eta>=2``) are then held to the structural
guarantees -- never worse than the fixed sweep, never worse than the
exhaustive run over the same space, byte-identical across cold and warm
disk stores -- rather than to pinned winners, because the winners are
the exhaustive autotuner's by construction.
"""

import json
import tempfile

import pytest

from repro.core.expr import Bounds
from repro.dse.space import budgeted_combos, suite_design_space
from repro.dse.uarch import (
    DmaVariant,
    MembufVariant,
    RegfileVariant,
    standard_uarch_axes,
    uarch_overlay,
)
from repro.exec.autotune import autotune_suite
from repro.exec.cache import CompileCache, persistent_compile_cache
from repro.exec.halving import (
    MIN_RUNG_CAP,
    Constraint,
    HalvingResult,
    fidelity_ladder,
    halving_autotune_suite,
    parse_constraints,
)
from repro.exec.suite import SuiteError, build_suite, evaluate_suite


def _suite(name="alexnet", cap=4, seed=7):
    return build_suite(name, cap=cap, seed=seed)


def _halve(suite_name="alexnet", **kwargs):
    kwargs.setdefault("cache", CompileCache())
    kwargs.setdefault("jobs", 1)
    return halving_autotune_suite(_suite(suite_name), **kwargs)


def _winner_rows(result):
    return [
        (r["name"], r["transform"], r["sparsity"], r["balancing"],
         r["cycles"], r["output_digest"])
        for r in result.rows
    ]


class TestFidelityLadder:
    def test_eta2_doubles_caps_below_full(self):
        assert fidelity_ladder(8, 2) == [2, 4, None]
        assert fidelity_ladder(16, 2) == [2, 4, 8, None]

    def test_eta1_degenerates_to_single_exact_rung(self):
        assert fidelity_ladder(8, 1) == [None]
        assert fidelity_ladder(64, 1) == [None]

    def test_eta3_grows_by_three(self):
        assert fidelity_ladder(8, 3) == [2, 6, None]

    def test_tiny_full_cap_has_no_reduced_rungs(self):
        assert fidelity_ladder(MIN_RUNG_CAP, 2) == [None]
        assert fidelity_ladder(1, 2) == [None]

    def test_eta_below_one_rejected(self):
        with pytest.raises(ValueError, match="eta"):
            fidelity_ladder(8, 0)


class TestConstraintGrammar:
    def test_parse_clauses(self):
        clauses = parse_constraints("area<=120000, power>=0.5")
        assert clauses == [
            Constraint("area", "<=", 120000.0),
            Constraint("power", ">=", 0.5),
        ]
        assert [str(c) for c in clauses] == ["area<=120000", "power>=0.5"]

    def test_empty_and_none_parse_to_nothing(self):
        assert parse_constraints(None) == []
        assert parse_constraints("") == []
        assert parse_constraints(" , ") == []

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="metric"):
            parse_constraints("latency<=10")

    def test_missing_operator_rejected(self):
        with pytest.raises(ValueError, match="form"):
            parse_constraints("cycles=10")

    def test_non_numeric_bound_rejected(self):
        with pytest.raises(ValueError, match="numeric"):
            parse_constraints("cycles<=fast")


class TestDifferential:
    def test_eta1_matches_exhaustive_autotune(self):
        """One exact rung over the classic three-axis space must pick
        exactly the exhaustive autotuner's winners."""
        narrow = suite_design_space(_suite())
        exhaustive = autotune_suite(
            _suite(), space=narrow, cache=CompileCache(), jobs=1
        )
        halved = _halve(space=narrow, eta=1)
        assert _winner_rows(halved) == _winner_rows(exhaustive)
        assert halved.total_cycles == exhaustive.total_cycles
        assert halved.fixed_total_cycles == exhaustive.fixed_total_cycles

    def test_pruned_run_matches_eta1_over_wide_space(self):
        """Successive halving with pruning lands on the same winners as
        the single exact rung over the identical widened combo list."""
        halved = _halve(eta=2)
        exact = _halve(eta=1)
        assert _winner_rows(halved) == _winner_rows(exact)
        assert halved.total_cycles == exact.total_cycles

    def test_never_worse_than_fixed_across_suites(self):
        for suite_name in ("alexnet", "resnet50", "suitesparse"):
            result = _halve(suite_name)
            assert result.total_cycles <= result.fixed_total_cycles

    def test_never_worse_than_exhaustive_across_suites(self):
        for suite_name in ("alexnet", "resnet50"):
            halved = _halve(suite_name, eta=2)
            exact = _halve(suite_name, eta=1)
            assert halved.total_cycles <= exact.total_cycles

    def test_fixed_cycles_match_fixed_sweep(self):
        fixed = evaluate_suite(_suite(), jobs=1, cache=CompileCache())
        halved = _halve()
        assert halved.fixed_total_cycles == fixed.total_cycles


class TestDiskStoreIdentity:
    def test_cold_and_warm_runs_pick_identical_winners(self):
        """Two runs sharing one disk-store root (the second answered
        mostly from disk, including the reduced-fidelity rung entries)
        agree row for row and rung for rung."""
        with tempfile.TemporaryDirectory(prefix="stellar-halving-") as root:
            cold = halving_autotune_suite(
                _suite(), jobs=1, cache=persistent_compile_cache(root)
            )
            warm_cache = persistent_compile_cache(root)
            warm = halving_autotune_suite(_suite(), jobs=1, cache=warm_cache)
        assert cold.rows == warm.rows
        assert [s.as_dict() for s in cold.rungs] == [
            s.as_dict() for s in warm.rungs
        ]
        assert warm_cache.store.stats.hits > 0


class TestSchedule:
    def test_rung_tallies_and_ladder(self):
        result = _halve(eta=2)
        assert result.ladder == [2, None]
        assert [s.fidelity for s in result.rungs] == ["cap2", "full"]
        assert result.rungs[0].candidates == len(result.combos) * len(
            result.decisions
        )
        assert result.rungs[-1].candidates == result.full_fidelity_evaluations
        assert result.rungs[-1].survivors == 0
        # Pruning must actually shed work before the exact rung.
        assert result.full_fidelity_evaluations < result.exhaustive_evaluations
        assert result.evaluations_saved > 1.0

    def test_on_rung_events_bracket_every_rung(self):
        events = []
        _halve(on_rung=events.append)
        starts = [e for e in events if e["event"] == "rung_start"]
        finishes = [e for e in events if e["event"] == "rung_finish"]
        assert len(starts) == len(finishes) == 2
        assert [e["fidelity"] for e in starts] == ["cap2", "full"]
        assert finishes[0]["survivors"] > 0

    def test_budget_is_rung0_sizing_alias(self):
        result = _halve(budget=6)
        assert len(result.combos) == 6
        assert result.total_cycles <= result.fixed_total_cycles

    def test_unknown_objective_rejected(self):
        with pytest.raises(ValueError, match="objective"):
            _halve(objective="latency")

    def test_result_serializes(self):
        result = _halve(eta=2)
        payload = result.to_dict()
        assert payload["mode"] == "halving"
        assert payload["eta"] == 2
        assert payload["ladder"] == [2, "full"]
        assert payload["constraint"] is None
        assert [r["fidelity"] for r in payload["rungs"]] == ["cap2", "full"]
        assert set(payload["frontiers"]) == {
            d.case.name for d in result.decisions
        }
        for row in payload["rows"]:
            assert {"membuf", "dma", "regfile", "feasible"} <= set(row)
        aggregates = payload["aggregates"]
        assert aggregates["evaluations_saved"] == round(
            result.evaluations_saved, 4
        )
        assert aggregates["full_fidelity_evaluations"] > 0
        json.dumps(payload)  # wire-safe
        assert isinstance(result, HalvingResult)
        assert result.table()


class TestConstraints:
    def test_generous_constraint_keeps_the_winner(self):
        plain = _halve()
        bounded = _halve(constraints="area<=1000000000,cycles<=1000000")
        assert _winner_rows(bounded) == _winner_rows(plain)
        for row in bounded.rows:
            assert row["feasible"] >= 1

    def test_impossible_constraint_raises(self):
        with pytest.raises(SuiteError, match="constraint"):
            _halve(constraints="area<=1")

    def test_binding_area_constraint_changes_feasible_set(self):
        plain = _halve()
        frontier = plain.to_dict()["frontiers"]
        areas = sorted(
            {point["area_um2"] for rows in frontier.values() for point in rows}
        )
        if len(areas) < 2:
            pytest.skip("frontier has a single area point at this cap")
        limit = (areas[0] + areas[1]) / 2
        bounded = _halve(constraints=f"area<={limit}")
        assert all(
            row["area_um2"] <= limit for row in bounded.rows
        )

    def test_constraint_string_is_canonicalized(self):
        result = _halve(constraints=" area<=50000000 , power>=0 ")
        assert result.to_dict()["constraint"] == "area<=50000000,power>=0"


class TestStratifiedBudget:
    def test_sample_is_deterministic(self):
        combos = suite_design_space(_suite(), wide=True).combos()
        first = budgeted_combos(combos, 9, seed=0)
        second = budgeted_combos(combos, 9, seed=0)
        assert [c.key for c in first] == [c.key for c in second]

    def test_small_budgets_touch_every_transform(self):
        """The old prefix truncation kept a transform-major prefix; the
        stratified draw must cover all four transforms by budget 4."""
        combos = suite_design_space(_suite(), wide=True).combos()
        transforms = sorted({c.transform_name for c in combos})
        kept = budgeted_combos(combos, len(transforms))
        assert sorted({c.transform_name for c in kept}) == transforms

    def test_seed_changes_the_draw(self):
        combos = suite_design_space(_suite(), wide=True).combos()
        draws = {
            tuple(c.key for c in budgeted_combos(combos, 8, seed=seed))
            for seed in range(4)
        }
        assert len(draws) > 1

    def test_required_baseline_survives_any_budget(self):
        combos = suite_design_space(_suite(), wide=True).combos()
        baseline = ("output-stationary", "B-csr", "row-shift")
        for budget in (1, 2, 5):
            kept = budgeted_combos(combos, budget, require=baseline)
            assert len(kept) == budget
            assert any(
                c.names == baseline and c.is_default_uarch for c in kept
            )


class TestUarchOverlay:
    def test_neutral_configuration_is_free(self):
        bounds = Bounds({"i": 4, "j": 4, "k": 4})
        assert uarch_overlay(None, None, None, bounds, 16) == (0, 0.0)

    def test_variants_only_add_cycles(self):
        bounds = Bounds({"i": 8, "j": 8, "k": 8})
        extra, _area = uarch_overlay(
            MembufVariant(4, 4), DmaVariant(1), RegfileVariant("crossbar"),
            bounds, 16,
        )
        assert extra > 0

    def test_area_savers_shrink_area(self):
        bounds = Bounds({"i": 8, "j": 8, "k": 8})
        _extra, area = uarch_overlay(
            MembufVariant(4, 4), DmaVariant(1), None, bounds, 16
        )
        assert area < 0

    def test_standard_axes_lead_with_default(self):
        for axis in standard_uarch_axes():
            assert next(iter(axis)) == "default"
            assert axis["default"] is None
