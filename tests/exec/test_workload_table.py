"""Tests for the user workload-table loader (``repro sweep path/to/table``).

Every malformed input -- bad JSON/CSV syntax, missing columns, illegal
dimensions or densities, duplicate layers -- must surface as a single
:class:`~repro.exec.suite.SuiteError` carrying the file path and the
offending row, never a raw traceback from ``json``/``csv``/``int``.
"""

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.exec.suite import (
    SuiteError,
    build_suite,
    is_table_path,
    load_workload_table,
)


def write_json(tmp_path, payload, name="table.json"):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


def write_csv(tmp_path, text, name="table.csv"):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


GOOD_LAYERS = [
    {"name": "l0", "m": 6, "k": 6, "n": 6},
    {"name": "l1", "m": 8, "k": 4, "n": 8, "b_density": 0.5},
]


class TestHappyPath:
    def test_json_object_payload(self, tmp_path):
        path = write_json(tmp_path, {"name": "mynet", "layers": GOOD_LAYERS})
        suite = load_workload_table(path, cap=4, seed=3)
        assert suite.name == "mynet"
        assert [c.name for c in suite.cases] == ["l0", "l1"]
        assert suite.sparsity_name == "b-csr"  # l1 has b_density < 1
        for case in suite.cases:
            i, j, k = (case.bounds.size(axis) for axis in ("i", "j", "k"))
            assert case.tensors["A"].shape == (i, k)
            assert case.tensors["B"].shape == (k, j)

    def test_json_bare_list_payload(self, tmp_path):
        path = write_json(tmp_path, [{"name": "only", "m": 4, "k": 4, "n": 4}])
        suite = load_workload_table(path, cap=4)
        assert suite.name == "table"  # file stem
        assert suite.sparsity_name == "dense"

    def test_csv_payload(self, tmp_path):
        path = write_csv(
            tmp_path,
            "name,m,k,n,a_density,b_density\n"
            "c0,6,6,6,,\n"
            "c1,8,4,8,1.0,0.5\n",
        )
        suite = load_workload_table(path, cap=4, seed=3)
        assert [c.name for c in suite.cases] == ["c0", "c1"]
        assert suite.cases[0].info["b_density"] == 1.0
        assert suite.cases[1].info["b_density"] == 0.5

    def test_json_and_csv_agree(self, tmp_path):
        """The same table through either format builds identical tensors."""
        jpath = write_json(tmp_path, {"name": "t", "layers": GOOD_LAYERS})
        cpath = write_csv(
            tmp_path,
            "name,m,k,n,b_density\nl0,6,6,6,\nl1,8,4,8,0.5\n",
        )
        a = load_workload_table(jpath, cap=4, seed=3)
        b = load_workload_table(cpath, cap=4, seed=3)
        for ca, cb in zip(a.cases, b.cases):
            assert ca.name == cb.name
            for t in ca.tensors:
                np.testing.assert_array_equal(ca.tensors[t], cb.tensors[t])

    def test_density_shapes_tensor_sparsity(self, tmp_path):
        path = write_json(
            tmp_path,
            [{"name": "l", "m": 16, "k": 16, "n": 16, "b_density": 0.25}],
        )
        suite = load_workload_table(path, cap=16, seed=0)
        b = suite.cases[0].tensors["B"]
        occupancy = np.count_nonzero(b) / b.size
        assert occupancy < 0.6  # clearly sparser than dense

    def test_build_suite_dispatches_paths(self, tmp_path):
        path = write_json(tmp_path, {"name": "t", "layers": GOOD_LAYERS})
        suite = build_suite(path, cap=4, seed=3)
        assert suite.name == "t"

    def test_is_table_path(self):
        assert is_table_path("foo/bar.json")
        assert is_table_path("table.csv")
        assert is_table_path("./resnet50")
        assert not is_table_path("resnet50")


class TestNegativePaths:
    def test_missing_file(self):
        with pytest.raises(SuiteError, match="no such workload table"):
            load_workload_table("/nonexistent/table.json")

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SuiteError, match="malformed JSON"):
            load_workload_table(str(path))

    def test_json_without_layers_key(self, tmp_path):
        path = write_json(tmp_path, {"name": "t"})
        with pytest.raises(SuiteError, match="layers"):
            load_workload_table(path)

    def test_json_layers_not_a_list(self, tmp_path):
        path = write_json(tmp_path, {"layers": {"name": "l"}})
        with pytest.raises(SuiteError, match="layers"):
            load_workload_table(path)

    def test_empty_table(self, tmp_path):
        path = write_json(tmp_path, {"layers": []})
        with pytest.raises(SuiteError, match="no layers"):
            load_workload_table(path)

    def test_csv_missing_header_column(self, tmp_path):
        path = write_csv(tmp_path, "name,m,k\nl0,4,4\n")
        with pytest.raises(SuiteError, match="header is missing column"):
            load_workload_table(path)

    def test_row_missing_column(self, tmp_path):
        path = write_json(tmp_path, [{"name": "l0", "m": 4, "k": 4}])
        with pytest.raises(SuiteError, match=r"row 1 \('l0'\).*missing"):
            load_workload_table(path)

    @pytest.mark.parametrize("dim", [0, -3])
    def test_non_positive_dimension(self, tmp_path, dim):
        path = write_json(tmp_path, [{"name": "l0", "m": dim, "k": 4, "n": 4}])
        with pytest.raises(SuiteError, match="must be positive"):
            load_workload_table(path)

    def test_fractional_dimension(self, tmp_path):
        path = write_json(tmp_path, [{"name": "l0", "m": 4.5, "k": 4, "n": 4}])
        with pytest.raises(SuiteError, match="integer"):
            load_workload_table(path)

    def test_non_numeric_dimension(self, tmp_path):
        path = write_csv(tmp_path, "name,m,k,n\nl0,big,4,4\n")
        with pytest.raises(SuiteError, match=r"row 1 \('l0'\)"):
            load_workload_table(path)

    @pytest.mark.parametrize("density", [-0.1, 1.5, "dense"])
    def test_bad_density(self, tmp_path, density):
        path = write_json(
            tmp_path,
            [{"name": "l0", "m": 4, "k": 4, "n": 4, "b_density": density}],
        )
        with pytest.raises(SuiteError, match="density"):
            load_workload_table(path)

    def test_duplicate_layer_names(self, tmp_path):
        path = write_json(
            tmp_path,
            [
                {"name": "l0", "m": 4, "k": 4, "n": 4},
                {"name": "l0", "m": 6, "k": 6, "n": 6},
            ],
        )
        with pytest.raises(SuiteError, match="duplicate layer name"):
            load_workload_table(path)

    def test_bad_sparsity_value(self, tmp_path):
        path = write_json(
            tmp_path,
            {"sparsity": "a-csr", "layers": [{"name": "l", "m": 4, "k": 4, "n": 4}]},
        )
        with pytest.raises(SuiteError, match="sparsity"):
            load_workload_table(path)

    def test_bad_element_bits(self, tmp_path):
        path = write_json(
            tmp_path,
            {"element_bits": 0, "layers": [{"name": "l", "m": 4, "k": 4, "n": 4}]},
        )
        with pytest.raises(SuiteError, match="element_bits"):
            load_workload_table(path)

    def test_non_csv_extension_parsed_as_json(self, tmp_path):
        path = tmp_path / "table.yaml"
        path.write_text("layers:\n  - name: l\n")
        with pytest.raises(SuiteError, match="malformed JSON"):
            load_workload_table(str(path))

    def test_errors_carry_row_context(self, tmp_path):
        path = write_json(
            tmp_path,
            [
                {"name": "ok", "m": 4, "k": 4, "n": 4},
                {"name": "broken", "m": 4, "k": 4, "n": 0},
            ],
        )
        with pytest.raises(SuiteError) as err:
            load_workload_table(path)
        message = str(err.value)
        assert "row 2" in message and "broken" in message
        assert path in message or "table.json" in message


class TestCLI:
    def test_sweep_accepts_table_path(self, tmp_path, capsys):
        path = write_json(tmp_path, {"name": "t", "layers": GOOD_LAYERS})
        assert cli_main(
            ["sweep", path, "--cap", "4", "--jobs", "1", "--no-disk-cache"]
        ) == 0
        assert "t: 2 cases" in capsys.readouterr().out

    def test_sweep_bad_table_exits_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("[{}]")
        assert cli_main(["sweep", str(path), "--no-disk-cache"]) == 2
        err = capsys.readouterr().err
        assert "sweep:" in err and "Traceback" not in err

    def test_unknown_suite_mentions_tables(self, capsys):
        assert cli_main(["sweep", "vgg19", "--no-disk-cache"]) == 2
        assert "workload table" in capsys.readouterr().err
