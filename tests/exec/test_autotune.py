"""Tests for repro.exec.autotune: per-layer Pareto autotuning.

The golden-pin classes freeze the exact winner (transform, sparsity,
balancing, cycles, output digest) autotuning picks for every layer of
the small resnet50 and alexnet tiles.  Any change to candidate
enumeration order, Pareto ranking, tie-breaking, workload generation or
the simulator's cycle model shows up here as a pin diff -- which is the
point: re-pin deliberately, never accidentally.
"""

import pytest

from repro.dse.space import (
    DesignSpace,
    budgeted_combos,
    standard_transforms,
    suite_design_space,
)
from repro.exec.autotune import (
    OBJECTIVES,
    AutotuneResult,
    autotune_suite,
    select_winner,
)
from repro.exec.cache import CompileCache
from repro.exec.suite import SuiteError, build_suite, evaluate_suite

# (layer, transform, sparsity, balancing, cycles, output_digest) per
# suite, from `repro sweep <suite> --autotune` at cap=4 seed=7.
RESNET50_CAP4_PINS = [
    ("conv1", "input-stationary", "dense", "none", 10,
     "333d450da6d825f85195a7aa3473853140bea6d2323ea124ff4318f2ec1a95e4"),
    ("res2_1x1a", "input-stationary", "dense", "none", 10,
     "adb3bbb793bc0e6bd3ef34656ebdfe14fb7c41d44597047184bff195523b594b"),
    ("res2_3x3", "input-stationary", "dense", "none", 10,
     "dfc4ebe6e2a26c897306e458c9064232137cca7bd7b82659f8cc8abd5e4cd6d3"),
    ("res2_1x1b", "input-stationary", "dense", "none", 10,
     "9f40147a77525ec84086b1f0a7679582effbcc55550f54f2f0e8e80ec454c704"),
    ("res2_proj", "input-stationary", "dense", "none", 10,
     "d4b2621dd6c874419a1f9c7100c725085f6b41f0a6123e78e1f992b1ccc7cb06"),
    ("res3_1x1a", "input-stationary", "dense", "none", 10,
     "20a9a30b2550c0a1494d0cf8819eabc5b2d5439d8c6864a1e2637a1bf730fbd6"),
    ("res3_3x3", "input-stationary", "dense", "none", 10,
     "7888f641b7315ffd2af9413764dec33909c23b5829c8485037f061ba7f19f04b"),
    ("res3_1x1b", "input-stationary", "dense", "none", 10,
     "14d156947aea564d17e948cb7d301108cc19d7b9bde4d332bc45afdbd589f322"),
    ("res3_proj", "input-stationary", "dense", "none", 10,
     "f8928d5cdc881b8a5e1aaba813f7b6f3afe3c192907061e6eff828805cb5ec17"),
    ("res4_1x1a", "input-stationary", "dense", "none", 10,
     "bb4cffd2781947919a548d1bb0d58b8ec373d481075218a7610703e61b64d8c6"),
    ("res4_3x3", "input-stationary", "dense", "none", 10,
     "ebe1d5ef7f408048059ec6313f7e52882ad0265567c732e74b6b568b5a2c78f1"),
    ("res4_1x1b", "input-stationary", "dense", "none", 10,
     "85c6df57d258fcebc4d71fb63548f218aa22321754cf2b16470fb36d8986d2d0"),
    ("res4_proj", "input-stationary", "dense", "none", 10,
     "54b4cc7a8d4da3ec8a6672ca0deb3621d965ed505695b642dc1a524834311162"),
    ("res5_1x1a", "input-stationary", "dense", "none", 10,
     "ddd88c718150db5caff6b8744b13eeb2467a304ff5b89f495e6d062f7961dad9"),
    ("res5_3x3", "input-stationary", "dense", "none", 10,
     "29c9d2220d9d306189ff015c96ed58651a0e25524e2472edbd771bb62d1de1ae"),
    ("res5_1x1b", "input-stationary", "dense", "none", 10,
     "ae00ee8850da3d6bab15084c26caec81604f0326347a9d4d4f1c643aae8eb712"),
    ("res5_proj", "input-stationary", "dense", "none", 10,
     "b658811b0940d5c74bcc58269bfa5a6fbd9f00c26d92f653ab97cd43b8745894"),
    ("fc1000", "output-stationary", "dense", "none", 7,
     "f6bec622076bfacae2088db2f5ec79d2efa2865cbb4b4fb60d63b6b4774d194c"),
]

ALEXNET_CAP4_PINS = [
    ("conv1", "hexagonal", "B-csr", "row-shift", 8,
     "de6e9ee6aeadf97fbf9fcc17a8851cbd5f084d6f2ef1622156a1c1b51ab4d717"),
    ("conv2", "input-stationary", "B-csr", "row-shift", 6,
     "7d74b1df746118bab98bc945de3c71d9aa3cf2d7073242af11643c0a25a2ee8d"),
    ("conv3", "input-stationary", "B-csr", "row-shift", 8,
     "3f5797a534a7de8dea92adb5d06dc8b99585109d6d7c011f548cd8779049f46d"),
    ("conv4", "input-stationary", "B-csr", "row-shift", 6,
     "9e653e649f39d6bad7580d8ba61a9f8c6e609d8d4d7e9749c5b238a2167a6c4a"),
    ("conv5", "hexagonal", "B-csr", "row-shift", 7,
     "d03ea2e6a0f4e16dce7da0909d234e597903d19582710830ed152aa6140feb70"),
]


def _autotune(suite_name, **kwargs):
    return autotune_suite(
        build_suite(suite_name, cap=4, seed=7),
        cache=CompileCache(),
        jobs=1,
        **kwargs,
    )


def _pin_rows(result):
    return [
        (r["name"], r["transform"], r["sparsity"], r["balancing"],
         r["cycles"], r["output_digest"])
        for r in result.rows
    ]


class TestGoldenPins:
    def test_resnet50_cap4_winners(self):
        result = _autotune("resnet50")
        assert _pin_rows(result) == RESNET50_CAP4_PINS
        assert result.total_cycles == 177
        assert result.fixed_total_cycles == 177

    def test_alexnet_cap4_winners(self):
        result = _autotune("alexnet")
        assert _pin_rows(result) == ALEXNET_CAP4_PINS
        assert result.total_cycles == 35
        assert result.fixed_total_cycles == 41

    def test_pins_are_rerun_stable(self):
        """Two in-process runs of the same autotune agree row for row."""
        assert _pin_rows(_autotune("alexnet")) == _pin_rows(_autotune("alexnet"))


class TestInvariants:
    def test_never_worse_than_fixed_design(self):
        """The fixed design is always a candidate, so the autotuned
        aggregate can never exceed the fixed sweep's."""
        for suite_name in ("alexnet", "resnet50", "suitesparse"):
            result = _autotune(suite_name)
            assert result.total_cycles <= result.fixed_total_cycles

    def test_fixed_cycles_match_fixed_sweep(self):
        suite = build_suite("alexnet", cap=4, seed=7)
        fixed = evaluate_suite(suite, jobs=1, cache=CompileCache())
        tuned = _autotune("alexnet")
        assert tuned.fixed_total_cycles == fixed.total_cycles

    def test_budget_keeps_baseline(self):
        """Even budget=1 must retain the suite's fixed design point."""
        result = _autotune("alexnet", budget=1)
        assert result.rows
        for row in result.rows:
            assert row["cycles"] == row["fixed_cycles"]
        assert result.total_cycles == result.fixed_total_cycles
        assert result.retuned_layers == 0

    def test_budget_caps_candidates(self):
        result = _autotune("alexnet", budget=3)
        assert result.aggregates()["candidates_per_layer"] == 3

    def test_retuned_layers_counts_changed_winners(self):
        result = _autotune("alexnet")
        changed = sum(
            1 for row in result.rows
            if (row["transform"], row["sparsity"], row["balancing"])
            != ("output-stationary", "B-csr", "none")
        )
        assert result.retuned_layers == changed == 5

    def test_objectives_registry(self):
        assert set(OBJECTIVES) == {"cycles", "energy", "edp"}

    def test_energy_and_edp_objectives_run(self):
        by_energy = _autotune("alexnet", objective="energy", budget=4)
        by_edp = _autotune("alexnet", objective="edp", budget=4)
        assert by_energy.total_energy_pj > 0
        assert by_edp.total_edp > 0

    def test_unknown_objective_rejected(self):
        with pytest.raises(ValueError, match="objective"):
            _autotune("alexnet", objective="latency")

    def test_result_serializes(self):
        result = _autotune("alexnet", budget=2)
        payload = result.to_dict()
        assert payload["mode"] == "autotune"
        assert payload["objective"] == "cycles"
        assert payload["budget"] == 2
        assert len(payload["rows"]) == 5
        assert payload["aggregates"]["total_cycles"] == result.total_cycles
        assert isinstance(result, AutotuneResult)
        assert result.table()

    def test_space_must_contain_baseline(self):
        """A custom space that drops the suite's fixed design is rejected:
        without it the aggregate is not comparable to the fixed sweep."""
        transforms = standard_transforms()
        transforms.pop("output-stationary")
        with pytest.raises(SuiteError, match="fixed baseline design"):
            autotune_suite(
                build_suite("alexnet", cap=4, seed=7),
                space=DesignSpace(transforms),
                cache=CompileCache(),
                jobs=1,
            )


class TestSelectWinner:
    def test_empty_points_rejected(self):
        with pytest.raises(ValueError, match="zero points"):
            select_winner([], "cycles")

    def test_unknown_objective_rejected(self):
        with pytest.raises(ValueError, match="objective"):
            select_winner([], "area")

    def test_budgeted_combos_rejects_non_positive(self):
        space = suite_design_space(build_suite("alexnet", cap=4))
        with pytest.raises(ValueError, match="budget"):
            budgeted_combos(space.combos(), 0, require=None)

    def test_budget_truncation_keeps_required_combo(self):
        space = suite_design_space(build_suite("alexnet", cap=4))
        baseline = ("output-stationary", "B-csr", "none")
        kept = budgeted_combos(space.combos(), 2, require=baseline)
        assert len(kept) == 2
        assert any(combo.names == baseline for combo in kept)
