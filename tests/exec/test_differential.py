"""Differential tests: independent evaluation paths must agree exactly.

The pairings, each exercising a redundancy the engine relies on:

* the vectorized skip-condition evaluator in
  :class:`~repro.sim.spatial_array.SpatialArraySim` against its scalar
  fallback (``vectorize=False``) -- byte-identical outputs and equal
  performance counters on the same compiled design and workload;
* the trace-compiled batched reference kernel
  (:mod:`repro.sim.kernel`) against the scalar spec interpreter
  (``interpret(..., kernel=False)``) -- byte-identical output arrays
  across random shapes, dtypes, and transforms, and identical sim
  results through the ``kernel=`` knob;
* serial (``jobs=1``) against process-pool (``jobs=2``) suite
  evaluation and autotuning -- identical row ordering and digests, so
  parallelism is pure speedup, never a result change;
* cold against warm (disk-backed) autotune runs -- the persistent cache
  may only change *where* answers come from, never which winners are
  picked.
"""

import numpy as np
import pytest

from repro.core import Bounds, compile_design, matmul_spec
from repro.core.balancing import row_shift_scheme
from repro.core.dataflow import (
    SpaceTimeTransform,
    hexagonal,
    input_stationary,
    output_stationary,
    weight_stationary,
)
from repro.core.expr import Index, Select, SpecError, Tensor
from repro.core.functionality import batched_matmul_spec, conv1d_spec
from repro.core.sparsity import Skip, SparsityStructure, csr_b_matrix
from repro.exec.autotune import autotune_suite
from repro.exec.cache import CompileCache
from repro.exec.store import DiskStore
from repro.exec.suite import build_suite, evaluate_suite
from repro.sim.kernel import compile_kernel
from repro.sim.spatial_array import SpatialArraySim

TRANSFORMS = {
    "output-stationary": output_stationary,
    "input-stationary": input_stationary,
    "weight-stationary": weight_stationary,
    "hexagonal": hexagonal,
}


def _masked(rng, shape, density):
    values = rng.integers(-4, 5, shape)
    if density < 1.0:
        values = np.where(rng.random(shape) < density, values, 0)
    return values


def _run_both_paths(design, tensors):
    """The same design and workload through the vectorized and scalar
    evaluators; ``memo=None`` so neither path can answer for the other."""
    fast = SpatialArraySim(design, memo=None, vectorize=True).run(tensors)
    slow = SpatialArraySim(design, memo=None, vectorize=False).run(tensors)
    return fast, slow


class TestVectorizedVsScalarSim:
    @pytest.mark.parametrize("transform_name", sorted(TRANSFORMS))
    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_dense_random_shapes(self, transform_name, seed):
        rng = np.random.default_rng([seed, 11])
        i, j, k = (int(d) for d in rng.integers(2, 7, 3))
        spec = matmul_spec()
        design = compile_design(
            spec, Bounds({"i": i, "j": j, "k": k}), TRANSFORMS[transform_name]()
        )
        tensors = {"A": rng.integers(-4, 5, (i, k)), "B": rng.integers(-4, 5, (k, j))}
        fast, slow = _run_both_paths(design, tensors)
        assert fast.outputs["C"].tobytes() == slow.outputs["C"].tobytes()
        assert fast.cycles == slow.cycles
        assert fast.utilization == slow.utilization
        assert fast.outputs["C"].dtype == slow.outputs["C"].dtype

    @pytest.mark.parametrize("transform_name", ["output-stationary", "input-stationary"])
    @pytest.mark.parametrize("density", [0.0, 0.3, 0.8])
    @pytest.mark.parametrize("balanced", [False, True])
    def test_sparse_random_densities(self, transform_name, density, balanced):
        rng = np.random.default_rng([int(density * 10), balanced, 5])
        i, j, k = (int(d) for d in rng.integers(3, 7, 3))
        spec = matmul_spec()
        design = compile_design(
            spec,
            Bounds({"i": i, "j": j, "k": k}),
            TRANSFORMS[transform_name](),
            sparsity=csr_b_matrix(spec),
            balancing=row_shift_scheme(max(i // 2, 1)) if balanced else None,
        )
        tensors = {
            "A": rng.integers(-4, 5, (i, k)),
            "B": _masked(rng, (k, j), density),
        }
        fast, slow = _run_both_paths(design, tensors)
        assert fast.outputs["C"].tobytes() == slow.outputs["C"].tobytes()
        assert fast.cycles == slow.cycles

    def test_scalar_path_is_really_taken(self):
        """Guard against the knob silently routing both runs through the
        vectorized evaluator."""
        spec = matmul_spec()
        design = compile_design(
            spec, Bounds({"i": 3, "j": 3, "k": 3}), output_stationary()
        )
        sim = SpatialArraySim(design, memo=None, vectorize=False)
        assert sim.vectorize is False
        tensors = {"A": np.eye(3, dtype=np.int64), "B": np.eye(3, dtype=np.int64)}
        assert np.array_equal(sim.run(tensors).outputs["C"], np.eye(3))


def _kernel_workload(kind, rng, floats=False):
    """A random (spec, bounds, tensors) triple for one library spec."""
    def values(shape):
        if floats:
            return rng.standard_normal(shape)
        return rng.integers(-4, 5, shape)

    if kind == "matmul":
        i, j, k = (int(d) for d in rng.integers(2, 7, 3))
        bounds = Bounds({"i": i, "j": j, "k": k})
        return matmul_spec(), bounds, {"A": values((i, k)), "B": values((k, j))}
    if kind == "conv1d":
        ox, oc, f = (int(d) for d in rng.integers(2, 6, 3))
        bounds = Bounds({"ox": ox, "oc": oc, "f": f})
        return (
            conv1d_spec(),
            bounds,
            {"I": values((ox + f - 1,)), "W": values((oc, f))},
        )
    n, i, j, k = (int(d) for d in rng.integers(2, 5, 4))
    bounds = Bounds({"n": n, "i": i, "j": j, "k": k})
    return (
        batched_matmul_spec(),
        bounds,
        {"A": values((n, i, k)), "B": values((n, k, j))},
    )


class TestKernelVsInterpreter:
    @pytest.mark.parametrize("kind", ["matmul", "conv1d", "bmm"])
    @pytest.mark.parametrize("seed", [0, 9, 31])
    @pytest.mark.parametrize("floats", [False, True])
    def test_random_shapes_byte_identical(self, kind, seed, floats):
        rng = np.random.default_rng([seed, 13])
        spec, bounds, tensors = _kernel_workload(kind, rng, floats=floats)
        kernel = compile_kernel(spec)
        assert kernel is not None
        got = kernel.replay(bounds, tensors)
        want = spec.interpret(bounds, tensors, kernel=False)
        assert sorted(got) == sorted(want)
        for name in want:
            assert got[name].dtype == want[name].dtype
            assert got[name].shape == want[name].shape
            assert got[name].tobytes() == want[name].tobytes()

    @pytest.mark.parametrize("transform_name", sorted(TRANSFORMS))
    @pytest.mark.parametrize("density", [0.0, 0.4, 1.0])
    def test_sim_kernel_knob_parity(self, transform_name, density):
        """A full sparse sim run must not depend on which reference
        backend computed the expected outputs."""
        rng = np.random.default_rng([transform_name == "hexagonal", int(density * 10)])
        i, j, k = (int(d) for d in rng.integers(3, 7, 3))
        spec = matmul_spec()
        design = compile_design(
            spec,
            Bounds({"i": i, "j": j, "k": k}),
            TRANSFORMS[transform_name](),
            sparsity=csr_b_matrix(spec),
        )
        tensors = {
            "A": rng.integers(-4, 5, (i, k)),
            "B": _masked(rng, (k, j), density),
        }
        with_kernel = SpatialArraySim(design, memo=None, kernel=True).run(tensors)
        without = SpatialArraySim(design, memo=None, kernel=False).run(tensors)
        assert with_kernel.outputs["C"].tobytes() == without.outputs["C"].tobytes()
        assert with_kernel.outputs["C"].dtype == without.outputs["C"].dtype
        assert with_kernel.cycles == without.cycles

    def test_kernel_knob_is_respected(self):
        design = compile_design(
            matmul_spec(), Bounds({"i": 3, "j": 3, "k": 3}), output_stationary()
        )
        assert SpatialArraySim(design, memo=None, kernel=False).kernel is False
        assert SpatialArraySim(design, memo=None).kernel is True

    def test_partial_fallback_mask_parity(self):
        """One batch-unsupported skip condition (a ``Select`` operand)
        must be evaluated scalar *on its own* and OR-ed into the batched
        mask of its supported sibling -- never discard it."""
        rng = np.random.default_rng(17)
        i, j, k = 4, 3, 5
        idx_i, idx_j, idx_k = Index("i"), Index("j"), Index("k")
        A, B = Tensor("A", 2), Tensor("B", 2)
        sparsity = SparsityStructure(
            [
                Skip([idx_j], B[idx_k, idx_j] == 0),
                Skip([idx_k], Select(A[idx_i, idx_k] == 0, 1, 0) == 1),
            ]
        )
        design = compile_design(
            matmul_spec(),
            Bounds({"i": i, "j": j, "k": k}),
            output_stationary(),
            sparsity=sparsity,
            check=False,
        )
        tensors = {
            "A": _masked(rng, (i, k), 0.6),
            "B": _masked(rng, (k, j), 0.5),
        }
        fast = SpatialArraySim(design, memo=None, vectorize=True)
        slow = SpatialArraySim(design, memo=None, vectorize=False)
        fast_points = fast._valid_points(tensors)
        assert fast_points == slow._valid_points(tensors)
        # Both masks actually bit: fewer points than the dense domain,
        # more than the supported condition alone would leave.
        assert 0 < len(fast_points) < i * j * k
        fast_run, slow_run = fast.run(tensors), slow.run(tensors)
        assert fast_run.outputs["C"].tobytes() == slow_run.outputs["C"].tobytes()
        assert fast_run.cycles == slow_run.cycles

    def test_sparse_multitime_schedule_matches_dense(self):
        """With a fully dense operand, a sparse design under a
        ``time_dims > 1`` transform must schedule exactly as many cycles
        as the dense design -- the linearization covers *all* time
        coordinates, not just the first."""
        spec = batched_matmul_spec()
        transform = SpaceTimeTransform(
            [[0, 1, 0, 0], [0, 0, 1, 0], [1, 0, 0, 0], [0, 1, 1, 1]],
            space_dims=2,
        )
        bounds = Bounds({"n": 2, "i": 3, "j": 3, "k": 4})
        idx_n, idx_j, idx_k = Index("n"), Index("j"), Index("k")
        B = Tensor("B", 3)
        sparsity = SparsityStructure([Skip([idx_j], B[idx_n, idx_k, idx_j] == 0)])
        rng = np.random.default_rng(29)
        tensors = {
            "A": rng.integers(1, 5, (2, 3, 4)),
            "B": rng.integers(1, 5, (2, 4, 3)),
        }
        dense = SpatialArraySim(
            compile_design(spec, bounds, transform), memo=None
        ).run(tensors)
        sparse = SpatialArraySim(
            compile_design(spec, bounds, transform, sparsity=sparsity, check=False),
            memo=None,
        ).run(tensors)
        assert dense.cycles == 16  # 2 batches x 8 wavefronts
        assert sparse.cycles == dense.cycles
        assert sparse.outputs["C"].tobytes() == dense.outputs["C"].tobytes()

    def test_scalar_skip_read_out_of_range_names_tensor(self):
        """An out-of-range tensor read inside a skip condition surfaces
        as a :class:`SpecError` naming the tensor and coordinates, not a
        bare ``IndexError``."""
        idx_j, idx_k = Index("j"), Index("k")
        B = Tensor("B", 2)
        sparsity = SparsityStructure([Skip([idx_j], B[idx_k + 10, idx_j] == 0)])
        design = compile_design(
            matmul_spec(),
            Bounds({"i": 2, "j": 2, "k": 2}),
            output_stationary(),
            sparsity=sparsity,
            check=False,
        )
        sim = SpatialArraySim(design, memo=None, vectorize=False)
        tensors = {
            "A": np.ones((2, 2), dtype=np.int64),
            "B": np.ones((2, 2), dtype=np.int64),
        }
        with pytest.raises(
            SpecError, match=r"tensor 'B' at out-of-range coordinates"
        ):
            sim.run(tensors)


class TestSerialVsParallel:
    def test_suite_rows_identical_across_jobs(self):
        suite = build_suite("alexnet", cap=4, seed=3)
        serial = evaluate_suite(suite, jobs=1, cache=CompileCache())
        parallel = evaluate_suite(
            build_suite("alexnet", cap=4, seed=3), jobs=2, cache=CompileCache()
        )
        assert serial.rows == parallel.rows
        assert [r["name"] for r in serial.rows] == [c.name for c in suite.cases]

    def test_autotune_rows_identical_across_jobs(self):
        serial = autotune_suite(
            build_suite("alexnet", cap=4, seed=3),
            budget=6,
            jobs=1,
            cache=CompileCache(),
        )
        parallel = autotune_suite(
            build_suite("alexnet", cap=4, seed=3),
            budget=6,
            jobs=2,
            cache=CompileCache(),
        )
        assert serial.rows == parallel.rows
        digests = [row["output_digest"] for row in serial.rows]
        assert digests == [row["output_digest"] for row in parallel.rows]
        assert all(digests)


class TestColdVsWarmAutotune:
    def test_disk_warmed_run_picks_identical_winners(self, tmp_path):
        root = str(tmp_path / "store")

        cold_cache = CompileCache(store=DiskStore(root))
        cold = autotune_suite(
            build_suite("alexnet", cap=4, seed=3),
            budget=8,
            jobs=1,
            cache=cold_cache,
        )
        assert cold_cache.store.stats.writes > 0

        warm_cache = CompileCache(store=DiskStore(root))
        warm = autotune_suite(
            build_suite("alexnet", cap=4, seed=3),
            budget=8,
            jobs=1,
            cache=warm_cache,
        )
        assert warm_cache.stats.disk_hits > 0

        assert cold.rows == warm.rows
        assert cold.total_cycles == warm.total_cycles
        assert cold.retuned_layers == warm.retuned_layers
        for before, after in zip(cold.rows, warm.rows):
            assert before["transform"] == after["transform"]
            assert before["sparsity"] == after["sparsity"]
            assert before["output_digest"] == after["output_digest"]
