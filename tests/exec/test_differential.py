"""Differential tests: independent evaluation paths must agree exactly.

Three pairings, each exercising a redundancy the engine relies on:

* the vectorized skip-condition evaluator in
  :class:`~repro.sim.spatial_array.SpatialArraySim` against its scalar
  fallback (``vectorize=False``) -- byte-identical outputs and equal
  performance counters on the same compiled design and workload;
* serial (``jobs=1``) against process-pool (``jobs=2``) suite
  evaluation and autotuning -- identical row ordering and digests, so
  parallelism is pure speedup, never a result change;
* cold against warm (disk-backed) autotune runs -- the persistent cache
  may only change *where* answers come from, never which winners are
  picked.
"""

import numpy as np
import pytest

from repro.core import Bounds, compile_design, matmul_spec
from repro.core.balancing import row_shift_scheme
from repro.core.dataflow import (
    hexagonal,
    input_stationary,
    output_stationary,
    weight_stationary,
)
from repro.core.sparsity import csr_b_matrix
from repro.exec.autotune import autotune_suite
from repro.exec.cache import CompileCache
from repro.exec.store import DiskStore
from repro.exec.suite import build_suite, evaluate_suite
from repro.sim.spatial_array import SpatialArraySim

TRANSFORMS = {
    "output-stationary": output_stationary,
    "input-stationary": input_stationary,
    "weight-stationary": weight_stationary,
    "hexagonal": hexagonal,
}


def _masked(rng, shape, density):
    values = rng.integers(-4, 5, shape)
    if density < 1.0:
        values = np.where(rng.random(shape) < density, values, 0)
    return values


def _run_both_paths(design, tensors):
    """The same design and workload through the vectorized and scalar
    evaluators; ``memo=None`` so neither path can answer for the other."""
    fast = SpatialArraySim(design, memo=None, vectorize=True).run(tensors)
    slow = SpatialArraySim(design, memo=None, vectorize=False).run(tensors)
    return fast, slow


class TestVectorizedVsScalarSim:
    @pytest.mark.parametrize("transform_name", sorted(TRANSFORMS))
    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_dense_random_shapes(self, transform_name, seed):
        rng = np.random.default_rng([seed, 11])
        i, j, k = (int(d) for d in rng.integers(2, 7, 3))
        spec = matmul_spec()
        design = compile_design(
            spec, Bounds({"i": i, "j": j, "k": k}), TRANSFORMS[transform_name]()
        )
        tensors = {"A": rng.integers(-4, 5, (i, k)), "B": rng.integers(-4, 5, (k, j))}
        fast, slow = _run_both_paths(design, tensors)
        assert fast.outputs["C"].tobytes() == slow.outputs["C"].tobytes()
        assert fast.cycles == slow.cycles
        assert fast.utilization == slow.utilization
        assert fast.outputs["C"].dtype == slow.outputs["C"].dtype

    @pytest.mark.parametrize("transform_name", ["output-stationary", "input-stationary"])
    @pytest.mark.parametrize("density", [0.0, 0.3, 0.8])
    @pytest.mark.parametrize("balanced", [False, True])
    def test_sparse_random_densities(self, transform_name, density, balanced):
        rng = np.random.default_rng([int(density * 10), balanced, 5])
        i, j, k = (int(d) for d in rng.integers(3, 7, 3))
        spec = matmul_spec()
        design = compile_design(
            spec,
            Bounds({"i": i, "j": j, "k": k}),
            TRANSFORMS[transform_name](),
            sparsity=csr_b_matrix(spec),
            balancing=row_shift_scheme(max(i // 2, 1)) if balanced else None,
        )
        tensors = {
            "A": rng.integers(-4, 5, (i, k)),
            "B": _masked(rng, (k, j), density),
        }
        fast, slow = _run_both_paths(design, tensors)
        assert fast.outputs["C"].tobytes() == slow.outputs["C"].tobytes()
        assert fast.cycles == slow.cycles

    def test_scalar_path_is_really_taken(self):
        """Guard against the knob silently routing both runs through the
        vectorized evaluator."""
        spec = matmul_spec()
        design = compile_design(
            spec, Bounds({"i": 3, "j": 3, "k": 3}), output_stationary()
        )
        sim = SpatialArraySim(design, memo=None, vectorize=False)
        assert sim.vectorize is False
        tensors = {"A": np.eye(3, dtype=np.int64), "B": np.eye(3, dtype=np.int64)}
        assert np.array_equal(sim.run(tensors).outputs["C"], np.eye(3))


class TestSerialVsParallel:
    def test_suite_rows_identical_across_jobs(self):
        suite = build_suite("alexnet", cap=4, seed=3)
        serial = evaluate_suite(suite, jobs=1, cache=CompileCache())
        parallel = evaluate_suite(
            build_suite("alexnet", cap=4, seed=3), jobs=2, cache=CompileCache()
        )
        assert serial.rows == parallel.rows
        assert [r["name"] for r in serial.rows] == [c.name for c in suite.cases]

    def test_autotune_rows_identical_across_jobs(self):
        serial = autotune_suite(
            build_suite("alexnet", cap=4, seed=3),
            budget=6,
            jobs=1,
            cache=CompileCache(),
        )
        parallel = autotune_suite(
            build_suite("alexnet", cap=4, seed=3),
            budget=6,
            jobs=2,
            cache=CompileCache(),
        )
        assert serial.rows == parallel.rows
        digests = [row["output_digest"] for row in serial.rows]
        assert digests == [row["output_digest"] for row in parallel.rows]
        assert all(digests)


class TestColdVsWarmAutotune:
    def test_disk_warmed_run_picks_identical_winners(self, tmp_path):
        root = str(tmp_path / "store")

        cold_cache = CompileCache(store=DiskStore(root))
        cold = autotune_suite(
            build_suite("alexnet", cap=4, seed=3),
            budget=8,
            jobs=1,
            cache=cold_cache,
        )
        assert cold_cache.store.stats.writes > 0

        warm_cache = CompileCache(store=DiskStore(root))
        warm = autotune_suite(
            build_suite("alexnet", cap=4, seed=3),
            budget=8,
            jobs=1,
            cache=warm_cache,
        )
        assert warm_cache.stats.disk_hits > 0

        assert cold.rows == warm.rows
        assert cold.total_cycles == warm.total_cycles
        assert cold.retuned_layers == warm.retuned_layers
        for before, after in zip(cold.rows, warm.rows):
            assert before["transform"] == after["transform"]
            assert before["sparsity"] == after["sparsity"]
            assert before["output_digest"] == after["output_digest"]
