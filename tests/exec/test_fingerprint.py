"""Tests for canonical content fingerprinting."""

import subprocess
import sys
from fractions import Fraction

import numpy as np
import pytest

from repro.core import Bounds, matmul_spec
from repro.core.balancing import row_shift_scheme
from repro.core.dataflow import hexagonal, output_stationary
from repro.core.sparsity import csr_b_matrix
from repro.exec.fingerprint import FingerprintError, fingerprint, tensor_signature


class TestPrimitives:
    def test_type_tags_distinguish_equal_values(self):
        assert fingerprint(1) != fingerprint(1.0)
        assert fingerprint(1) != fingerprint(True)
        assert fingerprint("1") != fingerprint(1)
        assert fingerprint(b"x") != fingerprint("x")

    def test_container_kind_matters(self):
        assert fingerprint((1, 2)) != fingerprint([1, 2])
        assert fingerprint({1, 2}) != fingerprint((1, 2))

    def test_multiple_args_hash_as_tuple(self):
        assert fingerprint(1, 2) == fingerprint((1, 2))

    def test_fraction(self):
        assert fingerprint(Fraction(1, 2)) == fingerprint(Fraction(2, 4))
        assert fingerprint(Fraction(1, 2)) != fingerprint(0.5)


class TestCanonicalOrder:
    def test_dict_insertion_order_is_irrelevant(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_set_iteration_order_is_irrelevant(self):
        # Strings are the hash-randomized case: iteration order differs
        # between processes but the fingerprint must not.
        assert fingerprint({"x", "y", "zz"}) == fingerprint({"zz", "y", "x"})

    def test_stable_across_processes(self):
        import os

        code = (
            "from repro.exec.fingerprint import fingerprint;"
            "from repro.core import matmul_spec;"
            "print(fingerprint({'x', 'y', 'zz'}), fingerprint(matmul_spec()))"
        )
        runs = set()
        for seed in ("1", "2"):
            env = dict(os.environ)
            env["PYTHONPATH"] = "src"
            env["PYTHONHASHSEED"] = seed
            runs.add(
                subprocess.run(
                    [sys.executable, "-c", code],
                    capture_output=True, text=True, check=True, env=env,
                ).stdout
            )
        assert len(runs) == 1

    def test_numpy_arrays_hash_contents(self):
        a = np.arange(6).reshape(2, 3)
        assert fingerprint(a) == fingerprint(a.copy())
        assert fingerprint(a) != fingerprint(a.T.copy())  # shape matters
        assert fingerprint(a) != fingerprint(a.astype(np.float64))
        # Non-contiguous views hash like their contiguous copies.
        assert fingerprint(a.T) == fingerprint(np.ascontiguousarray(a.T))


class TestDesignAxes:
    def test_structurally_equal_specs_match(self):
        assert fingerprint(matmul_spec()) == fingerprint(matmul_spec())

    def test_each_axis_changes_the_key(self):
        spec = matmul_spec()
        base = (spec, Bounds({"i": 4, "j": 4, "k": 4}), output_stationary())
        assert fingerprint(base) == fingerprint(
            (matmul_spec(), Bounds({"i": 4, "j": 4, "k": 4}), output_stationary())
        )
        assert fingerprint(base) != fingerprint(
            (spec, Bounds({"i": 8, "j": 4, "k": 4}), output_stationary())
        )
        assert fingerprint(base) != fingerprint(
            (spec, Bounds({"i": 4, "j": 4, "k": 4}), hexagonal())
        )

    def test_sparsity_and_balancing(self):
        spec = matmul_spec()
        assert fingerprint(csr_b_matrix(spec)) == fingerprint(csr_b_matrix(spec))
        assert fingerprint(row_shift_scheme(2)) != fingerprint(row_shift_scheme(3))

    def test_cycles_encode_as_backreferences(self):
        a = {"name": "a"}
        a["self"] = a
        b = {"name": "a"}
        b["self"] = b
        assert fingerprint(a) == fingerprint(b)


class TestGoldenDigests:
    """Pinned digests guard cross-process / cross-version stability.

    The persistent :class:`~repro.exec.store.DiskStore` addresses entries
    by these digests, so any drift silently orphans every cache on every
    machine.  If an intentional canonicalization change breaks one of
    these pins, bump ``FINGERPRINT_VERSION`` (which retires old store
    entries cleanly) and re-pin.
    """

    GOLDEN = {
        "spec": "8217f79dc349c1bffc6cbd9f366f1dc16e57d4c5984ddd141e8eb24ca36c1339",
        "bounds": "c29b70bdc10b1cc2aa4695a7acd56dfa3639bfbe0840f9f50390053215f555e0",
        "transform": "ce4e157292d57d11599c0fad1fb5ef6c7b081fb966463083b551b5b5d2fcfc0f",
        "sparsity": "63ff8f42d05baab12273190f7820e9f6c7c7369c5219eab1146fef2c5cf3e9f4",
        "balancing": "fc3605f0e9c1e8ca987b444e953e113125fa588f9cefa02aea453635f59bc733",
        "tensors": "87742e27573e712dce4a77f7fa08e52885445d0d76905324e8db59e4b670f498",
        "key": "979129e40af1602fd83d7b1a78f50476b070adb23aacea73bf1734c7095baa25",
        "prims": "912fdc0dc1eba334378972d6075875e7f503250c0e76526a815472f638c60970",
    }

    def test_fingerprint_version_is_pinned(self):
        from repro.exec.fingerprint import FINGERPRINT_VERSION

        assert FINGERPRINT_VERSION == 1

    def test_design_axis_digests(self):
        spec = matmul_spec()
        assert fingerprint(spec) == self.GOLDEN["spec"]
        assert fingerprint(Bounds({"i": 4, "j": 4, "k": 4})) == self.GOLDEN["bounds"]
        assert fingerprint(output_stationary()) == self.GOLDEN["transform"]
        assert fingerprint(csr_b_matrix(spec)) == self.GOLDEN["sparsity"]
        assert fingerprint(row_shift_scheme(2)) == self.GOLDEN["balancing"]

    def test_tensor_and_composite_digests(self):
        tensors = {
            "A": np.arange(16, dtype=np.int64).reshape(4, 4),
            "B": np.eye(4, dtype=np.int64),
        }
        assert fingerprint(tensors) == self.GOLDEN["tensors"]
        key = fingerprint(
            (matmul_spec(), Bounds({"i": 4, "j": 4, "k": 4}), output_stationary())
        )
        assert key == self.GOLDEN["key"]

    def test_primitive_digests(self):
        assert fingerprint((None, True, 1, 1.5, "x", b"y")) == self.GOLDEN["prims"]


class TestBehaviorRejection:
    def test_functions_are_uncacheable(self):
        with pytest.raises(FingerprintError):
            fingerprint(lambda x: x)
        with pytest.raises(FingerprintError):
            fingerprint(len)

    def test_classes_and_modules_are_uncacheable(self):
        with pytest.raises(FingerprintError):
            fingerprint(np)
        with pytest.raises(FingerprintError):
            fingerprint(Bounds)


def test_tensor_signature():
    sig = tensor_signature({"B": np.zeros((2, 3)), "A": np.ones(4, dtype=int)})
    assert [name for name, _, _ in sig] == ["A", "B"]
    assert sig[1][2] == (2, 3)
