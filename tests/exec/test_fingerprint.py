"""Tests for canonical content fingerprinting."""

import subprocess
import sys
from fractions import Fraction

import numpy as np
import pytest

from repro.core import Bounds, matmul_spec
from repro.core.balancing import row_shift_scheme
from repro.core.dataflow import hexagonal, output_stationary
from repro.core.sparsity import csr_b_matrix
from repro.exec.fingerprint import FingerprintError, fingerprint, tensor_signature


class TestPrimitives:
    def test_type_tags_distinguish_equal_values(self):
        assert fingerprint(1) != fingerprint(1.0)
        assert fingerprint(1) != fingerprint(True)
        assert fingerprint("1") != fingerprint(1)
        assert fingerprint(b"x") != fingerprint("x")

    def test_container_kind_matters(self):
        assert fingerprint((1, 2)) != fingerprint([1, 2])
        assert fingerprint({1, 2}) != fingerprint((1, 2))

    def test_multiple_args_hash_as_tuple(self):
        assert fingerprint(1, 2) == fingerprint((1, 2))

    def test_fraction(self):
        assert fingerprint(Fraction(1, 2)) == fingerprint(Fraction(2, 4))
        assert fingerprint(Fraction(1, 2)) != fingerprint(0.5)


class TestCanonicalOrder:
    def test_dict_insertion_order_is_irrelevant(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_set_iteration_order_is_irrelevant(self):
        # Strings are the hash-randomized case: iteration order differs
        # between processes but the fingerprint must not.
        assert fingerprint({"x", "y", "zz"}) == fingerprint({"zz", "y", "x"})

    def test_stable_across_processes(self):
        import os

        code = (
            "from repro.exec.fingerprint import fingerprint;"
            "from repro.core import matmul_spec;"
            "print(fingerprint({'x', 'y', 'zz'}), fingerprint(matmul_spec()))"
        )
        runs = set()
        for seed in ("1", "2"):
            env = dict(os.environ)
            env["PYTHONPATH"] = "src"
            env["PYTHONHASHSEED"] = seed
            runs.add(
                subprocess.run(
                    [sys.executable, "-c", code],
                    capture_output=True, text=True, check=True, env=env,
                ).stdout
            )
        assert len(runs) == 1

    def test_numpy_arrays_hash_contents(self):
        a = np.arange(6).reshape(2, 3)
        assert fingerprint(a) == fingerprint(a.copy())
        assert fingerprint(a) != fingerprint(a.T.copy())  # shape matters
        assert fingerprint(a) != fingerprint(a.astype(np.float64))
        # Non-contiguous views hash like their contiguous copies.
        assert fingerprint(a.T) == fingerprint(np.ascontiguousarray(a.T))


class TestDesignAxes:
    def test_structurally_equal_specs_match(self):
        assert fingerprint(matmul_spec()) == fingerprint(matmul_spec())

    def test_each_axis_changes_the_key(self):
        spec = matmul_spec()
        base = (spec, Bounds({"i": 4, "j": 4, "k": 4}), output_stationary())
        assert fingerprint(base) == fingerprint(
            (matmul_spec(), Bounds({"i": 4, "j": 4, "k": 4}), output_stationary())
        )
        assert fingerprint(base) != fingerprint(
            (spec, Bounds({"i": 8, "j": 4, "k": 4}), output_stationary())
        )
        assert fingerprint(base) != fingerprint(
            (spec, Bounds({"i": 4, "j": 4, "k": 4}), hexagonal())
        )

    def test_sparsity_and_balancing(self):
        spec = matmul_spec()
        assert fingerprint(csr_b_matrix(spec)) == fingerprint(csr_b_matrix(spec))
        assert fingerprint(row_shift_scheme(2)) != fingerprint(row_shift_scheme(3))

    def test_cycles_encode_as_backreferences(self):
        a = {"name": "a"}
        a["self"] = a
        b = {"name": "a"}
        b["self"] = b
        assert fingerprint(a) == fingerprint(b)


class TestBehaviorRejection:
    def test_functions_are_uncacheable(self):
        with pytest.raises(FingerprintError):
            fingerprint(lambda x: x)
        with pytest.raises(FingerprintError):
            fingerprint(len)

    def test_classes_and_modules_are_uncacheable(self):
        with pytest.raises(FingerprintError):
            fingerprint(np)
        with pytest.raises(FingerprintError):
            fingerprint(Bounds)


def test_tensor_signature():
    sig = tensor_signature({"B": np.zeros((2, 3)), "A": np.ones(4, dtype=int)})
    assert [name for name, _, _ in sig] == ["A", "B"]
    assert sig[1][2] == (2, 3)
