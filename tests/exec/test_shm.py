"""Tests for the shared-memory operand transport."""

import numpy as np
import pytest

from repro.exec.shm import (
    SharedTensorPool,
    release_attached,
    shared_memory_available,
)

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="no shared_memory on this platform"
)


@pytest.fixture
def pool():
    pool = SharedTensorPool()
    yield pool
    pool.close()
    release_attached()


class TestRoundTrip:
    def test_publish_attach_preserves_contents(self, pool):
        tensors = {
            "A": np.arange(24, dtype=np.int64).reshape(4, 6),
            "B": np.linspace(0.0, 1.0, 10, dtype=np.float32),
        }
        attached = SharedTensorPool.attach(pool.publish(tensors))
        assert set(attached) == {"A", "B"}
        for name in tensors:
            np.testing.assert_array_equal(attached[name], tensors[name])
            assert attached[name].dtype == tensors[name].dtype

    def test_attached_views_are_read_only(self, pool):
        attached = SharedTensorPool.attach(pool.publish({"A": np.ones(3)}))
        with pytest.raises(ValueError):
            attached["A"][0] = 5.0

    def test_publish_copies_so_later_mutation_is_invisible(self, pool):
        source = np.zeros(4, dtype=np.int64)
        handles = pool.publish({"A": source})
        source[:] = 9
        np.testing.assert_array_equal(
            SharedTensorPool.attach(handles)["A"], np.zeros(4, dtype=np.int64)
        )

    def test_non_contiguous_arrays_publish(self, pool):
        base = np.arange(16, dtype=np.int32).reshape(4, 4)
        attached = SharedTensorPool.attach(pool.publish({"T": base.T}))
        np.testing.assert_array_equal(attached["T"], base.T)

    def test_zero_size_arrays_ship_as_empty_handles(self, pool):
        handles = pool.publish({"E": np.empty((0, 3), dtype=np.float64)})
        segment_name, dtype, shape = handles["E"]
        assert segment_name == "" and shape == (0, 3)
        attached = SharedTensorPool.attach(handles)
        assert attached["E"].shape == (0, 3)
        assert attached["E"].dtype == np.float64
        assert not attached["E"].flags.writeable

    def test_table_round_trip(self, pool):
        table = {
            "case0": {"A": np.arange(4)},
            "case1": {"A": np.arange(4) * 2, "B": np.eye(2)},
        }
        attached = SharedTensorPool.attach_table(pool.publish_table(table))
        assert set(attached) == {"case0", "case1"}
        np.testing.assert_array_equal(attached["case1"]["A"], table["case1"]["A"])
        np.testing.assert_array_equal(attached["case1"]["B"], table["case1"]["B"])


class TestLifecycle:
    def test_nbytes_accounts_published_segments(self, pool):
        assert pool.nbytes == 0
        pool.publish({"A": np.zeros(1024, dtype=np.uint8)})
        assert pool.nbytes >= 1024

    def test_close_is_idempotent(self, pool):
        pool.publish({"A": np.zeros(8)})
        pool.close()
        pool.close()
        assert pool.nbytes == 0

    def test_context_manager_closes(self):
        with SharedTensorPool() as pool:
            handles = pool.publish({"A": np.arange(6, dtype=np.int16)})
            attached = SharedTensorPool.attach(handles)
            np.testing.assert_array_equal(attached["A"], np.arange(6, dtype=np.int16))
        release_attached()
        # The segment was unlinked on close: a fresh attach must fail.
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=handles["A"][0])


class TestDetachAdopt:
    def test_adopt_copies_and_unlinks(self):
        from multiprocessing import shared_memory

        from repro.exec.shm import adopt

        pool = SharedTensorPool()
        tensors = {
            "C": np.arange(64, dtype=np.int64).reshape(8, 8),
            "empty": np.empty((0, 3), dtype=np.float32),
        }
        handles = pool.publish(tensors)
        pool.detach()  # ownership passes to the adopter
        adopted = adopt(handles)
        for name in tensors:
            np.testing.assert_array_equal(adopted[name], tensors[name])
            assert adopted[name].dtype == tensors[name].dtype
        # Adoption unlinked every segment: reattach must fail.
        for segment_name, _dtype, _shape in handles.values():
            if segment_name:
                with pytest.raises(FileNotFoundError):
                    shared_memory.SharedMemory(name=segment_name)

    def test_adopted_arrays_outlive_the_segment(self):
        from repro.exec.shm import adopt

        pool = SharedTensorPool()
        handles = pool.publish({"X": np.ones((16, 16))})
        pool.detach()
        adopted = adopt(handles)
        adopted["X"][0, 0] = 42.0  # a private copy, safely writable
        assert adopted["X"][0, 0] == 42.0

    def test_detach_then_close_is_safe(self, pool):
        pool.publish({"Y": np.arange(8)})
        pool.detach()
        pool.close()  # idempotent no-op after detach


class TestResultTransport:
    """Worker -> parent result payloads ride shared memory when bulky."""

    def run_sweep(self, jobs):
        from repro.core import Bounds, matmul_spec
        from repro.core.balancing import LoadBalancingScheme
        from repro.core.dataflow import output_stationary
        from repro.core.sparsity import SparsityStructure
        from repro.exec.engine import evaluate_sweep

        rng = np.random.default_rng(3)
        n = 4
        spec = matmul_spec()
        candidates = [
            {
                "name": f"p{i}",
                "transform_name": "output-stationary",
                "transform": output_stationary(),
                "sparsity_name": "dense",
                "sparsity": SparsityStructure(),
                "balancing_name": "none",
                "balancing": LoadBalancingScheme(),
                "bounds": Bounds({"i": n, "j": n, "k": n}),
                "want_outputs": True,
                "want_digest": True,
            }
            for i in range(3)
        ]
        outcomes, _report = evaluate_sweep(
            spec,
            Bounds({"i": n, "j": n, "k": n}),
            {"A": rng.integers(1, 5, (n, n)), "B": rng.integers(1, 5, (n, n))},
            candidates,
            jobs=jobs,
        )
        return outcomes

    def test_outputs_ride_shm_byte_identically(self, monkeypatch):
        serial = self.run_sweep(jobs=1)
        # Force even tiny outputs through the shm path.
        monkeypatch.setenv("STELLAR_SHM_RESULT_MIN_BYTES", "1")
        parallel = self.run_sweep(jobs=2)
        assert len(serial) == len(parallel) == 3
        for s, p in zip(serial, parallel):
            assert set(s["outputs"]) == set(p["outputs"])
            for name in s["outputs"]:
                np.testing.assert_array_equal(
                    s["outputs"][name], p["outputs"][name]
                )
            assert s["output_digest"] == p["output_digest"]

    def test_inline_path_below_threshold(self, monkeypatch):
        monkeypatch.setenv("STELLAR_SHM_RESULT_MIN_BYTES", str(1 << 30))
        parallel = self.run_sweep(jobs=2)
        serial = self.run_sweep(jobs=1)
        for s, p in zip(serial, parallel):
            for name in s["outputs"]:
                np.testing.assert_array_equal(
                    s["outputs"][name], p["outputs"][name]
                )

    def test_no_leaked_segments(self, monkeypatch):
        import glob

        monkeypatch.setenv("STELLAR_SHM_RESULT_MIN_BYTES", "1")
        before = set(glob.glob("/dev/shm/stellar_*"))
        self.run_sweep(jobs=2)
        after = set(glob.glob("/dev/shm/stellar_*"))
        assert after <= before
