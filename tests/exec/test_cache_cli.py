"""Tests for ``python -m repro cache {stats,gc,clear}``.

The subcommand is the operational window into the persistent compile
cache: where it lives, which pipeline stages own the bytes, and the two
maintenance verbs (budget-driven GC, full clear).  These tests drive it
through the real CLI against throwaway store roots.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.exec.cache import CompileCache
from repro.exec.store import DiskStore
from repro.exec.suite import build_suite, evaluate_suite


def _populate(root):
    """Fill a store root via a real (tiny) suite evaluation."""
    cache = CompileCache(store=DiskStore(str(root)))
    evaluate_suite(build_suite("alexnet", cap=4, seed=3), jobs=1, cache=cache)
    return cache


class TestStats:
    def test_empty_store(self, tmp_path, capsys):
        assert cli_main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert f"root:     {tmp_path}" in out
        assert "entries:  0" in out

    def test_populated_store_lists_stages(self, tmp_path, capsys):
        _populate(tmp_path)
        assert cli_main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "compile" in out
        assert "entries" in out and "bytes" in out

    def test_json_stats_schema(self, tmp_path, capsys):
        _populate(tmp_path)
        assert cli_main(
            ["cache", "stats", "--cache-dir", str(tmp_path), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["enabled"] is True
        assert payload["root"] == str(tmp_path)
        assert payload["entries"] > 0
        assert payload["total_bytes"] > 0
        stages = payload["stages"]
        assert "compile" in stages
        for bucket in stages.values():
            assert bucket["entries"] >= 1
            assert bucket["bytes"] >= 1
        assert payload["entries"] == sum(b["entries"] for b in stages.values())
        assert payload["total_bytes"] == sum(b["bytes"] for b in stages.values())

    def test_stage_summary_matches_memory_tier_stages(self, tmp_path):
        """The disk tier's stage breakdown and the in-memory cache's
        entry counts name the same pipeline stages."""
        cache = _populate(tmp_path)
        disk_stages = set(cache.store.stage_summary())
        memory_stages = set(cache.entries_by_stage())
        assert disk_stages  # populated
        assert disk_stages <= memory_stages


class TestGc:
    def test_gc_within_budget_is_a_noop(self, tmp_path, capsys):
        _populate(tmp_path)
        assert cli_main(
            ["cache", "gc", "--cache-dir", str(tmp_path), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["evicted"] == 0
        assert payload["total_bytes"] <= payload["max_bytes"]

    def test_gc_enforces_byte_budget(self, tmp_path, capsys):
        _populate(tmp_path)
        before = DiskStore(str(tmp_path)).total_bytes()
        budget = max(before // 4, 1)
        assert cli_main(
            [
                "cache", "gc",
                "--cache-dir", str(tmp_path),
                "--max-bytes", str(budget),
                "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["evicted"] > 0
        assert payload["total_bytes"] <= budget
        # The survivors are still a valid store.
        assert DiskStore(str(tmp_path)).total_bytes() == payload["total_bytes"]

    def test_gc_text_output(self, tmp_path, capsys):
        _populate(tmp_path)
        assert cli_main(
            ["cache", "gc", "--cache-dir", str(tmp_path), "--max-bytes", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "cache: evicted" in out and "bytes in use" in out

    def test_max_bytes_must_be_positive(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["cache", "gc", "--max-bytes", "0"])


class TestClear:
    def test_clear_empties_the_store(self, tmp_path, capsys):
        _populate(tmp_path)
        assert DiskStore(str(tmp_path)).total_bytes() > 0
        assert cli_main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "cache: cleared" in capsys.readouterr().out
        assert DiskStore(str(tmp_path)).total_bytes() == 0

    def test_clear_json(self, tmp_path, capsys):
        assert cli_main(
            ["cache", "clear", "--cache-dir", str(tmp_path), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"cleared": True, "root": str(tmp_path)}


class TestDisabled:
    def test_env_off_reports_disabled(self, monkeypatch, capsys):
        monkeypatch.setenv("STELLAR_CACHE_DIR", "off")
        assert cli_main(["cache", "stats"]) == 0
        assert "persistence is disabled" in capsys.readouterr().out

    def test_env_off_json(self, monkeypatch, capsys):
        monkeypatch.setenv("STELLAR_CACHE_DIR", "off")
        assert cli_main(["cache", "gc", "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == {"enabled": False}

    def test_cache_dir_flag_overrides_env_off(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setenv("STELLAR_CACHE_DIR", "off")
        assert cli_main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        assert "entries:  0" in capsys.readouterr().out

    def test_env_dir_is_used_by_default(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setenv("STELLAR_CACHE_DIR", str(tmp_path))
        assert cli_main(["cache", "stats"]) == 0
        assert f"root:     {tmp_path}" in capsys.readouterr().out


class TestParser:
    def test_action_is_required(self):
        with pytest.raises(SystemExit):
            cli_main(["cache"])

    def test_unknown_action_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["cache", "prune"])


class TestPerStageGc:
    def test_per_stage_json_reports_budgets_and_evictions(
        self, tmp_path, capsys
    ):
        _populate(tmp_path)
        assert cli_main(
            [
                "cache", "gc", "--cache-dir", str(tmp_path),
                "--max-bytes", "1", "--per-stage", "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["evicted"] > 0
        assert isinstance(payload["per_stage"], dict)
        assert isinstance(payload["budgets"], dict)
        assert payload["evicted"] == sum(payload["per_stage"].values())

    def test_per_stage_text_lists_stage_budgets(self, tmp_path, capsys):
        _populate(tmp_path)
        assert cli_main(
            [
                "cache", "gc", "--cache-dir", str(tmp_path),
                "--max-bytes", "1", "--per-stage",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "evicted" in out
        assert "budget" in out

    def test_default_gc_stays_global(self, tmp_path, capsys):
        _populate(tmp_path)
        assert cli_main(
            [
                "cache", "gc", "--cache-dir", str(tmp_path),
                "--max-bytes", "1", "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "per_stage" not in payload
        assert payload["evicted"] > 0
