"""Tests for workload-suite construction and batched evaluation."""

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.exec.cache import CompileCache
from repro.exec.store import DiskStore
from repro.exec.suite import (
    Suite,
    build_suite,
    evaluate_suite,
    suite_names,
)


class TestConstruction:
    def test_registry_names(self):
        assert set(suite_names()) == {"resnet50", "alexnet", "suitesparse"}

    @pytest.mark.parametrize("name", ["resnet50", "alexnet", "suitesparse"])
    def test_build_is_deterministic(self, name):
        first = build_suite(name, cap=4, seed=3)
        second = build_suite(name, cap=4, seed=3)
        assert isinstance(first, Suite)
        assert [c.name for c in first.cases] == [c.name for c in second.cases]
        for a, b in zip(first.cases, second.cases):
            for tensor in a.tensors:
                np.testing.assert_array_equal(a.tensors[tensor], b.tensors[tensor])

    @pytest.mark.parametrize("name", ["resnet50", "alexnet", "suitesparse"])
    def test_tensors_match_bounds(self, name):
        suite = build_suite(name, cap=4)
        assert suite.cases
        for case in suite.cases:
            i, j, k = (case.bounds.size(axis) for axis in ("i", "j", "k"))
            assert i <= 4 and j <= 4 and k <= 4
            assert case.tensors["A"].shape == (i, k)
            assert case.tensors["B"].shape == (k, j)

    def test_candidates_route_per_case_operands(self):
        suite = build_suite("alexnet", cap=4)
        table = suite.tensor_table()
        for case, candidate in zip(suite.cases, suite.candidates()):
            assert candidate["tensors_key"] == case.name
            assert candidate["want_energy"] and candidate["want_digest"]
            assert candidate["tensors_key"] in table

    def test_unknown_suite_names_available(self):
        with pytest.raises(KeyError, match="resnet50"):
            build_suite("vgg19")


class TestEvaluation:
    def test_rows_carry_metrics_and_digests(self):
        suite = build_suite("alexnet", cap=4)
        result = evaluate_suite(suite, jobs=1)
        assert len(result.rows) == len(suite.cases)
        for row in result.rows:
            assert row["cycles"] > 0
            assert row["energy_pj"] > 0
            assert len(row["output_digest"]) == 64
            assert row["bounds_str"].count("x") == 2
        aggregates = result.aggregates()
        assert aggregates["total_cycles"] == result.total_cycles
        assert aggregates["cases"] == len(suite.cases)
        assert "elapsed_s" in aggregates

    def test_parallel_matches_serial_byte_identically(self):
        suite = build_suite("suitesparse", cap=4)
        serial = evaluate_suite(suite, jobs=1)
        parallel = evaluate_suite(build_suite("suitesparse", cap=4), jobs=2)
        assert [r["output_digest"] for r in serial.rows] == [
            r["output_digest"] for r in parallel.rows
        ]
        assert [r["cycles"] for r in serial.rows] == [
            r["cycles"] for r in parallel.rows
        ]

    def test_warm_store_reuses_results_identically(self, tmp_path):
        root = str(tmp_path / "store")
        cold_cache = CompileCache(store=DiskStore(root))
        cold = evaluate_suite(build_suite("alexnet", cap=4), jobs=1, cache=cold_cache)
        assert cold_cache.store.stats.writes > 0

        warm_cache = CompileCache(store=DiskStore(root))
        warm = evaluate_suite(build_suite("alexnet", cap=4), jobs=1, cache=warm_cache)
        assert warm_cache.store.stats.hits > 0
        assert warm_cache.stats.disk_hits > 0
        assert [r["output_digest"] for r in cold.rows] == [
            r["output_digest"] for r in warm.rows
        ]

    def test_table_renders_every_case(self):
        suite = build_suite("alexnet", cap=4)
        result = evaluate_suite(suite, jobs=1)
        rendered = result.table()
        for case in suite.cases:
            assert case.name in rendered


class TestCli:
    def test_sweep_json(self, capsys, tmp_path):
        status = cli_main(
            [
                "sweep", "alexnet", "--cap", "4", "--jobs", "1", "--json",
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        assert status == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["suite"] == "alexnet"
        assert payload["rows"] and payload["aggregates"]["total_cycles"] > 0
        assert payload["store"]["writes"] > 0

    def test_sweep_table_and_no_disk_cache(self, capsys):
        status = cli_main(
            ["sweep", "alexnet", "--cap", "4", "--jobs", "1", "--no-disk-cache"]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "mean utilization" in out and "cases" in out
        assert "disk" not in out  # persistence was disabled

    def test_sweep_unknown_suite_exits_2(self, capsys):
        assert cli_main(["sweep", "nope"]) == 2
        assert "resnet50" in capsys.readouterr().err

    def test_sweep_halving_json(self, capsys):
        status = cli_main(
            [
                "sweep", "alexnet", "--cap", "4", "--jobs", "1",
                "--halving", "--json", "--no-disk-cache",
            ]
        )
        assert status == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "halving"
        assert payload["ladder"] == [2, "full"]
        assert [r["fidelity"] for r in payload["rungs"]] == ["cap2", "full"]
        aggregates = payload["aggregates"]
        assert aggregates["total_cycles"] <= aggregates["fixed_total_cycles"]
        assert aggregates["evaluations_saved"] > 1.0

    def test_sweep_halving_table_shows_rung_trail(self, capsys):
        status = cli_main(
            [
                "sweep", "alexnet", "--cap", "4", "--jobs", "1",
                "--halving", "--no-disk-cache",
            ]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "rungs cap2:" in out
        assert "fewer full-fidelity" in out

    def test_sweep_halving_bad_constraint_exits_2(self, capsys):
        status = cli_main(
            [
                "sweep", "alexnet", "--cap", "4", "--jobs", "1",
                "--halving", "--constraint", "latency<=3",
                "--no-disk-cache",
            ]
        )
        assert status == 2
        assert "metric" in capsys.readouterr().err


class TestStreaming:
    def test_on_row_streams_every_row_in_case_order(self):
        suite = build_suite("alexnet", cap=4)
        streamed = []
        result = evaluate_suite(
            suite, jobs=1,
            on_row=lambda index, row: streamed.append((index, row)),
        )
        assert [index for index, _row in streamed] == list(
            range(len(suite.cases))
        )
        # The streamed rows ARE the result rows, info and all.
        assert [row for _index, row in streamed] == result.rows

    def test_parallel_stream_is_in_order_and_identical(self):
        suite = build_suite("alexnet", cap=4)
        streamed = []
        result = evaluate_suite(
            suite, jobs=2,
            on_row=lambda index, row: streamed.append(index),
        )
        assert streamed == list(range(len(suite.cases)))
        assert len(result.rows) == len(suite.cases)


class TestResidentPool:
    def test_pool_matches_per_sweep_executor_byte_identically(self):
        from repro.exec.engine import ResidentPool

        baseline = evaluate_suite(build_suite("alexnet", cap=4), jobs=2)
        with ResidentPool(jobs=2) as pool:
            first = evaluate_suite(build_suite("alexnet", cap=4), pool=pool)
            # Reuse across sweeps: same workers, fresh request.
            second = evaluate_suite(build_suite("alexnet", cap=4), pool=pool)
            assert pool.started
        digests = lambda result: [  # noqa: E731
            r["output_digest"] for r in result.rows
        ]
        assert digests(first) == digests(baseline)
        assert digests(second) == digests(baseline)

    def test_pool_reuse_across_different_suites(self):
        from repro.exec.engine import ResidentPool

        with ResidentPool(jobs=2) as pool:
            alexnet = evaluate_suite(build_suite("alexnet", cap=4), pool=pool)
            sparse = evaluate_suite(
                build_suite("suitesparse", cap=4), pool=pool
            )
        assert len(alexnet.rows) > 0 and len(sparse.rows) > 0
        serial = evaluate_suite(build_suite("suitesparse", cap=4), jobs=1)
        assert [r["output_digest"] for r in sparse.rows] == [
            r["output_digest"] for r in serial.rows
        ]

    def test_close_is_idempotent_and_pool_restarts(self):
        from repro.exec.engine import ResidentPool

        pool = ResidentPool(jobs=2)
        assert not pool.started
        pool.close()
        pool.close()
        result = evaluate_suite(build_suite("alexnet", cap=4), pool=pool)
        assert pool.started
        pool.close()
        assert not pool.started
        assert len(result.rows) > 0


class TestWorkloadTablePayloads:
    def test_read_workload_table_defaults_name(self, tmp_path):
        from repro.exec.suite import build_table_suite, read_workload_table

        path = tmp_path / "mynet.json"
        path.write_text(json.dumps([{"name": "l0", "m": 4, "k": 4, "n": 4}]))
        payload = read_workload_table(str(path))
        assert payload["name"] == "mynet"
        assert build_table_suite(payload).name == "mynet"

    def test_build_table_suite_labels_errors_with_source(self):
        from repro.exec.suite import SuiteError, build_table_suite

        with pytest.raises(SuiteError, match="request: row 1"):
            build_table_suite(
                [{"name": "l0", "m": -1, "k": 4, "n": 4}], source="request"
            )

    def test_build_table_suite_matches_file_loader(self, tmp_path):
        from repro.exec.suite import (
            build_table_suite,
            load_workload_table,
            read_workload_table,
        )

        rows = [
            {"name": "l0", "m": 4, "k": 4, "n": 4},
            {"name": "l1", "m": 6, "k": 4, "n": 5, "b_density": 0.5},
        ]
        path = tmp_path / "t.json"
        path.write_text(json.dumps(rows))
        via_file = evaluate_suite(load_workload_table(str(path)), jobs=1)
        via_payload = evaluate_suite(
            build_table_suite(read_workload_table(str(path))), jobs=1
        )
        assert [r["output_digest"] for r in via_file.rows] == [
            r["output_digest"] for r in via_payload.rows
        ]
