"""Tests for the parallel evaluation engine and its explore() integration."""

import numpy as np
import pytest

import repro.analysis.spec as analysis_spec
from repro.core import Bounds, SpecError, matmul_spec
from repro.core.balancing import LoadBalancingScheme, row_shift_scheme
from repro.core.dataflow import (
    SpaceTimeTransform,
    hexagonal,
    input_stationary,
    output_stationary,
)
from repro.core.sparsity import SparsityStructure, csr_b_matrix
from repro.dse import explore
from repro.exec.cache import CompileCache
from repro.exec.engine import EngineReport, resolve_jobs
from repro.obs.profile import Profiler, set_profiler
from repro.obs.trace import Tracer, set_tracer


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(7)
    n = 4
    a = rng.integers(1, 5, (n, n))
    b = np.zeros((n, n), dtype=int)
    b[0, :] = rng.integers(1, 5, n)
    b[2, 1] = 3
    return Bounds({"i": n, "j": n, "k": n}), {"A": a, "B": b}


def _sweep_kwargs():
    spec = matmul_spec()
    return spec, dict(
        transforms={
            "output-stationary": output_stationary(),
            "input-stationary": input_stationary(),
            "hexagonal": hexagonal(),
        },
        sparsities={
            "dense": SparsityStructure(),
            "B-csr": csr_b_matrix(spec),
        },
        balancings={
            "none": LoadBalancingScheme(),
            "row-shift": row_shift_scheme(2),
        },
    )


def _signature(result):
    return [
        (p.name, p.cycles, p.utilization, p.area_um2, p.pe_count, p.conn_count)
        for p in result.points
    ]


class TestResolveJobs:
    def test_none_and_one_are_serial(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1

    def test_zero_is_cpu_count(self):
        import os

        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_explicit(self):
        assert resolve_jobs(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)


class TestParity:
    """Cached and parallel sweeps must be bit-identical to the serial
    uncached seed path -- same figures, same table bytes."""

    def test_cached_and_parallel_match_serial(self, workload):
        bounds, tensors = workload
        spec, kwargs = _sweep_kwargs()
        serial = explore(spec, bounds, tensors, cache=False, **kwargs)
        cached = explore(spec, bounds, tensors, cache=True, **kwargs)
        parallel = explore(
            spec, bounds, tensors, cache=True, jobs=2, **kwargs
        )
        assert _signature(serial) == _signature(cached) == _signature(parallel)
        assert serial.table() == cached.table() == parallel.table()
        assert (
            [p.name for p in serial.pareto_frontier()]
            == [p.name for p in cached.pareto_frontier()]
            == [p.name for p in parallel.pareto_frontier()]
        )

    def test_shared_cache_across_sweeps_stays_correct(self, workload):
        bounds, tensors = workload
        spec, kwargs = _sweep_kwargs()
        cache = CompileCache()
        first = explore(spec, bounds, tensors, cache=cache, **kwargs)
        second = explore(spec, bounds, tensors, cache=cache, **kwargs)
        assert _signature(first) == _signature(second)
        # The second sweep is answered almost entirely from the cache.
        assert cache.stats.by_stage["compile"][0] >= len(second.points)

    def test_cache_records_hits(self, workload):
        bounds, tensors = workload
        spec, kwargs = _sweep_kwargs()
        result = explore(spec, bounds, tensors, cache=True, **kwargs)
        stats = result.report.cache_stats
        assert stats is not None
        assert stats.hits > 0
        assert stats.uncacheable == 0

    def test_engine_report_shape(self, workload):
        bounds, tensors = workload
        spec, kwargs = _sweep_kwargs()
        result = explore(spec, bounds, tensors, cache=False, jobs=None, **kwargs)
        report = result.report
        assert isinstance(report, EngineReport)
        assert report.mode == "serial"
        assert report.evaluated == len(result.points)
        assert report.as_dict()["cache"] is None


class TestErrorDiscipline:
    """Only compile-step SpecErrors mark a point illegal (the
    skip_illegal bugfix); simulator failures always propagate."""

    def test_illegal_transform_skipped_and_tallied(self, workload):
        bounds, tensors = workload
        spec = matmul_spec()
        bad = SpaceTimeTransform([[1, 0, 0], [0, 1, 0], [1, 1, -1]])
        result = explore(
            spec, bounds, tensors,
            transforms={"good": output_stationary(), "bad": bad},
        )
        assert len(result) == 1
        assert result.report.skipped == 1

    def test_simulator_error_propagates_despite_skip_illegal(self, workload):
        bounds, _ = workload
        spec = matmul_spec()
        # Compilation cannot see tensor data, so the missing tensor only
        # explodes inside the simulator -- it must NOT be swallowed as
        # "illegal" or the sweep silently shrinks.
        with pytest.raises(SpecError, match="no data"):
            explore(
                spec, bounds, {"A": np.ones((4, 4), dtype=int)},
                transforms={"os": output_stationary()},
                skip_illegal=True,
            )

    def test_simulator_error_propagates_in_parallel(self, workload):
        bounds, _ = workload
        spec = matmul_spec()
        with pytest.raises(SpecError, match="no data"):
            explore(
                spec, bounds, {"A": np.ones((4, 4), dtype=int)},
                transforms={"os": output_stationary()},
                skip_illegal=True,
                jobs=2,
            )

    def test_all_illegal_still_raises(self, workload):
        bounds, tensors = workload
        spec = matmul_spec()
        bad = SpaceTimeTransform([[1, 0, 0], [0, 1, 0], [1, 1, -1]])
        with pytest.raises(SpecError, match="no legal design points"):
            explore(spec, bounds, tensors, transforms={"bad": bad})


class TestLegalityMemoization:
    def test_checker_runs_once_per_transform_subkey(self, workload, monkeypatch):
        """The domain-enumeration legality check depends only on
        (spec, bounds, transform): sweeping sparsity x balancing must not
        re-run it."""
        bounds, tensors = workload
        spec, kwargs = _sweep_kwargs()
        calls = []
        original = analysis_spec.check_spec_transform

        def counting(spec_, bounds_, transform_):
            calls.append(transform_)
            return original(spec_, bounds_, transform_)

        monkeypatch.setattr(analysis_spec, "check_spec_transform", counting)
        explore(spec, bounds, tensors, cache=True, **kwargs)
        assert len(calls) == len(kwargs["transforms"])

    def test_without_cache_checker_runs_per_point(self, workload, monkeypatch):
        bounds, tensors = workload
        spec, kwargs = _sweep_kwargs()
        calls = []
        original = analysis_spec.check_spec_transform

        def counting(spec_, bounds_, transform_):
            calls.append(transform_)
            return original(spec_, bounds_, transform_)

        monkeypatch.setattr(analysis_spec, "check_spec_transform", counting)
        result = explore(spec, bounds, tensors, cache=False, **kwargs)
        assert len(calls) == len(result.points)


class TestDeterministicOrdering:
    def test_table_breaks_cycle_ties_by_name(self):
        from repro.dse.explorer import DesignPoint, ExplorationResult

        def point(name, cycles=10, area=100.0):
            return DesignPoint(
                name=name, transform_name="t", sparsity_name="s",
                balancing_name="b", cycles=cycles, utilization=0.5,
                area_um2=area, pe_count=4, conn_count=2, pruned_variables=[],
            )

        forward = ExplorationResult([point("aa"), point("bb"), point("cc")])
        backward = ExplorationResult([point("cc"), point("bb"), point("aa")])
        assert forward.table() == backward.table()
        assert (
            [p.name for p in forward.pareto_frontier()]
            == [p.name for p in backward.pareto_frontier()]
            == ["aa", "bb", "cc"]
        )


class TestObservabilityMerge:
    def test_parallel_profile_and_trace_merge(self, workload):
        bounds, tensors = workload
        spec, kwargs = _sweep_kwargs()
        profiler = Profiler(enabled=True)
        tracer = Tracer(enabled=True)
        previous_p = set_profiler(profiler)
        previous_t = set_tracer(tracer)
        try:
            result = explore(
                spec, bounds, tensors, cache=True, jobs=2, **kwargs
            )
        finally:
            set_profiler(previous_p)
            set_tracer(previous_t)
        labels = {r.label: r.calls for r in profiler.records()}
        assert labels["dse.point"] == len(result.points)
        assert labels["dse.compile"] == len(result.points)
        assert labels["dse.simulate"] == len(result.points)
        names = {e.name for e in tracer.events()}
        assert any(" / " in name for name in names)  # per-point spans

    def test_serial_profile_unchanged(self, workload):
        bounds, tensors = workload
        spec, kwargs = _sweep_kwargs()
        profiler = Profiler(enabled=True)
        previous = set_profiler(profiler)
        try:
            result = explore(spec, bounds, tensors, cache=False, **kwargs)
        finally:
            set_profiler(previous)
        labels = {r.label: r.calls for r in profiler.records()}
        assert labels["dse.point"] == len(result.points)
