"""Tests for the content-addressed compile cache."""

import pytest

from repro.core import Bounds, matmul_spec
from repro.core.compiler import compile_design
from repro.core.dataflow import output_stationary
from repro.core.sparsity import csr_b_matrix
from repro.exec.cache import (
    CompileCache,
    get_compile_cache,
    persistent_compile_cache,
    set_compile_cache,
)
from repro.exec.store import DiskStore


@pytest.fixture
def design_axes():
    spec = matmul_spec()
    return spec, Bounds({"i": 4, "j": 4, "k": 4}), output_stationary()


class TestMemo:
    def test_build_runs_once_per_key(self):
        cache = CompileCache()
        calls = []
        for _ in range(3):
            value = cache.memo("stage", (1, "a"), lambda: calls.append(1) or 42)
        assert value == 42
        assert calls == [1]
        assert cache.stats.hits == 2 and cache.stats.misses == 1

    def test_falsy_values_are_cached(self):
        cache = CompileCache()
        calls = []
        for _ in range(2):
            value = cache.memo("stage", ("k",), lambda: calls.append(1) or [])
        assert value == []
        assert calls == [1]

    def test_distinct_stages_do_not_collide(self):
        cache = CompileCache()
        a = cache.memo("s1", (1,), lambda: "a")
        b = cache.memo("s2", (1,), lambda: "b")
        assert (a, b) == ("a", "b")

    def test_unfingerprintable_parts_bypass(self):
        cache = CompileCache()
        calls = []
        for _ in range(2):
            cache.memo("stage", (lambda: 0,), lambda: calls.append(1))
        assert len(calls) == 2
        assert cache.stats.uncacheable == 2
        assert len(cache) == 0

    def test_lru_eviction(self):
        cache = CompileCache(max_entries=2)
        cache.memo("s", (1,), lambda: 1)
        cache.memo("s", (2,), lambda: 2)
        cache.memo("s", (1,), lambda: 1)  # refresh 1
        cache.memo("s", (3,), lambda: 3)  # evicts 2
        calls = []
        cache.memo("s", (2,), lambda: calls.append(1) or 2)
        assert calls == [1]

    def test_hit_refreshes_recency(self):
        """Regression: a hit must move the entry to the LRU tail, or a
        hot entry inserted early gets evicted while cold entries live."""
        cache = CompileCache(max_entries=3)
        cache.memo("s", (1,), lambda: "hot")
        cache.memo("s", (2,), lambda: 2)
        cache.memo("s", (3,), lambda: 3)
        cache.memo("s", (1,), lambda: "hot")  # hit: bump recency
        cache.memo("s", (4,), lambda: 4)  # evicts 2, NOT the hot entry
        rebuilt = []
        cache.memo("s", (1,), lambda: rebuilt.append(1) or "rebuilt")
        assert rebuilt == []

    def test_fingerprint_memo_refreshes_recency(self):
        """Same regression for the identity->fingerprint memo: re-keying
        with a hot object must not let it age out."""
        cache = CompileCache(max_entries=2)
        hot = Bounds({"i": 4, "j": 4, "k": 4})
        cache.fingerprint_of(hot)
        cache.fingerprint_of(Bounds({"i": 8, "j": 8, "k": 8}))
        cache.fingerprint_of(hot)  # bump
        cache.fingerprint_of(Bounds({"i": 2, "j": 2, "k": 2}))  # evicts the 8s
        assert cache._fp_memo[id(hot)][0] is hot


class TestCompileFacade:
    def test_hit_returns_shared_design(self, design_axes):
        spec, bounds, transform = design_axes
        cache = CompileCache()
        first = cache.compile(spec, bounds, transform)
        second = cache.compile(spec, bounds, transform)
        assert first is second
        assert cache.stats.by_stage["compile"] == (1, 1)

    def test_structurally_equal_keys_hit(self, design_axes):
        spec, bounds, transform = design_axes
        cache = CompileCache()
        first = cache.compile(spec, bounds, transform)
        second = cache.compile(matmul_spec(), Bounds({"i": 4, "j": 4, "k": 4}),
                               output_stationary())
        assert first is second

    def test_axis_mutation_misses(self, design_axes):
        """Changing bounds or element_bits must invalidate the key."""
        spec, bounds, transform = design_axes
        cache = CompileCache()
        base = cache.compile(spec, bounds, transform)
        other_bounds = cache.compile(
            spec, Bounds({"i": 8, "j": 8, "k": 8}), transform
        )
        other_bits = cache.compile(spec, bounds, transform, element_bits=16)
        assert base is not other_bounds
        assert base is not other_bits
        assert other_bits.element_bits == 16
        hits, misses = cache.stats.by_stage["compile"]
        assert (hits, misses) == (0, 3)

    def test_sparsity_axis_changes_key(self, design_axes):
        spec, bounds, transform = design_axes
        cache = CompileCache()
        dense = cache.compile(spec, bounds, transform)
        sparse = cache.compile(spec, bounds, transform, sparsity=csr_b_matrix(spec))
        assert dense is not sparse
        # Elaboration depends only on (spec, bounds): shared across axes.
        assert cache.stats.by_stage["compile.elaborate"] == (1, 1)
        assert dense.functional_iterspace is sparse.functional_iterspace

    def test_matches_uncached_compile(self, design_axes):
        spec, bounds, transform = design_axes
        cached = CompileCache().compile(spec, bounds, transform)
        plain = compile_design(spec, bounds, transform)
        assert cached.pe_count == plain.pe_count
        assert cached.array.schedule_length == plain.array.schedule_length
        assert sorted(cached.regfile_plans) == sorted(plain.regfile_plans)

    def test_lower_facade_hits(self, design_axes):
        spec, bounds, transform = design_axes
        cache = CompileCache()
        design = cache.compile(spec, bounds, transform)
        first = cache.lower(design)
        second = cache.lower(design)
        assert first is second

    def test_lower_opt_levels_never_share_entries(self, design_axes):
        spec, bounds, transform = design_axes
        cache = CompileCache()
        design = cache.compile(spec, bounds, transform)
        plain = cache.lower(design)
        optimized = cache.lower(design, opt_level=2)
        assert plain is not optimized
        assert plain.opt_level == 0
        assert optimized.opt_level == 2
        # Each rung hits its own entry on repeat.
        assert cache.lower(design) is plain
        assert cache.lower(design, opt_level=2) is optimized

    def test_lower_key_tracks_pass_pipeline_version(self, design_axes):
        # The fingerprint axis exists only for optimized rungs: opt_level 0
        # netlists never ran the pipeline, so its version must not churn
        # their cache entries.
        import repro.rtl.passes as passes_mod

        spec, bounds, transform = design_axes
        cache = CompileCache()
        design = cache.compile(spec, bounds, transform)
        plain = cache.lower(design)
        optimized = cache.lower(design, opt_level=2)
        original = passes_mod.PASS_PIPELINE_VERSION
        passes_mod.PASS_PIPELINE_VERSION = original + 1
        try:
            assert cache.lower(design) is plain
            assert cache.lower(design, opt_level=2) is not optimized
        finally:
            passes_mod.PASS_PIPELINE_VERSION = original


class TestDiskTier:
    def test_fresh_cache_same_root_hits_disk(self, tmp_path):
        root = str(tmp_path / "store")
        built = []
        first = CompileCache(store=DiskStore(root))
        first.memo("stage", (1, "a"), lambda: built.append(1) or {"v": 42})

        second = CompileCache(store=DiskStore(root))
        value = second.memo("stage", (1, "a"), lambda: built.append(1) or None)
        assert value == {"v": 42}
        assert built == [1]  # rebuilt zero times in the second process
        assert second.stats.disk_hits == 1
        assert second.stats.hits == 1
        assert second.registry.counter("exec.cache.disk_hits").value == 1

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        root = str(tmp_path / "store")
        CompileCache(store=DiskStore(root)).memo("stage", (1,), lambda: "x")
        cache = CompileCache(store=DiskStore(root))
        cache.memo("stage", (1,), lambda: "x")
        cache.memo("stage", (1,), lambda: "x")
        assert cache.stats.disk_hits == 1  # second hit came from memory
        assert cache.store.stats.hits == 1

    def test_memory_hit_does_not_touch_disk(self, tmp_path):
        cache = CompileCache(store=DiskStore(str(tmp_path)))
        cache.memo("stage", (1,), lambda: "x")
        lookups_after_build = cache.store.stats.lookups
        cache.memo("stage", (1,), lambda: "x")
        assert cache.store.stats.lookups == lookups_after_build

    def test_unfingerprintable_bypasses_disk(self, tmp_path):
        cache = CompileCache(store=DiskStore(str(tmp_path)))
        cache.memo("stage", (lambda: 0,), lambda: "value")
        assert cache.stats.uncacheable == 1
        assert cache.store.stats.lookups == 0
        assert cache.store.stats.writes == 0

    def test_compile_products_persist(self, tmp_path, design_axes):
        spec, bounds, transform = design_axes
        root = str(tmp_path / "store")
        cold = CompileCache(store=DiskStore(root))
        first = cold.compile(spec, bounds, transform)

        warm = CompileCache(store=DiskStore(root))
        second = warm.compile(matmul_spec(), Bounds({"i": 4, "j": 4, "k": 4}),
                              output_stationary())
        assert warm.stats.disk_hits >= 1
        assert second.pe_count == first.pe_count
        assert second.array.schedule_length == first.array.schedule_length

    def test_persistent_compile_cache_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("STELLAR_CACHE_DIR", str(tmp_path / "env-root"))
        cache = persistent_compile_cache()
        assert cache.store is not None
        assert cache.store.root == str(tmp_path / "env-root")
        monkeypatch.setenv("STELLAR_CACHE_DIR", "off")
        assert persistent_compile_cache().store is None


class TestGlobalCache:
    def test_get_and_set(self):
        previous = set_compile_cache(None)
        try:
            cache = get_compile_cache()
            assert get_compile_cache() is cache
            mine = CompileCache()
            assert set_compile_cache(mine) is cache
            assert get_compile_cache() is mine
        finally:
            set_compile_cache(previous)


def test_stats_dict_shape():
    cache = CompileCache()
    cache.memo("s", (1,), lambda: 1)
    cache.memo("s", (1,), lambda: 1)
    d = cache.stats.as_dict()
    assert d["hits"] == 1 and d["misses"] == 1
    assert d["by_stage"]["s"] == {"hits": 1, "misses": 1}
    assert cache.registry.counter("exec.cache.hits").value == 1
