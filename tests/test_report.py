"""Tests for the consolidated design report."""

import pytest

from repro.cli import main
from repro.core import Accelerator, matmul_spec
from repro.core.balancing import row_shift_scheme
from repro.core.dataflow import input_stationary, output_stationary
from repro.core.memspec import csr_buffer
from repro.core.sparsity import csr_b_matrix
from repro.report import design_report


@pytest.fixture
def sparse_design():
    spec = matmul_spec()
    return Accelerator(
        spec=spec,
        bounds={"i": 4, "j": 4, "k": 4},
        transform=input_stationary(),
        sparsity=csr_b_matrix(spec),
        balancing=row_shift_scheme(2),
        membufs={"B": csr_buffer("B", rows=4)},
    ).build()


@pytest.fixture
def dense_design():
    return Accelerator(
        spec=matmul_spec(),
        bounds={"i": 4, "j": 4, "k": 4},
        transform=output_stationary(),
    ).build()


class TestDesignReport:
    def test_sections_present(self, sparse_design):
        text = design_report(sparse_design)
        for section in (
            "spatial array",
            "register files (Figure 14 ladder)",
            "memory buffers (Figure 12 pipelines)",
            "load balancer (Equation 2)",
            "area (calibrated ASAP7-class model)",
            "verilog",
        ):
            assert section in text

    def test_pruning_reported(self, sparse_design):
        text = design_report(sparse_design)
        assert "pruned to regfile IO: ['c']" in text

    def test_lint_clean_reported(self, sparse_design):
        assert "lint: clean" in design_report(sparse_design)

    def test_dense_omits_optional_sections(self, dense_design):
        text = design_report(dense_design)
        assert "load balancer" not in text
        assert "memory buffers" not in text

    def test_host_cpu_flag(self, dense_design):
        assert "Host CPU" in design_report(dense_design, include_host_cpu=True)
        assert "Host CPU" not in design_report(dense_design)

    def test_connection_flavours(self, sparse_design):
        text = design_report(sparse_design)
        assert "[stationary]" in text
        assert "[pipelined]" in text


class TestReportCommand:
    def test_cli_report(self, capsys):
        assert main(["report", "--size", "3"]) == 0
        out = capsys.readouterr().out
        assert "spatial array" in out
        assert "lint: clean" in out

    def test_cli_report_with_cpu(self, capsys):
        assert main(["report", "--size", "3", "--with-cpu"]) == 0
        assert "Host CPU" in capsys.readouterr().out
