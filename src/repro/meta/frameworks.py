"""The framework-comparison matrix of paper Table I.

A small data registry of the accelerator design frameworks the paper
compares against, with the design-specification, hardware-output, and
programming-interface capabilities Table I tabulates.  The Table I bench
renders this registry and checks Stellar's distinguishing row: the only
framework with all five design axes, synthesizable RTL, and both
application- and ISA-level programming interfaces.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple

#: Capability values: True, False, or "implicit" (DSAGen/Spatial encode
#: dataflow implicitly in their program representations).
Capability = object


class Framework(NamedTuple):
    name: str
    category: str  # "dense", "sparse", or "stellar"
    functionality: Capability
    dataflow: Capability
    sparse_data_structures: Capability
    load_balancing: Capability
    private_memory_buffers: Capability
    simulators: Capability
    synthesizable_rtl: Capability
    application_level: Capability
    isa_level: Capability


FRAMEWORKS: List[Framework] = [
    Framework("PolySA", "dense", True, True, False, False, True, False, True, True, False),
    Framework("AutoSA", "dense", True, True, False, False, True, False, True, True, False),
    Framework("Interstellar", "dense", True, True, False, False, True, False, True, True, False),
    Framework("Tabla", "dense", True, False, False, False, True, False, True, True, False),
    Framework("Sparseloop", "sparse", True, True, True, False, True, True, False, False, False),
    Framework("TeAAL", "sparse", True, True, True, True, True, True, False, False, False),
    Framework("SAM", "sparse", True, True, True, False, True, True, False, False, False),
    Framework("DSAGen", "sparse", True, "implicit", False, True, True, False, True, True, False),
    Framework("Spatial", "sparse", True, "implicit", False, False, True, False, True, True, False),
    Framework("Stellar", "stellar", True, True, True, True, True, False, True, True, True),
]

_ROWS = [
    ("Functionality", "functionality"),
    ("Dataflow", "dataflow"),
    ("Sparse data structures", "sparse_data_structures"),
    ("Load-balancing", "load_balancing"),
    ("Private memory buffers", "private_memory_buffers"),
    ("Simulators", "simulators"),
    ("Synthesizable RTL", "synthesizable_rtl"),
    ("Application-level", "application_level"),
    ("ISA-level", "isa_level"),
]


def get(name: str) -> Framework:
    for framework in FRAMEWORKS:
        if framework.name == name:
            return framework
    raise KeyError(f"unknown framework {name!r}")


def _mark(value: Capability) -> str:
    if value == "implicit":
        return "Implicit"
    return "yes" if value else "no"


def render_table() -> str:
    """Render Table I as aligned text."""
    names = [f.name for f in FRAMEWORKS]
    width = max(len(label) for label, _ in _ROWS) + 2
    col = max(max(len(n) for n in names), 8) + 2
    lines = [" " * width + "".join(n.ljust(col) for n in names)]
    for label, field in _ROWS:
        cells = [_mark(getattr(f, field)) for f in FRAMEWORKS]
        lines.append(label.ljust(width) + "".join(c.ljust(col) for c in cells))
    return "\n".join(lines)


def stellar_distinguishers() -> Dict[str, bool]:
    """The capabilities only Stellar combines, per Table I."""
    stellar = get("Stellar")
    others = [f for f in FRAMEWORKS if f.name != "Stellar"]
    return {
        "only_isa_level": stellar.isa_level
        and not any(f.isa_level for f in others),
        "only_sparse_plus_rtl": (
            stellar.sparse_data_structures is True
            and stellar.synthesizable_rtl is True
            and not any(
                f.sparse_data_structures is True and f.synthesizable_rtl is True
                for f in others
            )
        ),
        "all_five_axes": all(
            getattr(stellar, field) is True
            for field in (
                "functionality",
                "dataflow",
                "sparse_data_structures",
                "load_balancing",
                "private_memory_buffers",
            )
        ),
    }
