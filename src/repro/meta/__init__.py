"""Meta-level registries (the framework comparison of Table I)."""

from .frameworks import FRAMEWORKS, Framework, get, render_table, stellar_distinguishers

__all__ = ["FRAMEWORKS", "Framework", "get", "render_table", "stellar_distinguishers"]
