"""repro: a Python reproduction of Stellar (MICRO 2024).

Stellar is an automated design framework for dense and sparse spatial
accelerators.  This package rebuilds its full stack: the five-axis
specification language and compiler (:mod:`repro.core`), a structural RTL
backend with a Verilog emitter (:mod:`repro.rtl`), a cycle-level simulator
(:mod:`repro.sim`), the RISC-V-style programming interface
(:mod:`repro.isa`), fibertree tensor formats (:mod:`repro.formats`), a
calibrated area/energy/timing model (:mod:`repro.area`), handwritten
baselines (:mod:`repro.baselines`), and the paper's workloads
(:mod:`repro.workloads`).
"""

from .core import (
    Accelerator,
    Bounds,
    FunctionalSpec,
    GeneratedDesign,
    Index,
    LoadBalancingScheme,
    Local,
    MemoryBufferSpec,
    Shift,
    Skip,
    SpaceTimeTransform,
    SparsityStructure,
    Tensor,
    hexagonal,
    indices,
    input_stationary,
    matmul_spec,
    output_stationary,
    weight_stationary,
)

__version__ = "0.1.0"

__all__ = [
    "Accelerator",
    "Bounds",
    "FunctionalSpec",
    "GeneratedDesign",
    "Index",
    "LoadBalancingScheme",
    "Local",
    "MemoryBufferSpec",
    "Shift",
    "Skip",
    "SpaceTimeTransform",
    "SparsityStructure",
    "Tensor",
    "hexagonal",
    "indices",
    "input_stationary",
    "matmul_spec",
    "output_stationary",
    "weight_stationary",
    "__version__",
]
