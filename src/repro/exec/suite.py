"""Batched evaluation of the paper's workload suites.

The headline experiments (Fig. 15-18, Table III) are not single design
points but *suites*: every distinct ResNet-50 conv shape, the pruned
AlexNet layers, the SuiteSparse-like matrix registry.  This module
routes a whole suite through :func:`repro.exec.engine.evaluate_sweep`
as one candidate list -- each layer becomes a candidate carrying its
own bounds and a ``tensors_key`` into the sweep's shared tensor table
-- so layers share the compile cache (most ResNet shapes collapse onto
a handful of tile configurations), fan out over the process pool with
shared-memory operands, and warm-start from the persistent disk store
on repeat invocations.

Layer shapes are evaluated at a *tile* scale: each matmul dimension is
clipped to ``cap`` (cycle-accurate simulation of a full 12544x64x576
im2col matmul is neither feasible nor needed -- utilization and energy
per MAC are properties of the tile).  Operands are seeded per layer, so
results are reproducible across processes and machines; the
``output_digest`` column is a canonical content hash of the simulated
outputs, which is what the determinism and warm-cache gates compare.
"""

from __future__ import annotations

import csv
import json
import os
import time
from typing import Callable, Dict, List, Mapping, Optional

import numpy as np

from ..core import Bounds, matmul_spec
from ..core.balancing import LoadBalancingScheme
from ..core.dataflow import output_stationary
from ..core.sparsity import SparsityStructure, csr_b_matrix
from .cache import CompileCache
from .engine import EngineReport, evaluate_sweep

#: Default tile clip for each matmul dimension.
DEFAULT_CAP = 8

#: Default operand seed.
DEFAULT_SEED = 7


class SuiteError(Exception):
    """A workload table or suite configuration is invalid.

    Raised with a single human-readable message carrying the file and
    row context; the CLI prints it and exits 2 instead of surfacing a
    traceback for what is a user-input problem."""


class SuiteCase:
    """One workload of a suite: a named matmul tile plus its operands.

    ``info`` carries workload-level figures (full-layer MACs, operand
    densities) that ride along into the result rows untouched.
    """

    def __init__(
        self,
        name: str,
        bounds: Bounds,
        tensors: Mapping[str, np.ndarray],
        info: Optional[Dict[str, object]] = None,
    ):
        self.name = name
        self.bounds = bounds
        self.tensors = dict(tensors)
        self.info = dict(info or {})

    def __repr__(self) -> str:
        dims = {name: self.bounds.size(name) for name in self.bounds.names()}
        return f"SuiteCase({self.name!r}, {dims})"


class Suite:
    """A named workload table bound to one accelerator configuration."""

    def __init__(
        self,
        name: str,
        spec,
        cases: List[SuiteCase],
        sparsity: SparsityStructure,
        sparsity_name: str,
        element_bits: int = 32,
    ):
        self.name = name
        self.spec = spec
        self.cases = cases
        self.sparsity = sparsity
        self.sparsity_name = sparsity_name
        self.element_bits = element_bits
        self.transform = output_stationary()
        self.transform_name = "output-stationary"
        self.balancing = LoadBalancingScheme()
        self.balancing_name = "none"

    def tensor_table(self) -> Dict[str, Dict[str, np.ndarray]]:
        return {case.name: case.tensors for case in self.cases}

    def candidates(self) -> List[Dict[str, object]]:
        return [
            {
                "name": case.name,
                "transform_name": self.transform_name,
                "transform": self.transform,
                "sparsity_name": self.sparsity_name,
                "sparsity": self.sparsity,
                "balancing_name": self.balancing_name,
                "balancing": self.balancing,
                "bounds": case.bounds,
                "tensors_key": case.name,
                "want_energy": True,
                "want_digest": True,
            }
            for case in self.cases
        ]


# ---------------------------------------------------------------------------
# Suite builders
# ---------------------------------------------------------------------------


def _tile_bounds(m: int, k: int, n: int, cap: int) -> Bounds:
    return Bounds({"i": min(m, cap), "j": min(n, cap), "k": min(k, cap)})


def _case_rng(seed: int, index: int) -> np.random.Generator:
    # Seeded per case, never shared: case order and worker scheduling
    # cannot perturb any operand.
    return np.random.default_rng([seed, index])


def _masked(rng: np.random.Generator, shape, density: float) -> np.ndarray:
    values = rng.integers(1, 5, shape)
    if density >= 1.0:
        return values
    return np.where(rng.random(shape) < density, values, 0)


def build_resnet50(cap: int = DEFAULT_CAP, seed: int = DEFAULT_SEED) -> Suite:
    """Every distinct ResNet-50 conv shape as a dense im2col matmul tile."""
    from ..workloads import resnet50_layers

    cases = []
    for index, layer in enumerate(resnet50_layers()):
        bounds = _tile_bounds(layer.matmul_m, layer.matmul_k, layer.matmul_n, cap)
        rng = _case_rng(seed, index)
        i, j, k = (bounds.size("i"), bounds.size("j"), bounds.size("k"))
        cases.append(
            SuiteCase(
                layer.name,
                bounds,
                {"A": rng.integers(1, 5, (i, k)), "B": rng.integers(1, 5, (k, j))},
                info={
                    "macs": layer.macs,
                    "matmul": (layer.matmul_m, layer.matmul_k, layer.matmul_n),
                },
            )
        )
    spec = matmul_spec()
    return Suite(
        "resnet50", spec, cases,
        sparsity=SparsityStructure(), sparsity_name="dense",
        element_bits=8,
    )


def build_alexnet(cap: int = DEFAULT_CAP, seed: int = DEFAULT_SEED) -> Suite:
    """Pruned AlexNet: weight/activation densities thin the operands and
    the design skips zero B columns (Listing 5's CSR-B sparsity)."""
    from ..workloads import alexnet_pruned_layers

    spec = matmul_spec()
    cases = []
    for index, layer in enumerate(alexnet_pruned_layers()):
        m = layer.output_size * layer.output_size
        k = layer.in_channels * layer.filter_size * layer.filter_size
        n = layer.out_channels
        bounds = _tile_bounds(m, k, n, cap)
        rng = _case_rng(seed, index)
        i, j, kk = (bounds.size("i"), bounds.size("j"), bounds.size("k"))
        cases.append(
            SuiteCase(
                layer.name,
                bounds,
                {
                    "A": _masked(rng, (i, kk), layer.activation_density),
                    "B": _masked(rng, (kk, j), layer.weight_density),
                },
                info={
                    "macs": layer.effective_macs,
                    "weight_density": layer.weight_density,
                    "activation_density": layer.activation_density,
                },
            )
        )
    return Suite(
        "alexnet", spec, cases,
        sparsity=csr_b_matrix(spec), sparsity_name="B-csr",
        element_bits=8,
    )


def build_suitesparse(cap: int = DEFAULT_CAP, seed: int = DEFAULT_SEED) -> Suite:
    """The SuiteSparse-like registry as A (dense) x B (sparse) tiles."""
    from ..workloads import info as matrix_info
    from ..workloads import matrix_names, synthesize

    spec = matmul_spec()
    cases = []
    for index, name in enumerate(matrix_names()):
        matrix = synthesize(name, max_rows=cap, seed=seed + index)
        dense_b = matrix.to_dense()
        rows, cols = dense_b.shape
        rng = _case_rng(seed, index)
        bounds = Bounds({"i": rows, "j": cols, "k": rows})
        meta = matrix_info(name)
        cases.append(
            SuiteCase(
                name,
                bounds,
                {"A": rng.integers(1, 5, (rows, rows)), "B": dense_b},
                info={
                    "density": round(meta.nnz / (meta.rows * meta.rows), 6),
                    "class": meta.kind,
                    "nnz": int(np.count_nonzero(dense_b)),
                },
            )
        )
    return Suite(
        "suitesparse", spec, cases,
        sparsity=csr_b_matrix(spec), sparsity_name="B-csr",
        element_bits=32,
    )


# ---------------------------------------------------------------------------
# User workload tables (JSON / CSV)
# ---------------------------------------------------------------------------

#: Columns every workload-table row must provide.
REQUIRED_COLUMNS = ("name", "m", "k", "n")

#: Optional per-row operand densities, both defaulting to 1.0 (dense).
DENSITY_COLUMNS = ("a_density", "b_density")


def _parse_dim(raw: object, column: str, context: str) -> int:
    try:
        value = int(raw)
    except (TypeError, ValueError):
        raise SuiteError(
            f"{context}: column {column!r} must be an integer, got {raw!r}"
        ) from None
    if isinstance(raw, float) and raw != value:
        raise SuiteError(
            f"{context}: column {column!r} must be an integer, got {raw!r}"
        )
    if value < 1:
        raise SuiteError(
            f"{context}: column {column!r} must be positive, got {value}"
        )
    return value


def _parse_density(raw: object, column: str, context: str) -> float:
    if raw is None or raw == "":
        return 1.0
    try:
        value = float(raw)
    except (TypeError, ValueError):
        raise SuiteError(
            f"{context}: column {column!r} must be a number in [0, 1],"
            f" got {raw!r}"
        ) from None
    if not 0.0 <= value <= 1.0:
        raise SuiteError(
            f"{context}: column {column!r} must be within [0, 1], got {value}"
        )
    return value


def _parse_table_row(row: Mapping[str, object], context: str) -> Dict[str, object]:
    if not isinstance(row, Mapping):
        raise SuiteError(f"{context}: expected an object, got {type(row).__name__}")
    if row.get("name") not in (None, ""):
        context = f"{context} ({str(row['name'])!r})"
    missing = [col for col in REQUIRED_COLUMNS if row.get(col) in (None, "")]
    if missing:
        raise SuiteError(
            f"{context}: missing required column(s) {', '.join(missing)}"
            f" (need {', '.join(REQUIRED_COLUMNS)})"
        )
    name = str(row["name"])
    parsed: Dict[str, object] = {"name": name}
    for column in ("m", "k", "n"):
        parsed[column] = _parse_dim(row[column], column, context)
    for column in DENSITY_COLUMNS:
        parsed[column] = _parse_density(row.get(column), column, context)
    return parsed


def _read_table_json(path: str) -> Dict[str, object]:
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except OSError as err:
        raise SuiteError(f"{path}: cannot read workload table: {err}") from None
    except ValueError as err:
        raise SuiteError(f"{path}: malformed JSON: {err}") from None
    if isinstance(payload, list):
        payload = {"layers": payload}
    if not isinstance(payload, dict):
        raise SuiteError(
            f"{path}: workload table must be a JSON array of rows or an"
            " object with a 'layers' array"
        )
    if not isinstance(payload.get("layers"), list):
        raise SuiteError(f"{path}: workload table needs a 'layers' array")
    return payload


def _read_table_csv(path: str) -> Dict[str, object]:
    try:
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle)
            fields = reader.fieldnames
            if fields is None:
                raise SuiteError(f"{path}: empty CSV workload table")
            missing = [col for col in REQUIRED_COLUMNS if col not in fields]
            if missing:
                raise SuiteError(
                    f"{path}: CSV header is missing column(s)"
                    f" {', '.join(missing)} (need {', '.join(REQUIRED_COLUMNS)})"
                )
            layers = [dict(row) for row in reader]
    except OSError as err:
        raise SuiteError(f"{path}: cannot read workload table: {err}") from None
    except csv.Error as err:
        raise SuiteError(f"{path}: malformed CSV: {err}") from None
    return {"layers": layers}


def read_workload_table(path: str) -> Dict[str, object]:
    """Read a workload table file into its parsed payload form.

    Returns the ``{"layers": [...], ...}`` dict that
    :func:`build_table_suite` accepts, with the file's basename folded
    in as the default suite ``name``.  This is what ``repro sweep
    --server`` ships inline in a request body -- the daemon never needs
    filesystem access to the client's table.
    """
    if not os.path.exists(path):
        raise SuiteError(f"{path}: no such workload table")
    if path.endswith(".csv"):
        payload = _read_table_csv(path)
    else:
        payload = _read_table_json(path)
    payload.setdefault("name", os.path.splitext(os.path.basename(path))[0])
    return payload


def load_workload_table(
    path: str, cap: int = DEFAULT_CAP, seed: int = DEFAULT_SEED
) -> Suite:
    """Build a :class:`Suite` from a user workload table on disk.

    The table is a JSON array (or an object with ``layers`` plus
    optional ``name`` / ``element_bits`` / ``sparsity`` fields) or a
    CSV with header columns ``name,m,k,n[,a_density][,b_density]``.
    Each row is one layer-shaped matmul ``m x k x n`` with optional
    operand densities in ``[0, 1]`` (default dense).  The suite's
    sparsity wiring defaults to Listing 5's CSR-B structure when any
    row thins its B operand, else dense; an explicit ``sparsity`` of
    ``"dense"`` or ``"b-csr"`` overrides.

    Every malformed input -- unreadable file, bad JSON/CSV, missing
    columns, non-positive dims, out-of-range densities -- raises a
    single :class:`SuiteError` naming the file and row.
    """
    payload = read_workload_table(path)
    return build_table_suite(payload, cap=cap, seed=seed, source=path)


def build_table_suite(
    payload: object,
    cap: int = DEFAULT_CAP,
    seed: int = DEFAULT_SEED,
    source: str = "workload table",
    default_name: str = "table",
) -> Suite:
    """Build a :class:`Suite` from an already-parsed workload table.

    ``payload`` follows the JSON table shape: a list of rows or an
    object with a ``layers`` array plus optional ``name`` /
    ``element_bits`` / ``sparsity``.  This is the declarative entry
    the evaluation service uses for inline tables shipped in a request
    body; :func:`load_workload_table` is the file-path wrapper.
    ``source`` labels every :class:`SuiteError` so the caller's context
    (file path, ``"request"``) survives into the message.
    """
    if isinstance(payload, list):
        payload = {"layers": payload}
    if not isinstance(payload, dict) or not isinstance(
        payload.get("layers"), list
    ):
        raise SuiteError(
            f"{source}: workload table must be an array of rows or an"
            " object with a 'layers' array"
        )

    rows = [
        _parse_table_row(row, f"{source}: row {index + 1}")
        for index, row in enumerate(payload["layers"])
    ]
    if not rows:
        raise SuiteError(f"{source}: workload table has no layers")
    seen: Dict[str, int] = {}
    for index, row in enumerate(rows):
        first = seen.setdefault(str(row["name"]), index)
        if first != index:
            raise SuiteError(
                f"{source}: row {index + 1}: duplicate layer name"
                f" {row['name']!r} (first used in row {first + 1})"
            )

    table_name = str(payload.get("name") or default_name)
    element_bits = payload.get("element_bits", 8)
    if not isinstance(element_bits, int) or element_bits < 1:
        raise SuiteError(
            f"{source}: element_bits must be a positive integer,"
            f" got {element_bits!r}"
        )

    spec = matmul_spec()
    cases = []
    for index, row in enumerate(rows):
        bounds = _tile_bounds(row["m"], row["k"], row["n"], cap)
        rng = _case_rng(seed, index)
        i, j, k = (bounds.size("i"), bounds.size("j"), bounds.size("k"))
        cases.append(
            SuiteCase(
                str(row["name"]),
                bounds,
                {
                    "A": _masked(rng, (i, k), row["a_density"]),
                    "B": _masked(rng, (k, j), row["b_density"]),
                },
                info={
                    "matmul": (row["m"], row["k"], row["n"]),
                    "a_density": row["a_density"],
                    "b_density": row["b_density"],
                },
            )
        )

    sparse = any(row["b_density"] < 1.0 for row in rows)
    sparsity_name = payload.get("sparsity", "b-csr" if sparse else "dense")
    if sparsity_name == "dense":
        sparsity = SparsityStructure()
    elif sparsity_name == "b-csr":
        sparsity = csr_b_matrix(spec)
    else:
        raise SuiteError(
            f"{source}: unknown sparsity {sparsity_name!r}"
            " (choose 'dense' or 'b-csr')"
        )
    return Suite(
        table_name, spec, cases,
        sparsity=sparsity, sparsity_name=str(sparsity_name),
        element_bits=element_bits,
    )


SUITES: Dict[str, Callable[..., Suite]] = {
    "resnet50": build_resnet50,
    "alexnet": build_alexnet,
    "suitesparse": build_suitesparse,
}


def suite_names() -> List[str]:
    return sorted(SUITES)


def is_table_path(name: str) -> bool:
    """Whether a ``repro sweep`` argument names a workload-table file
    rather than a registered suite."""
    return (
        name.endswith((".json", ".csv"))
        or os.sep in name
        or (os.altsep is not None and os.altsep in name)
    )


def build_suite(name: str, cap: int = DEFAULT_CAP, seed: int = DEFAULT_SEED) -> Suite:
    """A registered suite by name, or a user workload table by path."""
    if is_table_path(name):
        return load_workload_table(name, cap=cap, seed=seed)
    try:
        builder = SUITES[name]
    except KeyError:
        raise KeyError(
            f"unknown suite {name!r}; available: {', '.join(suite_names())},"
            " or a path to a workload table (.json/.csv)"
        ) from None
    return builder(cap=cap, seed=seed)


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------


class SuiteResult:
    """Per-layer rows plus suite aggregates and the engine report."""

    def __init__(
        self,
        suite: Suite,
        rows: List[Dict[str, object]],
        report: EngineReport,
        elapsed_s: float,
        cache: Optional[CompileCache],
    ):
        self.suite = suite
        self.rows = rows
        self.report = report
        self.elapsed_s = elapsed_s
        self.cache = cache

    # -- aggregates ------------------------------------------------------

    @property
    def total_cycles(self) -> int:
        return sum(int(row["cycles"]) for row in self.rows)

    @property
    def total_energy_pj(self) -> float:
        return sum(float(row.get("energy_pj", 0.0)) for row in self.rows)

    @property
    def total_area_um2(self) -> float:
        # One accelerator serves the whole suite: its area is the
        # largest tile configuration's, not the sum over layers.
        return max((float(row["area_um2"]) for row in self.rows), default=0.0)

    @property
    def mean_utilization(self) -> float:
        if not self.rows:
            return 0.0
        return sum(float(row["utilization"]) for row in self.rows) / len(self.rows)

    def aggregates(self) -> Dict[str, object]:
        return {
            "cases": len(self.rows),
            "total_cycles": self.total_cycles,
            "mean_utilization": round(self.mean_utilization, 4),
            "area_um2": self.total_area_um2,
            "total_energy_pj": round(self.total_energy_pj, 3),
            "elapsed_s": round(self.elapsed_s, 4),
        }

    # -- presentation ----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        payload = {
            "suite": self.suite.name,
            "transform": self.suite.transform_name,
            "sparsity": self.suite.sparsity_name,
            "rows": self.rows,
            "aggregates": self.aggregates(),
            "engine": self.report.as_dict(),
        }
        if self.cache is not None and self.cache.store is not None:
            payload["store"] = self.cache.store.stats.as_dict()
        return payload

    def table(self) -> str:
        return format_rows(self.rows)


def format_rows(rows: List[Dict[str, object]]) -> str:
    """The per-layer text table for a list of suite result rows.

    Shared by the in-process :class:`SuiteResult` view and the serve
    client, which re-renders rows streamed over the wire.
    """
    headers = ("case", "bounds", "cycles", "util", "energy/pJ", "digest")
    body = []
    for row in rows:
        bounds = row.get("bounds_str", "")
        body.append(
            (
                str(row["name"]),
                str(bounds),
                str(row["cycles"]),
                f"{float(row['utilization']):.3f}",
                f"{float(row.get('energy_pj', 0.0)):.1f}",
                str(row.get("output_digest", ""))[:12],
            )
        )
    widths = [
        max(len(headers[col]), *(len(line[col]) for line in body)) if body
        else len(headers[col])
        for col in range(len(headers))
    ]
    lines = [
        "  ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for line in body:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(line, widths))
        )
    return "\n".join(lines)


def evaluate_suite(
    suite: Suite,
    jobs: Optional[int] = None,
    cache: Optional[CompileCache] = None,
    on_row: Optional[Callable[[int, Dict[str, object]], None]] = None,
    pool=None,
) -> SuiteResult:
    """Run every case of ``suite`` through the sweep engine.

    ``skip_illegal`` is off: a suite layer that fails to compile is a
    configuration bug, not a design-space point to prune.

    ``on_row(index, row)`` streams each finished per-layer row (case
    info and bounds merged in, identical to the row in the returned
    result) in case order before the call returns -- the serve daemon's
    streaming hook.  ``pool`` routes the fan-out through a resident
    :class:`~repro.exec.engine.ResidentPool` instead of a per-sweep
    executor.
    """
    candidates = suite.candidates()
    rows: List[Optional[Dict[str, object]]] = [None] * len(candidates)

    def _finish_row(index: int, outcome: Dict[str, object]) -> None:
        case = suite.cases[index]
        row = dict(outcome)
        row.update(case.info)
        row["bounds_str"] = "x".join(
            str(case.bounds.size(name)) for name in ("i", "j", "k")
        )
        rows[index] = row
        if on_row is not None:
            on_row(index, row)

    started = time.perf_counter()
    _outcomes, report = evaluate_sweep(
        suite.spec,
        None,
        None,
        candidates,
        element_bits=suite.element_bits,
        skip_illegal=False,
        jobs=jobs,
        cache=cache,
        tensor_table=suite.tensor_table(),
        on_outcome=_finish_row,
        pool=pool,
    )
    elapsed = time.perf_counter() - started
    return SuiteResult(suite, list(rows), report, elapsed, cache)
