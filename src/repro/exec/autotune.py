"""Per-layer Pareto autotuning of workload suites (DSE x ``repro sweep``).

Stellar's core claim is that one functional spec plus an automated
explorer finds per-workload design points rather than fixing a single
array.  The plain suite sweep (:mod:`repro.exec.suite`) still evaluates
every layer on one hand-picked output-stationary design;
:func:`autotune_suite` crosses the suite with the DSE candidate space
instead:

* each workload-table row is paired with every combo of the
  :class:`~repro.dse.space.DesignSpace` (transform x sparsity wiring x
  load balancing, optionally truncated by a candidate ``budget`` that
  never drops the suite's fixed baseline design);
* all (layer x combo) pairs go through one
  :func:`~repro.exec.engine.evaluate_sweep` call, so candidates share
  the compile cache (most combos collapse onto a handful of compiled
  designs), fan out over the process pool, ship operands through shared
  memory, and warm-start from the persistent disk store;
* per layer, the surviving points are ranked by the Pareto frontier
  over (cycles, area, energy) and the winner is the frontier point
  minimizing the configured objective -- ``cycles``, ``energy``, or
  ``edp`` -- with deterministic (objective, cycles, area, name)
  tie-breaks, so parallel, serial, cold, and warm runs pick identical
  designs.

Each layer's *fixed* baseline combo is evaluated with
``skip_illegal: False`` (its failure is a configuration bug, not a
design-space point to prune), which also guarantees the winner table's
aggregate cycles never exceed the fixed-design sweep's: the baseline is
always on the candidate list, so the worst case is choosing it.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..dse.explorer import DesignPoint, ExplorationResult
from ..dse.space import DesignCombo, DesignSpace, budgeted_combos, suite_design_space
from .cache import CompileCache
from .engine import EngineReport, evaluate_sweep
from .suite import Suite, SuiteError

#: Supported autotuning objectives, each mapping a point to the scalar
#: being minimized.
OBJECTIVES: Dict[str, Callable[[DesignPoint], float]] = {
    "cycles": lambda p: float(p.cycles),
    "energy": lambda p: float(p.energy_pj),
    "edp": lambda p: float(p.edp),
}


def select_winner(
    points: Sequence[DesignPoint], objective: str
) -> Tuple[DesignPoint, List[DesignPoint]]:
    """``(winner, frontier)`` for one layer's evaluated points.

    The frontier is the Pareto-nondominated subset over every measured
    metric (cycles, area, and energy when present); the winner is the
    frontier point minimizing ``objective`` with deterministic
    tie-breaks, so identical point sets always yield identical winners
    regardless of evaluation order.
    """
    if objective not in OBJECTIVES:
        raise ValueError(
            f"unknown objective {objective!r}; pick from {sorted(OBJECTIVES)}"
        )
    if not points:
        raise ValueError("cannot select a winner from zero points")
    measure = OBJECTIVES[objective]
    frontier = ExplorationResult(list(points)).pareto_frontier()
    winner = min(
        frontier, key=lambda p: (measure(p), p.cycles, p.area_um2, p.name)
    )
    return winner, frontier


class LayerDecision:
    """One layer's autotuning outcome: the winning design plus context."""

    def __init__(
        self,
        case,
        combo: DesignCombo,
        outcome: Mapping[str, object],
        fixed_outcome: Mapping[str, object],
        frontier_size: int,
        evaluated: int,
        illegal: int,
    ):
        self.case = case
        self.combo = combo
        self.outcome = dict(outcome)
        self.fixed_outcome = dict(fixed_outcome)
        self.frontier_size = frontier_size
        self.evaluated = evaluated
        self.illegal = illegal

    @property
    def cycles(self) -> int:
        return int(self.outcome["cycles"])

    @property
    def energy_pj(self) -> float:
        return float(self.outcome["energy_pj"])

    @property
    def edp(self) -> float:
        return self.cycles * self.energy_pj

    @property
    def fixed_cycles(self) -> int:
        return int(self.fixed_outcome["cycles"])

    def row(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "name": self.case.name,
            "transform": self.combo.transform_name,
            "sparsity": self.combo.sparsity_name,
            "balancing": self.combo.balancing_name,
            "cycles": self.cycles,
            "fixed_cycles": self.fixed_cycles,
            "utilization": float(self.outcome["utilization"]),
            "area_um2": float(self.outcome["area_um2"]),
            "energy_pj": round(self.energy_pj, 3),
            "edp": round(self.edp, 3),
            "output_digest": self.outcome["output_digest"],
            "frontier": self.frontier_size,
            "evaluated": self.evaluated,
            "illegal": self.illegal,
        }
        row.update(self.case.info)
        row["bounds_str"] = "x".join(
            str(self.case.bounds.size(name)) for name in ("i", "j", "k")
        )
        return row


class AutotuneResult:
    """Per-layer winner table plus suite aggregates and the engine report."""

    def __init__(
        self,
        suite: Suite,
        objective: str,
        decisions: List[LayerDecision],
        space: DesignSpace,
        combos: List[DesignCombo],
        budget: Optional[int],
        report: EngineReport,
        elapsed_s: float,
        cache: Optional[CompileCache],
    ):
        self.suite = suite
        self.objective = objective
        self.decisions = decisions
        self.space = space
        self.combos = combos
        self.budget = budget
        self.report = report
        self.elapsed_s = elapsed_s
        self.cache = cache

    # -- aggregates ------------------------------------------------------

    @property
    def rows(self) -> List[Dict[str, object]]:
        return [decision.row() for decision in self.decisions]

    @property
    def total_cycles(self) -> int:
        return sum(d.cycles for d in self.decisions)

    @property
    def fixed_total_cycles(self) -> int:
        return sum(d.fixed_cycles for d in self.decisions)

    @property
    def total_energy_pj(self) -> float:
        return sum(d.energy_pj for d in self.decisions)

    @property
    def total_edp(self) -> float:
        return sum(d.edp for d in self.decisions)

    @property
    def mean_utilization(self) -> float:
        if not self.decisions:
            return 0.0
        return sum(
            float(d.outcome["utilization"]) for d in self.decisions
        ) / len(self.decisions)

    @property
    def retuned_layers(self) -> int:
        """Layers whose winner is not the suite's fixed baseline design."""
        baseline = (
            self.suite.transform_name,
            self.suite.sparsity_name,
            self.suite.balancing_name,
        )
        return sum(1 for d in self.decisions if d.combo.names != baseline)

    def aggregates(self) -> Dict[str, object]:
        return {
            "cases": len(self.decisions),
            "objective": self.objective,
            "candidates_per_layer": len(self.combos),
            "total_cycles": self.total_cycles,
            "fixed_total_cycles": self.fixed_total_cycles,
            "retuned_layers": self.retuned_layers,
            "mean_utilization": round(self.mean_utilization, 4),
            "total_energy_pj": round(self.total_energy_pj, 3),
            "total_edp": round(self.total_edp, 3),
            "elapsed_s": round(self.elapsed_s, 4),
        }

    # -- presentation ----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        payload = {
            "suite": self.suite.name,
            "mode": "autotune",
            "objective": self.objective,
            "budget": self.budget,
            "space": self.space.axes(),
            "rows": self.rows,
            "aggregates": self.aggregates(),
            "engine": self.report.as_dict(),
        }
        if self.cache is not None and self.cache.store is not None:
            payload["store"] = self.cache.store.stats.as_dict()
        return payload

    def table(self) -> str:
        headers = (
            "case", "design", "cycles", "fixed", "util", "energy/pJ", "digest"
        )
        body = []
        for decision in self.decisions:
            row = decision.row()
            body.append(
                (
                    str(row["name"]),
                    f"{row['transform']} / {row['sparsity']} / {row['balancing']}",
                    str(row["cycles"]),
                    str(row["fixed_cycles"]),
                    f"{float(row['utilization']):.3f}",
                    f"{float(row['energy_pj']):.1f}",
                    str(row["output_digest"])[:12],
                )
            )
        widths = [
            max(len(headers[col]), *(len(line[col]) for line in body)) if body
            else len(headers[col])
            for col in range(len(headers))
        ]
        lines = [
            "  ".join(header.ljust(width) for header, width in zip(headers, widths)),
            "  ".join("-" * width for width in widths),
        ]
        for line in body:
            lines.append(
                "  ".join(cell.ljust(width) for cell, width in zip(line, widths))
            )
        return "\n".join(lines)


def _layer_points(
    combos: Sequence[DesignCombo], outcomes: Sequence[Mapping[str, object]]
) -> List[Tuple[DesignCombo, DesignPoint, Mapping[str, object]]]:
    points = []
    for combo, outcome in zip(combos, outcomes):
        if outcome["status"] != "ok":
            continue
        points.append(
            (
                combo,
                DesignPoint(
                    name=combo.label,
                    transform_name=combo.transform_name,
                    sparsity_name=combo.sparsity_name,
                    balancing_name=combo.balancing_name,
                    cycles=int(outcome["cycles"]),
                    utilization=float(outcome["utilization"]),
                    area_um2=float(outcome["area_um2"]),
                    pe_count=int(outcome["pe_count"]),
                    conn_count=int(outcome["conn_count"]),
                    pruned_variables=outcome["pruned_variables"],
                    energy_pj=float(outcome["energy_pj"]),
                ),
                outcome,
            )
        )
    return points


def autotune_suite(
    suite: Suite,
    objective: str = "cycles",
    budget: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: Optional[CompileCache] = None,
    space: Optional[DesignSpace] = None,
    pool=None,
) -> AutotuneResult:
    """Pick the Pareto-best design point per layer of ``suite``.

    ``space`` defaults to :func:`~repro.dse.space.suite_design_space`;
    ``budget`` caps candidates per layer (the fixed baseline design is
    always kept, so the aggregate can only improve on the fixed sweep);
    ``jobs``, ``cache``, and ``pool`` (a resident worker pool) thread
    straight into :func:`~repro.exec.engine.evaluate_sweep`.
    """
    if objective not in OBJECTIVES:
        raise ValueError(
            f"unknown objective {objective!r}; pick from {sorted(OBJECTIVES)}"
        )
    space = space if space is not None else suite_design_space(suite)
    baseline = (suite.transform_name, suite.sparsity_name, suite.balancing_name)
    combos = budgeted_combos(space.combos(), budget, require=baseline)
    if not any(combo.names == baseline for combo in combos):
        raise SuiteError(
            f"suite {suite.name!r}: the fixed baseline design {baseline!r}"
            " is not in the autotuning space; autotuned aggregates would"
            " not be comparable to the fixed sweep"
        )

    candidates = [
        combo.candidate(
            name=f"{case.name} @ {combo.label}",
            bounds=case.bounds,
            tensors_key=case.name,
            want_energy=True,
            want_digest=True,
            # The baseline must compile; exploration combos may be
            # illegal for this spec and are pruned per layer.
            skip_illegal=combo.names != baseline,
        )
        for case in suite.cases
        for combo in combos
    ]

    started = time.perf_counter()
    outcomes, report = evaluate_sweep(
        suite.spec,
        None,
        None,
        candidates,
        element_bits=suite.element_bits,
        skip_illegal=True,
        jobs=jobs,
        cache=cache,
        tensor_table=suite.tensor_table(),
        pool=pool,
    )
    elapsed = time.perf_counter() - started

    decisions = []
    stride = len(combos)
    for index, case in enumerate(suite.cases):
        chunk = outcomes[index * stride:(index + 1) * stride]
        evaluated = _layer_points(combos, chunk)
        if not evaluated:
            raise SuiteError(
                f"suite {suite.name!r}: no legal design point for layer"
                f" {case.name!r}"
            )
        winner_point, frontier = select_winner(
            [point for _combo, point, _out in evaluated], objective
        )
        by_label = {
            point.name: (combo, outcome)
            for combo, point, outcome in evaluated
        }
        winner_combo, winner_outcome = by_label[winner_point.name]
        fixed_outcome = next(
            outcome
            for combo, _point, outcome in evaluated
            if combo.names == baseline
        )
        decisions.append(
            LayerDecision(
                case,
                winner_combo,
                winner_outcome,
                fixed_outcome,
                frontier_size=len(frontier),
                evaluated=len(evaluated),
                illegal=stride - len(evaluated),
            )
        )
    return AutotuneResult(
        suite, objective, decisions, space, combos, budget, report, elapsed, cache
    )
