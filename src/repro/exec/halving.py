"""Multi-fidelity successive-halving autotuning of workload suites.

:func:`~repro.exec.autotune.autotune_suite` (PR 5) evaluates every
candidate combo of every layer at full simulation fidelity; its
``--budget`` knob merely truncated the combo list.  That scales badly
once :class:`~repro.dse.space.DesignSpace` owns the microarchitecture
axes (membuf geometry, DMA depth, regfile variant) on top of transform x
sparsity x balancing.  :func:`halving_autotune_suite` replaces
truncation with the successive-halving schedule:

* **Rung 0** evaluates *all* combos of every layer at a cheap fidelity:
  each case's bounds are clipped to a small ``cap`` and its operand
  tensors sliced to match, energy and output digests are skipped, and
  the reduced run is tagged with a ``fidelity`` label that the engine
  folds into the simulator's memo key -- rung entries can never answer
  for (or be answered by) full-fidelity cache entries.
* Each subsequent rung re-runs only the survivors at an ``eta``-times
  larger cap, keeping the top ``ceil(n / eta)`` combos per layer on the
  rung objective (cycles, then area, then name -- deterministic).  Three
  classes of combo survive unconditionally: the suite's **fixed
  baseline** (so the final winner provably never loses to the fixed
  sweep -- the PR 5 guarantee), the **previous layer's rung leader**
  (neighboring layers share shapes, so its winner warm-starts this
  layer's ranking), and combos that were **illegal at reduced fidelity**
  (clipping can break a balancing scheme that is legal at full bounds;
  they are carried forward rather than falsely pruned).
* The **final rung** is byte-identical to today's exact evaluation:
  full bounds, full tensors, energy + digest on, no fidelity tag -- so
  it shares cache entries with the plain autotuner and the fixed sweep,
  and cold/warm runs stay byte-identical.

Every rung routes through one
:func:`~repro.exec.engine.evaluate_sweep` call, so the ResidentPool,
shared-memory transport, DiskStore, and compile-cache sharing all apply
per rung.  The final winner is picked off the full Pareto frontier,
optionally filtered by declarative suite-level constraints
(``area<=N,power<=N`` -- TeAAL-style), and the result surfaces the full
per-layer frontier plus per-rung evaluation counts.
"""

from __future__ import annotations

import math
import time
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..core.expr import Bounds
from ..dse.explorer import DesignPoint
from ..dse.space import (
    DesignCombo,
    DesignSpace,
    budgeted_combos,
    suite_design_space,
)
from ..obs.trace import get_tracer
from .autotune import (
    OBJECTIVES,
    AutotuneResult,
    LayerDecision,
    _layer_points,
    select_winner,
)
from .cache import CompileCache
from .engine import evaluate_sweep
from .suite import Suite, SuiteError

#: The smallest rung cap.  Tiles below this stop being representative of
#: the full-bounds ranking (a 1x1x1 matmul has no dataflow).
MIN_RUNG_CAP = 2

#: Metrics a ``--constraint`` clause may bound, each mapping a fully
#: evaluated :class:`~repro.dse.explorer.DesignPoint` to the scalar the
#: bound applies to.  ``power`` is the energy rate (pJ per cycle).
CONSTRAINT_METRICS: Dict[str, Callable[[DesignPoint], float]] = {
    "cycles": lambda p: float(p.cycles),
    "area": lambda p: float(p.area_um2),
    "energy": lambda p: float(p.energy_pj),
    "power": lambda p: float(p.energy_pj) / max(1.0, float(p.cycles)),
}


class Constraint(NamedTuple):
    """One declarative bound: ``metric (<=|>=) limit``."""

    metric: str
    op: str
    limit: float

    def satisfied_by(self, point: DesignPoint) -> bool:
        value = CONSTRAINT_METRICS[self.metric](point)
        return value <= self.limit if self.op == "<=" else value >= self.limit

    def __str__(self) -> str:
        limit = int(self.limit) if self.limit == int(self.limit) else self.limit
        return f"{self.metric}{self.op}{limit}"


def parse_constraints(text: Optional[str]) -> List[Constraint]:
    """Parse the ``--constraint`` grammar: comma-separated
    ``metric<=value`` / ``metric>=value`` clauses over
    :data:`CONSTRAINT_METRICS`."""
    if not text:
        return []
    constraints = []
    for clause in text.split(","):
        clause = clause.strip()
        if not clause:
            continue
        for op in ("<=", ">="):
            if op in clause:
                metric, _, limit_text = clause.partition(op)
                metric = metric.strip()
                if metric not in CONSTRAINT_METRICS:
                    raise ValueError(
                        f"unknown constraint metric {metric!r}; pick from"
                        f" {sorted(CONSTRAINT_METRICS)}"
                    )
                try:
                    limit = float(limit_text.strip())
                except ValueError:
                    raise ValueError(
                        f"constraint {clause!r} needs a numeric bound"
                    ) from None
                constraints.append(Constraint(metric, op, limit))
                break
        else:
            raise ValueError(
                f"constraint {clause!r} is not of the form metric<=value"
                " or metric>=value"
            )
    return constraints


def fidelity_ladder(full_cap: int, eta: int) -> List[Optional[int]]:
    """The rung caps, cheapest first; ``None`` is the exact final rung.

    Caps grow by ``eta`` from :data:`MIN_RUNG_CAP` while strictly below
    ``full_cap``; ``eta=1`` (no pruning) degenerates to the single exact
    rung, making halving identical to the exhaustive autotuner -- the
    differential test's anchor.
    """
    if eta < 1:
        raise ValueError(f"eta must be at least 1, got {eta}")
    caps: List[Optional[int]] = []
    if eta > 1:
        cap = MIN_RUNG_CAP
        while cap < full_cap:
            caps.append(cap)
            cap *= eta
    caps.append(None)
    return caps


def _suite_full_cap(suite: Suite) -> int:
    return max(
        (
            case.bounds.size(name)
            for case in suite.cases
            for name in case.bounds.names()
        ),
        default=MIN_RUNG_CAP,
    )


def _clip_case(case, cap: int):
    """``(bounds, tensors, clipped)`` for one case at rung cap ``cap``.

    Every iteration axis is clipped to ``cap`` and every operand axis
    sliced to its clipped extent -- rung tiles are genuine sub-problems
    of the layer, so their (bounds, tensors) content keys are naturally
    distinct from the full-fidelity entries.
    """
    sizes = {
        name: min(case.bounds.size(name), cap)
        for name in case.bounds.names()
    }
    if all(sizes[name] == case.bounds.size(name) for name in sizes):
        return case.bounds, case.tensors, False
    bounds = Bounds(sizes)
    tensors = {
        name: np.ascontiguousarray(
            arr[tuple(slice(min(dim, cap)) for dim in arr.shape)]
        )
        for name, arr in case.tensors.items()
    }
    return bounds, tensors, True


class RungStats:
    """Evaluation tallies of one rung, across all layers."""

    def __init__(self, rung: int, cap: Optional[int]):
        self.rung = rung
        self.cap = cap
        self.candidates = 0
        self.evaluated = 0
        self.illegal = 0
        self.carried = 0
        self.survivors = 0

    @property
    def fidelity(self) -> str:
        return "full" if self.cap is None else f"cap{self.cap}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rung": self.rung,
            "fidelity": self.fidelity,
            "cap": self.cap,
            "candidates": self.candidates,
            "evaluated": self.evaluated,
            "illegal": self.illegal,
            "carried": self.carried,
            "survivors": self.survivors,
        }


class HalvingLayerDecision(LayerDecision):
    """A layer's winner plus its full serialized Pareto frontier."""

    def __init__(self, *args, frontier_points=None, feasible=None, **kwargs):
        super().__init__(*args, **kwargs)
        self.frontier_points = list(frontier_points or [])
        self.feasible = feasible if feasible is not None else len(
            self.frontier_points
        )

    def row(self) -> Dict[str, object]:
        row = super().row()
        membuf, dma, regfile = self.combo.uarch_names
        row["membuf"] = membuf
        row["dma"] = dma
        row["regfile"] = regfile
        row["feasible"] = self.feasible
        return row


class HalvingResult(AutotuneResult):
    """An :class:`~repro.exec.autotune.AutotuneResult` plus the halving
    schedule: rung tallies, the fidelity ladder, constraint clauses, and
    each layer's full Pareto frontier."""

    def __init__(
        self,
        *args,
        eta: int,
        ladder: Sequence[Optional[int]],
        rungs: Sequence[RungStats],
        constraints: Sequence[Constraint],
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.eta = eta
        self.ladder = list(ladder)
        self.rungs = list(rungs)
        self.constraints = list(constraints)

    @property
    def retuned_layers(self) -> int:
        """Layers whose winner differs from the fixed baseline on *any*
        axis, including the microarchitecture overlays."""
        baseline = (
            self.suite.transform_name,
            self.suite.sparsity_name,
            self.suite.balancing_name,
        )
        return sum(
            1
            for d in self.decisions
            if d.combo.names != baseline or not d.combo.is_default_uarch
        )

    @property
    def full_fidelity_evaluations(self) -> int:
        return self.rungs[-1].candidates if self.rungs else 0

    @property
    def exhaustive_evaluations(self) -> int:
        return len(self.suite.cases) * len(self.combos)

    @property
    def evaluations_saved(self) -> float:
        """The exhaustive-to-final-rung full-fidelity evaluation ratio."""
        return self.exhaustive_evaluations / max(
            1, self.full_fidelity_evaluations
        )

    def aggregates(self) -> Dict[str, object]:
        figures = super().aggregates()
        figures["eta"] = self.eta
        figures["rungs"] = len(self.rungs)
        figures["full_fidelity_evaluations"] = self.full_fidelity_evaluations
        figures["exhaustive_evaluations"] = self.exhaustive_evaluations
        figures["evaluations_saved"] = round(self.evaluations_saved, 4)
        return figures

    def to_dict(self) -> Dict[str, object]:
        payload = super().to_dict()
        payload["mode"] = "halving"
        payload["eta"] = self.eta
        payload["ladder"] = [
            cap if cap is not None else "full" for cap in self.ladder
        ]
        payload["constraint"] = (
            ",".join(str(c) for c in self.constraints) or None
        )
        payload["rungs"] = [stats.as_dict() for stats in self.rungs]
        payload["frontiers"] = {
            decision.case.name: decision.frontier_points
            for decision in self.decisions
        }
        return payload


def _frontier_payload(
    frontier: Sequence[DesignPoint],
    by_label: Mapping[str, Tuple[DesignCombo, Mapping[str, object]]],
    constraints: Sequence[Constraint],
) -> List[Dict[str, object]]:
    payload = []
    for point in frontier:
        combo, _outcome = by_label[point.name]
        membuf, dma, regfile = combo.uarch_names
        payload.append(
            {
                "name": point.name,
                "transform": combo.transform_name,
                "sparsity": combo.sparsity_name,
                "balancing": combo.balancing_name,
                "membuf": membuf,
                "dma": dma,
                "regfile": regfile,
                "cycles": int(point.cycles),
                "area_um2": float(point.area_um2),
                "energy_pj": round(float(point.energy_pj), 3),
                "utilization": float(point.utilization),
                "feasible": all(c.satisfied_by(point) for c in constraints),
            }
        )
    return payload


def halving_autotune_suite(
    suite: Suite,
    objective: str = "cycles",
    eta: int = 2,
    budget: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: Optional[CompileCache] = None,
    space: Optional[DesignSpace] = None,
    pool=None,
    constraints: Union[str, Sequence[Constraint], None] = None,
    on_rung: Optional[Callable[[Dict[str, object]], None]] = None,
) -> HalvingResult:
    """Successive-halving per-layer autotuning of ``suite``.

    ``space`` defaults to the *widened* suite space
    (:func:`~repro.dse.space.suite_design_space` with ``wide=True``);
    ``budget`` is the deprecated rung-0 sizing alias (a stratified
    sample across the transform axis, baseline always kept); ``eta`` is
    both the per-rung keep fraction (top ``1/eta``) and the cap growth
    factor; ``constraints`` filters the final frontier
    (:func:`parse_constraints` grammar) -- note a binding constraint can
    force a winner off the objective optimum, in which case the
    never-worse-than-fixed guarantee is deliberately traded away.
    ``on_rung`` observes rung start/finish events (the serve daemon
    forwards them to clients as ``trace`` messages).
    """
    if objective not in OBJECTIVES:
        raise ValueError(
            f"unknown objective {objective!r}; pick from {sorted(OBJECTIVES)}"
        )
    if isinstance(constraints, str):
        constraints = parse_constraints(constraints)
    constraints = list(constraints or [])
    space = space if space is not None else suite_design_space(suite, wide=True)
    baseline_names = (
        suite.transform_name, suite.sparsity_name, suite.balancing_name
    )
    combos = budgeted_combos(space.combos(), budget, require=baseline_names)
    baseline_combo = next(
        (
            combo
            for combo in combos
            if combo.names == baseline_names and combo.is_default_uarch
        ),
        None,
    )
    if baseline_combo is None:
        raise SuiteError(
            f"suite {suite.name!r}: the fixed baseline design"
            f" {baseline_names!r} is not in the autotuning space; autotuned"
            " aggregates would not be comparable to the fixed sweep"
        )

    ladder = fidelity_ladder(_suite_full_cap(suite), eta)
    tracer = get_tracer()
    started = time.perf_counter()

    survivors: List[List[DesignCombo]] = [list(combos) for _ in suite.cases]
    rung_stats: List[RungStats] = []
    final_outcomes: List[List[Mapping[str, object]]] = []
    report = None

    def emit(event: Dict[str, object]) -> None:
        tracer.instant(
            str(event["event"]), component="autotune.halving",
            **{k: v for k, v in event.items() if k != "event"},
        )
        if on_rung is not None:
            on_rung(dict(event))

    for rung_index, cap in enumerate(ladder):
        final = cap is None
        stats = RungStats(rung_index, cap)

        # One flat candidate list across all layers -> one
        # evaluate_sweep call per rung (pool/store/dedup all apply).
        entries: List[Tuple[int, DesignCombo]] = []
        candidates: List[Dict[str, object]] = []
        tensor_table: Dict[str, Mapping[str, np.ndarray]] = {}
        for case_index, case in enumerate(suite.cases):
            if final:
                bounds, tensors, clipped = case.bounds, case.tensors, False
            else:
                bounds, tensors, clipped = _clip_case(case, cap)
            tensors_key = f"{case.name}@cap{cap}" if clipped else case.name
            tensor_table.setdefault(tensors_key, tensors)
            fidelity = f"cap{cap}" if clipped else None
            for combo in survivors[case_index]:
                entries.append((case_index, combo))
                candidates.append(
                    combo.candidate(
                        name=f"{case.name} @ {combo.label}"
                        + ("" if not clipped else f" @ rung{rung_index}"),
                        bounds=bounds,
                        tensors_key=tensors_key,
                        fidelity=fidelity,
                        want_energy=final,
                        want_digest=final,
                        # The baseline must compile; exploration combos
                        # may be illegal and are pruned (or, at reduced
                        # fidelity, carried) per layer.
                        skip_illegal=combo.key != baseline_combo.key,
                    )
                )
        stats.candidates = len(candidates)
        emit(
            {
                "event": "rung_start",
                "rung": rung_index,
                "fidelity": stats.fidelity,
                "candidates": stats.candidates,
                "layers": len(suite.cases),
            }
        )

        outcomes, report = evaluate_sweep(
            suite.spec,
            None,
            None,
            candidates,
            element_bits=suite.element_bits,
            skip_illegal=True,
            jobs=jobs,
            cache=cache,
            tensor_table=tensor_table,
            pool=pool,
        )

        per_layer: List[List[Tuple[DesignCombo, Mapping[str, object]]]] = [
            [] for _ in suite.cases
        ]
        for (case_index, combo), outcome in zip(entries, outcomes):
            per_layer[case_index].append((combo, outcome))
            if outcome["status"] == "ok":
                stats.evaluated += 1
            else:
                stats.illegal += 1

        if final:
            final_outcomes = per_layer
            rung_stats.append(stats)
            emit(
                {
                    "event": "rung_finish",
                    "rung": rung_index,
                    "fidelity": stats.fidelity,
                    "evaluated": stats.evaluated,
                    "illegal": stats.illegal,
                    "survivors": 0,
                }
            )
            break

        # Successive halving: per layer, keep the top 1/eta on the rung
        # objective plus the three unconditional survivor classes.
        previous_leader: Optional[DesignCombo] = None
        for case_index in range(len(suite.cases)):
            ranked = sorted(
                (
                    (combo, outcome)
                    for combo, outcome in per_layer[case_index]
                    if outcome["status"] == "ok"
                ),
                key=lambda pair: (
                    int(pair[1]["cycles"]),
                    float(pair[1]["area_um2"]),
                    pair[0].label,
                ),
            )
            keep_n = max(1, math.ceil(len(ranked) / eta))
            keep_keys = {combo.key for combo, _ in ranked[:keep_n]}
            keep_keys.add(baseline_combo.key)
            if previous_leader is not None:
                keep_keys.add(previous_leader.key)
            carried = [
                combo
                for combo, outcome in per_layer[case_index]
                if outcome["status"] != "ok"
            ]
            stats.carried += len(carried)
            keep_keys.update(combo.key for combo in carried)
            next_survivors = [
                combo
                for combo in survivors[case_index]
                if combo.key in keep_keys
            ]
            survivors[case_index] = next_survivors
            stats.survivors += len(next_survivors)
            if ranked:
                previous_leader = ranked[0][0]

        rung_stats.append(stats)
        emit(
            {
                "event": "rung_finish",
                "rung": rung_index,
                "fidelity": stats.fidelity,
                "evaluated": stats.evaluated,
                "illegal": stats.illegal,
                "survivors": stats.survivors,
            }
        )

    elapsed = time.perf_counter() - started

    decisions: List[HalvingLayerDecision] = []
    for case_index, case in enumerate(suite.cases):
        layer = final_outcomes[case_index]
        evaluated = _layer_points(
            [combo for combo, _ in layer],
            [outcome for _, outcome in layer],
        )
        if not evaluated:
            raise SuiteError(
                f"suite {suite.name!r}: no legal design point for layer"
                f" {case.name!r}"
            )
        points = [point for _combo, point, _out in evaluated]
        winner_point, frontier = select_winner(points, objective)
        by_label = {
            point.name: (combo, outcome)
            for combo, point, outcome in evaluated
        }
        feasible = [
            point
            for point in frontier
            if all(c.satisfied_by(point) for c in constraints)
        ]
        if constraints:
            if not feasible:
                clause = ",".join(str(c) for c in constraints)
                raise SuiteError(
                    f"suite {suite.name!r}: no frontier point of layer"
                    f" {case.name!r} satisfies --constraint {clause}"
                )
            measure = OBJECTIVES[objective]
            winner_point = min(
                feasible,
                key=lambda p: (measure(p), p.cycles, p.area_um2, p.name),
            )
        winner_combo, winner_outcome = by_label[winner_point.name]
        fixed_outcome = next(
            outcome
            for combo, _point, outcome in evaluated
            if combo.key == baseline_combo.key
        )
        decisions.append(
            HalvingLayerDecision(
                case,
                winner_combo,
                winner_outcome,
                fixed_outcome,
                frontier_size=len(frontier),
                evaluated=len(evaluated),
                illegal=len(layer) - len(evaluated),
                frontier_points=_frontier_payload(
                    frontier, by_label, constraints
                ),
                feasible=len(feasible),
            )
        )

    return HalvingResult(
        suite,
        objective,
        decisions,
        space,
        combos,
        budget,
        report,
        elapsed,
        cache,
        eta=eta,
        ladder=ladder,
        rungs=rung_stats,
        constraints=constraints,
    )
