"""Shared-memory operand transport for the evaluation process pool.

Workload tensors are the bulkiest thing a sweep ships to its workers --
a ResNet-scale suite carries one operand set per layer -- and serializing
them into every worker is pure overhead: the arrays are immutable for
the whole sweep.  A :class:`SharedTensorPool` copies each array into a
:class:`multiprocessing.shared_memory.SharedMemory` segment exactly once
in the parent; workers receive only ``(segment name, dtype, shape)``
descriptors and map zero-copy read-only views.

Ownership protocol:

* the **parent** creates segments, keeps them alive for the sweep, and
  unlinks them in ``close()`` (also invoked by the context manager and
  as a ``__del__`` backstop);
* **workers** attach by name without taking ownership: ``track=False``
  where the Python version supports it (3.13+), a plain attach
  otherwise.  The evaluation pool forks its workers, and forked
  children share the parent's ``resource_tracker``, whose per-name
  cache is a set -- the attach-side duplicate ``register`` coalesces
  with the parent's, and the parent's ``unlink`` retires the name
  exactly once.  (The folklore "unregister after attach" workaround is
  for *spawned* workers with their own tracker; under fork it would
  strip the parent's registration instead.)

Everything degrades gracefully: platforms or sandboxes where segment
creation fails fall back to sending the arrays inline (fork inherits
them), preserving results exactly.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

import numpy as np

try:  # pragma: no cover - import succeeds on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

#: One shared tensor: (segment_name, dtype_str, shape).
TensorHandle = Tuple[str, str, Tuple[int, ...]]

#: One tensor mapping: tensor name -> handle.
TensorSetHandle = Dict[str, TensorHandle]


def shared_memory_available() -> bool:
    """Whether this platform can create shared-memory segments at all."""
    return _shared_memory is not None


class ShmUnavailable(RuntimeError):
    """Raised when the shared-memory transport cannot be used; callers
    fall back to inline operand shipping."""


#: Worker-side pins for attached segments (process lifetime; see
#: :meth:`SharedTensorPool.attach`).  Tests may call
#: :func:`release_attached` to drop them early.
_ATTACHED_SEGMENTS: List[object] = []


def release_attached() -> None:
    """Close every segment attached in this process (test teardown)."""
    for segment in _ATTACHED_SEGMENTS:
        try:
            segment.close()
        except (OSError, BufferError):  # pragma: no cover
            pass
    _ATTACHED_SEGMENTS.clear()


class SharedTensorPool:
    """Parent-side owner of the sweep's shared operand segments."""

    def __init__(self):
        if _shared_memory is None:  # pragma: no cover - py<3.8 only
            raise ShmUnavailable("multiprocessing.shared_memory unavailable")
        self._segments: List[object] = []
        self._closed = False

    # -- publishing (parent) --------------------------------------------

    def publish(
        self, tensors: Mapping[str, np.ndarray]
    ) -> TensorSetHandle:
        """Copy every array into its own segment; returns the handles.

        Zero-size arrays are shipped as empty-name handles (shared
        memory rejects zero-byte segments, and there is nothing to
        share anyway).
        """
        handles: TensorSetHandle = {}
        for name, array in tensors.items():
            array = np.ascontiguousarray(array)
            if array.nbytes == 0:
                handles[name] = ("", str(array.dtype), tuple(array.shape))
                continue
            try:
                segment = _shared_memory.SharedMemory(
                    create=True, size=array.nbytes
                )
            except OSError as error:
                raise ShmUnavailable(str(error)) from error
            self._segments.append(segment)
            view = np.ndarray(
                array.shape, dtype=array.dtype, buffer=segment.buf
            )
            view[...] = array
            handles[name] = (segment.name, str(array.dtype), tuple(array.shape))
        return handles

    def publish_table(
        self, table: Mapping[str, Mapping[str, np.ndarray]]
    ) -> Dict[str, TensorSetHandle]:
        return {key: self.publish(tensors) for key, tensors in table.items()}

    # -- attaching (worker) ---------------------------------------------

    @staticmethod
    def attach(handles: TensorSetHandle) -> Dict[str, np.ndarray]:
        """Map every handle to a read-only array view.

        The attached segments are intentionally left out of the worker's
        resource tracker (see module docstring) and pinned in
        :data:`_ATTACHED_SEGMENTS` for the life of the process -- an
        ndarray cannot anchor its segment itself, and letting the
        ``SharedMemory`` object get collected would close the mapping
        under live views.
        """
        tensors: Dict[str, np.ndarray] = {}
        for name, (segment_name, dtype, shape) in handles.items():
            if not segment_name:
                empty = np.empty(shape, dtype=np.dtype(dtype))
                empty.flags.writeable = False
                tensors[name] = empty
                continue
            segment = _attach_untracked(segment_name)
            _ATTACHED_SEGMENTS.append(segment)
            view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)
            view.flags.writeable = False
            tensors[name] = view
        return tensors

    @staticmethod
    def attach_table(
        handle_table: Mapping[str, TensorSetHandle]
    ) -> Dict[str, Dict[str, np.ndarray]]:
        return {
            key: SharedTensorPool.attach(handles)
            for key, handles in handle_table.items()
        }

    # -- lifecycle -------------------------------------------------------

    @property
    def nbytes(self) -> int:
        return sum(segment.size for segment in self._segments)

    def detach(self) -> None:
        """Close local mappings *without* unlinking the segments.

        This is the worker half of the result-payload transport: the
        worker publishes bulky result arrays, detaches, and ships only
        the handles home; ownership (and the duty to unlink) passes to
        whoever :func:`adopt`\\ s the handles -- the parent.  Idempotent,
        and mutually exclusive with :meth:`close`.
        """
        if self._closed:
            return
        self._closed = True
        for segment in self._segments:
            try:
                segment.close()
            except OSError:  # pragma: no cover - already gone
                pass
        self._segments.clear()

    def close(self) -> None:
        """Release and unlink every owned segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for segment in self._segments:
            try:
                segment.close()
            except OSError:  # pragma: no cover - already gone
                pass
            try:
                segment.unlink()
            except (OSError, FileNotFoundError):  # pragma: no cover
                pass
        self._segments.clear()

    def __enter__(self) -> "SharedTensorPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC-order dependent backstop
        try:
            self.close()
        except Exception:  # noqa: BLE001
            pass


def adopt(handles: TensorSetHandle) -> Dict[str, np.ndarray]:
    """Take ownership of published segments: copy out, close, unlink.

    The parent half of the worker->parent result transport (see
    :meth:`SharedTensorPool.detach`): each handle is materialized as an
    *owned* copy -- byte-identical to the worker's array -- and its
    segment is retired immediately, so adopted payloads have no
    lingering mappings or names.  A handle whose segment has vanished
    (worker crashed before the copy, external cleanup) raises the
    underlying ``OSError``; silently returning partial results would
    corrupt a sweep.
    """
    tensors: Dict[str, np.ndarray] = {}
    for name, (segment_name, dtype, shape) in handles.items():
        if not segment_name:
            tensors[name] = np.empty(shape, dtype=np.dtype(dtype))
            continue
        segment = _attach_untracked(segment_name)
        try:
            view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)
            tensors[name] = view.copy()
        finally:
            try:
                segment.close()
            except (OSError, BufferError):  # pragma: no cover
                pass
            try:
                segment.unlink()
            except (OSError, FileNotFoundError):  # pragma: no cover
                pass
    return tensors


def _attach_untracked(segment_name: str):
    """Attach to an existing segment without taking ownership.

    Python 3.13 grew ``track=False`` for exactly this.  Earlier
    versions attach plainly: under the fork start method (the only one
    the evaluation pool uses) the worker shares the parent's resource
    tracker, whose cache is a name *set*, so the attach-side register
    deduplicates against the parent's and the parent's eventual
    ``unlink`` unregisters the name exactly once.
    """
    try:
        return _shared_memory.SharedMemory(name=segment_name, track=False)
    except TypeError:  # Python < 3.13
        return _shared_memory.SharedMemory(name=segment_name)
