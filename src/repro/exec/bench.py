"""Benchmark harness for the design-space-exploration fast path.

Measures the same reference sweep three ways -- serial uncached (the
seed path), serial with a :class:`~repro.exec.cache.CompileCache`, and
cached with the process pool -- and records wall-clock plus the
speedup of the best engine configuration over the seed path into
``BENCH_dse.json``.

Speedups, not absolute times, are the regression currency: absolute
wall-clock shifts with the machine, but "the cache makes the sweep N x
faster" is a property of the code.  :func:`check_regression` fails when
the measured speedup drops below half of the committed baseline's.

Run via ``python -m repro bench`` or ``python benchmarks/bench_dse.py``.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Callable, Dict, List, Optional

from ..core.balancing import LoadBalancingScheme
from ..core.expr import Bounds
from ..core.sparsity import SparsityStructure
from .cache import CompileCache
from .fingerprint import tensor_signature

#: A sweep regresses when its speedup falls below this fraction of the
#: committed baseline's speedup (i.e. more than 2x slower, relatively).
REGRESSION_RATIO = 0.5

DEFAULT_OUTPUT = "BENCH_dse.json"


def _reference_sweep(size: int, seed: int):
    """The CLI's default matmul sweep: 4 transforms x 4 sparsities x 2
    balancings, minus duplicates the cache is expected to exploit."""
    from ..cli import SPARSITIES, TRANSFORMS, _random_tensors
    from ..core import matmul_spec
    from ..core.balancing import row_shift_scheme

    spec = matmul_spec()
    bounds = Bounds({name: size for name in spec.index_names})
    tensors = _random_tensors(spec, size, seed)
    sparsities = {"dense": SparsityStructure()}
    for name, factory in SPARSITIES.items():
        if factory is not None:
            sparsities[name] = factory(spec)
    return dict(
        spec=spec,
        bounds=bounds,
        tensors=tensors,
        transforms={name: factory() for name, factory in TRANSFORMS.items()},
        sparsities=sparsities,
        balancings={
            "none": LoadBalancingScheme(),
            "row-shift": row_shift_scheme(size // 2),
        },
    )


def _time(fn: Callable[[], object], repeats: int) -> Dict[str, object]:
    """Best-of-``repeats`` wall clock; the minimum is the least noisy
    estimator for a deterministic workload."""
    samples: List[float] = []
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        samples.append(time.perf_counter() - start)
    return {"best_s": min(samples), "samples_s": samples, "value": value}


def _point_signature(result) -> List[tuple]:
    return [
        (p.name, p.cycles, round(p.utilization, 12), round(p.area_um2, 6))
        for p in result.points
    ]


def run_bench(
    size: int = 8,
    seed: int = 0,
    repeats: int = 3,
    jobs: int = 0,
    quick: bool = False,
) -> Dict[str, object]:
    """Benchmark the reference sweep; returns the report dict.

    ``quick`` shrinks the workload (smaller bounds, one repeat) for CI
    smoke runs; the speedup ratio is noisier but still detects
    an order-of-magnitude fast-path breakage.
    """
    from ..dse.explorer import explore

    if quick:
        size = min(size, 6)
        repeats = 1

    sweep = _reference_sweep(size, seed)
    kwargs = dict(
        transforms=sweep["transforms"],
        sparsities=sweep["sparsities"],
        balancings=sweep["balancings"],
    )
    spec, bounds, tensors = sweep["spec"], sweep["bounds"], sweep["tensors"]

    serial = _time(
        lambda: explore(spec, bounds, tensors, cache=False, **kwargs), repeats
    )
    cached = _time(
        lambda: explore(spec, bounds, tensors, cache=True, **kwargs), repeats
    )

    def _parallel():
        return explore(
            spec, bounds, tensors, cache=CompileCache(), jobs=jobs, **kwargs
        )

    parallel = _time(_parallel, repeats)

    baseline_sig = _point_signature(serial["value"])
    identical = (
        baseline_sig == _point_signature(cached["value"])
        == _point_signature(parallel["value"])
    )

    serial_s = serial["best_s"]
    cached_s = cached["best_s"]
    parallel_s = parallel["value"].report.jobs, parallel["best_s"]
    best_engine_s = min(cached_s, parallel_s[1])

    return {
        "sweep": "quick" if quick else "reference",
        "size": size,
        "seed": seed,
        "repeats": repeats,
        "points": len(serial["value"].points),
        "tensors": [list(sig) for sig in tensor_signature(tensors)],
        "serial_uncached_s": round(serial_s, 6),
        "serial_cached_s": round(cached_s, 6),
        "parallel_cached_s": round(parallel_s[1], 6),
        "parallel_jobs": parallel_s[0],
        "speedup_cached": round(serial_s / cached_s, 4),
        "speedup_parallel": round(serial_s / parallel_s[1], 4),
        "speedup": round(serial_s / best_engine_s, 4),
        "results_identical": identical,
        "cache": cached["value"].report.cache_stats.as_dict(),
    }


def check_regression(
    report: Dict[str, object], baseline: Optional[Dict[str, object]]
) -> Optional[str]:
    """None when healthy; otherwise a human-readable failure reason.

    Compares speedup *ratios* against the committed baseline for the
    same sweep name, so the check is machine-independent; also fails
    outright if the engine's results diverged from the serial path.
    """
    if not report.get("results_identical", False):
        return "engine results diverged from the serial uncached sweep"
    if baseline is None:
        return None
    reference = baseline.get("sweeps", {}).get(report["sweep"])
    if reference is None:
        return None
    floor = reference["speedup"] * REGRESSION_RATIO
    if report["speedup"] < floor:
        return (
            f"sweep {report['sweep']!r} speedup {report['speedup']:.2f}x fell"
            f" below {floor:.2f}x (half the committed baseline"
            f" {reference['speedup']:.2f}x)"
        )
    return None


def load_baseline(path: str) -> Optional[Dict[str, object]]:
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def write_report(
    path: str, report: Dict[str, object], baseline: Optional[Dict[str, object]]
) -> Dict[str, object]:
    """Merge ``report`` into the baseline file's ``sweeps`` map and write.

    Other sweeps' entries survive, so quick CI runs do not clobber the
    committed reference numbers.
    """
    merged: Dict[str, object] = {
        "benchmark": "dse_sweep",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "sweeps": dict((baseline or {}).get("sweeps", {})),
    }
    merged["sweeps"][report["sweep"]] = report
    with open(path, "w") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return merged


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="bench_dse", description="Benchmark the DSE evaluation engine"
    )
    parser.add_argument("--size", type=int, default=8, help="per-index bound")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--jobs", type=int, default=0,
        help="worker processes for the parallel leg (0 = one per CPU)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small sweep, one repeat (the CI smoke configuration)",
    )
    parser.add_argument("-o", "--output", default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    baseline = load_baseline(args.output)
    report = run_bench(
        size=args.size, seed=args.seed, repeats=args.repeats,
        jobs=args.jobs, quick=args.quick,
    )
    failure = check_regression(report, baseline)
    write_report(args.output, report, baseline)

    print(
        f"sweep={report['sweep']} points={report['points']}"
        f" serial={report['serial_uncached_s'] * 1e3:.0f}ms"
        f" cached={report['serial_cached_s'] * 1e3:.0f}ms"
        f" parallel={report['parallel_cached_s'] * 1e3:.0f}ms"
        f" (jobs={report['parallel_jobs']})"
    )
    print(
        f"speedup: cached {report['speedup_cached']:.2f}x,"
        f" parallel {report['speedup_parallel']:.2f}x,"
        f" best {report['speedup']:.2f}x;"
        f" results identical: {report['results_identical']}"
    )
    print(f"wrote {args.output}")
    if failure is not None:
        print(f"REGRESSION: {failure}")
        return 1
    return 0
