"""Multi-benchmark harness for the evaluation fast paths.

The benchmark families, each recording an entry in ``BENCH_dse.json``'s
``sweeps`` map and each gated by :func:`check_regression`:

* **dse** (``reference``/``quick``) -- the original wall-clock sweep:
  serial uncached vs cached vs parallel;
* **membuf / dma / merger** -- micro-sweeps of the simulator fast
  paths.  Their "speedups" are *model-cycle ratios* (pipelined vs
  scalar buffer reads, 16-deep vs 1-deep DMA on a pointer chase,
  row-partitioned vs flattened merging), fully deterministic and
  machine-independent, so the CI gate on them is exact rather than
  statistical;
* **kernel_reference** -- scalar reference interpreter vs the
  trace-compiled batched kernel (:mod:`repro.sim.kernel`) on the same
  workload; byte-identical outputs required, gated both relatively and
  by the absolute :data:`KERNEL_MIN_SPEEDUP` floor;
* **suite_resnet50** -- cold vs warm ``repro sweep`` in two fresh
  subprocesses sharing one :class:`~repro.exec.store.DiskStore` root:
  the measured value is what the persistent tier buys a repeat
  invocation, and the gate also requires byte-identical rows;
* **autotune_resnet50** -- fixed-design sweep vs warm-cache per-layer
  autotuning; the speedup is the deterministic aggregate-cycle ratio,
  gated at >= 1.0 (the fixed design is always a candidate, so losing to
  it is a selection bug) plus run-to-run identical winner rows;
* **autotune_halving** -- successive-halving vs exhaustive (``eta=1``)
  autotuning over the *widened* design space on three suites; the
  speedup is the worst-suite full-fidelity evaluations-saved ratio,
  gated by the absolute :data:`HALVING_MIN_SPEEDUP` floor, plus
  never-worse-than-exhaustive aggregate cycles on every suite and
  byte-identical winner rows + rung tallies across two fresh
  subprocesses sharing one disk-store root.

Speedups, not absolute times, are the regression currency: absolute
wall-clock shifts with the machine, but "the cache makes the sweep N x
faster" is a property of the code.  :func:`check_regression` fails when
the measured speedup drops below half of the committed baseline's.

Run via ``python -m repro bench`` or ``python benchmarks/bench_dse.py``.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Callable, Dict, List, Optional

from ..core.balancing import LoadBalancingScheme
from ..core.expr import Bounds
from ..core.sparsity import SparsityStructure
from .cache import CompileCache
from .fingerprint import tensor_signature

#: A sweep regresses when its speedup falls below this fraction of the
#: committed baseline's speedup (i.e. more than 2x slower, relatively).
REGRESSION_RATIO = 0.5

DEFAULT_OUTPUT = "BENCH_dse.json"


def _reference_sweep(size: int, seed: int):
    """The CLI's default matmul sweep: 4 transforms x 4 sparsities x 2
    balancings, minus duplicates the cache is expected to exploit."""
    from ..cli import SPARSITIES, TRANSFORMS, _random_tensors
    from ..core import matmul_spec
    from ..core.balancing import row_shift_scheme

    spec = matmul_spec()
    bounds = Bounds({name: size for name in spec.index_names})
    tensors = _random_tensors(spec, size, seed)
    sparsities = {"dense": SparsityStructure()}
    for name, factory in SPARSITIES.items():
        if factory is not None:
            sparsities[name] = factory(spec)
    return dict(
        spec=spec,
        bounds=bounds,
        tensors=tensors,
        transforms={name: factory() for name, factory in TRANSFORMS.items()},
        sparsities=sparsities,
        balancings={
            "none": LoadBalancingScheme(),
            "row-shift": row_shift_scheme(size // 2),
        },
    )


def _time(fn: Callable[[], object], repeats: int) -> Dict[str, object]:
    """Best-of-``repeats`` wall clock; the minimum is the least noisy
    estimator for a deterministic workload."""
    samples: List[float] = []
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        samples.append(time.perf_counter() - start)
    return {"best_s": min(samples), "samples_s": samples, "value": value}


def _point_signature(result) -> List[tuple]:
    return [
        (p.name, p.cycles, round(p.utilization, 12), round(p.area_um2, 6))
        for p in result.points
    ]


def run_bench(
    size: int = 8,
    seed: int = 0,
    repeats: int = 3,
    jobs: int = 0,
    quick: bool = False,
) -> Dict[str, object]:
    """Benchmark the reference sweep; returns the report dict.

    ``quick`` shrinks the workload (smaller bounds, one repeat) for CI
    smoke runs; the speedup ratio is noisier but still detects
    an order-of-magnitude fast-path breakage.
    """
    from ..dse.explorer import explore

    if quick:
        size = min(size, 6)
        repeats = 1

    sweep = _reference_sweep(size, seed)
    kwargs = dict(
        transforms=sweep["transforms"],
        sparsities=sweep["sparsities"],
        balancings=sweep["balancings"],
    )
    spec, bounds, tensors = sweep["spec"], sweep["bounds"], sweep["tensors"]

    serial = _time(
        lambda: explore(spec, bounds, tensors, cache=False, **kwargs), repeats
    )
    cached = _time(
        lambda: explore(spec, bounds, tensors, cache=True, **kwargs), repeats
    )

    def _parallel():
        return explore(
            spec, bounds, tensors, cache=CompileCache(), jobs=jobs, **kwargs
        )

    parallel = _time(_parallel, repeats)

    baseline_sig = _point_signature(serial["value"])
    identical = (
        baseline_sig == _point_signature(cached["value"])
        == _point_signature(parallel["value"])
    )

    serial_s = serial["best_s"]
    cached_s = cached["best_s"]
    parallel_s = parallel["value"].report.jobs, parallel["best_s"]
    best_engine_s = min(cached_s, parallel_s[1])

    return {
        "sweep": "quick" if quick else "reference",
        "size": size,
        "seed": seed,
        "repeats": repeats,
        "points": len(serial["value"].points),
        "tensors": [list(sig) for sig in tensor_signature(tensors)],
        "serial_uncached_s": round(serial_s, 6),
        "serial_cached_s": round(cached_s, 6),
        "parallel_cached_s": round(parallel_s[1], 6),
        "parallel_jobs": parallel_s[0],
        "speedup_cached": round(serial_s / cached_s, 4),
        "speedup_parallel": round(serial_s / parallel_s[1], 4),
        "speedup": round(serial_s / best_engine_s, 4),
        "results_identical": identical,
        "cache": cached["value"].report.cache_stats.as_dict(),
    }


# ---------------------------------------------------------------------------
# Simulator micro-sweeps (deterministic model-cycle ratios)
# ---------------------------------------------------------------------------


def run_membuf_bench(rows: int = 32, cols: int = 32) -> Dict[str, object]:
    """Pipelined vs scalar buffer reads over one dense tile.

    The scalar path pays the full access latency per element; the
    pipelined stream overlaps it.  Both are closed-form properties of
    :class:`~repro.sim.membuf.MemBufSim`, so the ratio is exact.
    """
    import numpy as np

    from ..core.memspec import dense_matrix_buffer
    from ..sim.membuf import MemBufSim

    array = np.arange(rows * cols).reshape(rows, cols) + 1
    spec = dense_matrix_buffer("bench", rows, cols)

    scalar_sim = MemBufSim(spec)
    scalar_sim.load(array)
    cycle = scalar_sim.busy_until
    identical = True
    for r in range(rows):
        for c in range(cols):
            value, cycle = scalar_sim.read_element((r, c), cycle)
            if value != array[r, c]:
                identical = False
    scalar_cycles = cycle

    stream_sim = MemBufSim(spec)
    stream_sim.load(array)
    stream_cycles = stream_sim.stream_read(rows * cols, stream_sim.busy_until)

    return {
        "sweep": "membuf",
        "rows": rows,
        "cols": cols,
        "elements": rows * cols,
        "scalar_cycles": int(scalar_cycles),
        "stream_cycles": int(stream_cycles),
        "speedup": round(scalar_cycles / stream_cycles, 4),
        "results_identical": identical,
    }


def run_dma_bench(
    vector_count: int = 64, vector_bytes: int = 64, deep: int = 16
) -> Dict[str, object]:
    """1-deep vs 16-deep DMA on the OuterSPACE pointer chase.

    Section VI-C's fix: a deeper in-flight window overlaps independent
    requests around stalled pointer dependencies.  Cycle counts come
    from the deterministic :class:`~repro.sim.dma.DMASim` model.
    """
    from ..sim.dma import DMASim, pointer_chase_transfers
    from ..sim.dram import DRAMModel

    transfers = pointer_chase_transfers(vector_count, vector_bytes)
    shallow = DMASim(DRAMModel(), max_inflight=1).run(transfers)
    deep_result = DMASim(DRAMModel(), max_inflight=deep).run(transfers)

    return {
        "sweep": "dma",
        "vector_count": vector_count,
        "vector_bytes": vector_bytes,
        "max_inflight": deep,
        "shallow_cycles": int(shallow.total_cycles),
        "deep_cycles": int(deep_result.total_cycles),
        "speedup": round(shallow.total_cycles / deep_result.total_cycles, 4),
        "results_identical": shallow.bytes_moved == deep_result.bytes_moved,
    }


def run_merger_bench(max_rows: int = 48, seed: int = 7) -> Dict[str, object]:
    """Row-partitioned vs flattened merge throughput (Figure 18).

    One synthetic matrix per degree-distribution class; the recorded
    speedup is the geometric mean of the per-matrix relative
    throughputs, and determinism is checked by running the comparison
    twice.
    """
    import math

    from ..baselines.mergers import compare_mergers
    from ..workloads import SUITESPARSE_SET, synthesize

    chosen: Dict[str, str] = {}
    for info in SUITESPARSE_SET:
        chosen.setdefault(info.kind, info.name)

    per_matrix = {}
    identical = True
    for kind, name in sorted(chosen.items()):
        matrix = synthesize(name, max_rows=max_rows, seed=seed)
        first = compare_mergers(matrix, name=name)
        again = compare_mergers(matrix, name=name)
        if (first.flattened_epc, first.row_partitioned_epc) != (
            again.flattened_epc, again.row_partitioned_epc
        ):
            identical = False
        per_matrix[name] = {
            "class": kind,
            "flattened_epc": round(first.flattened_epc, 4),
            "row_partitioned_epc": round(first.row_partitioned_epc, 4),
            "relative": round(first.relative, 4),
        }

    geomean = math.exp(
        sum(math.log(entry["relative"]) for entry in per_matrix.values())
        / len(per_matrix)
    )
    return {
        "sweep": "merger",
        "max_rows": max_rows,
        "seed": seed,
        "matrices": per_matrix,
        "speedup": round(geomean, 4),
        "results_identical": identical,
    }


# ---------------------------------------------------------------------------
# Kernel bench (trace-compiled batched reference vs the scalar walker)
# ---------------------------------------------------------------------------

#: Absolute floor for the kernel bench: the batched replay must beat the
#: scalar interpreter by at least this factor, independent of any
#: committed baseline.  The acceptance criterion for the kernel path.
KERNEL_MIN_SPEEDUP = 2.0


def run_kernel_bench(
    size: int = 12, seed: int = 0, repeats: int = 3
) -> Dict[str, object]:
    """Scalar reference interpreter vs trace-compiled batched kernel.

    Every sparse ``SpatialArraySim.run`` funnels its functional outputs
    through the reference interpretation, so this ratio is what the
    kernel path buys sparse suite sweeps.  Both backends must produce
    byte-identical output arrays (``results_identical``), and the gate
    is twofold: the relative :data:`REGRESSION_RATIO` check against the
    committed baseline, plus the absolute :data:`KERNEL_MIN_SPEEDUP`
    floor carried in the report as ``min_speedup``.
    """
    import numpy as np

    from ..core.functionality import matmul_spec
    from ..sim.kernel import compile_kernel

    spec = matmul_spec()
    bounds = Bounds({name: size for name in spec.index_names})
    rng = np.random.default_rng(seed)
    tensors = {
        "A": rng.integers(-8, 8, (size, size)),
        "B": rng.integers(-8, 8, (size, size)),
    }
    kernel = compile_kernel(spec)
    if kernel is None:
        raise RuntimeError("matmul spec must be kernel-traceable")

    scalar = _time(
        lambda: spec.interpret(bounds, tensors, kernel=False), repeats
    )
    kernel.replay(bounds, tensors)  # warm the ufunc/compile machinery
    replay = _time(lambda: kernel.replay(bounds, tensors), repeats)

    scalar_out, kernel_out = scalar["value"], replay["value"]
    identical = set(scalar_out) == set(kernel_out) and all(
        scalar_out[name].dtype == kernel_out[name].dtype
        and scalar_out[name].shape == kernel_out[name].shape
        and scalar_out[name].tobytes() == kernel_out[name].tobytes()
        for name in scalar_out
    )
    scalar_s = scalar["best_s"]
    replay_s = max(replay["best_s"], 1e-9)
    return {
        "sweep": "kernel_reference",
        "size": size,
        "seed": seed,
        "repeats": repeats,
        "points": bounds.point_count(spec.index_names),
        "scalar_s": round(scalar_s, 6),
        "kernel_s": round(replay_s, 6),
        "speedup": round(scalar_s / replay_s, 4),
        "min_speedup": KERNEL_MIN_SPEEDUP,
        "results_identical": identical,
    }


# ---------------------------------------------------------------------------
# Autotune bench (what per-layer design selection buys over the fixed array)
# ---------------------------------------------------------------------------

#: Operand seed for the autotune bench -- the suite default, so the gate
#: compares the same workload the acceptance sweep runs.
DEFAULT_AUTOTUNE_SEED = 7


def run_autotune_bench(
    suite: str = "resnet50", cap: int = 8, seed: int = DEFAULT_AUTOTUNE_SEED
) -> Dict[str, object]:
    """Fixed-design sweep vs warm-cache autotune on aggregate cycles.

    The recorded speedup is ``fixed_total_cycles / autotuned_total_cycles``
    -- a deterministic model-cycle ratio, not wall clock -- and the gate
    requires it to be at least 1.0: the fixed baseline design is always
    on every layer's candidate list, so autotuning that loses to it is a
    selection bug.  Determinism is checked by autotuning twice against
    the same warm cache and requiring identical winner rows.
    """
    from .autotune import autotune_suite
    from .suite import build_suite, evaluate_suite

    cache = CompileCache()
    fixed = evaluate_suite(build_suite(suite, cap=cap, seed=seed), jobs=1, cache=cache)
    first = autotune_suite(
        build_suite(suite, cap=cap, seed=seed), objective="cycles",
        jobs=1, cache=cache,
    )
    again = autotune_suite(
        build_suite(suite, cap=cap, seed=seed), objective="cycles",
        jobs=1, cache=cache,
    )

    identical = first.rows == again.rows
    fixed_cycles = fixed.total_cycles
    tuned_cycles = first.total_cycles
    return {
        "sweep": f"autotune_{suite}",
        "suite": suite,
        "cap": cap,
        "seed": seed,
        "cases": len(first.decisions),
        "candidates_per_layer": len(first.combos),
        "fixed_cycles": int(fixed_cycles),
        "autotuned_cycles": int(tuned_cycles),
        "retuned_layers": first.retuned_layers,
        "speedup": round(fixed_cycles / max(tuned_cycles, 1), 4),
        "results_identical": identical,
        "beats_fixed": tuned_cycles <= fixed_cycles,
        "cache": cache.stats.as_dict(),
    }


# ---------------------------------------------------------------------------
# Halving bench (multi-fidelity pruning vs exhaustive full-fidelity search)
# ---------------------------------------------------------------------------

#: Absolute floor for the halving bench: on its worst suite, successive
#: halving must need at least this many times fewer full-fidelity
#: evaluations than the exhaustive (``eta=1``) autotuner over the same
#: widened space.  The acceptance criterion for the halving path.
HALVING_MIN_SPEEDUP = 3.0

#: Suites the halving gate runs on -- the dense CNN pair plus the
#: sparse SuiteSparse sweep, the three acceptance workloads.
HALVING_SUITES = ("resnet50", "alexnet", "suitesparse")


def run_halving_bench(
    suites=HALVING_SUITES, cap: int = 8, seed: int = DEFAULT_AUTOTUNE_SEED
) -> Dict[str, object]:
    """Successive-halving vs exhaustive autotuning over the widened space.

    Three gates, all deterministic:

    * **never worse** -- on every suite, the halving aggregate cycles
      must not exceed the ``eta=1`` run's (a single exact rung over the
      identical combo list, i.e. the exhaustive autotuner).  The fixed
      baseline survives every rung unconditionally, so a loss here is a
      pruning bug, not noise;
    * **evaluations saved** -- the worst-suite ratio of exhaustive to
      final-rung full-fidelity evaluations is the recorded speedup,
      gated by the absolute :data:`HALVING_MIN_SPEEDUP` floor;
    * **determinism** -- two fresh subprocesses running
      ``repro sweep resnet50 --halving --json`` against one shared
      disk-store root must produce byte-identical winner rows *and*
      rung tallies (in-process fallback: two cold-cache runs).
    """
    import tempfile

    from .halving import halving_autotune_suite
    from .suite import build_suite

    per_suite: Dict[str, Dict[str, object]] = {}
    halved_total = 0
    exhaustive_total = 0
    never_worse = True
    worst_saved = None
    for suite in suites:
        cache = CompileCache()
        halved = halving_autotune_suite(
            build_suite(suite, cap=cap, seed=seed), objective="cycles",
            eta=2, jobs=1, cache=cache,
        )
        exhaustive = halving_autotune_suite(
            build_suite(suite, cap=cap, seed=seed), objective="cycles",
            eta=1, jobs=1, cache=cache,
        )
        saved = halved.evaluations_saved
        worst_saved = saved if worst_saved is None else min(worst_saved, saved)
        halved_total += halved.total_cycles
        exhaustive_total += exhaustive.total_cycles
        if halved.total_cycles > exhaustive.total_cycles:
            never_worse = False
        per_suite[suite] = {
            "cases": len(halved.decisions),
            "combos": len(halved.combos),
            "halving_cycles": int(halved.total_cycles),
            "exhaustive_cycles": int(exhaustive.total_cycles),
            "full_fidelity_evaluations": halved.full_fidelity_evaluations,
            "exhaustive_evaluations": halved.exhaustive_evaluations,
            "evaluations_saved": round(saved, 4),
            "rungs": [stats.as_dict() for stats in halved.rungs],
            "never_worse": halved.total_cycles <= exhaustive.total_cycles,
        }

    determinism_suite = suites[0]
    mode = "subprocess"
    with tempfile.TemporaryDirectory(prefix="stellar-bench-") as cache_dir:
        first = _sweep_subprocess(
            determinism_suite, cap, seed, cache_dir, extra_args=("--halving",)
        )
        second = (
            _sweep_subprocess(
                determinism_suite, cap, seed, cache_dir,
                extra_args=("--halving",),
            )
            if first is not None
            else None
        )
    if first is None or second is None:
        mode = "in-process"
        first = halving_autotune_suite(
            build_suite(determinism_suite, cap=cap, seed=seed),
            objective="cycles", eta=2, jobs=1, cache=CompileCache(),
        ).to_dict()
        second = halving_autotune_suite(
            build_suite(determinism_suite, cap=cap, seed=seed),
            objective="cycles", eta=2, jobs=1, cache=CompileCache(),
        ).to_dict()
    identical = (
        first["rows"] == second["rows"] and first["rungs"] == second["rungs"]
    )

    return {
        "sweep": "autotune_halving",
        "suites": per_suite,
        "cap": cap,
        "seed": seed,
        "eta": 2,
        "determinism_suite": determinism_suite,
        "mode": mode,
        "autotuned_cycles": int(halved_total),
        "fixed_cycles": int(exhaustive_total),
        "beats_fixed": never_worse,
        "speedup": round(worst_saved or 0.0, 4),
        "min_speedup": HALVING_MIN_SPEEDUP,
        "results_identical": identical,
    }


# ---------------------------------------------------------------------------
# Suite warm-start bench (the persistent tier's payoff)
# ---------------------------------------------------------------------------


def _suite_rows(payload: Dict[str, object]) -> List[dict]:
    return list(payload.get("rows", []))


def _sweep_subprocess(
    suite: str, cap: int, seed: int, cache_dir: str, extra_args=()
):
    """One ``repro sweep --json`` run in a fresh interpreter; returns the
    parsed payload, or None when subprocesses are unavailable."""
    import os
    import subprocess
    import sys

    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["STELLAR_CACHE_DIR"] = cache_dir
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_root, env.get("PYTHONPATH")) if p
    )
    try:
        completed = subprocess.run(
            [
                sys.executable, "-m", "repro", "sweep", suite,
                "--cap", str(cap), "--seed", str(seed), "--json",
                *extra_args,
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=600,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    try:
        return json.loads(completed.stdout)
    except ValueError:
        return None


def run_suite_bench(
    suite: str = "resnet50", cap: int = 8, seed: int = 0
) -> Dict[str, object]:
    """Cold vs warm suite sweep against one fresh disk-store root.

    Preferred measurement: two fresh subprocesses (true cross-process
    reuse, the acceptance scenario).  Sandboxes that cannot spawn fall
    back to two in-process evaluations against the same store root --
    same cache mechanics, weaker isolation.
    """
    import tempfile

    with tempfile.TemporaryDirectory(prefix="stellar-bench-") as cache_dir:
        cold = _sweep_subprocess(suite, cap, seed, cache_dir)
        warm = (
            _sweep_subprocess(suite, cap, seed, cache_dir)
            if cold is not None
            else None
        )
        mode = "subprocess"
        if cold is None or warm is None:
            from .cache import persistent_compile_cache
            from .suite import build_suite, evaluate_suite

            mode = "in-process"
            built = build_suite(suite, cap=cap, seed=seed)
            cold = evaluate_suite(
                built, jobs=1, cache=persistent_compile_cache(cache_dir)
            ).to_dict()
            warm = evaluate_suite(
                built, jobs=1, cache=persistent_compile_cache(cache_dir)
            ).to_dict()

    cold_s = float(cold["aggregates"]["elapsed_s"])
    warm_s = max(float(warm["aggregates"]["elapsed_s"]), 1e-9)
    warm_store = warm.get("store") or {}
    return {
        "sweep": f"suite_{suite}",
        "suite": suite,
        "cap": cap,
        "seed": seed,
        "mode": mode,
        "cases": cold["aggregates"]["cases"],
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "warm_disk_hit_rate": warm_store.get("hit_rate", 0.0),
        "speedup": round(cold_s / warm_s, 4),
        "results_identical": _suite_rows(cold) == _suite_rows(warm),
    }


def check_regression(
    report: Dict[str, object], baseline: Optional[Dict[str, object]]
) -> Optional[str]:
    """None when healthy; otherwise a human-readable failure reason.

    Compares speedup *ratios* against the committed baseline for the
    same sweep name, so the check is machine-independent; also fails
    outright if the engine's results diverged from the serial path.
    """
    if not report.get("results_identical", False):
        return "engine results diverged from the serial uncached sweep"
    min_speedup = report.get("min_speedup")
    if min_speedup is not None and report["speedup"] < min_speedup:
        return (
            f"sweep {report['sweep']!r} speedup {report['speedup']:.2f}x fell"
            f" below the absolute floor {min_speedup:.2f}x"
        )
    if report.get("beats_fixed") is False:
        return (
            f"sweep {report['sweep']!r}: autotuned aggregate cycles"
            f" ({report.get('autotuned_cycles')}) exceed the fixed-design"
            f" sweep's ({report.get('fixed_cycles')})"
        )
    if baseline is None:
        return None
    reference = baseline.get("sweeps", {}).get(report["sweep"])
    if reference is None:
        return None
    floor = reference["speedup"] * REGRESSION_RATIO
    if report["speedup"] < floor:
        return (
            f"sweep {report['sweep']!r} speedup {report['speedup']:.2f}x fell"
            f" below {floor:.2f}x (half the committed baseline"
            f" {reference['speedup']:.2f}x)"
        )
    return None


def load_baseline(path: str) -> Optional[Dict[str, object]]:
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def write_report(
    path: str,
    reports,
    baseline: Optional[Dict[str, object]],
) -> Dict[str, object]:
    """Merge one or more reports into the baseline's ``sweeps`` map.

    Other sweeps' entries survive, so quick CI runs do not clobber the
    committed reference numbers.  Accepts a single report dict or a
    list of them.
    """
    if isinstance(reports, dict):
        reports = [reports]
    merged: Dict[str, object] = {
        "benchmark": "dse_sweep",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "sweeps": dict((baseline or {}).get("sweeps", {})),
    }
    for report in reports:
        merged["sweeps"][report["sweep"]] = report
    with open(path, "w") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return merged


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="bench_dse", description="Benchmark the DSE evaluation engine"
    )
    parser.add_argument("--size", type=int, default=8, help="per-index bound")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--jobs", type=int, default=0,
        help="worker processes for the parallel leg (0 = one per CPU)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small sweep, one repeat (the CI smoke configuration)",
    )
    parser.add_argument(
        "--only",
        action="append",
        choices=[
            "dse", "membuf", "dma", "merger", "kernel", "suite",
            "autotune", "halving",
        ],
        default=None,
        metavar="BENCH",
        help="run only this benchmark family (repeatable; default all)",
    )
    parser.add_argument("-o", "--output", default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)
    selected = set(
        args.only
        or [
            "dse", "membuf", "dma", "merger", "kernel", "suite",
            "autotune", "halving",
        ]
    )

    baseline = load_baseline(args.output)
    reports: List[Dict[str, object]] = []

    if "dse" in selected:
        report = run_bench(
            size=args.size, seed=args.seed, repeats=args.repeats,
            jobs=args.jobs, quick=args.quick,
        )
        reports.append(report)
        print(
            f"sweep={report['sweep']} points={report['points']}"
            f" serial={report['serial_uncached_s'] * 1e3:.0f}ms"
            f" cached={report['serial_cached_s'] * 1e3:.0f}ms"
            f" parallel={report['parallel_cached_s'] * 1e3:.0f}ms"
            f" (jobs={report['parallel_jobs']})"
        )
        print(
            f"speedup: cached {report['speedup_cached']:.2f}x,"
            f" parallel {report['speedup_parallel']:.2f}x,"
            f" best {report['speedup']:.2f}x;"
            f" results identical: {report['results_identical']}"
        )
    if "membuf" in selected:
        reports.append(run_membuf_bench())
    if "dma" in selected:
        reports.append(run_dma_bench())
    if "merger" in selected:
        reports.append(run_merger_bench())
    if "kernel" in selected:
        reports.append(run_kernel_bench(seed=args.seed))
    if "suite" in selected:
        reports.append(run_suite_bench(seed=args.seed))
    if "autotune" in selected:
        reports.append(run_autotune_bench())
    if "halving" in selected:
        reports.append(run_halving_bench())

    for report in reports:
        if report["sweep"] in ("quick", "reference"):
            continue
        print(
            f"sweep={report['sweep']} speedup={report['speedup']:.2f}x"
            f" results identical: {report['results_identical']}"
        )

    failures = [
        failure
        for failure in (check_regression(r, baseline) for r in reports)
        if failure is not None
    ]
    write_report(args.output, reports, baseline)
    print(f"wrote {args.output}")
    for failure in failures:
        print(f"REGRESSION: {failure}")
    return 1 if failures else 0
