"""Canonical content hashing of design-axis objects.

Every cache in :mod:`repro.exec` is keyed by *content*, not identity:
two independently constructed but structurally identical specs (or
bounds, transforms, sparsity structures, balancing schemes, tensors)
must produce the same key, in every process, under hash randomization.
``repr``-based or ``pickle``-based keys fail that bar -- sets serialize
in hash order and object graphs embed memo indices -- so this module
walks values structurally and streams a canonical byte encoding into
SHA-256:

* primitives are tagged with their type (``1`` and ``1.0`` and ``True``
  hash differently);
* dict entries and set elements are ordered by the digest of their
  canonical encoding, never by insertion or hash order;
* numpy arrays contribute dtype, shape, and C-contiguous raw bytes;
* arbitrary objects contribute their class identity plus their
  ``__dict__`` / ``__slots__`` attributes, recursively;
* cyclic references encode as back-references to the first visit.

Objects that carry behavior rather than data (functions, modules, open
files) raise :class:`FingerprintError`; callers treat the value as
uncacheable rather than guessing at equality.

Content keys identify *inputs*; when a cached value also depends on the
generation of the code that produced it, the producing stage folds a
semantic version constant into its key parts --
``PASS_PIPELINE_VERSION`` for ``lower`` products and
:data:`repro.sim.kernel.KERNEL_VERSION` for ``sim.kernel`` traces --
so persisted entries from an older generation become unreachable
instead of answering with stale behavior.
"""

from __future__ import annotations

import enum
import hashlib
import types
from fractions import Fraction
from typing import Tuple

import numpy as np

#: Version of the canonical encoding itself.  Any change to the byte
#: stream this module produces -- new tags, different ordering, a hash
#: swap -- MUST bump this: the disk store folds it into its layout so
#: entries keyed under an old encoding become unreachable instead of
#: silently colliding or missing.  The golden-digest tests in
#: ``tests/exec/test_fingerprint.py`` pin concrete digests and fail on
#: accidental drift.
FINGERPRINT_VERSION = 1

_PRIMITIVE_TAGS = {
    type(None): b"N",
    bool: b"b",
    int: b"i",
    float: b"f",
    complex: b"c",
    str: b"s",
    bytes: b"y",
}


class FingerprintError(TypeError):
    """Raised when a value has no canonical content encoding."""


def fingerprint(*values: object) -> str:
    """The SHA-256 hex digest of the canonical encoding of ``values``.

    Multiple arguments hash as a tuple, so
    ``fingerprint(spec, bounds) != fingerprint((spec, bounds), None)``
    style ambiguities cannot arise at call sites.
    """
    hasher = hashlib.sha256()
    _feed(hasher, values if len(values) != 1 else values[0], {})
    return hasher.hexdigest()


def _feed(hasher, value: object, visiting: dict) -> None:
    """Stream the canonical encoding of ``value`` into ``hasher``."""
    tag = _PRIMITIVE_TAGS.get(type(value))
    if tag is not None:
        payload = value if isinstance(value, bytes) else repr(value).encode()
        hasher.update(tag)
        hasher.update(str(len(payload)).encode())
        hasher.update(b":")
        hasher.update(payload)
        return

    marker = visiting.get(id(value))
    if marker is not None:
        hasher.update(b"R")
        hasher.update(str(marker).encode())
        return
    visiting[id(value)] = len(visiting)
    try:
        _feed_composite(hasher, value, visiting)
    finally:
        del visiting[id(value)]


def _feed_composite(hasher, value: object, visiting: dict) -> None:
    if isinstance(value, (tuple, list)):
        hasher.update(b"T(" if isinstance(value, tuple) else b"L(")
        for item in value:
            _feed(hasher, item, visiting)
        hasher.update(b")")
        return
    if isinstance(value, dict):
        hasher.update(b"D(")
        for key_digest, value_digest in sorted(
            (_digest(key, visiting), _digest(item, visiting))
            for key, item in value.items()
        ):
            hasher.update(key_digest)
            hasher.update(value_digest)
        hasher.update(b")")
        return
    if isinstance(value, (set, frozenset)):
        hasher.update(b"S(")
        for digest in sorted(_digest(item, visiting) for item in value):
            hasher.update(digest)
        hasher.update(b")")
        return
    if isinstance(value, Fraction):
        hasher.update(b"Q")
        hasher.update(f"{value.numerator}/{value.denominator}".encode())
        return
    if isinstance(value, np.ndarray):
        hasher.update(b"A")
        hasher.update(str(value.dtype).encode())
        hasher.update(str(value.shape).encode())
        hasher.update(np.ascontiguousarray(value).tobytes())
        return
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        _feed(hasher, value.item(), visiting)
        return
    if isinstance(value, enum.Enum):
        # Members are identity constants; their state would drag in the
        # enum class itself.  Class identity plus member name is canonical.
        cls = type(value)
        hasher.update(b"E<")
        hasher.update(f"{cls.__module__}.{cls.__qualname__}.{value.name}".encode())
        hasher.update(b">")
        return
    _feed_object(hasher, value, visiting)


def _feed_object(hasher, value: object, visiting: dict) -> None:
    cls = type(value)
    if isinstance(
        value,
        (
            types.FunctionType,
            types.BuiltinFunctionType,
            types.MethodType,
            types.LambdaType,
            types.GeneratorType,
            types.ModuleType,
            type,
        ),
    ):
        raise FingerprintError(
            f"cannot fingerprint {value!r}: behavior, not data"
        )
    if not hasattr(value, "__dict__") and not hasattr(cls, "__slots__"):
        raise FingerprintError(
            f"cannot fingerprint {cls.__module__}.{cls.__qualname__} instances:"
            " no attribute state to encode"
        )
    hasher.update(b"O<")
    hasher.update(f"{cls.__module__}.{cls.__qualname__}".encode())
    hasher.update(b">(")
    for name, attr in sorted(_object_state(value)):
        hasher.update(name.encode())
        hasher.update(b"=")
        _feed(hasher, attr, visiting)
    hasher.update(b")")


def _object_state(value: object):
    """All (name, value) attribute pairs, from ``__dict__`` and slots."""
    if hasattr(value, "__dict__"):
        yield from vars(value).items()
    for cls in type(value).__mro__:
        for name in getattr(cls, "__slots__", ()):
            if name in ("__dict__", "__weakref__"):
                continue
            try:
                yield name, getattr(value, name)
            except AttributeError:
                continue  # declared but never assigned


def _digest(value: object, visiting: dict) -> bytes:
    sub = hashlib.sha256()
    _feed(sub, value, visiting)
    return sub.digest()


def tensor_signature(tensors) -> Tuple[Tuple[str, str, Tuple[int, ...]], ...]:
    """A cheap human-readable shape summary (name, dtype, shape) used in
    benchmark reports; the cache itself keys on full array contents."""
    return tuple(
        (name, str(np.asarray(arr).dtype), tuple(np.asarray(arr).shape))
        for name, arr in sorted(tensors.items())
    )
