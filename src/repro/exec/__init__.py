"""repro.exec: the parallel + cached design-space evaluation engine.

Three cooperating pieces (see DESIGN.md's "Performance engineering"):

* :mod:`repro.exec.fingerprint` -- canonical content hashing of design
  axes (specs, bounds, transforms, sparsity, balancing, tensors), the
  keying primitive every cache below is built on;
* :mod:`repro.exec.cache` -- :class:`CompileCache`, a content-addressed
  memo store for :func:`~repro.core.compiler.compile_design` /
  :func:`~repro.rtl.lowering.lower_design` products and their
  intermediate stages (elaboration, legality checking, pruning,
  simulator sub-products), so sweeps stop re-paying compilation for
  configurations that share axes;
* :mod:`repro.exec.engine` -- deterministic point evaluation for
  :func:`repro.dse.explore`, inline or fanned out over a process pool,
  with per-worker profiler/tracer/metric state merged back into the
  parent's observability registry.

Persistence and batching layers on top (this PR's subsystem):

* :mod:`repro.exec.store` -- :class:`DiskStore`, the atomic, versioned,
  content-addressed disk tier behind :class:`CompileCache`, so compile
  and simulation products survive the process;
* :mod:`repro.exec.shm` -- :class:`SharedTensorPool`, shared-memory
  operand transport for the process pool (tensors published once per
  sweep instead of re-pickled per task);
* :mod:`repro.exec.suite` -- whole-workload-table evaluation
  (``python -m repro sweep resnet50``, or any user table via
  ``repro sweep path/to/table.json``), routing every layer through
  :func:`evaluate_sweep` as one candidate list;
* :mod:`repro.exec.autotune` -- per-layer Pareto autotuning
  (``repro sweep <suite> --autotune``): every layer crossed with the
  DSE design space, ranked by Pareto frontier under a configurable
  objective (cycles / energy / EDP), winners pinned deterministically.

:mod:`repro.exec.bench` records the wall-clock trajectory of a fixed
reference sweep into ``BENCH_dse.json`` (``python -m repro bench``).
"""

from .autotune import OBJECTIVES, AutotuneResult, autotune_suite, select_winner
from .cache import (
    CacheStats,
    CompileCache,
    get_compile_cache,
    persistent_compile_cache,
)
from .engine import EngineReport, ResidentPool, evaluate_sweep, resolve_jobs
from .fingerprint import FINGERPRINT_VERSION, FingerprintError, fingerprint
from .shm import SharedTensorPool, ShmUnavailable, shared_memory_available
from .store import DiskStore, DiskStoreStats, default_cache_dir
from .suite import (
    Suite,
    SuiteCase,
    SuiteError,
    SuiteResult,
    build_suite,
    build_table_suite,
    evaluate_suite,
    format_rows,
    load_workload_table,
    suite_names,
)

__all__ = [
    "AutotuneResult",
    "CacheStats",
    "CompileCache",
    "DiskStore",
    "DiskStoreStats",
    "EngineReport",
    "FINGERPRINT_VERSION",
    "FingerprintError",
    "OBJECTIVES",
    "ResidentPool",
    "SharedTensorPool",
    "ShmUnavailable",
    "Suite",
    "SuiteCase",
    "SuiteError",
    "SuiteResult",
    "autotune_suite",
    "build_suite",
    "build_table_suite",
    "default_cache_dir",
    "evaluate_suite",
    "evaluate_sweep",
    "fingerprint",
    "format_rows",
    "get_compile_cache",
    "load_workload_table",
    "persistent_compile_cache",
    "resolve_jobs",
    "select_winner",
    "shared_memory_available",
    "suite_names",
]
