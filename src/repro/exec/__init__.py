"""repro.exec: the parallel + cached design-space evaluation engine.

Three cooperating pieces (see DESIGN.md's "Performance engineering"):

* :mod:`repro.exec.fingerprint` -- canonical content hashing of design
  axes (specs, bounds, transforms, sparsity, balancing, tensors), the
  keying primitive every cache below is built on;
* :mod:`repro.exec.cache` -- :class:`CompileCache`, a content-addressed
  memo store for :func:`~repro.core.compiler.compile_design` /
  :func:`~repro.rtl.lowering.lower_design` products and their
  intermediate stages (elaboration, legality checking, pruning,
  simulator sub-products), so sweeps stop re-paying compilation for
  configurations that share axes;
* :mod:`repro.exec.engine` -- deterministic point evaluation for
  :func:`repro.dse.explore`, inline or fanned out over a process pool,
  with per-worker profiler/tracer/metric state merged back into the
  parent's observability registry.

:mod:`repro.exec.bench` records the wall-clock trajectory of a fixed
reference sweep into ``BENCH_dse.json`` (``python -m repro bench``).
"""

from .cache import CacheStats, CompileCache
from .engine import EngineReport, evaluate_sweep, resolve_jobs
from .fingerprint import FingerprintError, fingerprint

__all__ = [
    "CacheStats",
    "CompileCache",
    "EngineReport",
    "FingerprintError",
    "evaluate_sweep",
    "fingerprint",
    "resolve_jobs",
]
