"""Content-addressed memoization of compilation and evaluation products.

A :class:`CompileCache` is the single memo store the evaluation engine
threads through the stack.  It operates at two granularities:

* **whole products** -- :meth:`compile` and :meth:`lower` memoize
  finished :class:`~repro.core.compiler.CompiledDesign` objects and RTL
  netlists on the full design key ``(spec, bounds, transform, sparsity,
  balancing, membufs, element_bits)``; a hit skips the entire pipeline,
  including the static-analysis gates, which already passed when the
  product was first built;
* **stages** -- :meth:`memo` memoizes intermediate results on the exact
  subset of axes they depend on, so a sweep over the transform x
  sparsity x balancing cross product elaborates the iteration space
  once per ``(spec, bounds)``, legality-checks the transform once per
  ``(spec, bounds, transform)``, prunes once per ``(spec, bounds,
  sparsity, balancing)``, and compresses sparse workloads once per
  ``(spec, bounds, sparsity, tensors)``.

Keys come from :func:`repro.exec.fingerprint.fingerprint` -- canonical
content hashes, stable across processes -- with a per-object identity
memo in front so the same spec object is only walked once per cache
lifetime.  Values that cannot be fingerprinted bypass the cache and are
counted as ``uncacheable`` rather than failing the build.

Cached values are returned *shared*: callers must treat compiled
designs, iteration spaces, and simulation results obtained through a
cache as immutable.  Everything in the compiler pipeline already does.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple, TypeVar

from ..obs.metrics import MetricsRegistry
from .fingerprint import FingerprintError, fingerprint

T = TypeVar("T")

_MISSING = object()


class CacheStats:
    """Hit/miss/uncacheable tallies, total and per stage.

    ``disk_hits`` counts the subset of ``hits`` that were answered by
    the persistent tier (a memory miss rescued by the
    :class:`~repro.exec.store.DiskStore`) rather than the in-process
    memo.
    """

    __slots__ = ("hits", "misses", "uncacheable", "disk_hits", "by_stage")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.uncacheable = 0
        self.disk_hits = 0
        self.by_stage: Dict[str, Tuple[int, int]] = {}

    def record(self, stage: str, hit: bool) -> None:
        hits, misses = self.by_stage.get(stage, (0, 0))
        if hit:
            self.hits += 1
            self.by_stage[stage] = (hits + 1, misses)
        else:
            self.misses += 1
            self.by_stage[stage] = (hits, misses + 1)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "uncacheable": self.uncacheable,
            "disk_hits": self.disk_hits,
            "hit_rate": round(self.hit_rate, 4),
            "by_stage": {
                stage: {"hits": h, "misses": m}
                for stage, (h, m) in sorted(self.by_stage.items())
            },
        }

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses},"
            f" uncacheable={self.uncacheable})"
        )


class CompileCache:
    """Two-tier LRU memo store for compile/lower/evaluate products.

    ``max_entries`` bounds the number of memoized values (least recently
    used evicted first); the identity->fingerprint memo is bounded by
    the same limit.  Hit/miss counts are mirrored into ``registry`` as
    ``exec.cache.{hits,misses,uncacheable,disk_hits}`` counters so they
    merge across worker processes with the rest of the observability
    state.

    ``store`` (a :class:`~repro.exec.store.DiskStore`) adds the
    persistent tier: a memory miss consults the disk before building,
    and every freshly built value is written back, so content keys
    survive the process.  The disk is strictly behind the memory tier --
    a disk hit is promoted into memory and evicting it from memory does
    not touch the disk copy.
    """

    DEFAULT_MAX_ENTRIES = 1024

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        store=None,
    ):
        if max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self.registry = MetricsRegistry()
        self._hits = self.registry.counter("exec.cache.hits")
        self._misses = self.registry.counter("exec.cache.misses")
        self._uncacheable = self.registry.counter("exec.cache.uncacheable")
        self._disk_hits = self.registry.counter("exec.cache.disk_hits")
        self._entries: "OrderedDict[Tuple[str, str], object]" = OrderedDict()
        self._fp_memo: "OrderedDict[int, Tuple[object, str]]" = OrderedDict()
        self.store = store
        if store is not None:
            store.attach_registry(self.registry)

    # -- keying ---------------------------------------------------------

    def fingerprint_of(self, value: object) -> str:
        """Content fingerprint with an identity fast path.

        The memo holds a strong reference to each walked object, so a
        recycled ``id`` can never alias a dead object's fingerprint.
        """
        cached = self._fp_memo.get(id(value))
        if cached is not None and cached[0] is value:
            self._fp_memo.move_to_end(id(value))
            return cached[1]
        digest = fingerprint(value)
        self._fp_memo[id(value)] = (value, digest)
        self._fp_memo.move_to_end(id(value))
        while len(self._fp_memo) > self.max_entries:
            self._fp_memo.popitem(last=False)
        return digest

    def key(self, parts: Tuple[object, ...]) -> str:
        return fingerprint(tuple(self.fingerprint_of(part) for part in parts))

    # -- the generic memo -----------------------------------------------

    def memo(self, stage: str, parts: Tuple[object, ...], build: Callable[[], T]) -> T:
        """Return the memoized value for ``(stage, parts)``, building it
        on first use.  Unfingerprintable parts bypass the cache --
        including the disk tier, so values without a canonical content
        key are never persisted under a guessed one."""
        try:
            digest = self.key(parts)
        except FingerprintError:
            self.stats.uncacheable += 1
            self._uncacheable.inc()
            return build()
        entry_key = (stage, digest)
        cached = self._entries.get(entry_key, _MISSING)
        if cached is not _MISSING:
            self._entries.move_to_end(entry_key)
            self.stats.record(stage, hit=True)
            self._hits.inc()
            return cached
        if self.store is not None:
            found, value = self.store.get(stage, digest)
            if found:
                self.stats.record(stage, hit=True)
                self.stats.disk_hits += 1
                self._hits.inc()
                self._disk_hits.inc()
                self._insert(entry_key, value)
                return value
        value = build()
        self.stats.record(stage, hit=False)
        self._misses.inc()
        self._insert(entry_key, value)
        if self.store is not None:
            self.store.put(stage, digest, value)
        return value

    def _insert(self, entry_key: Tuple[str, str], value: object) -> None:
        self._entries[entry_key] = value
        self._entries.move_to_end(entry_key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    # -- whole-product façades ------------------------------------------

    def compile(
        self,
        spec,
        bounds,
        transform,
        sparsity=None,
        balancing=None,
        membufs=None,
        element_bits: int = 32,
        check: bool = True,
    ):
        """Memoized :func:`repro.core.compiler.compile_design`.

        A hit returns the shared compiled design without re-running any
        pipeline stage or analysis gate; a miss compiles with this cache
        threaded through, so the stage memos fill in too.
        """
        from ..core.compiler import compile_design

        return self.memo(
            "compile",
            (spec, bounds, transform, sparsity, balancing,
             dict(membufs or {}), element_bits, check),
            lambda: compile_design(
                spec,
                bounds,
                transform,
                sparsity=sparsity,
                balancing=balancing,
                membufs=membufs,
                element_bits=element_bits,
                check=check,
                cache=self,
            ),
        )

    def lower(
        self,
        design,
        max_inflight_dma: int = 1,
        check: bool = True,
        opt_level: int = 0,
    ):
        """Memoized :func:`repro.rtl.lowering.lower_design`.

        Keyed on the design axes rather than the compiled object's
        identity, so recompiling an identical design still hits.  The
        optimization rung and the pass pipeline's semantic version are
        both key axes: netlists optimized at different rungs -- or by a
        different pipeline generation -- never answer for each other.
        """
        from ..rtl.lowering import lower_design
        from ..rtl.passes import PASS_PIPELINE_VERSION

        return self.memo(
            "lower",
            (design.spec, design.bounds, design.transform, design.sparsity,
             design.balancing, design.membufs, design.element_bits,
             max_inflight_dma, check, opt_level,
             PASS_PIPELINE_VERSION if opt_level else 0),
            lambda: lower_design(
                design,
                max_inflight_dma=max_inflight_dma,
                check=check,
                opt_level=opt_level,
            ),
        )

    def kernel(self, spec):
        """Memoized :func:`repro.sim.kernel.compile_kernel`.

        The tracer's semantic version is a key axis (mirroring
        ``PASS_PIPELINE_VERSION`` on :meth:`lower`), so kernels traced
        by different generations of ``repro.sim.kernel`` never answer
        for each other across the persistent store.  A ``None`` value
        -- the spec fell back to the scalar interpreter -- is cached
        too: re-deciding the fallback is as wasteful as re-tracing.
        """
        from ..sim.kernel import KERNEL_VERSION, compile_kernel

        return self.memo(
            "sim.kernel",
            (spec, KERNEL_VERSION),
            lambda: compile_kernel(spec),
        )

    # -- maintenance ----------------------------------------------------

    def entries_by_stage(self) -> Dict[str, int]:
        """Live memory-tier entry counts per stage, sorted by stage name.

        The disk tier's counterpart is
        :meth:`repro.exec.store.DiskStore.stage_summary`; both feed the
        ``repro cache stats`` view of where the budget is going.
        """
        counts: Dict[str, int] = {}
        for stage, _digest in self._entries:
            counts[stage] = counts.get(stage, 0) + 1
        return dict(sorted(counts.items()))

    def clear(self) -> None:
        self._entries.clear()
        self._fp_memo.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"CompileCache({len(self._entries)}/{self.max_entries} entries,"
            f" {self.stats!r})"
        )


# ---------------------------------------------------------------------------
# The process-wide cache the CLI shares across commands
# ---------------------------------------------------------------------------

_global_cache: Optional[CompileCache] = None


def get_compile_cache() -> CompileCache:
    """The process-wide cache, created on first use."""
    global _global_cache
    if _global_cache is None:
        _global_cache = CompileCache()
    return _global_cache


def set_compile_cache(cache: Optional[CompileCache]) -> Optional[CompileCache]:
    """Install ``cache`` globally; returns the previous one for restore."""
    global _global_cache
    previous = _global_cache
    _global_cache = cache
    return previous


def persistent_compile_cache(
    root: Optional[str] = None,
    max_entries: int = CompileCache.DEFAULT_MAX_ENTRIES,
) -> CompileCache:
    """A cache backed by the default disk store.

    ``root`` overrides the store directory (else ``STELLAR_CACHE_DIR``
    then ``~/.cache/stellar-repro``); when persistence is disabled via
    the environment this degrades to a plain in-memory cache.
    """
    from .store import DiskStore

    return CompileCache(max_entries=max_entries, store=DiskStore.default(root))
