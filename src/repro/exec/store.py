"""Disk-backed persistence for :class:`~repro.exec.cache.CompileCache`.

A :class:`DiskStore` is the second tier behind the in-memory memo: a
content-addressed file store under ``~/.cache/stellar-repro`` (override
with ``STELLAR_CACHE_DIR``) that survives the process, so repeated CLI
invocations and CI runs warm-start instead of recompiling and
re-simulating designs whose content keys they have already paid for.

Design constraints, in order:

* **corruption is a miss, never a crash** -- every read validates a
  magic string, a schema stamp, and a SHA-256 payload checksum; any
  mismatch (truncated write, bit rot, a concurrent writer's leftovers,
  a hostile edit) deletes the entry and reports a miss;
* **writes are atomic** -- payloads land in a same-directory temp file
  and :func:`os.replace` into place, so concurrent readers and writers
  (the process pool's workers share one store) never observe a partial
  entry;
* **versioned** -- entries live under a directory stamped with
  :data:`SCHEMA_VERSION` plus the fingerprint algorithm's
  :data:`~repro.exec.fingerprint.FINGERPRINT_VERSION`; bumping either
  orphans every old entry (collected by GC) instead of deserializing
  stale IR into a newer pipeline;
* **numpy products are pickle-free** -- arrays and str->array mappings
  (simulator outputs, reference interpretations) serialize through the
  ``.npy``/``.npz`` formats with ``allow_pickle=False``; only composite
  compiler products (compiled designs, netlists, diagnostics) use
  pickle;
* **size-bounded** -- a byte budget (``STELLAR_CACHE_MAX_BYTES``,
  default 256 MiB) is enforced by a least-recently-*used* GC: reads
  bump an entry's mtime, eviction drops the stalest entries and any
  other-version directories first.

Failures on the write path (read-only filesystem, disk full,
unpicklable value) silently degrade the store to a pass-through: the
computation still happened, it just is not persisted.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import tempfile
from contextlib import contextmanager
from typing import Dict, Iterable, Mapping, Optional, Tuple

try:  # pragma: no cover - present on every POSIX platform
    import fcntl
except ImportError:  # pragma: no cover - Windows
    fcntl = None

import numpy as np

from ..obs.profile import get_profiler
from .fingerprint import FINGERPRINT_VERSION

#: Bump when the layout of cached products changes incompatibly --
#: e.g. a new field on CompiledDesign that old pickles lack, a changed
#: SimResult shape -- so stale entries become misses, not wrong answers.
SCHEMA_VERSION = 1

#: First bytes of every entry file.
MAGIC = b"STLRSTORE1\n"

#: Default size budget when ``STELLAR_CACHE_MAX_BYTES`` is unset.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Lock file (under the store root) serializing GC across processes.
GC_LOCK_NAME = ".gc.lock"

_MISSING = object()


def _parse_stage_weights(raw: Optional[str]) -> Dict[str, float]:
    """``"compile=4,sim.dense=1"`` -> ``{"compile": 4.0, ...}``.

    Malformed entries are dropped rather than failing a GC that is
    usually running amortized inside a build.
    """
    weights: Dict[str, float] = {}
    for part in (raw or "").split(","):
        part = part.strip()
        if not part or "=" not in part:
            continue
        stage, _eq, value = part.partition("=")
        try:
            weight = float(value)
        except ValueError:
            continue
        if stage.strip() and weight > 0:
            weights[stage.strip()] = weight
    return weights


def _water_fill(
    budget: int, sizes: Mapping[str, int], weights: Mapping[str, float]
) -> Dict[str, int]:
    """Split ``budget`` bytes across stages, weighted, capped by need.

    Stages whose occupancy fits inside their weighted share are
    satisfied in full and their slack is redistributed to the rest, so
    a small ``compile`` stage is never starved just because a huge
    ``sim.dense`` stage exists -- the failure mode of a single global
    LRU budget.
    """
    budgets = {stage: 0 for stage in sizes}
    active = sorted(stage for stage in sizes if sizes[stage] > 0)
    remaining = budget
    while active and remaining > 0:
        total_weight = sum(weights.get(stage, 1.0) for stage in active)
        if total_weight <= 0:  # pragma: no cover - weights are validated > 0
            break
        satisfied = [
            stage
            for stage in active
            if sizes[stage]
            <= remaining * weights.get(stage, 1.0) / total_weight
        ]
        if not satisfied:
            for stage in active:
                budgets[stage] = int(
                    remaining * weights.get(stage, 1.0) / total_weight
                )
            break
        for stage in satisfied:
            budgets[stage] = sizes[stage]
            remaining -= sizes[stage]
            active.remove(stage)
    return budgets


def default_cache_dir() -> Optional[str]:
    """The store root the CLI uses: ``STELLAR_CACHE_DIR`` wins, the
    empty string (or ``0``/``off``/``none``) disables persistence, and
    the fallback is ``~/.cache/stellar-repro``."""
    env = os.environ.get("STELLAR_CACHE_DIR")
    if env is not None:
        if env.strip().lower() in ("", "0", "off", "none"):
            return None
        return os.path.expanduser(env)
    return os.path.join(os.path.expanduser("~"), ".cache", "stellar-repro")


class DiskStoreStats:
    """Tallies of disk-tier traffic for one store handle."""

    __slots__ = (
        "hits", "misses", "corrupt", "writes", "write_failures",
        "bytes_read", "bytes_written", "evicted",
    )

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.writes = 0
        self.write_failures = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.evicted = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "writes": self.writes,
            "write_failures": self.write_failures,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "evicted": self.evicted,
            "hit_rate": round(self.hit_rate, 4),
        }

    def __repr__(self) -> str:
        return (
            f"DiskStoreStats(hits={self.hits}, misses={self.misses},"
            f" corrupt={self.corrupt}, writes={self.writes})"
        )


# ---------------------------------------------------------------------------
# Payload codecs
# ---------------------------------------------------------------------------


def _is_array_mapping(value: object) -> bool:
    return (
        isinstance(value, dict)
        and len(value) > 0
        and all(
            isinstance(k, str) and isinstance(v, np.ndarray)
            for k, v in value.items()
        )
        and all(v.dtype != object for v in value.values())
    )


def _encode(value: object) -> Tuple[str, bytes]:
    """``(format, payload)`` for a cacheable value.

    numpy products get the pickle-free ``npy``/``npz`` formats; anything
    else falls back to pickle.  Raises whatever the serializer raises --
    the caller turns that into a skipped write.
    """
    if isinstance(value, np.ndarray) and value.dtype != object:
        buffer = io.BytesIO()
        np.save(buffer, value, allow_pickle=False)
        return "npy", buffer.getvalue()
    if _is_array_mapping(value):
        buffer = io.BytesIO()
        np.savez(buffer, **value)
        return "npz", buffer.getvalue()
    return "pickle", pickle.dumps(value, protocol=4)


def _decode(fmt: str, payload: bytes) -> object:
    if fmt == "npy":
        return np.load(io.BytesIO(payload), allow_pickle=False)
    if fmt == "npz":
        with np.load(io.BytesIO(payload), allow_pickle=False) as archive:
            return {name: archive[name] for name in archive.files}
    if fmt == "pickle":
        return pickle.loads(payload)
    raise ValueError(f"unknown payload format {fmt!r}")


class StoreCorruption(Exception):
    """Internal: an entry failed validation (becomes a miss)."""


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------


class DiskStore:
    """One handle on the on-disk cache tier.

    Multiple handles -- across threads, processes, and machines sharing
    a filesystem -- may point at the same root concurrently; atomic
    entry writes keep them consistent without locks (last writer wins,
    and both writers wrote the same bytes for the same content key).
    """

    def __init__(
        self,
        root: str,
        max_bytes: Optional[int] = None,
        registry=None,
    ):
        self.root = os.path.expanduser(root)
        if max_bytes is None:
            try:
                max_bytes = int(
                    os.environ.get("STELLAR_CACHE_MAX_BYTES", DEFAULT_MAX_BYTES)
                )
            except ValueError:
                max_bytes = DEFAULT_MAX_BYTES
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = max_bytes
        self.stats = DiskStoreStats()
        self._registry = registry
        self._bytes_since_gc = 0

    @classmethod
    def default(cls, root: Optional[str] = None, **kwargs) -> Optional["DiskStore"]:
        """The CLI's store: rooted per :func:`default_cache_dir`, or
        ``None`` when persistence is disabled via the environment."""
        resolved = os.path.expanduser(root) if root else default_cache_dir()
        if resolved is None:
            return None
        return cls(resolved, **kwargs)

    # -- layout ---------------------------------------------------------

    @property
    def version_tag(self) -> str:
        return f"v{SCHEMA_VERSION}-fp{FINGERPRINT_VERSION}"

    @property
    def version_dir(self) -> str:
        return os.path.join(self.root, self.version_tag)

    def entry_path(self, stage: str, key: str) -> str:
        # Stage names are dotted identifiers ("compile.elaborate"); keys
        # are hex digests.  Shard on the key's first byte to keep
        # directory listings short at ResNet-suite entry counts.
        safe_stage = stage.replace(os.sep, "_")
        return os.path.join(
            self.version_dir, safe_stage, key[:2], key[2:] + ".entry"
        )

    # -- reads ----------------------------------------------------------

    def get(self, stage: str, key: str) -> Tuple[bool, object]:
        """``(hit, value)``; every failure mode is ``(False, None)``."""
        path = self.entry_path(stage, key)
        with get_profiler().scope("store.get"):
            try:
                with open(path, "rb") as handle:
                    raw = handle.read()
            except OSError:
                self._count("misses")
                return False, None
            try:
                value, payload_len = self._validate(raw, stage)
            except Exception:  # noqa: BLE001 -- any failure in validation
                # or deserialization is a miss; a bad entry must never
                # take the build down.
                self._count("corrupt")
                self._count("misses")
                self._remove(path)
                return False, None
            self.stats.bytes_read += payload_len
            self._count("hits")
            try:
                os.utime(path)  # bump recency for the LRU GC
            except OSError:
                pass
            return True, value

    def _validate(self, raw: bytes, stage: str) -> Tuple[object, int]:
        if not raw.startswith(MAGIC):
            raise StoreCorruption("bad magic")
        rest = raw[len(MAGIC):]
        newline = rest.find(b"\n")
        if newline < 0:
            raise StoreCorruption("truncated header")
        header = json.loads(rest[:newline].decode("utf-8"))
        payload = rest[newline + 1:]
        if header.get("schema") != SCHEMA_VERSION:
            raise StoreCorruption("schema version mismatch")
        if header.get("fingerprint") != FINGERPRINT_VERSION:
            raise StoreCorruption("fingerprint version mismatch")
        if header.get("stage") != stage:
            raise StoreCorruption("stage mismatch")
        if header.get("size") != len(payload):
            raise StoreCorruption("payload length mismatch")
        if hashlib.sha256(payload).hexdigest() != header.get("sha256"):
            raise StoreCorruption("payload checksum mismatch")
        return _decode(header["format"], payload), len(payload)

    # -- writes ---------------------------------------------------------

    def put(self, stage: str, key: str, value: object) -> bool:
        """Persist ``value``; ``False`` (never an exception) on any
        serialization or filesystem failure."""
        with get_profiler().scope("store.put"):
            try:
                fmt, payload = _encode(value)
            except Exception:  # noqa: BLE001 -- unpicklable: skip disk
                self._count("write_failures")
                return False
            header = json.dumps(
                {
                    "schema": SCHEMA_VERSION,
                    "fingerprint": FINGERPRINT_VERSION,
                    "stage": stage,
                    "format": fmt,
                    "size": len(payload),
                    "sha256": hashlib.sha256(payload).hexdigest(),
                },
                sort_keys=True,
            ).encode("utf-8")
            blob = MAGIC + header + b"\n" + payload
            path = self.entry_path(stage, key)
            try:
                os.makedirs(os.path.dirname(path), exist_ok=True)
                fd, tmp = tempfile.mkstemp(
                    dir=os.path.dirname(path), prefix=".tmp-"
                )
                try:
                    with os.fdopen(fd, "wb") as handle:
                        handle.write(blob)
                    os.replace(tmp, path)
                except BaseException:
                    self._remove(tmp)
                    raise
            except OSError:
                self._count("write_failures")
                return False
        self._count("writes")
        self.stats.bytes_written += len(blob)
        if self._registry is not None:
            self._registry.counter("exec.store.bytes_written").inc(len(blob))
        self._bytes_since_gc += len(blob)
        # Amortized GC: only rescan the tree after writing a fair slice
        # of the budget, so steady-state sweeps pay ~zero for it.
        if self._bytes_since_gc >= max(self.max_bytes // 16, 1 << 20):
            self.gc()
        return True

    # -- maintenance ----------------------------------------------------

    def _entries(self, root: Optional[str] = None) -> Iterable[Tuple[str, int, float]]:
        """(path, size, mtime) of every entry under ``root`` (default:
        the current version directory)."""
        for dirpath, _dirnames, filenames in os.walk(root or self.version_dir):
            for filename in filenames:
                if not filename.endswith(".entry"):
                    continue
                path = os.path.join(dirpath, filename)
                try:
                    status = os.stat(path)
                except OSError:
                    continue
                yield path, status.st_size, status.st_mtime

    def total_bytes(self) -> int:
        return sum(size for _path, size, _mtime in self._entries())

    def stage_summary(self) -> Dict[str, Dict[str, int]]:
        """Per-stage ``{"entries": n, "bytes": b}`` for the live version.

        Stages are the memo names under the version directory
        (``compile``, ``sim.dense``, ``analysis.spec``, ...); the map is
        sorted by stage name so renders are stable.
        """
        stages: Dict[str, Dict[str, int]] = {}
        prefix = self.version_dir + os.sep
        for path, size, _mtime in self._entries():
            relative = path[len(prefix):] if path.startswith(prefix) else path
            stage = relative.split(os.sep, 1)[0]
            bucket = stages.setdefault(stage, {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += size
        return dict(sorted(stages.items()))

    def summary(self) -> Dict[str, object]:
        """The ``repro cache stats`` payload: layout, budget, occupancy."""
        stages = self.stage_summary()
        return {
            "root": self.root,
            "version": self.version_tag,
            "max_bytes": self.max_bytes,
            "total_bytes": sum(s["bytes"] for s in stages.values()),
            "entries": sum(s["entries"] for s in stages.values()),
            "stages": stages,
        }

    @contextmanager
    def _gc_guard(self):
        """Write-side advisory lock: at most one GC per store root.

        Reads stay lock-free (corruption tolerance already makes a
        concurrent eviction look like a miss); GC is the only pass that
        deletes entries it did not write, so two processes collecting
        the same root at once would double-evict below the budget.
        Yields ``False`` -- skip the collection, someone else is on it
        -- when the lock is held elsewhere; platforms without ``fcntl``
        or roots that cannot hold a lock file degrade to unlocked GC.
        """
        if fcntl is None:  # pragma: no cover - Windows
            yield True
            return
        try:
            os.makedirs(self.root, exist_ok=True)
            handle = open(os.path.join(self.root, GC_LOCK_NAME), "a+b")
        except OSError:  # pragma: no cover - read-only root
            yield True
            return
        try:
            try:
                fcntl.flock(handle, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                yield False
                return
            try:
                yield True
            finally:
                try:
                    fcntl.flock(handle, fcntl.LOCK_UN)
                except OSError:  # pragma: no cover
                    pass
        finally:
            handle.close()

    def stage_budgets(
        self, weights: Optional[Mapping[str, float]] = None
    ) -> Dict[str, int]:
        """Per-stage byte budgets under the store-wide ``max_bytes``.

        The budget is water-filled across the live stages: every stage
        gets a weighted share (``weights`` argument, else the
        ``STELLAR_CACHE_STAGE_WEIGHTS`` environment knob as
        ``stage=weight,...``, else equal weights), stages that need
        less than their share keep what they have, and the slack
        redistributes to the over-subscribed ones.
        """
        if weights is None:
            weights = _parse_stage_weights(
                os.environ.get("STELLAR_CACHE_STAGE_WEIGHTS")
            )
        sizes = {
            stage: bucket["bytes"]
            for stage, bucket in self.stage_summary().items()
        }
        return _water_fill(self.max_bytes, sizes, weights)

    def gc(
        self,
        per_stage: Optional[bool] = None,
        weights: Optional[Mapping[str, float]] = None,
    ) -> int:
        """Evict until the current version fits the byte budget.

        Returns the total entries evicted; :meth:`gc_report` has the
        per-bucket breakdown.  ``per_stage=None`` defers to the
        ``STELLAR_CACHE_GC_PER_STAGE`` environment knob.
        """
        return sum(self.gc_report(per_stage=per_stage, weights=weights).values())

    def gc_report(
        self,
        per_stage: Optional[bool] = None,
        weights: Optional[Mapping[str, float]] = None,
    ) -> Dict[str, int]:
        """Run a collection; entries evicted per bucket.

        Other-version directories (stale schema or fingerprint stamps)
        are removed wholesale first -- nothing can ever read them again
        -- and tallied under ``"<stale-versions>"``.  Within the live
        version, the default mode evicts least-recently-used entries
        globally by mtime (reads bump it), tallied under ``"<lru>"``;
        ``per_stage`` instead enforces the water-filled
        :meth:`stage_budgets`, evicting LRU *within* each
        over-budget stage so one bulky stage (a big ``sim.dense``
        sweep) can no longer wipe out every ``compile`` entry.  The
        whole pass holds the store's advisory GC lock; if another
        process holds it the collection is skipped (empty report).
        """
        if per_stage is None:
            per_stage = os.environ.get(
                "STELLAR_CACHE_GC_PER_STAGE", ""
            ).strip().lower() in ("1", "true", "yes", "on")
        report: Dict[str, int] = {}
        with self._gc_guard() as acquired:
            if not acquired:
                return report
            self._bytes_since_gc = 0
            stale = 0
            try:
                siblings = os.listdir(self.root)
            except OSError:
                siblings = []
            for name in siblings:
                if name != self.version_tag and not name.startswith("."):
                    stale += self._remove_tree(os.path.join(self.root, name))
            if stale:
                report["<stale-versions>"] = stale

            if per_stage:
                budgets = self.stage_budgets(weights)
                for stage, budget in sorted(budgets.items()):
                    dropped = self._evict_lru(
                        os.path.join(self.version_dir, stage), budget
                    )
                    if dropped:
                        report[stage] = dropped
            else:
                dropped = self._evict_lru(self.version_dir, self.max_bytes)
                if dropped:
                    report["<lru>"] = dropped

        evicted = sum(report.values())
        self.stats.evicted += evicted
        if evicted and self._registry is not None:
            self._registry.counter("exec.store.evicted").inc(evicted)
        return report

    def _evict_lru(self, root: str, budget: int) -> int:
        """Drop the stalest ``.entry`` files under ``root`` until the
        tree fits ``budget`` bytes; returns entries removed."""
        entries = sorted(
            self._entries(root), key=lambda e: (e[2], e[0])
        )  # oldest first; path tie-break for same-mtime determinism
        total = sum(size for _path, size, _mtime in entries)
        removed = 0
        for path, size, _mtime in entries:
            if total <= budget:
                break
            self._remove(path)
            total -= size
            removed += 1
        return removed

    def clear(self) -> None:
        self._remove_tree(self.version_dir)

    def _remove(self, path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass

    def _remove_tree(self, path: str) -> int:
        removed = 0
        for dirpath, dirnames, filenames in os.walk(path, topdown=False):
            for filename in filenames:
                self._remove(os.path.join(dirpath, filename))
                removed += 1
            for dirname in dirnames:
                try:
                    os.rmdir(os.path.join(dirpath, dirname))
                except OSError:
                    pass
        try:
            os.rmdir(path)
        except OSError:
            pass
        return removed

    def _count(self, what: str) -> None:
        setattr(self.stats, what, getattr(self.stats, what) + 1)
        if self._registry is not None:
            self._registry.counter(f"exec.store.{what}").inc()

    def attach_registry(self, registry) -> None:
        """Mirror future tallies into ``registry`` as ``exec.store.*``."""
        self._registry = registry

    def spawn_config(self) -> Dict[str, object]:
        """Constructor arguments for an equivalent handle in a worker."""
        return {"root": self.root, "max_bytes": self.max_bytes}

    def __repr__(self) -> str:
        return f"DiskStore({self.root!r}, {self.stats!r})"


def merge_store_stats(into: DiskStoreStats, delta: Optional[Dict[str, int]]) -> None:
    """Fold a worker's stat dict (from :func:`store_stats_delta`) home."""
    if not delta:
        return
    for name in DiskStoreStats.__slots__:
        setattr(into, name, getattr(into, name) + delta.get(name, 0))


def store_stats_snapshot(store: Optional[DiskStore]) -> Optional[Dict[str, int]]:
    if store is None:
        return None
    return {
        name: getattr(store.stats, name) for name in DiskStoreStats.__slots__
    }


def store_stats_delta(
    before: Optional[Dict[str, int]], after: Optional[Dict[str, int]]
) -> Optional[Dict[str, int]]:
    if before is None or after is None:
        return None
    return {name: after[name] - before[name] for name in before}
