"""Parallel evaluation of design-space sweeps.

:func:`evaluate_sweep` is the execution core behind
:func:`repro.dse.explorer.explore`: it takes an ordered candidate list
(one dict per design point) and evaluates each point -- compile,
simulate, estimate area -- either inline or fanned out over a process
pool.  Three properties the explorer relies on:

* **determinism** -- outcomes are returned in candidate order no matter
  how the pool interleaves them, so parallel and serial sweeps produce
  identical results;
* **error discipline** -- only :class:`~repro.core.expr.SpecError` (and
  its :class:`~repro.analysis.diagnostics.AnalysisError` subclass)
  raised while *compiling* marks a point illegal; simulator and area
  model failures always propagate, because silently dropping a crashed
  point would shrink the Pareto frontier without anyone noticing;
* **observability** -- when the parent's profiler/tracer are enabled,
  each worker profiles and traces locally and the parent merges the
  per-point records back, so ``--profile`` and trace exports describe
  the whole fleet.

Workers never share the parent's :class:`~repro.exec.cache.CompileCache`
object; each builds its own and ships hit/miss deltas home, which the
parent folds into the sweep cache's stats and metrics registry.  When
the parent cache has a persistent :class:`~repro.exec.store.DiskStore`
tier, each worker opens its own handle on the same root (atomic entry
writes make that safe) and its disk traffic merges home the same way.

Suites ride on the same sweep: a candidate may carry its own
``bounds``, a ``tensors_key`` naming an operand set in the sweep-wide
``tensor_table``, and ``want_energy`` / ``want_digest`` flags asking
for an energy estimate and a canonical output fingerprint in the
outcome.  Workload tensors (and the tensor table) ship to workers
through :class:`~repro.exec.shm.SharedTensorPool` segments published
once per sweep; if shared memory is unavailable the payload falls back
to inline arrays with identical results.
"""

from __future__ import annotations

import itertools
import os
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..area.energy import energy_from_counters
from ..area.model import estimate_design_area
from ..core.accelerator import Accelerator
from ..core.expr import SpecError
from ..obs.profile import Profiler, get_profiler, set_profiler
from ..obs.trace import Tracer, get_tracer, set_tracer
from ..sim.spatial_array import SpatialArraySim
from .cache import CacheStats, CompileCache
from .fingerprint import fingerprint
from .shm import SharedTensorPool, ShmUnavailable, adopt, shared_memory_available
from .store import (
    DiskStore,
    merge_store_stats,
    store_stats_delta,
    store_stats_snapshot,
)


def resolve_jobs(jobs: Optional[int]) -> int:
    """The effective worker count for a ``jobs`` request.

    ``None`` and ``1`` mean serial (one inline worker); ``0`` means one
    worker per CPU; any other positive value is taken literally.
    """
    if jobs is None:
        return 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


class EngineReport:
    """How a sweep was executed: worker count, outcome tallies, cache."""

    def __init__(
        self,
        jobs: int,
        evaluated: int,
        skipped: int,
        cache_stats: Optional[CacheStats] = None,
    ):
        self.jobs = jobs
        self.evaluated = evaluated
        self.skipped = skipped
        self.cache_stats = cache_stats

    @property
    def mode(self) -> str:
        return "serial" if self.jobs <= 1 else "parallel"

    def as_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "jobs": self.jobs,
            "evaluated": self.evaluated,
            "skipped": self.skipped,
            "cache": self.cache_stats.as_dict() if self.cache_stats else None,
        }

    def __repr__(self) -> str:
        return (
            f"EngineReport({self.mode}, jobs={self.jobs},"
            f" evaluated={self.evaluated}, skipped={self.skipped})"
        )


# ---------------------------------------------------------------------------
# One design point
# ---------------------------------------------------------------------------


def _evaluate_point(
    spec,
    bounds,
    tensors,
    element_bits: int,
    candidate: Mapping[str, object],
    cache: Optional[CompileCache],
    skip_illegal: bool,
    tensor_table: Optional[Mapping[str, Mapping[str, object]]] = None,
) -> Dict[str, object]:
    """Compile + simulate + area for one candidate.

    Runs against whatever profiler/tracer are currently installed, so the
    same code serves the inline path (parent observability) and the
    worker path (local observability, merged later).

    Suite candidates may override the sweep-wide ``bounds`` and name
    their operand set via ``tensors_key`` (resolved against
    ``tensor_table``), and may opt into extra figures with
    ``want_energy`` (energy model over the sim counters) and
    ``want_digest`` (canonical fingerprint of the simulated outputs,
    for byte-identity checks across runs and transports).

    A candidate may also override the sweep-wide ``skip_illegal``: the
    autotuner sweeps exploration combos permissively (an illegal
    transform is a pruned point) while pinning ``skip_illegal: False``
    on each layer's fixed baseline design, whose failure to compile is
    a configuration bug and must raise.

    Two more optional candidate knobs serve the successive-halving
    autotuner: ``fidelity`` (a low-fidelity tag folded into the
    simulator's memo key so reduced-rung results never poison
    full-fidelity cache entries) and the microarchitecture overlay
    fields ``membuf``/``dma``/``regfile`` (:mod:`repro.dse.uarch`
    variants applied as deterministic cycle/area adjustments *after*
    the cached simulation, so overlay combos share one compile +
    simulate entry).
    """
    profiler = get_profiler()
    tracer = get_tracer()
    name = candidate["name"]
    skip_illegal = bool(candidate.get("skip_illegal", skip_illegal))
    bounds = candidate.get("bounds", bounds)
    tensors_key = candidate.get("tensors_key")
    if tensors_key is not None:
        if tensor_table is None or tensors_key not in tensor_table:
            raise KeyError(
                f"candidate {name!r} names tensors_key {tensors_key!r}"
                " but the sweep has no such tensor-table entry"
            )
        tensors = tensor_table[tensors_key]
    accelerator = Accelerator(
        spec=spec,
        bounds=bounds,
        transform=candidate["transform"],
        sparsity=candidate["sparsity"],
        balancing=candidate["balancing"],
        element_bits=element_bits,
    )
    with profiler.scope("dse.point"), tracer.span(
        name, component="dse",
        transform=candidate["transform_name"],
        sparsity=candidate["sparsity_name"],
        balancing=candidate["balancing_name"],
    ):
        # Only the compile step decides legality.  A SpecError out of the
        # simulator (bad workload data, a broken transform round-trip) is
        # a real failure and must surface, not shrink the sweep.
        try:
            with profiler.scope("dse.compile"):
                design = accelerator.build(cache=cache)
        except SpecError as err:
            if skip_illegal:
                tracer.instant("illegal_point", component="dse", point=name)
                return {"status": "illegal", "name": name, "error": str(err)}
            raise
        with profiler.scope("dse.simulate"):
            result = SpatialArraySim(
                design.compiled, memo=cache,
                fidelity=candidate.get("fidelity"),
            ).run(tensors)
        with profiler.scope("dse.area"):
            area = estimate_design_area(design.compiled)
    cycles = int(result.cycles)
    area_um2 = float(area.total)
    outcome = {
        "status": "ok",
        "name": name,
        "transform_name": candidate["transform_name"],
        "sparsity_name": candidate["sparsity_name"],
        "balancing_name": candidate["balancing_name"],
        "cycles": cycles,
        "utilization": float(result.utilization),
        "area_um2": area_um2,
        "pe_count": int(design.pe_count),
        "conn_count": len(design.compiled.array.conns),
        "pruned_variables": list(design.compiled.pruned_variables()),
    }
    membuf = candidate.get("membuf")
    dma = candidate.get("dma")
    regfile = candidate.get("regfile")
    if membuf is not None or dma is not None or regfile is not None:
        from ..dse.uarch import uarch_overlay

        extra_cycles, area_delta = uarch_overlay(
            membuf, dma, regfile, bounds, element_bits
        )
        outcome["cycles"] = cycles + extra_cycles
        outcome["area_um2"] = area_um2 + area_delta
        outcome["membuf_name"] = candidate.get("membuf_name", "default")
        outcome["dma_name"] = candidate.get("dma_name", "default")
        outcome["regfile_name"] = candidate.get("regfile_name", "default")
        outcome["uarch_extra_cycles"] = extra_cycles
        outcome["uarch_area_delta_um2"] = round(area_delta, 3)
    if candidate.get("want_energy"):
        energy = energy_from_counters(
            result.counters, element_bytes=max(1, element_bits // 8)
        )
        outcome["energy_pj"] = float(energy.total_pj)
    if candidate.get("want_digest"):
        outcome["output_digest"] = fingerprint(result.outputs)
    if candidate.get("want_outputs"):
        outcome["outputs"] = {
            name: np.asarray(array) for name, array in result.outputs.items()
        }
    return outcome


def evaluate_point(
    spec,
    bounds,
    tensors,
    candidate: Mapping[str, object],
    element_bits: int = 32,
    cache: Optional[CompileCache] = None,
    skip_illegal: bool = False,
    tensor_table: Optional[Mapping[str, Mapping[str, object]]] = None,
) -> Dict[str, object]:
    """Evaluate one candidate inline -- the single-point sweep.

    The public deterministic entry point for callers (the differential
    fuzz oracles, notebooks) that want exactly what a one-candidate
    :func:`evaluate_sweep` would produce without building the sweep
    scaffolding: same candidate dict contract, same outcome dict, same
    error discipline.  Defaults to ``skip_illegal=False`` because a
    single named point that fails to compile is the caller's bug, not a
    pruned sweep entry.
    """
    return _evaluate_point(
        spec, bounds, tensors, element_bits, candidate, cache,
        skip_illegal, tensor_table=tensor_table,
    )


# ---------------------------------------------------------------------------
# Worker-process plumbing
# ---------------------------------------------------------------------------

#: Per-process sweep state, populated by the pool initializer.
_WORKER_STATE: Dict[str, object] = {}


def _decode_operands(packed):
    """Materialize an operand payload shipped as ``(transport, value)``.

    ``("inline", arrays)`` passes through; ``("shm", handles)`` maps
    read-only views of the parent's shared segments.
    """
    if packed is None:
        return None
    transport, value = packed
    if transport == "inline":
        return value
    if transport == "shm":
        return SharedTensorPool.attach(value)
    if transport == "shm-table":
        return SharedTensorPool.attach_table(value)
    raise ValueError(f"unknown operand transport {transport!r}")


def _init_worker(payload: Dict[str, object]) -> None:
    state = dict(payload)
    state["tensors"] = _decode_operands(payload["tensors"])
    state["tensor_table"] = _decode_operands(payload["tensor_table"])
    if payload["use_cache"]:
        store_config = payload.get("store")
        store = DiskStore(**store_config) if store_config else None
        state["cache"] = CompileCache(store=store)
    else:
        state["cache"] = None
    _WORKER_STATE.clear()
    _WORKER_STATE.update(state)


def _stats_snapshot(cache: Optional[CompileCache]):
    if cache is None:
        return None
    stats = cache.stats
    return (
        stats.hits,
        stats.misses,
        stats.uncacheable,
        dict(stats.by_stage),
        stats.disk_hits,
        store_stats_snapshot(cache.store),
    )


def _stats_delta(before, after):
    if before is None or after is None:
        return None
    by_stage = {}
    for stage, (hits, misses) in after[3].items():
        h0, m0 = before[3].get(stage, (0, 0))
        if hits != h0 or misses != m0:
            by_stage[stage] = (hits - h0, misses - m0)
    return (
        after[0] - before[0],
        after[1] - before[1],
        after[2] - before[2],
        by_stage,
        after[4] - before[4],
        store_stats_delta(before[5], after[5]),
    )


def _apply_delta(cache: CompileCache, delta) -> None:
    if delta is None:
        return
    hits, misses, uncacheable, by_stage, disk_hits, store_delta = delta
    stats = cache.stats
    stats.hits += hits
    stats.misses += misses
    stats.uncacheable += uncacheable
    stats.disk_hits += disk_hits
    for stage, (h, m) in by_stage.items():
        h0, m0 = stats.by_stage.get(stage, (0, 0))
        stats.by_stage[stage] = (h0 + h, m0 + m)
    cache.registry.counter("exec.cache.hits").inc(hits)
    cache.registry.counter("exec.cache.misses").inc(misses)
    cache.registry.counter("exec.cache.uncacheable").inc(uncacheable)
    cache.registry.counter("exec.cache.disk_hits").inc(disk_hits)
    if cache.store is not None and store_delta:
        merge_store_stats(cache.store.stats, store_delta)
        for name, amount in store_delta.items():
            if amount:
                cache.registry.counter(f"exec.store.{name}").inc(amount)


#: Result arrays at or above this many total bytes ride home through a
#: shared-memory segment instead of pickling through the pool pipe
#: (override with ``STELLAR_SHM_RESULT_MIN_BYTES``).
DEFAULT_RESULT_SHM_MIN_BYTES = 64 * 1024


def _result_shm_threshold() -> int:
    try:
        return int(
            os.environ.get(
                "STELLAR_SHM_RESULT_MIN_BYTES", DEFAULT_RESULT_SHM_MIN_BYTES
            )
        )
    except ValueError:
        return DEFAULT_RESULT_SHM_MIN_BYTES


def _pack_result_arrays(outcome: Dict[str, object]) -> Dict[str, object]:
    """Worker side: wrap ``outcome["outputs"]`` for the trip home.

    Bulky arrays (>= the threshold) are published into shared-memory
    segments the worker immediately detaches from; the parent adopts
    (copies and unlinks) them, so results are byte-identical to the
    inline path while the pool pipe only ever carries tiny handles.
    """
    outputs = outcome.get("outputs")
    if outputs is None:
        return outcome
    total = sum(array.nbytes for array in outputs.values())
    if total >= _result_shm_threshold() and shared_memory_available():
        pool = SharedTensorPool()
        try:
            handles = pool.publish(outputs)
        except ShmUnavailable:  # pragma: no cover - sandboxed /dev/shm
            pool.close()
        else:
            pool.detach()
            outcome["outputs"] = ("shm-result", handles)
            return outcome
    outcome["outputs"] = ("inline", outputs)
    return outcome


def _unpack_result_arrays(outcome: Dict[str, object]) -> None:
    """Parent side: materialize a packed ``outputs`` payload in place."""
    packed = outcome.get("outputs")
    if packed is None or not isinstance(packed, tuple):
        return
    transport, value = packed
    if transport == "inline":
        outcome["outputs"] = value
    elif transport == "shm-result":
        outcome["outputs"] = adopt(value)
    else:  # pragma: no cover - protocol bug
        raise ValueError(f"unknown result transport {transport!r}")


def _run_point(
    state: Mapping[str, object], index: int, candidate: Mapping[str, object]
) -> Dict[str, object]:
    """Evaluate one candidate against a decoded sweep state (worker side)."""
    cache = state["cache"]
    profiler = Profiler(enabled=True) if state["profile"] else None
    tracer = Tracer(enabled=True) if state["trace"] else None
    previous_profiler = set_profiler(profiler) if profiler is not None else None
    previous_tracer = set_tracer(tracer) if tracer is not None else None
    before = _stats_snapshot(cache)
    try:
        outcome = _evaluate_point(
            state["spec"],
            state["bounds"],
            state["tensors"],
            state["element_bits"],
            candidate,
            cache,
            state["skip_illegal"],
            tensor_table=state["tensor_table"],
        )
    finally:
        if profiler is not None:
            set_profiler(previous_profiler)
        if tracer is not None:
            set_tracer(previous_tracer)
    _pack_result_arrays(outcome)
    outcome["index"] = index
    outcome["profile"] = profiler
    outcome["trace"] = tracer
    outcome["cache_delta"] = _stats_delta(before, _stats_snapshot(cache))
    return outcome


def _run_task(task) -> Dict[str, object]:
    index, candidate = task
    return _run_point(_WORKER_STATE, index, candidate)


def _ensure_resource_tracker() -> None:
    """Spawn the shared-memory resource tracker *before* forking workers.

    Forked children then share the parent's tracker process, so the
    worker-side ``register`` of a result segment and the parent-side
    ``unlink`` after adoption land in the same cache and coalesce.
    """
    try:  # pragma: no cover - trivial plumbing
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
    except Exception:  # noqa: BLE001 - platforms without a tracker
        pass


def _make_pool(workers: int, payload: Dict[str, object]) -> ProcessPoolExecutor:
    context = _fork_context()
    _ensure_resource_tracker()
    return ProcessPoolExecutor(
        max_workers=workers,
        mp_context=context,
        initializer=_init_worker,
        initargs=(payload,),
    )


def _fork_context():
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


# ---------------------------------------------------------------------------
# Resident pools (the serve daemon's workers)
# ---------------------------------------------------------------------------

#: Per-process state for resident workers: one long-lived CompileCache
#: plus a bounded memo of decoded sweep payloads keyed by sweep id.
_RESIDENT_STATE: Dict[str, object] = {}

_SWEEP_IDS = itertools.count()


def _init_resident_worker(store_config, sweep_memo: int) -> None:
    store = DiskStore(**store_config) if store_config else None
    _RESIDENT_STATE.clear()
    _RESIDENT_STATE.update(
        {
            "cache": CompileCache(store=store),
            "sweeps": OrderedDict(),
            "sweep_memo": sweep_memo,
        }
    )


def _resident_sweep_state(sweep_id: str, payload: Dict[str, object]):
    sweeps: "OrderedDict[str, Dict[str, object]]" = _RESIDENT_STATE["sweeps"]
    state = sweeps.get(sweep_id)
    if state is None:
        state = dict(payload)
        state["tensors"] = _decode_operands(payload["tensors"])
        state["tensor_table"] = _decode_operands(payload["tensor_table"])
        state["cache"] = (
            _RESIDENT_STATE["cache"] if payload["use_cache"] else None
        )
        sweeps[sweep_id] = state
        while len(sweeps) > _RESIDENT_STATE["sweep_memo"]:
            sweeps.popitem(last=False)
    else:
        sweeps.move_to_end(sweep_id)
    return state


def _run_resident_task(task) -> Dict[str, object]:
    sweep_id, payload, index, candidate = task
    state = _resident_sweep_state(sweep_id, payload)
    return _run_point(state, index, candidate)


class ResidentPool:
    """A worker pool that outlives a single :func:`evaluate_sweep` call.

    Plain sweeps build a fresh ``ProcessPoolExecutor`` per call, paying
    fork plus cold in-memory caches every time -- fine for a CLI batch,
    wasteful for a long-running daemon answering many requests.  A
    ``ResidentPool`` keeps the workers alive across sweeps: each worker
    owns one persistent :class:`~repro.exec.cache.CompileCache` (with
    its own handle on the shared disk store when ``store_config`` is
    given), tasks carry a sweep id plus the packed sweep payload, and
    the worker decodes and memoizes the payload once per sweep (bounded
    by ``sweep_memo``).  When shared memory is available the per-task
    payload is only descriptors, so the resend is cheap.

    The pool is lazy: workers fork on first use, and :meth:`close`
    (also the context-manager exit) retires them.  If the executor
    cannot be created at all, :func:`evaluate_sweep` falls back to
    serial inline evaluation exactly like the per-sweep pool path.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        store_config: Optional[Dict[str, object]] = None,
        sweep_memo: int = 8,
    ):
        self.workers = resolve_jobs(jobs)
        self.store_config = dict(store_config) if store_config else None
        self.sweep_memo = sweep_memo
        self._executor: Optional[ProcessPoolExecutor] = None

    def executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            _ensure_resource_tracker()
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=_fork_context(),
                initializer=_init_resident_worker,
                initargs=(self.store_config, self.sweep_memo),
            )
        return self._executor

    @property
    def started(self) -> bool:
        return self._executor is not None

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ResidentPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "live" if self.started else "idle"
        return f"ResidentPool(workers={self.workers}, {state})"


# ---------------------------------------------------------------------------
# The sweep
# ---------------------------------------------------------------------------


def _pack_operands(pool: Optional[SharedTensorPool], tensors, table: bool):
    """Ship an operand payload through shared memory when a pool is
    live, inline otherwise.  Raises :class:`ShmUnavailable` (caught by
    the caller, which retries inline) if segment creation fails."""
    if tensors is None:
        return None
    if pool is None:
        return ("inline", tensors)
    if table:
        return ("shm-table", pool.publish_table(tensors))
    return ("shm", pool.publish(tensors))


def evaluate_sweep(
    spec,
    bounds,
    tensors,
    candidates: Sequence[Mapping[str, object]],
    element_bits: int = 32,
    skip_illegal: bool = True,
    jobs: Optional[int] = None,
    cache: Optional[CompileCache] = None,
    tensor_table: Optional[Mapping[str, Mapping[str, object]]] = None,
    on_outcome: Optional[Callable[[int, Dict[str, object]], None]] = None,
    pool: Optional[ResidentPool] = None,
) -> Tuple[List[Dict[str, object]], EngineReport]:
    """Evaluate every candidate; outcomes come back in candidate order.

    Each candidate is a dict with ``name``, ``transform_name`` /
    ``transform``, ``sparsity_name`` / ``sparsity`` and
    ``balancing_name`` / ``balancing``; suite candidates may add
    ``bounds``, ``tensors_key`` (an entry of ``tensor_table``), the
    ``want_energy`` / ``want_digest`` / ``want_outputs`` flags, and a
    per-candidate ``skip_illegal`` override.  Outcomes are plain dicts
    with ``status`` either ``"ok"`` (plus the measured figures) or
    ``"illegal"`` (plus the compile error text).

    ``on_outcome(index, outcome)`` -- when given -- is invoked once per
    candidate *in candidate order* as each outcome is finalized (worker
    observability merged, result payloads materialized), so callers can
    stream results before the sweep completes; parallel sweeps release
    outcome ``i`` once candidates ``0..i`` have all finished, which
    keeps the stream order deterministic no matter how the pool
    interleaves.

    ``jobs`` follows :func:`resolve_jobs`; with one worker the sweep
    runs inline in this process.  ``pool`` routes the fan-out through a
    long-lived :class:`ResidentPool` instead of a per-sweep executor
    (the serve daemon's configuration); ``jobs`` is ignored in that
    case.  If a pool cannot be created (no process-spawning rights in a
    sandbox) or shared-memory segments cannot be allocated, the sweep
    silently degrades -- to serial, or to inline operand shipping --
    with identical results by construction.
    """
    if pool is not None:
        workers = min(pool.workers, max(1, len(candidates)))
    else:
        workers = resolve_jobs(jobs)
        workers = min(workers, max(1, len(candidates)))

    if workers <= 1:
        outcomes = []
        for index, candidate in enumerate(candidates):
            outcome = _evaluate_point(
                spec, bounds, tensors, element_bits, candidate, cache,
                skip_illegal, tensor_table=tensor_table,
            )
            outcomes.append(outcome)
            if on_outcome is not None:
                on_outcome(index, outcome)
        skipped = sum(1 for out in outcomes if out["status"] == "illegal")
        return outcomes, EngineReport(
            jobs=1,
            evaluated=len(outcomes) - skipped,
            skipped=skipped,
            cache_stats=cache.stats if cache is not None else None,
        )

    # Publish operands into shared memory once; every worker maps the
    # same segments instead of re-pickling arrays per task.
    shm_pool: Optional[SharedTensorPool] = None
    packed_tensors = packed_table = None
    if shared_memory_available():
        try:
            shm_pool = SharedTensorPool()
            packed_tensors = _pack_operands(shm_pool, tensors, table=False)
            packed_table = _pack_operands(shm_pool, tensor_table, table=True)
        except ShmUnavailable:  # pragma: no cover - sandboxed /dev/shm
            if shm_pool is not None:
                shm_pool.close()
            shm_pool = None
    if shm_pool is None:
        packed_tensors = _pack_operands(None, tensors, table=False)
        packed_table = _pack_operands(None, tensor_table, table=True)

    store = cache.store if cache is not None else None
    payload = {
        "spec": spec,
        "bounds": bounds,
        "tensors": packed_tensors,
        "tensor_table": packed_table,
        "element_bits": element_bits,
        "skip_illegal": skip_illegal,
        "use_cache": cache is not None,
        "store": store.spawn_config() if store is not None else None,
        "profile": get_profiler().enabled,
        "trace": get_tracer().enabled,
    }

    try:
        if pool is not None:
            executor = pool.executor()
            sweep_id = f"{os.getpid()}-{next(_SWEEP_IDS)}"

            def submit(index, candidate):
                return executor.submit(
                    _run_resident_task, (sweep_id, payload, index, candidate)
                )

            owns_executor = False
        else:
            executor = _make_pool(workers, payload)

            def submit(index, candidate):
                return executor.submit(_run_task, (index, candidate))

            owns_executor = True
    except (OSError, PermissionError):  # pragma: no cover - sandboxed envs
        if shm_pool is not None:
            shm_pool.close()
        return evaluate_sweep(
            spec, bounds, tensors, candidates,
            element_bits=element_bits, skip_illegal=skip_illegal,
            jobs=1, cache=cache, tensor_table=tensor_table,
            on_outcome=on_outcome,
        )

    outcomes: List[Optional[Dict[str, object]]] = [None] * len(candidates)
    profiler = get_profiler()
    tracer = get_tracer()
    try:
        futures = [
            submit(index, candidate)
            for index, candidate in enumerate(candidates)
        ]
        # Collect in submission order: outcomes are finalized, merged
        # back, and streamed in sweep order no matter how the pool
        # interleaves, and the first failing candidate (by sweep order,
        # not completion order) raises, deterministically.
        for future in futures:
            outcome = future.result()
            index = outcome.pop("index")
            worker_profile = outcome.pop("profile", None)
            worker_trace = outcome.pop("trace", None)
            cache_delta = outcome.pop("cache_delta", None)
            if worker_profile is not None and profiler.enabled:
                profiler.merge(worker_profile)
            if worker_trace is not None and tracer.enabled:
                tracer.merge(worker_trace)
            if cache is not None:
                _apply_delta(cache, cache_delta)
            _unpack_result_arrays(outcome)
            outcomes[index] = outcome
            if on_outcome is not None:
                on_outcome(index, outcome)
    finally:
        if owns_executor:
            executor.shutdown(wait=True)
        if shm_pool is not None:
            shm_pool.close()

    skipped = sum(1 for out in outcomes if out["status"] == "illegal")
    return outcomes, EngineReport(
        jobs=workers,
        evaluated=len(outcomes) - skipped,
        skipped=skipped,
        cache_stats=cache.stats if cache is not None else None,
    )
