"""Consolidated design reports.

Renders everything an architect wants to see about one generated design
in a single text document: the compiled structure (PEs, connections,
dataflow roles), the register-file plans chosen by the Figure 14 ladder,
the calibrated area breakdown, memory-buffer pipelines, the balancer, and
Verilog statistics.  Used by ``python -m repro report`` and handy in
notebooks/regressions.
"""

from __future__ import annotations

from typing import List

from .area.model import estimate_design_area
from .core.accelerator import GeneratedDesign


def _section(title: str) -> List[str]:
    return ["", title, "-" * len(title)]


def design_report(design: GeneratedDesign, include_host_cpu: bool = False) -> str:
    """A complete text report for one generated design."""
    compiled = design.compiled
    lines: List[str] = [
        f"design: {compiled.name}",
        f"bounds: {compiled.bounds!r}",
        f"transform: {compiled.transform!r}",
    ]

    lines += _section("spatial array")
    lines.append(f"PEs: {compiled.pe_count}")
    lines.append(f"schedule length: {compiled.array.schedule_length} cycles")
    lines.append(f"dataflow roles: {compiled.dataflow_roles}")
    lines.append(
        f"utilization bound: {compiled.array.utilization_bound():.1%}"
    )
    for conn in compiled.array.conns:
        flavor = (
            "stationary"
            if conn.is_stationary
            else ("broadcast" if conn.is_broadcast else "pipelined")
        )
        lines.append(
            f"  conn {conn.variable}: dspace={conn.space_offset}"
            f" dt={conn.time_offset} [{flavor}]"
            + (f" x{conn.bundle}" if conn.bundle > 1 else "")
        )
    pruned = compiled.pruned_variables()
    if pruned:
        lines.append(f"pruned to regfile IO: {pruned}")

    lines += _section("register files (Figure 14 ladder)")
    for variable, plan in sorted(compiled.regfile_plans.items()):
        lines.append(
            f"  {variable}: {plan.kind.value:12s} entries={plan.entries:4d}"
            f" ports={plan.in_ports}/{plan.out_ports}"
            f" search={plan.search_width()}"
        )
        lines.append(f"      reason: {plan.reason}")

    if compiled.membufs:
        lines += _section("memory buffers (Figure 12 pipelines)")
        for name, spec in sorted(compiled.membufs.items()):
            axes = "/".join(a.axis_type.value for a in spec.axes)
            lines.append(
                f"  {name}: [{axes}] capacity={spec.capacity_bytes} B"
                f" latency={spec.access_latency()} cycles"
                f" metadata SRAMs={spec.metadata_sram_count()}"
            )

    if compiled.balancer is not None:
        lines += _section("load balancer (Equation 2)")
        lines.append(f"  granularity: {compiled.balancer.granularity}")
        lines.append(f"  bias vectors: {compiled.balancer.bias_vectors}")
        lines.append(
            f"  monitored regfiles: {compiled.balancer.monitored_variables}"
        )

    lines += _section("area (calibrated ASAP7-class model)")
    report = estimate_design_area(compiled, include_host_cpu=include_host_cpu)
    lines.append(report.table())

    lines += _section("verilog")
    netlist = design.to_netlist()
    problems = netlist.lint()
    text = netlist.emit()
    lines.append(f"  modules: {netlist.total_module_count()}")
    lines.append(f"  instances: {netlist.instance_count()}")
    lines.append(f"  lines: {len(text.splitlines())}")
    lines.append(f"  lint: {'clean' if not problems else problems}")

    return "\n".join(lines)
