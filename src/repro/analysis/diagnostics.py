"""The unified diagnostic model shared by every analysis level.

A :class:`Diagnostic` is one finding of the static checker: a stable code
(``STL-SP-004``), a severity, the layer it was found at (``spec``,
``netlist``, ``program``), an optional location, a message, and an
optional suggestion.  The three checkers (:mod:`repro.analysis.spec`,
:mod:`repro.analysis.netlist`, :mod:`repro.analysis.program`) all return
plain lists of diagnostics, which the renderers here turn into text or
JSON and which the pipeline gates turn into an :class:`AnalysisError`.

Code namespaces (documented in DESIGN.md):

* ``STL-SP-*`` -- spec legality (level 1);
* ``STL-NL-*`` -- netlist dataflow lint (level 2);
* ``STL-PR-*`` -- ISA program verification (level 3);
* ``STL-EQ-*`` -- netlist equivalence of optimization passes (level 4):
  001 combinational cone refuted, 002 interface mismatch, 003
  differential trace divergence (first divergent signal and cycle);
* ``STL-CK-*`` -- checker-harness failures (an example failed to build);
* ``STL-FZ-*`` -- differential fuzzing mismatches (:mod:`repro.fuzz`):
  000 harness error (an oracle crashed outside the compared paths), then
  one code per oracle -- 001 ``sim.scalar_vs_vectorized``, 002
  ``sim.interpreter_vs_kernel``, 003 ``exec.serial_vs_parallel``, 004
  ``exec.cold_vs_warm``, 005 ``rtl.opt0_vs_opt2``, 006
  ``exec.halving_eta1_vs_exhaustive``.
"""

from __future__ import annotations

import enum
import json
import re
from typing import Dict, Iterable, List, Optional, Sequence

from ..core.expr import SpecError

_CODE = re.compile(r"^STL-[A-Z]{2}-\d{3}$")


class Severity(enum.IntEnum):
    """Ordered severities; comparisons follow the integer values."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(f"unknown severity {text!r}") from None


class Diagnostic:
    """One finding of the static checker."""

    __slots__ = ("code", "severity", "layer", "location", "message", "suggestion")

    def __init__(
        self,
        code: str,
        severity: Severity,
        layer: str,
        message: str,
        location: str = "",
        suggestion: str = "",
    ):
        if not _CODE.match(code):
            raise ValueError(f"malformed diagnostic code {code!r}")
        self.code = code
        self.severity = Severity(severity)
        self.layer = layer
        self.location = location
        self.message = message
        self.suggestion = suggestion

    def legacy_text(self) -> str:
        """The pre-``repro.analysis`` lint string (``module: message``)."""
        if self.location:
            return f"{self.location}: {self.message}"
        return self.message

    def to_dict(self) -> Dict[str, str]:
        return {
            "code": self.code,
            "severity": self.severity.name.lower(),
            "layer": self.layer,
            "location": self.location,
            "message": self.message,
            "suggestion": self.suggestion,
        }

    def render(self) -> str:
        where = f" [{self.location}]" if self.location else ""
        line = f"{self.severity.name.lower()}: {self.code}{where}: {self.message}"
        if self.suggestion:
            line += f"\n  suggestion: {self.suggestion}"
        return line

    def __repr__(self) -> str:
        return (
            f"Diagnostic({self.code}, {self.severity.name},"
            f" layer={self.layer!r}, message={self.message!r})"
        )


class AnalysisError(SpecError, RuntimeError):
    """Raised by the opt-out pipeline gates when error diagnostics exist.

    Subclasses both :class:`SpecError` (the compiler's legality-error type)
    and :class:`RuntimeError` (the ISA executor's error type) so existing
    callers that catch either keep working when the gate fires first.
    """

    def __init__(self, diagnostics: Sequence[Diagnostic]):
        self.diagnostics = list(diagnostics)
        super().__init__(render_text(self.diagnostics))


def suppress(
    diagnostics: Iterable[Diagnostic], codes: Iterable[str]
) -> List[Diagnostic]:
    """Drop diagnostics whose code is in ``codes`` (exact match)."""
    dropped = set(codes)
    return [d for d in diagnostics if d.code not in dropped]


def errors_only(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    return [d for d in diagnostics if d.severity >= Severity.ERROR]


def max_severity(diagnostics: Iterable[Diagnostic]) -> Optional[Severity]:
    severities = [d.severity for d in diagnostics]
    return max(severities) if severities else None


def render_text(diagnostics: Sequence[Diagnostic]) -> str:
    """Human-readable multi-line rendering, most severe first."""
    ordered = sorted(
        diagnostics, key=lambda d: (-int(d.severity), d.layer, d.code, d.location)
    )
    lines = [d.render() for d in ordered]
    counts = _counts(diagnostics)
    if counts:
        summary = ", ".join(f"{n} {name}(s)" for name, n in counts.items())
        lines.append(f"-- {summary}")
    return "\n".join(lines) if lines else "no diagnostics"


def render_json(diagnostics: Sequence[Diagnostic], indent: int = 2) -> str:
    return json.dumps(
        {
            "diagnostics": [d.to_dict() for d in diagnostics],
            "counts": _counts(diagnostics),
        },
        indent=indent,
    )


def _counts(diagnostics: Iterable[Diagnostic]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for diagnostic in diagnostics:
        name = diagnostic.severity.name.lower()
        counts[name] = counts.get(name, 0) + 1
    return counts
