"""The full three-level check ladder and example-design discovery.

``python -m repro check`` (see :mod:`repro.cli`) funnels through here:
:func:`discover_examples` imports every ``examples/*.py`` file and calls
its ``build()`` entry point; :func:`check_design` runs the returned
design through spec legality, netlist lint, and ISA program verification;
:func:`run_check` aggregates everything into a :class:`CheckReport` with
text and JSON renderings.

Per-level timings are recorded through the ambient
:class:`repro.obs.profile.Profiler` under ``analysis.spec``,
``analysis.netlist``, and ``analysis.program`` (plus the compiler's own
``compile.*`` scopes for the build step), so ``repro check --profile``
can show where checking time goes.
"""

from __future__ import annotations

import importlib.util
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.expr import SpecError
from ..obs.profile import get_profiler
from .diagnostics import (
    Diagnostic,
    Severity,
    max_severity,
    render_text,
    suppress as _suppress,
)
from .netlist import check_netlist
from .program import check_program
from .spec import check_spec

#: Version of the JSON report layout emitted by ``repro check --json``
#: and ``repro verify --json``.  Bump on any breaking change to the
#: report dictionaries so CI consumers can pin what they parse.
SCHEMA_VERSION = 2

#: DRAM base addresses of the synthesized demo program are spaced this
#: far apart so distinct transfers can never overlap.
_WINDOW_STRIDE = 1 << 20
_DEFAULT_SPAN = 4


class DesignReport:
    """The checker's findings for one design."""

    def __init__(
        self,
        name: str,
        diagnostics: Sequence[Diagnostic],
        source: str = "",
        levels: Sequence[str] = (),
    ):
        self.name = name
        self.source = source
        self.diagnostics = list(diagnostics)
        self.levels = list(levels)

    @property
    def clean(self) -> bool:
        return not self.diagnostics

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "source": self.source,
            "levels": self.levels,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


class CheckReport:
    """Aggregated findings over every checked design."""

    def __init__(self, designs: Sequence[DesignReport]):
        self.designs = list(designs)

    @property
    def diagnostics(self) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        for design in self.designs:
            out.extend(design.diagnostics)
        return out

    def max_severity(self) -> Optional[Severity]:
        return max_severity(self.diagnostics)

    def counts(self) -> Dict[str, int]:
        counts = {"error": 0, "warning": 0, "info": 0}
        for diagnostic in self.diagnostics:
            counts[diagnostic.severity.name.lower()] += 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        counts = self.counts()
        return {
            "schema_version": SCHEMA_VERSION,
            "designs": [d.to_dict() for d in self.designs],
            "summary": {
                "designs": len(self.designs),
                "errors": counts["error"],
                "warnings": counts["warning"],
                "infos": counts["info"],
            },
        }

    def text(self) -> str:
        lines: List[str] = []
        for design in self.designs:
            levels = "+".join(design.levels) if design.levels else "none"
            if design.clean:
                lines.append(f"ok   {design.name}: clean ({levels})")
            else:
                lines.append(
                    f"FAIL {design.name}:"
                    f" {len(design.diagnostics)} diagnostic(s) ({levels})"
                )
                for diagnostic in design.diagnostics:
                    lines.append("  " + diagnostic.render().replace("\n", "\n  "))
        counts = self.counts()
        lines.append(
            f"checked {len(self.designs)} design(s):"
            f" {counts['error']} error(s), {counts['warning']} warning(s)"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# One design through the ladder
# ---------------------------------------------------------------------------


def check_design(
    design,
    name: Optional[str] = None,
    suppress: Iterable[str] = (),
    cache=None,
) -> DesignReport:
    """Run one design through all three analysis levels.

    ``design`` may be an :class:`~repro.core.accelerator.Accelerator`, a
    :class:`~repro.core.accelerator.GeneratedDesign`, or a
    :class:`~repro.core.compiler.CompiledDesign`.  Netlist and program
    levels are skipped when the spec level reports errors (the design
    cannot be compiled).

    ``cache`` (a :class:`~repro.exec.cache.CompileCache`) memoizes the
    expensive halves -- the domain-enumerating ``analysis.spec``
    findings and the compile/lower products feeding levels 2 and 3 --
    under the same stage keys the compiler uses.  With a persistent
    cache, repeat ``repro check`` invocations skip re-enumerating
    iteration domains entirely.

    Two escape hatches let single layers be checked in isolation: a bare
    :class:`~repro.rtl.netlist.Netlist` runs only level 2, and an encoded
    instruction stream (a sequence of ``(opcode, rs1, rs2)`` triples)
    runs only level 3.
    """
    profiler = get_profiler()

    if hasattr(design, "modules") and hasattr(design, "top_name"):
        with profiler.scope("analysis.netlist"):
            found = check_netlist(design)
        return DesignReport(
            name or design.top_name, _suppress(found, suppress), levels=["netlist"]
        )
    if _is_stream(design):
        with profiler.scope("analysis.program"):
            found = check_program(design)
        return DesignReport(
            name or "program", _suppress(found, suppress), levels=["program"]
        )

    axes = _axes_of(design)
    label = name or axes.spec.name
    diagnostics: List[Diagnostic] = []
    levels = ["spec"]

    with profiler.scope("analysis.spec"):
        diagnostics.extend(
            check_spec(
                axes.spec,
                axes.bounds,
                axes.transform,
                axes.sparsity,
                axes.balancing,
                cache=cache,
            )
        )

    if not any(d.severity >= Severity.ERROR for d in diagnostics):
        try:
            compiled = _compiled_of(design, cache=cache)
            if cache is not None:
                netlist = cache.lower(compiled, check=False)
            else:
                from ..rtl.lowering import lower_design

                netlist = lower_design(compiled, check=False)
        except SpecError as error:
            diagnostics.append(
                Diagnostic(
                    "STL-CK-001",
                    Severity.ERROR,
                    "check",
                    f"design failed to compile: {error}",
                    label,
                )
            )
        else:
            levels.append("netlist")
            with profiler.scope("analysis.netlist"):
                diagnostics.extend(check_netlist(netlist))
            levels.append("program")
            with profiler.scope("analysis.program"):
                stream, unit_names = demo_program(compiled)
                diagnostics.extend(check_program(stream, unit_names))

    return DesignReport(label, _suppress(diagnostics, suppress), levels=levels)


def _is_stream(design) -> bool:
    return (
        isinstance(design, (list, tuple))
        and len(design) > 0
        and all(
            isinstance(entry, (list, tuple)) and len(entry) == 3
            for entry in design
        )
    )


class _Axes:
    """The five design axes, however the caller's object packages them."""

    def __init__(self, spec, bounds, transform, sparsity, balancing):
        self.spec = spec
        self.bounds = bounds
        self.transform = transform
        self.sparsity = sparsity
        self.balancing = balancing


def _axes_of(design) -> _Axes:
    if hasattr(design, "compiled"):  # GeneratedDesign
        design = design.compiled
    if not hasattr(design, "spec") or not hasattr(design, "transform"):
        raise TypeError(
            f"cannot check {type(design).__name__}: expected an Accelerator,"
            " GeneratedDesign, or CompiledDesign"
        )
    return _Axes(
        design.spec,
        design.bounds,
        design.transform,
        getattr(design, "sparsity", None),
        getattr(design, "balancing", None),
    )


def _compiled_of(design, cache=None):
    if hasattr(design, "compiled"):  # GeneratedDesign
        return design.compiled
    if hasattr(design, "array"):  # CompiledDesign
        return design
    if cache is not None:
        return cache.compile(
            design.spec,
            design.bounds,
            design.transform,
            sparsity=design.sparsity,
            balancing=design.balancing,
            membufs=design.membufs,
            element_bits=getattr(design, "element_bits", 32),
            check=False,
        )
    from ..core.compiler import compile_design

    return compile_design(
        design.spec,
        design.bounds,
        design.transform,
        sparsity=design.sparsity,
        balancing=design.balancing,
        membufs=design.membufs,
        element_bits=getattr(design, "element_bits", 32),
        check=False,
    )


# ---------------------------------------------------------------------------
# Demo program synthesis (level 3 input)
# ---------------------------------------------------------------------------


def demo_program(compiled) -> Tuple[List[Tuple[int, int, int]], Dict[int, str]]:
    """A canonical load program for a design's memory buffers.

    Synthesizes the DRAM-to-buffer transfers a host would issue before
    launching the design -- one per buffer, dense or CSR-style depending
    on the buffer's fibertree axes -- and returns the encoded stream plus
    the unit-id map.  Designs without buffers get a single dense load
    into a stand-in scratchpad, so level 3 always has a program to check.
    """
    from ..core.memspec import dense_matrix_buffer

    membufs = dict(compiled.membufs) if compiled.membufs else {
        "scratch": dense_matrix_buffer(
            "scratch", _DEFAULT_SPAN, _DEFAULT_SPAN
        )
    }
    unit_names = {0: "DRAM"}
    unit_ids = {}
    for offset, tensor in enumerate(sorted(membufs)):
        unit_names[offset + 1] = tensor
        unit_ids[tensor] = offset + 1

    stream: List[Tuple[int, int, int]] = []
    base = _WINDOW_STRIDE
    for tensor in sorted(membufs):
        transfer = _buffer_transfer(membufs[tensor], unit_ids[tensor], base)
        if transfer is not None:
            stream.extend(transfer)
            base += _WINDOW_STRIDE
    return stream, unit_names


def _buffer_transfer(
    bufspec, unit_id: int, base: int
) -> Optional[List[Tuple[int, int, int]]]:
    from ..core.memspec import AxisType
    from ..isa.encoding import (
        ENTIRE_AXIS,
        AxisTypeCode,
        MetadataType,
        Opcode,
        Target,
        make,
    )

    # Program axes are innermost-first; buffer axes are outermost-first.
    axes = list(reversed(bufspec.axes))
    types = [axis.axis_type for axis in axes]
    out: List[Tuple[int, int, int]] = []

    def push(opcode, target=Target.FOR_BOTH, axis=0, metadata_type=0, value=0):
        out.append(make(opcode, target, axis, metadata_type, value).encode())

    push(Opcode.SET_SRC_AND_DST, value=(0 << 8) | unit_id)
    push(Opcode.SET_ADDRESS, Target.FOR_SRC, value=base)

    if all(t is AxisType.DENSE for t in types):
        stride = 1
        for axis_index, axis in enumerate(axes):
            span = axis.size or _DEFAULT_SPAN
            push(Opcode.SET_SPAN, axis=axis_index, value=span)
            push(Opcode.SET_AXIS_TYPE, axis=axis_index, value=int(AxisTypeCode.DENSE))
            push(Opcode.SET_DATA_STRIDE, axis=axis_index, value=stride)
            stride *= span
    elif (
        len(types) == 2
        and types[0] is AxisType.COMPRESSED
        and types[1] is AxisType.DENSE
    ):
        # CSR-style: Listing 7's second snippet.
        rows = axes[1].size or _DEFAULT_SPAN
        push(
            Opcode.SET_METADATA_ADDRESS,
            Target.FOR_SRC,
            axis=0,
            metadata_type=int(MetadataType.ROW_ID),
            value=base + (_WINDOW_STRIDE >> 2),
        )
        push(
            Opcode.SET_METADATA_ADDRESS,
            Target.FOR_SRC,
            axis=0,
            metadata_type=int(MetadataType.COORD),
            value=base + (_WINDOW_STRIDE >> 1),
        )
        push(Opcode.SET_SPAN, axis=0, value=ENTIRE_AXIS)
        push(Opcode.SET_SPAN, axis=1, value=rows)
        push(Opcode.SET_DATA_STRIDE, axis=0, value=1)
        push(Opcode.SET_AXIS_TYPE, axis=0, value=int(AxisTypeCode.COMPRESSED))
        push(Opcode.SET_AXIS_TYPE, axis=1, value=int(AxisTypeCode.DENSE))
    else:
        # Bitvector / linked-list / deeper fibertrees have no canonical
        # host-side load program yet; skip them.
        return None

    push(Opcode.ISSUE)
    return out


# ---------------------------------------------------------------------------
# Example discovery
# ---------------------------------------------------------------------------


class ExampleTarget:
    """One discovered example file and its ``build()`` entry point."""

    def __init__(self, name: str, path: str, build=None, error: str = ""):
        self.name = name
        self.path = path
        self.build = build
        self.error = error


def discover_examples(paths: Sequence[str]) -> List[ExampleTarget]:
    """Import every example file and locate its ``build()`` entry point.

    ``paths`` may mix files and directories; directories contribute their
    non-underscore ``*.py`` files in sorted order.  Import failures and
    missing ``build()`` functions are reported as targets with ``error``
    set rather than raised, so one broken example cannot hide the rest.
    """
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for entry in sorted(os.listdir(path)):
                if entry.endswith(".py") and not entry.startswith("_"):
                    files.append(os.path.join(path, entry))
        else:
            files.append(path)

    targets: List[ExampleTarget] = []
    for path in files:
        name = os.path.splitext(os.path.basename(path))[0]
        try:
            spec = importlib.util.spec_from_file_location(
                f"repro_example_{name}", path
            )
            if spec is None or spec.loader is None:
                raise ImportError(f"cannot load {path}")
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)
        except Exception as error:  # noqa: BLE001 -- report, don't crash
            targets.append(
                ExampleTarget(name, path, error=f"import failed: {error}")
            )
            continue
        build = getattr(module, "build", None)
        if not callable(build):
            targets.append(
                ExampleTarget(
                    name, path, error="example has no build() entry point"
                )
            )
        else:
            targets.append(ExampleTarget(name, path, build=build))
    return targets


def run_check(
    paths: Sequence[str],
    suppress: Iterable[str] = (),
    cache=None,
) -> CheckReport:
    """Discover examples under ``paths`` and run each through the ladder.

    ``cache`` is forwarded to :func:`check_design` for every discovered
    design, so designs sharing axes -- and repeat invocations, when the
    cache is disk-backed -- reuse the memoized analysis products."""
    reports: List[DesignReport] = []
    for target in discover_examples(paths):
        if target.error:
            reports.append(
                DesignReport(
                    target.name,
                    [
                        Diagnostic(
                            "STL-CK-001",
                            Severity.ERROR,
                            "check",
                            target.error,
                            target.name,
                        )
                    ],
                    source=target.path,
                )
            )
            continue
        try:
            design = target.build()
        except Exception as error:  # noqa: BLE001 -- report, don't crash
            reports.append(
                DesignReport(
                    target.name,
                    [
                        Diagnostic(
                            "STL-CK-001",
                            Severity.ERROR,
                            "check",
                            f"build() raised {type(error).__name__}: {error}",
                            target.name,
                        )
                    ],
                    source=target.path,
                )
            )
            continue
        report = check_design(
            design, name=target.name, suppress=suppress, cache=cache
        )
        report.source = target.path
        reports.append(report)
    return CheckReport(reports)


__all__ = [
    "SCHEMA_VERSION",
    "CheckReport",
    "DesignReport",
    "ExampleTarget",
    "check_design",
    "demo_program",
    "discover_examples",
    "render_text",
    "run_check",
]
