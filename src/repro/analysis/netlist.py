"""Level 2: netlist dataflow lint (``STL-NL-*``).

Absorbs and extends the original ``repro.rtl.lint`` name-level checks
with dataflow analyses over the structural RTL IR:

* **bit-width inference** over the expression strings of assigns, sync
  statements, and instance connections, warning on mismatches
  (``STL-NL-012``) -- a recursive-descent evaluator that understands
  based literals, part/bit selects, memory element selects, concats,
  replications, and the usual operators, with Verilog's convention that
  unsized literals adapt to the other operand;
* **combinational-loop detection** (``STL-NL-013``) via a cycle search
  over the per-module continuous-assign dependency graph (registers
  break cycles);
* **multiple-driver detection** (``STL-NL-014``), range-aware so the
  generated arrays -- which drive disjoint slices of one bus from many
  PE instances -- stay clean;
* **dead-net detection** (``STL-NL-015``) for declared-but-unreferenced
  nets;
* **reset-coverage checks** (``STL-NL-016``) for regs driven in a sync
  block whose reset arm forgets them (memory arrays are exempt -- SRAM
  macros are not reset);
* **part-select range checks** (``STL-NL-017``) during width inference.

The original structural checks keep their semantics under new codes
(``STL-NL-001`` .. ``STL-NL-011``); :mod:`repro.rtl.lint` now delegates
here and converts error-severity diagnostics back to its legacy strings.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..rtl.netlist import Module, Netlist, PortDir, expression_identifiers
from .diagnostics import Diagnostic, Severity, suppress as _suppress

_IDENT_RE = re.compile(r"^\s*([A-Za-z_][A-Za-z0-9_]*)")
_WORD_IF = re.compile(r"^if\b")
_WORD_ELSE = re.compile(r"^else\b")
_LHS_SELECT = re.compile(
    r"^\s*([A-Za-z_][A-Za-z0-9_]*)\s*"
    r"(?:\[\s*(\d+)\s*(?::\s*(\d+)\s*)?\])?\s*$"
)


# ---------------------------------------------------------------------------
# Statement parsing (shared with repro.rtl.lint)
# ---------------------------------------------------------------------------


def strip_guard(statement: str) -> str:
    """Drop a leading ``if (...)`` guard (balanced parens) from a statement."""
    text = statement.lstrip()
    if not _WORD_IF.match(text):
        return text
    start = text.find("(")
    if start < 0:
        return text
    depth = 0
    for pos in range(start, len(text)):
        if text[pos] == "(":
            depth += 1
        elif text[pos] == ")":
            depth -= 1
            if depth == 0:
                return text[pos + 1:].lstrip()
    return text


def sequential_assignments(statement: str) -> Iterator[Tuple[str, str]]:
    """Yield every ``(lhs, rhs)`` nonblocking assignment in a sequential
    statement, handling chained and else-arm forms such as
    ``if (c) a <= x; else b <= y;`` (both ``a`` and ``b`` are targets)."""
    for fragment in statement.split(";"):
        fragment = fragment.strip()
        while True:
            if _WORD_ELSE.match(fragment):
                fragment = fragment[4:].lstrip()
                continue
            if _WORD_IF.match(fragment):
                stripped = strip_guard(fragment)
                if stripped != fragment:
                    fragment = stripped
                    continue
            break
        if "<=" in fragment:
            lhs, rhs = fragment.split("<=", 1)
            if lhs.strip():
                yield lhs.strip(), rhs.strip()


def lhs_identifiers(statement: str) -> List[str]:
    """Every identifier assigned by a sequential statement."""
    names = []
    for lhs, _ in sequential_assignments(statement):
        match = _IDENT_RE.match(lhs)
        if match:
            names.append(match.group(1))
    return names


def leading_identifier(text: str) -> str:
    match = _IDENT_RE.match(text)
    return match.group(1) if match else ""


# ---------------------------------------------------------------------------
# Width inference
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"(?P<based>\d+'[bdh][0-9a-fA-FxzXZ_]+)"
    r"|(?P<num>\d+)"
    r"|(?P<id>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<op><<<|>>>|<<|>>|<=|>=|==|!=|&&|\|\||[-+*/%&|^~!<>()\[\]{},:?])"
    r"|(?P<ws>\s+)"
)

_COMPARISON_OPS = frozenset({"==", "!=", "<", ">", "<=", ">=", "&&", "||"})
_SHIFT_OPS = frozenset({"<<", ">>", "<<<", ">>>"})


class _ParseAbort(Exception):
    """Internal: the expression uses syntax the inferencer does not model;
    width checking is skipped for it (never an error)."""


class WidthEnv:
    """Declared widths of one module, as the width inferencer sees them."""

    def __init__(self, module: Module):
        self.widths: Dict[str, int] = {}
        self.memories: Set[str] = set()
        for port in module.ports:
            self.widths[port.name] = port.width
        for net in module.nets:
            self.widths[net.name] = net.width
            if net.depth > 0:
                self.memories.add(net.name)


class _WidthParser:
    """Recursive-descent width evaluator over one expression string.

    Returns ``(bits, value)`` pairs: ``bits`` is ``None`` for unsized
    literals (they adapt to the other operand, as in Verilog) and for
    subexpressions the model cannot size; ``value`` is only tracked for
    literal constants (needed for part-select bounds and replication
    counts).
    """

    def __init__(self, text: str, env: WidthEnv, report):
        self.tokens: List[Tuple[str, str]] = []
        pos = 0
        for match in _TOKEN_RE.finditer(text):
            if match.start() != pos:
                raise _ParseAbort()
            pos = match.end()
            if match.lastgroup != "ws":
                self.tokens.append((match.lastgroup, match.group(0)))
        if pos != len(text):
            raise _ParseAbort()
        self.pos = 0
        self.env = env
        self.report = report

    # -- token plumbing -------------------------------------------------
    def _peek(self) -> Optional[Tuple[str, str]]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> Tuple[str, str]:
        token = self._peek()
        if token is None:
            raise _ParseAbort()
        self.pos += 1
        return token

    def _accept(self, text: str) -> bool:
        token = self._peek()
        if token is not None and token[1] == text:
            self.pos += 1
            return True
        return False

    def _expect(self, text: str) -> None:
        if not self._accept(text):
            raise _ParseAbort()

    # -- grammar --------------------------------------------------------
    def parse(self) -> Tuple[Optional[int], Optional[int]]:
        result = self._ternary()
        if self._peek() is not None:
            raise _ParseAbort()
        return result

    def _ternary(self) -> Tuple[Optional[int], Optional[int]]:
        condition = self._binary(0)
        if self._accept("?"):
            true_arm = self._ternary()
            self._expect(":")
            false_arm = self._ternary()
            return _merge(true_arm[0], false_arm[0]), None
        return condition

    _LEVELS: Tuple[Tuple[str, ...], ...] = (
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", ">", "<=", ">="),
        ("<<", ">>", "<<<", ">>>"),
        ("+", "-"),
        ("*", "/", "%"),
    )

    def _binary(self, level: int) -> Tuple[Optional[int], Optional[int]]:
        if level >= len(self._LEVELS):
            return self._unary()
        left = self._binary(level + 1)
        while True:
            token = self._peek()
            if token is None or token[1] not in self._LEVELS[level]:
                return left
            op = self._next()[1]
            right = self._binary(level + 1)
            if op in _COMPARISON_OPS:
                left = (1, None)
            elif op in _SHIFT_OPS:
                left = (left[0], None)
            else:
                left = (_merge(left[0], right[0]), None)

    def _unary(self) -> Tuple[Optional[int], Optional[int]]:
        token = self._peek()
        if token is not None and token[1] in ("!", "~", "-", "+", "&", "|", "^"):
            op = self._next()[1]
            operand = self._unary()
            if op in ("!", "&", "|", "^"):
                return (1, None)
            return (operand[0], None)
        return self._primary()

    def _primary(self) -> Tuple[Optional[int], Optional[int]]:
        token = self._next()
        kind, text = token
        if text == "(":
            inner = self._ternary()
            self._expect(")")
            return inner
        if text == "{":
            return self._concat()
        if kind == "based":
            width_text, _, value_text = text.partition("'")
            try:
                value = int(value_text[1:].replace("_", ""), _base(value_text[0]))
            except ValueError:
                value = None
            return int(width_text), value
        if kind == "num":
            return None, int(text)
        if kind == "id":
            return self._identifier(text)
        raise _ParseAbort()

    def _concat(self) -> Tuple[Optional[int], Optional[int]]:
        first = self._ternary()
        if self._accept("{"):
            # Replication {N{expr}}: the count must be a known constant.
            inner = self._ternary()
            self._expect("}")
            self._expect("}")
            if first[1] is None or inner[0] is None:
                return None, None
            return first[1] * inner[0], None
        widths = [first[0]]
        while self._accept(","):
            widths.append(self._ternary()[0])
        self._expect("}")
        if any(w is None for w in widths):
            return None, None
        return sum(widths), None

    def _identifier(self, name: str) -> Tuple[Optional[int], Optional[int]]:
        width = self.env.widths.get(name)
        element_pending = name in self.env.memories
        first = True
        while self._peek() is not None and self._peek()[1] == "[":
            self._next()
            index = self._ternary()
            if self._accept(":"):
                low = self._ternary()
                self._expect("]")
                hi, lo = index[1], low[1]
                if hi is None or lo is None:
                    width = None
                elif hi < lo:
                    self.report(
                        f"part-select [{hi}:{lo}] of {name!r} is reversed"
                    )
                    width = None
                else:
                    if width is not None and hi >= width:
                        self.report(
                            f"part-select [{hi}:{lo}] exceeds the"
                            f" {width}-bit width of {name!r}"
                        )
                    width = hi - lo + 1
            else:
                self._expect("]")
                if first and element_pending:
                    pass  # memory element select keeps the element width
                else:
                    if (
                        width is not None
                        and index[1] is not None
                        and index[1] >= width
                    ):
                        self.report(
                            f"bit-select [{index[1]}] exceeds the"
                            f" {width}-bit width of {name!r}"
                        )
                    width = 1
            first = False
        return width, None


def _merge(a: Optional[int], b: Optional[int]) -> Optional[int]:
    """Width of a context-determined binary result; unsized adapts."""
    if a is None:
        return b
    if b is None:
        return a
    return max(a, b)


def _base(marker: str) -> int:
    return {"b": 2, "d": 10, "h": 16}[marker]


def infer_width(
    expression: str, env: WidthEnv, report=lambda message: None
) -> Optional[int]:
    """Inferred bit width of an expression, or None when unknown.

    ``report`` receives messages for range violations found on the way
    (out-of-bounds part/bit selects).
    """
    try:
        return _WidthParser(expression, env, report).parse()[0]
    except _ParseAbort:
        return None


# ---------------------------------------------------------------------------
# Module-level checks
# ---------------------------------------------------------------------------


def check_module(module: Module, netlist: Netlist) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    loc = module.name
    declared = module.declared_names()
    env = WidthEnv(module)
    outputs = {p.name for p in module.ports if p.direction is PortDir.OUTPUT}
    inputs = {p.name for p in module.ports if p.direction is PortDir.INPUT}
    regs = {n.name for n in module.nets if n.is_reg}
    wires = {n.name for n in module.nets if not n.is_reg}
    driven: Set[str] = set()
    # Continuous drivers per signal: (lo, hi, description); hi None when the
    # driven range is not statically known (skipped by overlap detection).
    cont_drivers: Dict[str, List[Tuple[int, Optional[int], str]]] = {}

    def emit(code, severity, message, suggestion=""):
        diagnostics.append(
            Diagnostic(code, severity, "netlist", message, loc, suggestion)
        )

    def check_refs(expression: str, where: str) -> None:
        for name in expression_identifiers(expression):
            if name not in declared:
                emit(
                    "STL-NL-001",
                    Severity.ERROR,
                    f"undeclared identifier {name!r} in {where}",
                )

    def width_of(expression: str, where: str) -> Optional[int]:
        def report(message: str) -> None:
            emit("STL-NL-017", Severity.ERROR, f"{message} in {where}")

        return infer_width(expression, env, report)

    def check_widths(lhs: str, rhs: str, where: str) -> None:
        lhs_width = width_of(lhs, where)
        rhs_width = width_of(rhs, where)
        if lhs_width is not None and rhs_width is not None and lhs_width != rhs_width:
            emit(
                "STL-NL-012",
                Severity.WARNING,
                f"width mismatch in {where}: target {lhs!r} is"
                f" {lhs_width} bits but expression is {rhs_width} bits",
                suggestion="resize one side or slice the wider value",
            )

    def record_driver(lhs: str, description: str) -> None:
        match = _LHS_SELECT.match(lhs)
        if not match:
            name = leading_identifier(lhs)
            if name:
                cont_drivers.setdefault(name, []).append((0, None, description))
            return
        name, hi_text, lo_text = match.groups()
        if hi_text is None:
            width = env.widths.get(name, 1)
            cont_drivers.setdefault(name, []).append((0, width - 1, description))
        elif lo_text is None:
            bit = int(hi_text)
            cont_drivers.setdefault(name, []).append((bit, bit, description))
        else:
            cont_drivers.setdefault(name, []).append(
                (int(lo_text), int(hi_text), description)
            )

    # --- Continuous assigns --------------------------------------------
    for assign in module.assigns:
        name = leading_identifier(assign.lhs)
        where = f"assign {assign.lhs}"
        if name in regs:
            emit(
                "STL-NL-002",
                Severity.ERROR,
                f"assign drives reg {name!r} (must use a sync block)",
            )
        elif name not in wires | outputs:
            emit("STL-NL-004", Severity.ERROR, f"assign drives undeclared {name!r}")
        driven.add(name)
        record_driver(assign.lhs, where)
        check_refs(assign.rhs, where)
        if name in declared:
            check_widths(assign.lhs, assign.rhs, where)

    # --- Sync blocks ----------------------------------------------------
    sync_block_of: Dict[str, int] = {}
    for block_index, block in enumerate(module.sync_blocks):
        block_driven: Set[str] = set()
        for stmt in list(block.statements) + list(block.reset_statements):
            check_refs(stmt, "sync block")
            for lhs, rhs in sequential_assignments(stmt):
                name = leading_identifier(lhs)
                if not name:
                    continue
                if name not in regs:
                    emit(
                        "STL-NL-003",
                        Severity.ERROR,
                        f"sync block drives non-reg {name!r}",
                    )
                driven.add(name)
                block_driven.add(name)
                if name in declared:
                    check_widths(lhs, rhs, f"sync statement {lhs} <= ...")
        for name in sorted(block_driven):
            previous = sync_block_of.get(name)
            if previous is not None and previous != block_index:
                emit(
                    "STL-NL-014",
                    Severity.ERROR,
                    f"reg {name!r} is driven from multiple sync blocks",
                )
            sync_block_of[name] = block_index
        if block.reset_statements:
            reset_covered: Set[str] = set()
            for stmt in block.reset_statements:
                reset_covered.update(lhs_identifiers(stmt))
            for name in sorted(block_driven - reset_covered - env.memories):
                emit(
                    "STL-NL-016",
                    Severity.WARNING,
                    f"reg {name!r} is driven in a sync block but missing"
                    " from its reset arm",
                    suggestion="add a reset statement or drop the reset arm",
                )

    # --- Instances ------------------------------------------------------
    for inst in module.instances:
        child = netlist.modules.get(inst.module_name)
        if child is None:
            emit(
                "STL-NL-007",
                Severity.ERROR,
                f"instance {inst.instance_name!r} of unknown module"
                f" {inst.module_name!r}",
            )
            continue
        child_inputs = {
            p.name for p in child.ports if p.direction is PortDir.INPUT
        }
        for port_name, signal in inst.connections.items():
            where = f"instance {inst.instance_name}.{port_name}"
            if not child.has_port(port_name):
                emit(
                    "STL-NL-008",
                    Severity.ERROR,
                    f"{inst.instance_name} connects missing port"
                    f" {port_name!r} of {child.name}",
                )
                continue
            check_refs(signal, where)
            port = child.port(port_name)
            signal_width = width_of(signal, where)
            if signal_width is not None and signal_width != port.width:
                emit(
                    "STL-NL-012",
                    Severity.WARNING,
                    f"width mismatch in {where}: port is {port.width} bits"
                    f" but {signal!r} is {signal_width} bits",
                )
            if port.direction is PortDir.OUTPUT:
                name = leading_identifier(signal)
                if name:
                    driven.add(name)
                    record_driver(signal, where)
        for port_name in sorted(child_inputs - set(inst.connections)):
            emit(
                "STL-NL-009",
                Severity.ERROR,
                f"{inst.instance_name} leaves input {port_name!r} of"
                f" {child.name} unconnected",
            )

    # --- Driven-set consistency ----------------------------------------
    for name in sorted(outputs - driven):
        emit("STL-NL-005", Severity.ERROR, f"output {name!r} is never driven")
    for name in sorted(driven & inputs):
        emit("STL-NL-006", Severity.ERROR, f"input port {name!r} is driven internally")

    # --- Multiple continuous drivers (range-aware) ----------------------
    for name, ranges in sorted(cont_drivers.items()):
        known = sorted(r for r in ranges if r[1] is not None)
        for (lo_a, hi_a, desc_a), (lo_b, hi_b, desc_b) in zip(known, known[1:]):
            if lo_b <= hi_a:
                emit(
                    "STL-NL-014",
                    Severity.ERROR,
                    f"{name!r} bits [{max(lo_a, lo_b)}:{min(hi_a, hi_b)}]"
                    f" have multiple drivers ({desc_a} and {desc_b})",
                )
                break

    # --- Combinational loops over the assign graph ----------------------
    diagnostics.extend(_check_comb_loops(module, regs, env.memories, loc))

    # --- Dead nets -------------------------------------------------------
    used: Set[str] = set()
    for assign in module.assigns:
        used.update(expression_identifiers(assign.lhs))
        used.update(expression_identifiers(assign.rhs))
    for block in module.sync_blocks:
        for stmt in list(block.statements) + list(block.reset_statements):
            used.update(expression_identifiers(stmt))
    for inst in module.instances:
        for signal in inst.connections.values():
            used.update(expression_identifiers(signal))
    for net in module.nets:
        if net.name not in used:
            emit(
                "STL-NL-015",
                Severity.WARNING,
                f"net {net.name!r} is declared but never used",
                suggestion="delete the declaration",
            )

    return diagnostics


def _check_comb_loops(
    module: Module, regs: Set[str], memories: Set[str], loc: str
) -> List[Diagnostic]:
    """Cycles in the continuous-assign dependency graph are combinational
    loops; registers (sync-driven) legally break feedback paths."""
    sequential = regs | memories
    edges: Dict[str, List[str]] = {}
    for assign in module.assigns:
        target = leading_identifier(assign.lhs)
        if not target or target in sequential:
            continue
        deps = [
            name
            for name in expression_identifiers(assign.rhs)
            if name not in sequential
        ]
        edges.setdefault(target, []).extend(deps)

    diagnostics: List[Diagnostic] = []
    state: Dict[str, int] = {}

    def visit(name: str, stack: List[str]) -> None:
        if state.get(name) == 2:
            return
        if state.get(name) == 1:
            cycle = stack[stack.index(name):] + [name]
            diagnostics.append(
                Diagnostic(
                    "STL-NL-013",
                    Severity.ERROR,
                    "netlist",
                    "combinational loop: " + " -> ".join(cycle),
                    loc,
                    suggestion="break the loop with a register",
                )
            )
            return
        state[name] = 1
        for dep in edges.get(name, ()):
            visit(dep, stack + [name])
        state[name] = 2

    for name in sorted(edges):
        visit(name, [])
    return diagnostics


# ---------------------------------------------------------------------------
# Netlist-level checks
# ---------------------------------------------------------------------------


def check_netlist(
    netlist: Netlist, suppress: Iterable[str] = ()
) -> List[Diagnostic]:
    """Run every netlist check over every module of a design."""
    diagnostics: List[Diagnostic] = []
    if netlist.top_name not in netlist.modules:
        diagnostics.append(
            Diagnostic(
                "STL-NL-011",
                Severity.ERROR,
                "netlist",
                f"top module {netlist.top_name!r} is missing",
            )
        )
        return _suppress(diagnostics, suppress)

    for module in netlist.modules.values():
        diagnostics.extend(check_module(module, netlist))

    # Cycle check over the instantiation graph.
    state: Dict[str, int] = {}

    def visit(name: str, stack: List[str]) -> None:
        if state.get(name) == 2:
            return
        if state.get(name) == 1:
            diagnostics.append(
                Diagnostic(
                    "STL-NL-010",
                    Severity.ERROR,
                    "netlist",
                    "instantiation cycle: " + " -> ".join(stack + [name]),
                )
            )
            return
        state[name] = 1
        module = netlist.modules.get(name)
        if module is not None:
            for inst in module.instances:
                visit(inst.module_name, stack + [name])
        state[name] = 2

    visit(netlist.top_name, [])
    return _suppress(diagnostics, suppress)
