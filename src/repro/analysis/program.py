"""Level 3: static ISA program verification (``STL-PR-*``).

Validates an encoded instruction stream *before* it reaches the executor
(:mod:`repro.isa.driver` / :mod:`repro.isa.machine`): every triple must
decode, every field must be in range for the machine it targets,
configuration must precede each ``ISSUE`` (config state is cleared after
an issue, so stale settings cannot leak), compressed transfers must carry
their metadata addresses and outer span, and the DRAM windows written by
a stream's transfers must not overlap.

The checker mirrors the executor's semantics symbolically: it folds the
stream through the same per-side configuration state machine without
touching memory, so anything it accepts the executor can at least begin
to execute.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..isa.encoding import (
    ENTIRE_AXIS,
    AxisTypeCode,
    ConstantId,
    Instruction,
    MetadataType,
    Opcode,
    Target,
    decode,
)
from .diagnostics import Diagnostic, Severity, suppress as _suppress

_AXIS_FIELD_MAX = 0xFF


class _Side:
    """Symbolic configuration of one transfer side."""

    def __init__(self) -> None:
        self.data_addr: Optional[int] = None
        self.metadata_addrs: Dict[Tuple[int, int], int] = {}
        self.spans: Dict[int, int] = {}
        self.axis_types: Dict[int, AxisTypeCode] = {}

    def rank(self) -> int:
        axes = set(self.spans) | set(self.axis_types)
        return (max(axes) + 1) if axes else 0


def machine_unit_names(machine) -> Dict[int, str]:
    """The unit-id map the executor derives for a machine (duck-typed so
    the checker never needs to import the executor)."""
    names = {0: "DRAM"}
    for offset, name in enumerate(sorted(machine.buffers)):
        names[offset + 1] = name
    return names


def check_program(
    stream: Sequence[Tuple[int, int, int]],
    unit_names: Optional[Dict[int, str]] = None,
    suppress: Iterable[str] = (),
) -> List[Diagnostic]:
    """Statically verify an encoded instruction stream.

    ``unit_names`` maps unit ids to names (see :func:`machine_unit_names`);
    when omitted, unit-id range checks are skipped.
    """
    diagnostics: List[Diagnostic] = []
    src, dst = _Side(), _Side()
    src_unit: Optional[int] = None
    dst_unit: Optional[int] = None
    configured_since_issue = False
    issues = 0
    # (lo, hi, issue index, is_write) DRAM windows of earlier transfers.
    dram_windows: List[Tuple[int, int, int, bool]] = []

    def emit(code, severity, message, index, suggestion=""):
        diagnostics.append(
            Diagnostic(
                code, severity, "program", message, f"instruction {index}", suggestion
            )
        )

    def sides(target: Target) -> List[_Side]:
        if target is Target.FOR_SRC:
            return [src]
        if target is Target.FOR_DST:
            return [dst]
        return [src, dst]

    for index, triple in enumerate(stream):
        try:
            instruction = decode(*triple)
        except (ValueError, TypeError) as error:
            emit(
                "STL-PR-001",
                Severity.ERROR,
                f"undecodable instruction {tuple(triple)!r}: {error}",
                index,
            )
            continue
        diagnostics.extend(_check_fields(instruction, unit_names, index))

        op = instruction.opcode
        if op is Opcode.SET_SRC_AND_DST:
            src_unit = instruction.value >> 8
            dst_unit = instruction.value & 0xFF
            configured_since_issue = True
        elif op is Opcode.SET_ADDRESS:
            for side in sides(instruction.target):
                side.data_addr = instruction.value
            configured_since_issue = True
        elif op is Opcode.SET_METADATA_ADDRESS:
            for side in sides(instruction.target):
                side.metadata_addrs[
                    (instruction.axis, instruction.metadata_type)
                ] = instruction.value
            configured_since_issue = True
        elif op is Opcode.SET_SPAN:
            for side in sides(instruction.target):
                side.spans[instruction.axis] = instruction.value
            configured_since_issue = True
        elif op in (Opcode.SET_DATA_STRIDE, Opcode.SET_METADATA_STRIDE):
            configured_since_issue = True
        elif op is Opcode.SET_AXIS_TYPE:
            try:
                code = AxisTypeCode(instruction.value)
            except ValueError:
                code = None  # already reported by _check_fields
            if code is not None:
                for side in sides(instruction.target):
                    side.axis_types[instruction.axis] = code
            configured_since_issue = True
        elif op is Opcode.SET_CONSTANT:
            configured_since_issue = True
        elif op is Opcode.ISSUE:
            diagnostics.extend(
                _check_issue(
                    src,
                    dst,
                    src_unit,
                    dst_unit,
                    unit_names,
                    configured_since_issue,
                    issues,
                    index,
                    dram_windows,
                )
            )
            src, dst = _Side(), _Side()
            src_unit = dst_unit = None
            configured_since_issue = False
            issues += 1

    if configured_since_issue:
        diagnostics.append(
            Diagnostic(
                "STL-PR-006",
                Severity.WARNING,
                "program",
                "stream ends with configuration not followed by an issue",
                suggestion="append an ISSUE or drop the dangling configuration",
            )
        )
    return _suppress(diagnostics, suppress)


def _check_fields(
    instruction: Instruction, unit_names: Optional[Dict[int, str]], index: int
) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []

    def emit(code, severity, message, suggestion=""):
        diagnostics.append(
            Diagnostic(
                code, severity, "program", message, f"instruction {index}", suggestion
            )
        )

    op = instruction.opcode
    if op is Opcode.SET_AXIS_TYPE:
        try:
            AxisTypeCode(instruction.value)
        except ValueError:
            valid = ", ".join(f"{c.value}={c.name}" for c in AxisTypeCode)
            emit(
                "STL-PR-002",
                Severity.ERROR,
                f"set_axis_type immediate {instruction.value} is out of range"
                f" (valid: {valid})",
            )
    elif op is Opcode.SET_CONSTANT:
        try:
            ConstantId(instruction.axis)
        except ValueError:
            emit(
                "STL-PR-008",
                Severity.WARNING,
                f"set_constant names unknown constant id {instruction.axis}",
            )
    elif op is Opcode.SET_SRC_AND_DST and unit_names is not None:
        for label, unit in (
            ("source", instruction.value >> 8),
            ("destination", instruction.value & 0xFF),
        ):
            if unit not in unit_names:
                emit(
                    "STL-PR-004",
                    Severity.ERROR,
                    f"{label} unit id {unit} does not name a machine unit"
                    f" (known: {sorted(unit_names)})",
                )
    elif op is Opcode.SET_METADATA_ADDRESS:
        try:
            MetadataType(instruction.metadata_type)
        except ValueError:
            emit(
                "STL-PR-002",
                Severity.ERROR,
                f"metadata type {instruction.metadata_type} is out of range",
            )
    if op is Opcode.SET_SPAN and instruction.value == 0:
        emit(
            "STL-PR-009",
            Severity.WARNING,
            f"span of 0 on axis {instruction.axis} makes the transfer empty",
        )
    return diagnostics


def _check_issue(
    src: _Side,
    dst: _Side,
    src_unit: Optional[int],
    dst_unit: Optional[int],
    unit_names: Optional[Dict[int, str]],
    configured: bool,
    issue_index: int,
    index: int,
    dram_windows: List[Tuple[int, int, int, bool]],
) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []

    def emit(code, severity, message, suggestion=""):
        diagnostics.append(
            Diagnostic(
                code, severity, "program", message, f"instruction {index}", suggestion
            )
        )

    if src_unit is None or dst_unit is None or not configured:
        emit(
            "STL-PR-003",
            Severity.ERROR,
            "issue before set_src_and_dst: configuration is cleared after"
            " every issue, so each transfer must be fully re-configured",
            suggestion="call set_src_and_dst (and friends) before stellar_issue",
        )
        return diagnostics

    src_is_dram = src_unit == 0
    dst_is_dram = dst_unit == 0
    if src_is_dram == dst_is_dram:
        names = unit_names or {}
        emit(
            "STL-PR-010",
            Severity.ERROR,
            f"unsupported transfer direction"
            f" {names.get(src_unit, src_unit)!r} ->"
            f" {names.get(dst_unit, dst_unit)!r}; exactly one side must be DRAM",
        )

    # Compressed (CSR) sources need their metadata streams and outer span.
    side = src if src_is_dram else dst
    axis_types = [
        side.axis_types.get(axis, AxisTypeCode.DENSE) for axis in range(side.rank())
    ]
    if axis_types and axis_types[0] is AxisTypeCode.COMPRESSED:
        outer_span = side.spans.get(1)
        if outer_span is None or outer_span == ENTIRE_AXIS:
            emit(
                "STL-PR-005",
                Severity.ERROR,
                "compressed transfer requires the outer span (N_ROWS)",
                suggestion="set_span(FOR_BOTH, 1, n_rows)",
            )
        missing = [
            kind.name
            for kind in (MetadataType.ROW_ID, MetadataType.COORD)
            if (0, int(kind)) not in side.metadata_addrs
        ]
        if missing:
            emit(
                "STL-PR-005",
                Severity.ERROR,
                f"compressed transfer is missing metadata addresses"
                f" for {missing}",
                suggestion="set_metadata_addr for ROW_ID and COORD on axis 0",
            )

    # Overlapping DRAM windows: a window involved in a *write* must not
    # collide with any earlier window of the stream (read-read sharing is
    # fine; a write overlapping anything is an ordering hazard).
    is_write = not src_is_dram
    window = _dram_window(src if src_is_dram else dst)
    if window is not None:
        lo, hi = window
        for other_lo, other_hi, other_issue, other_write in dram_windows:
            if lo <= other_hi and other_lo <= hi and (is_write or other_write):
                emit(
                    "STL-PR-007",
                    Severity.ERROR,
                    f"DRAM window [{lo:#x}, {hi:#x}] of issue {issue_index}"
                    f" overlaps [{other_lo:#x}, {other_hi:#x}] of issue"
                    f" {other_issue}",
                    suggestion="separate the transfers' address ranges",
                )
                break
        dram_windows.append((lo, hi, issue_index, is_write))
    return diagnostics


def _dram_window(side: _Side) -> Optional[Tuple[int, int]]:
    """The [lo, hi] word range a dense transfer touches in DRAM, when it
    is statically known.  Compressed sides read data-dependent ranges, so
    only fully-dense windows are tracked."""
    if side.data_addr is None:
        return None
    rank = side.rank()
    axis_types = [
        side.axis_types.get(axis, AxisTypeCode.DENSE) for axis in range(rank)
    ]
    if any(t is not AxisTypeCode.DENSE for t in axis_types):
        return None
    spans = [side.spans.get(axis, 1) for axis in range(rank)]
    if any(span == ENTIRE_AXIS or span <= 0 for span in spans):
        return None
    extent = 1
    for span in spans:
        extent *= span
    return side.data_addr, side.data_addr + extent - 1
