"""Level 1: specification-legality checks (``STL-SP-*``).

Validates a design *before* compilation: the space-time transform must be
injective over the iteration domain (two iterations mapped to the same
(space, time) coordinate would collide in one PE at one cycle), every
dependence must advance monotonically in time (causality), the PE grid
implied by the transform image must be realizable by the generated array
(16-bit coordinate ports, absolute-value folding of negative positions),
and the sparsity/load-balancing annotations must reference iterators and
tensors that actually exist in the functional spec.

Checks mirror :func:`repro.core.dataflow.validate_schedule` but return
:class:`~repro.analysis.diagnostics.Diagnostic` lists instead of raising
on first failure, so ``repro check`` can report everything at once.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.balancing import LoadBalancingScheme
from ..core.dataflow import SpaceTimeTransform
from ..core.expr import Bounds
from ..core.functionality import FunctionalSpec
from ..core.sparsity import SparsityStructure
from .diagnostics import Diagnostic, Severity, suppress as _suppress

#: PE coordinate ports in the generated array are this wide (see
#: ``repro.rtl.lowering._lower_pe``); space coordinates must fit.
_COORD_BITS = 16

#: Injectivity is checked by exhaustive enumeration up to this many
#: iteration points; larger domains are sampled per-axis instead.
_MAX_ENUMERATED_POINTS = 1 << 16


def check_spec(
    spec: FunctionalSpec,
    bounds: Bounds,
    transform: SpaceTimeTransform,
    sparsity: Optional[SparsityStructure] = None,
    balancing: Optional[LoadBalancingScheme] = None,
    suppress: Tuple[str, ...] = (),
    cache=None,
) -> List[Diagnostic]:
    """Run every spec-legality check; returns all findings.

    Composes :func:`check_spec_transform` (the domain-enumeration checks,
    which depend only on ``(spec, bounds, transform)`` and are memoized
    per that sub-key by :class:`repro.exec.cache.CompileCache`) with
    :func:`check_spec_annotations` (cheap reference checks of the
    sparsity/balancing annotations).

    ``cache`` (a :class:`~repro.exec.cache.CompileCache`) memoizes the
    transform-legality findings under the same ``analysis.spec`` stage
    key the compiler's gate uses, so ``repro check`` shares entries with
    compiles -- including persisted ones when the cache has a disk tier.
    """
    if cache is not None:
        transform_findings = cache.memo(
            "analysis.spec",
            (spec, bounds, transform),
            lambda: check_spec_transform(spec, bounds, transform),
        )
    else:
        transform_findings = check_spec_transform(spec, bounds, transform)
    return compose_spec_findings(
        transform_findings, spec, sparsity, balancing, suppress
    )


def compose_spec_findings(
    transform_findings: List[Diagnostic],
    spec: FunctionalSpec,
    sparsity: Optional[SparsityStructure] = None,
    balancing: Optional[LoadBalancingScheme] = None,
    suppress: Tuple[str, ...] = (),
) -> List[Diagnostic]:
    """Combine memoizable transform findings with the (cheap, never
    cached) annotation checks -- the composition rule of
    :func:`check_spec`, shared with callers that memoized the first
    half themselves."""
    diagnostics = list(transform_findings)
    # Shape-consistency failures abort early: every other check (including
    # the annotation ones) presumes a well-shaped spec/bounds/transform.
    aborted = len(diagnostics) == 1 and diagnostics[0].code in (
        "STL-SP-001",
        "STL-SP-002",
    )
    if not aborted:
        diagnostics.extend(check_spec_annotations(spec, sparsity, balancing))
    return _suppress(diagnostics, suppress)


def check_spec_transform(
    spec: FunctionalSpec,
    bounds: Bounds,
    transform: SpaceTimeTransform,
) -> List[Diagnostic]:
    """The transform-legality subset of :func:`check_spec`.

    Everything here -- shape consistency, injectivity, causality, PE-grid
    realizability -- is a pure function of ``(spec, bounds, transform)``;
    sweeping sparsity or balancing candidates never changes the result,
    so design-space exploration verifies each sub-key exactly once.
    """
    diagnostics: List[Diagnostic] = []
    order = spec.index_names

    # --- Shape consistency (everything else depends on it) -------------
    if transform.rank != len(order):
        diagnostics.append(
            Diagnostic(
                "STL-SP-001",
                Severity.ERROR,
                "spec",
                f"transform rank {transform.rank} does not match the"
                f" {len(order)} iteration indices {list(order)}",
                location=spec.name,
                suggestion="use one transform row/column per iteration index",
            )
        )
        return diagnostics

    missing = [name for name in order if name not in bounds]
    if missing:
        diagnostics.append(
            Diagnostic(
                "STL-SP-002",
                Severity.ERROR,
                "spec",
                f"bounds are missing iteration indices {missing}",
                location=spec.name,
                suggestion="give every index of the spec an explicit bound",
            )
        )
        return diagnostics

    extra = [name for name in bounds.names() if name not in order]
    if extra:
        diagnostics.append(
            Diagnostic(
                "STL-SP-011",
                Severity.WARNING,
                "spec",
                f"bounds name indices {extra} that the spec does not iterate",
                location=spec.name,
            )
        )

    diagnostics.extend(_check_injectivity(spec, bounds, transform))
    diagnostics.extend(_check_causality(spec, transform))
    diagnostics.extend(_check_grid(spec, bounds, transform))
    return diagnostics


def check_spec_annotations(
    spec: FunctionalSpec,
    sparsity: Optional[SparsityStructure] = None,
    balancing: Optional[LoadBalancingScheme] = None,
) -> List[Diagnostic]:
    """The annotation-reference subset of :func:`check_spec`: sparsity
    skips and load-balancing shifts must name iterators and tensors the
    functional spec actually has."""
    diagnostics: List[Diagnostic] = []
    diagnostics.extend(_check_sparsity(spec, sparsity))
    diagnostics.extend(_check_balancing(spec, balancing))
    return diagnostics


# ---------------------------------------------------------------------------
# Injectivity
# ---------------------------------------------------------------------------


def _check_injectivity(
    spec: FunctionalSpec, bounds: Bounds, transform: SpaceTimeTransform
) -> List[Diagnostic]:
    """Two iteration points mapped to the same (space, time) coordinate
    would execute in the same PE at the same cycle."""
    order = spec.index_names
    if bounds.point_count(order) > _MAX_ENUMERATED_POINTS:
        # Linear maps collide on a full domain iff they collide on a
        # difference vector; an invertible matrix never does, so for big
        # domains the constructor's invertibility check already covers us.
        return []
    seen: Dict[Tuple[int, ...], Tuple[int, ...]] = {}
    for point in bounds.domain(order):
        image = transform.apply(point)
        other = seen.get(image)
        if other is not None:
            return [
                Diagnostic(
                    "STL-SP-003",
                    Severity.ERROR,
                    "spec",
                    f"transform is not injective: iterations {other} and"
                    f" {point} both map to space-time {image}",
                    location=spec.name,
                    suggestion="use an invertible space-time matrix",
                )
            ]
        seen[image] = point
    return []


# ---------------------------------------------------------------------------
# Causality
# ---------------------------------------------------------------------------


def _check_causality(
    spec: FunctionalSpec, transform: SpaceTimeTransform
) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for name, d in spec.difference_vectors().items():
        disp = transform.displacement(d)
        space = disp[: transform.space_dims]
        dt = disp[transform.space_dims]
        if dt < 0:
            diagnostics.append(
                Diagnostic(
                    "STL-SP-004",
                    Severity.ERROR,
                    "spec",
                    f"transform violates causality for {name!r}: time delta"
                    f" {dt} < 0 along difference vector {d}",
                    location=spec.name,
                    suggestion="flip the sign of the time row along this dependence",
                )
            )
        elif dt == 0 and any(space):
            diagnostics.append(
                Diagnostic(
                    "STL-SP-005",
                    Severity.WARNING,
                    "spec",
                    f"{name!r} moves {space} in space with zero time delta --"
                    " a combinational broadcast chain across PEs",
                    location=spec.name,
                    suggestion="add a time component to pipeline the path",
                )
            )
    return diagnostics


# ---------------------------------------------------------------------------
# PE grid vs transform image
# ---------------------------------------------------------------------------


def _check_grid(
    spec: FunctionalSpec, bounds: Bounds, transform: SpaceTimeTransform
) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    order = spec.index_names
    if bounds.point_count(order) > _MAX_ENUMERATED_POINTS:
        return diagnostics
    footprint = transform.footprint(bounds, order)
    box = footprint.bounding_box()
    if any(hi >= (1 << _COORD_BITS) for _, hi in box):
        diagnostics.append(
            Diagnostic(
                "STL-SP-006",
                Severity.ERROR,
                "spec",
                f"transform image spans PE coordinates {box} which overflow"
                f" the {_COORD_BITS}-bit coordinate ports of the array",
                location=spec.name,
                suggestion="tile the iteration space before mapping it",
            )
        )
    if any(lo < 0 for lo, _ in box):
        diagnostics.append(
            Diagnostic(
                "STL-SP-007",
                Severity.WARNING,
                "spec",
                f"transform image includes negative PE coordinates {box};"
                " the RTL backend folds them by absolute value",
                location=spec.name,
                suggestion="translate the space rows to a non-negative origin",
            )
        )
    return diagnostics


# ---------------------------------------------------------------------------
# Annotation references
# ---------------------------------------------------------------------------


def _check_sparsity(
    spec: FunctionalSpec, sparsity: Optional[SparsityStructure]
) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    if sparsity is None:
        return diagnostics
    known_tensors = {
        t.name for t in (*spec.input_tensors(), *spec.output_tensors())
    }
    for skip in sparsity:
        for name in skip.skipped_names:
            if name not in spec.index_names:
                diagnostics.append(
                    Diagnostic(
                        "STL-SP-008",
                        Severity.ERROR,
                        "spec",
                        f"sparsity skip names unknown iterator {name!r};"
                        f" spec iterates {list(spec.index_names)}",
                        location=spec.name,
                    )
                )
        for name in skip.condition.free_indices():
            if name not in spec.index_names:
                diagnostics.append(
                    Diagnostic(
                        "STL-SP-008",
                        Severity.ERROR,
                        "spec",
                        f"skip condition references unknown iterator {name!r}",
                        location=spec.name,
                    )
                )
        for tensor in skip.condition_tensors():
            if tensor.name not in known_tensors:
                diagnostics.append(
                    Diagnostic(
                        "STL-SP-009",
                        Severity.ERROR,
                        "spec",
                        f"skip condition references unknown tensor"
                        f" {tensor.name!r}; spec has {sorted(known_tensors)}",
                        location=spec.name,
                    )
                )
    return diagnostics


def _check_balancing(
    spec: FunctionalSpec, balancing: Optional[LoadBalancingScheme]
) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    if balancing is None:
        return diagnostics
    for shift in balancing:
        for name in (*shift.src, *shift.dst):
            if name not in spec.index_names:
                diagnostics.append(
                    Diagnostic(
                        "STL-SP-010",
                        Severity.ERROR,
                        "spec",
                        f"load-balancing shift references unknown iterator"
                        f" {name!r}; spec iterates {list(spec.index_names)}",
                        location=spec.name,
                    )
                )
    return diagnostics
