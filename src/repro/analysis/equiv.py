"""Netlist equivalence checking for the optimization pass pipeline.

The fourth level of the analysis ladder, in the chisel_sfv direction the
ROADMAP names: every :mod:`repro.rtl.passes` transform is *proven*
against its input rather than trusted.  Three methods, cheapest first:

1. **Interface check** -- the two netlists must expose the same modules
   with identical port signatures (``STL-EQ-002`` on mismatch).  Passes
   rewrite module bodies; they never touch interfaces.
2. **Structural / bounded-symbolic check** -- for every assign target
   both sides still drive, the combinational cone is inlined through
   singly-driven wires and canonicalized
   (:func:`repro.rtl.passes.canonicalize`); identical canonical forms
   prove the cone.  Cones that differ structurally are evaluated under
   bit-precise integer semantics (the same value rules as
   :mod:`repro.rtl.sim`) over every leaf assignment when the leaf bits
   fit ``max_exhaustive_bits``, else over corner + random assignments; a
   concrete counterexample is ``STL-EQ-001``.  Sequential behaviour is
   compared as canonicalized guarded next-state statements.
3. **Random-stimulus differential backstop** -- every shared module is
   simulated pre/post in lockstep (:class:`repro.rtl.sim.RTLSimulator`)
   under one seeded stimulus, traces are captured with
   :func:`repro.obs.export.capture_rtl_trace` and aligned with
   :func:`repro.obs.export.first_trace_divergence`; the first divergent
   signal and cycle become ``STL-EQ-003``.  The differential runs
   per-module rather than only at the top because the lowered top ties
   test inputs low -- a module-local bug may be unobservable from the
   top's ports.

``repro verify`` (:mod:`repro.analysis.verify`) drives this over every
example design and suite layer.
"""

from __future__ import annotations

import itertools
import random
import zlib
from typing import Dict, List, Optional, Set, Tuple

from ..obs.export import capture_rtl_trace, first_trace_divergence
from ..rtl.netlist import Module, Netlist, PortDir
from ..rtl.passes import canonicalize
from ..rtl.sim import RTLSimulator, parse_expression, parse_statement
from .diagnostics import Diagnostic, Severity

#: Node-count ceiling for cone inlining.  A cone that trips it is marked
#: incomplete and is *never* refuted by bounded evaluation (its leaves
#: may not mean the same thing on both sides); the differential backstop
#: decides instead.
_INLINE_NODE_BUDGET = 800

#: Random assignments tried per cone when exhaustive enumeration is too
#: wide, on top of the all-zeros / all-ones / one-hot-max corners.
_BOUNDED_SAMPLES = 32


class EquivResult:
    """Outcome of one before/after equivalence check."""

    __slots__ = ("diagnostics", "stats")

    def __init__(self):
        self.diagnostics: List[Diagnostic] = []
        self.stats: Dict[str, int] = {
            "modules": 0,
            "cones": 0,
            "proved_structural": 0,
            "checked_bounded": 0,
            "deferred_to_differential": 0,
            "sequential_proved": 0,
            "sequential_deferred": 0,
            "differential_modules": 0,
            "differential_cycles": 0,
        }

    @property
    def ok(self) -> bool:
        return not any(d.severity >= Severity.ERROR for d in self.diagnostics)

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "stats": dict(self.stats),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


def check_equivalence(
    before: Netlist,
    after: Netlist,
    cycles: int = 16,
    seed: int = 0,
    max_exhaustive_bits: int = 12,
    design_name: str = "",
) -> EquivResult:
    """Prove ``after`` equivalent to ``before`` (see module docstring).

    ``cycles`` and ``seed`` parameterize the differential backstop; the
    backstop always runs, even when the symbolic stage already refuted a
    cone, because it is the localizer -- its ``STL-EQ-003`` names the
    first divergent signal and cycle.
    """
    result = EquivResult()
    prefix = f"{design_name}." if design_name else ""

    if before.top_name != after.top_name:
        result.diagnostics.append(
            Diagnostic(
                "STL-EQ-002",
                Severity.ERROR,
                "equiv",
                f"top module renamed: {before.top_name!r} !="
                f" {after.top_name!r}",
                f"{prefix}{after.top_name}",
            )
        )
    missing = sorted(set(before.modules) - set(after.modules))
    added = sorted(set(after.modules) - set(before.modules))
    for name in missing:
        result.diagnostics.append(
            Diagnostic(
                "STL-EQ-002",
                Severity.ERROR,
                "equiv",
                f"module {name!r} disappeared from the optimized netlist",
                f"{prefix}{name}",
            )
        )
    for name in added:
        result.diagnostics.append(
            Diagnostic(
                "STL-EQ-002",
                Severity.ERROR,
                "equiv",
                f"module {name!r} appeared only in the optimized netlist",
                f"{prefix}{name}",
            )
        )

    if missing or added:
        # With the module sets out of sync, body comparison is ill-defined
        # (shared modules may instantiate the missing one); the interface
        # errors above already refute equivalence.
        return result

    for name in sorted(set(before.modules) & set(after.modules)):
        mod_before, mod_after = before.modules[name], after.modules[name]
        result.stats["modules"] += 1
        if not _same_interface(mod_before, mod_after):
            result.diagnostics.append(
                Diagnostic(
                    "STL-EQ-002",
                    Severity.ERROR,
                    "equiv",
                    "port signature changed:"
                    f" {_signature(mod_before)} != {_signature(mod_after)}",
                    f"{prefix}{name}",
                )
            )
            continue
        _check_combinational(
            mod_before, mod_after, result, f"{prefix}{name}",
            max_exhaustive_bits, seed,
        )
        _check_sequential(mod_before, mod_after, result)
        _check_differential(
            before, after, name, result, f"{prefix}{name}", cycles, seed
        )
    return result


# ---------------------------------------------------------------------------
# Stage 1: interfaces
# ---------------------------------------------------------------------------


def _signature(module: Module) -> List[Tuple[str, str, int]]:
    return [(p.name, p.direction.value, p.width) for p in module.ports]


def _same_interface(before: Module, after: Module) -> bool:
    return _signature(before) == _signature(after)


# ---------------------------------------------------------------------------
# Stage 2: combinational cones
# ---------------------------------------------------------------------------


class _Cone:
    """One side's inlined combinational cone for a target."""

    __slots__ = ("node", "complete")

    def __init__(self, node, complete: bool):
        self.node = node
        self.complete = complete


class _Inliner:
    """Inlines singly-assigned scalar wires into expression cones."""

    def __init__(self, module: Module, netlist_modules: Dict[str, Module]):
        self.widths = {p.name: p.width for p in module.ports}
        self.widths.update({n.name: n.width for n in module.nets})
        self.memories = {n.name for n in module.nets if n.depth}
        regs = {n.name for n in module.nets if n.is_reg}
        ports = {p.name for p in module.ports}

        written: Dict[str, int] = {}

        def bump(name: Optional[str]) -> None:
            if name:
                written[name] = written.get(name, 0) + 1

        assign_rhs: Dict[str, object] = {}
        for assign in module.assigns:
            lhs = parse_expression(assign.lhs)
            base = _ref_base(lhs)
            bump(base)
            if lhs[0] == "ref":
                assign_rhs[lhs[1]] = parse_expression(assign.rhs)
        for block in module.sync_blocks:
            for text in list(block.statements) + list(block.reset_statements):
                _cond, lvalue, _rhs = parse_statement(text)
                bump(_ref_base(lvalue))
        for inst in module.instances:
            child = netlist_modules.get(inst.module_name)
            outputs = (
                {p.name for p in child.ports if p.direction is PortDir.OUTPUT}
                if child is not None
                else set()
            )
            for port_name, text in inst.connections.items():
                if port_name in outputs:
                    bump(_ref_base(parse_expression(text)))

        # A wire is inlinable when its one and only driver is a plain
        # whole-net assign; registers and ports hold externally visible
        # state and stay as cone leaves.
        self.inlinable = {
            name: rhs
            for name, rhs in assign_rhs.items()
            if written.get(name) == 1
            and name not in regs
            and name not in ports
            and name not in self.memories
        }

    def cone(self, node) -> _Cone:
        self._nodes = 0
        self._complete = True
        expanded = self._expand(node, frozenset())
        return _Cone(expanded, self._complete)

    def _resolve_alias(self, node):
        """Follow ``a = b`` links of equal declared width from a ref."""
        seen = {node[1]}
        while True:
            rhs = self.inlinable.get(node[1])
            if (
                rhs is None
                or rhs[0] != "ref"
                or rhs[1] in seen
                or self.widths.get(rhs[1], 32) != self.widths.get(node[1], 32)
            ):
                return node
            seen.add(rhs[1])
            node = rhs

    def _expand(self, node, stack: frozenset):
        self._nodes += 1
        if self._nodes > _INLINE_NODE_BUDGET:
            self._complete = False
            return node
        kind = node[0]
        if kind == "ref":
            name = node[1]
            if name in stack:
                self._complete = False  # combinational cycle; leave as leaf
                return node
            rhs = self.inlinable.get(name)
            if rhs is None:
                return node
            return self._expand(rhs, stack | {name})
        if kind in ("literal",):
            return node
        if kind == "index":
            # A memory subscript's base stays symbolic; its address cone
            # still inlines.
            return ("index", node[1] if _is_memory_ref(node[1], self.memories)
                    else self._expand(node[1], stack),
                    self._expand(node[2], stack))
        if kind == "slice":
            return (
                "slice",
                self._expand(node[1], stack),
                self._expand(node[2], stack),
                self._expand(node[3], stack),
            )
        if kind == "concat":
            # Concat parts are width-sensitive: general inlining would
            # change the part's packing width, so refs only follow
            # equal-width alias links (matching what collapse_chains is
            # allowed to rewrite there) and everything else keeps its
            # shape.
            return (
                "concat",
                [
                    self._resolve_alias(part)
                    if part[0] == "ref"
                    else self._expand(part, stack)
                    for part in node[1]
                ],
            )
        if kind == "repl":
            return (
                "repl",
                self._expand(node[1], stack),
                self._resolve_alias(node[2])
                if node[2][0] == "ref"
                else self._expand(node[2], stack),
            )
        if kind == "unop":
            return ("unop", node[1], self._expand(node[2], stack))
        if kind == "binop":
            return (
                "binop",
                node[1],
                self._expand(node[2], stack),
                self._expand(node[3], stack),
            )
        return node


def _ref_base(node) -> Optional[str]:
    while node[0] in ("index", "slice"):
        node = node[1]
    return node[1] if node[0] == "ref" else None


def _is_memory_ref(node, memories: Set[str]) -> bool:
    return node[0] == "ref" and node[1] in memories


def _check_combinational(
    mod_before: Module,
    mod_after: Module,
    result: EquivResult,
    location: str,
    max_exhaustive_bits: int,
    seed: int,
) -> None:
    inliner_before = _Inliner(mod_before, {})
    inliner_after = _Inliner(mod_after, {})

    targets_before = _assign_targets(mod_before)
    targets_after = _assign_targets(mod_after)
    for target in sorted(set(targets_before) & set(targets_after)):
        result.stats["cones"] += 1
        cone_before = inliner_before.cone(targets_before[target])
        cone_after = inliner_after.cone(targets_after[target])
        canon_before = canonicalize(cone_before.node, inliner_before.widths)
        canon_after = canonicalize(cone_after.node, inliner_after.widths)
        if canon_before == canon_after:
            result.stats["proved_structural"] += 1
            continue
        if not (cone_before.complete and cone_after.complete) or (
            _cone_leaves(cone_before.node, inliner_before.memories)
            != _cone_leaves(cone_after.node, inliner_after.memories)
        ):
            # Incomplete inlining -- or cones bottoming out on different
            # leaf signals -- means a shared environment would compare
            # unrelated functions; refuting on it would be unsound.  The
            # differential backstop decides.
            result.stats["deferred_to_differential"] += 1
            continue
        witness = _bounded_refute(
            cone_before.node,
            cone_after.node,
            inliner_before,
            max_exhaustive_bits,
            seed,
        )
        if witness is None:
            result.stats["checked_bounded"] += 1
            continue
        env, value_before, value_after = witness
        assignment = ", ".join(
            f"{name}={value}" for name, value in sorted(env.items())
        )
        result.diagnostics.append(
            Diagnostic(
                "STL-EQ-001",
                Severity.ERROR,
                "equiv",
                f"combinational cone of {target!r} changed value:"
                f" {value_before} != {value_after} under"
                f" {{{assignment or 'constant inputs'}}}",
                f"{location}.{target}",
                suggestion="the optimization pass rewrote this cone"
                " unsoundly; run repro verify --json for the full trace",
            )
        )


def _assign_targets(module: Module) -> Dict[str, object]:
    targets: Dict[str, object] = {}
    for assign in module.assigns:
        lhs = parse_expression(assign.lhs)
        if lhs[0] == "ref":
            targets[lhs[1]] = parse_expression(assign.rhs)
    return targets


# -- bounded bit-precise evaluation -----------------------------------------


def _evaluate(node, env: Dict[str, int], widths: Dict[str, int], memories):
    """Evaluate a cone under the simulator's exact value semantics."""
    kind = node[0]
    if kind == "literal":
        return node[1] & ((1 << node[2]) - 1)
    if kind == "ref":
        return env.get(node[1], 0)
    if kind == "index":
        index = _evaluate(node[2], env, widths, memories)
        base = node[1]
        if base[0] == "ref" and base[1] in memories:
            return _memory_value(base[1], index, widths.get(base[1], 32))
        return (_evaluate(base, env, widths, memories) >> index) & 1
    if kind == "slice":
        value = _evaluate(node[1], env, widths, memories)
        hi = _evaluate(node[2], env, widths, memories)
        lo = _evaluate(node[3], env, widths, memories)
        return (value >> lo) & ((1 << (hi - lo + 1)) - 1)
    if kind == "concat":
        out = 0
        for part in node[1]:
            width = _runtime_width(part, env, widths, memories)
            out = (out << width) | (
                _evaluate(part, env, widths, memories) & ((1 << width) - 1)
            )
        return out
    if kind == "repl":
        count = _evaluate(node[1], env, widths, memories)
        width = _runtime_width(node[2], env, widths, memories)
        piece = _evaluate(node[2], env, widths, memories) & ((1 << width) - 1)
        out = 0
        for _ in range(count):
            out = (out << width) | piece
        return out
    if kind == "unop":
        value = _evaluate(node[2], env, widths, memories)
        if node[1] == "!":
            return 0 if value else 1
        if node[1] == "~":
            return ~value
        return -value
    if kind == "binop":
        op = node[1]
        lhs = _evaluate(node[2], env, widths, memories)
        rhs = _evaluate(node[3], env, widths, memories)
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if op == "&":
            return lhs & rhs
        if op == "|":
            return lhs | rhs
        if op == "==":
            return int(lhs == rhs)
        if op == "!=":
            return int(lhs != rhs)
        if op == "<":
            return int(lhs < rhs)
        if op == "<=":
            return int(lhs <= rhs)
        if op == ">":
            return int(lhs > rhs)
        return int(lhs >= rhs)
    raise ValueError(f"cannot evaluate AST node {node!r}")


def _runtime_width(node, env, widths, memories) -> int:
    if node[0] == "literal":
        return node[2]
    if node[0] == "ref":
        return widths.get(node[1], 32)
    if node[0] == "slice":
        hi = _evaluate(node[2], env, widths, memories)
        lo = _evaluate(node[3], env, widths, memories)
        return hi - lo + 1
    return 32


def _memory_value(name: str, index: int, width: int) -> int:
    """Deterministic pseudo-random contents for symbolic memory reads.

    Both cones read through the same function, so a memory read models
    'the same unknown value on both sides'."""
    digest = zlib.crc32(f"{name}[{index}]".encode("utf-8"))
    return digest & ((1 << width) - 1)


def _cone_leaves(node, memories: Set[str]) -> Set[str]:
    leaves: Set[str] = set()

    def walk(n) -> None:
        if n[0] == "ref":
            if n[1] not in memories:
                leaves.add(n[1])
            return
        if n[0] == "literal":
            return
        if n[0] == "index":
            if not _is_memory_ref(n[1], memories):
                walk(n[1])
            walk(n[2])
            return
        if n[0] == "slice":
            walk(n[1]); walk(n[2]); walk(n[3])
            return
        if n[0] == "concat":
            for part in n[1]:
                walk(part)
            return
        if n[0] == "repl":
            walk(n[1]); walk(n[2])
            return
        if n[0] == "unop":
            walk(n[2])
            return
        if n[0] == "binop":
            walk(n[2]); walk(n[3])
            return

    walk(node)
    return leaves


def _bounded_refute(
    node_before,
    node_after,
    inliner: _Inliner,
    max_exhaustive_bits: int,
    seed: int,
):
    """Search for a leaf assignment separating the two cones.

    Returns ``(env, value_before, value_after)`` or ``None``.  Leaf
    values are drawn masked to their declared widths, exactly the range
    a simulator write could have stored."""
    widths, memories = inliner.widths, inliner.memories
    leaves = sorted(
        _cone_leaves(node_before, memories) | _cone_leaves(node_after, memories)
    )
    leaf_widths = [min(widths.get(name, 32), 32) for name in leaves]

    def differs(env: Dict[str, int]):
        value_before = _evaluate(node_before, env, widths, memories)
        value_after = _evaluate(node_after, env, widths, memories)
        if value_before != value_after:
            return env, value_before, value_after
        return None

    if sum(leaf_widths) <= max_exhaustive_bits:
        for values in itertools.product(
            *[range(1 << width) for width in leaf_widths]
        ):
            witness = differs(dict(zip(leaves, values)))
            if witness is not None:
                return witness
        return None

    corners = [
        {name: 0 for name in leaves},
        {
            name: (1 << width) - 1
            for name, width in zip(leaves, leaf_widths)
        },
    ]
    for hot in leaves:
        corners.append(
            {
                name: ((1 << width) - 1 if name == hot else 0)
                for name, width in zip(leaves, leaf_widths)
            }
        )
    rng = random.Random(seed ^ zlib.crc32(",".join(leaves).encode("utf-8")))
    for _ in range(_BOUNDED_SAMPLES):
        corners.append(
            {
                name: rng.getrandbits(width)
                for name, width in zip(leaves, leaf_widths)
            }
        )
    for env in corners:
        witness = differs(env)
        if witness is not None:
            return witness
    return None


# ---------------------------------------------------------------------------
# Stage 2b: sequential next-state programs
# ---------------------------------------------------------------------------


def _sequential_program(module: Module, inliner: _Inliner) -> Set[Tuple]:
    """The module's sync behaviour as canonical guarded statements.

    Statements whose guard canonicalizes to constant zero are dropped
    and constant-true guards normalize to ``None``, so const-folded
    guard rewrites compare equal to their sources."""
    program: Set[Tuple] = set()
    for block in module.sync_blocks:
        for arm, statements in (
            ("run", block.statements),
            ("reset", block.reset_statements),
        ):
            for text in statements:
                cond, lvalue, rhs = parse_statement(text)
                canon_cond = None
                if cond is not None:
                    canon_cond = canonicalize(
                        inliner.cone(cond).node, inliner.widths
                    )
                    if canon_cond == ("lit", 0):
                        continue
                    if canon_cond[0] == "lit":
                        canon_cond = None
                program.add(
                    (
                        arm,
                        canon_cond,
                        canonicalize(lvalue, inliner.widths),
                        canonicalize(inliner.cone(rhs).node, inliner.widths),
                    )
                )
    return program


def _check_sequential(
    mod_before: Module, mod_after: Module, result: EquivResult
) -> None:
    inliner_before = _Inliner(mod_before, {})
    inliner_after = _Inliner(mod_after, {})
    before = _sequential_program(mod_before, inliner_before)
    after = _sequential_program(mod_after, inliner_after)
    if before == after:
        result.stats["sequential_proved"] += 1
    else:
        # Not a refutation: dead-state elimination legitimately removes
        # statements.  The differential backstop decides.
        result.stats["sequential_deferred"] += 1


# ---------------------------------------------------------------------------
# Stage 3: random-stimulus differential with trace alignment
# ---------------------------------------------------------------------------


def _check_differential(
    before: Netlist,
    after: Netlist,
    module_name: str,
    result: EquivResult,
    location: str,
    cycles: int,
    seed: int,
) -> None:
    module = before.modules[module_name]
    rng = random.Random(seed ^ zlib.crc32(module_name.encode("utf-8")))
    inputs = [
        p
        for p in module.ports
        if p.direction is PortDir.INPUT and p.name not in ("clk", "rst")
    ]
    schedule = [
        {p.name: rng.getrandbits(min(p.width, 64)) for p in inputs}
        for _ in range(cycles + 1)
    ]

    def stimulus(cycle: int, sim: RTLSimulator) -> None:
        for name, value in schedule[min(cycle, cycles)].items():
            sim.poke(name, value)

    trace_before = capture_rtl_trace(
        RTLSimulator(before, top=module_name), cycles=cycles, stimulus=stimulus
    )
    trace_after = capture_rtl_trace(
        RTLSimulator(after, top=module_name), cycles=cycles, stimulus=stimulus
    )
    result.stats["differential_modules"] += 1
    result.stats["differential_cycles"] += cycles
    divergence = first_trace_divergence(trace_before, trace_after)
    if divergence is None:
        return
    cycle, signal = divergence
    result.diagnostics.append(
        Diagnostic(
            "STL-EQ-003",
            Severity.ERROR,
            "equiv",
            f"differential divergence at cycle {cycle} on signal"
            f" {signal!r}: {trace_before[signal][cycle]} (input netlist)"
            f" != {trace_after[signal][cycle]} (optimized netlist)"
            f" [seed {seed}]",
            f"{location}.{signal}",
            suggestion="replay with repro verify --seed"
            f" {seed} --cycles {cycles}; the first divergent signal"
            " localizes the broken pass rewrite",
        )
    )


__all__ = ["EquivResult", "check_equivalence"]
