"""``repro verify``: equivalence-check the optimization pass pipeline.

For every example design (and optionally every layer of named workload
suites), lowers the design unoptimized, runs the
:mod:`repro.rtl.passes` pipeline at the requested rung, and proves the
two netlists equivalent with :func:`repro.analysis.equiv.check_equivalence`.
The report mirrors :mod:`repro.analysis.check`'s text/JSON shape and the
CLI shares its 0/1/2 exit contract: 0 all equivalent, 1 divergence
found (any ``STL-EQ-*`` error), 2 a target failed to build at all.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..obs.profile import get_profiler
from .check import SCHEMA_VERSION, _compiled_of, discover_examples
from .diagnostics import (
    Diagnostic,
    Severity,
    max_severity,
    suppress as _suppress,
)
from .equiv import EquivResult, check_equivalence


class VerifyTarget:
    """One verified design: a discovered example or one suite layer."""

    def __init__(
        self,
        name: str,
        source: str = "",
        result: Optional[EquivResult] = None,
        rewrites: Optional[Dict[str, int]] = None,
        error: str = "",
    ):
        self.name = name
        self.source = source
        self.result = result
        self.rewrites = dict(rewrites or {})
        self.error = error

    @property
    def ok(self) -> bool:
        return not self.error and (self.result is None or self.result.ok)

    @property
    def diagnostics(self) -> List[Diagnostic]:
        if self.error:
            return [
                Diagnostic(
                    "STL-CK-001",
                    Severity.ERROR,
                    "verify",
                    self.error,
                    self.name,
                )
            ]
        return list(self.result.diagnostics) if self.result else []

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "source": self.source,
            "ok": self.ok,
            "rewrites": dict(self.rewrites),
        }
        if self.error:
            out["error"] = self.error
        if self.result is not None:
            out["equivalence"] = self.result.to_dict()
        return out


class VerifyReport:
    """Aggregated equivalence results over every verified target."""

    def __init__(self, targets: Sequence[VerifyTarget], opt_level: int,
                 cycles: int, seed: int):
        self.targets = list(targets)
        self.opt_level = opt_level
        self.cycles = cycles
        self.seed = seed

    @property
    def diagnostics(self) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        for target in self.targets:
            out.extend(target.diagnostics)
        return out

    def max_severity(self) -> Optional[Severity]:
        return max_severity(self.diagnostics)

    def has_build_errors(self) -> bool:
        return any(target.error for target in self.targets)

    def total_rewrites(self) -> int:
        return sum(sum(t.rewrites.values()) for t in self.targets)

    def to_dict(self) -> Dict[str, object]:
        errors = sum(
            1
            for d in self.diagnostics
            if d.severity >= Severity.ERROR
        )
        return {
            "schema_version": SCHEMA_VERSION,
            "opt_level": self.opt_level,
            "cycles": self.cycles,
            "seed": self.seed,
            "targets": [t.to_dict() for t in self.targets],
            "summary": {
                "targets": len(self.targets),
                "equivalent": sum(1 for t in self.targets if t.ok),
                "errors": errors,
                "total_rewrites": self.total_rewrites(),
            },
        }

    def text(self) -> str:
        lines: List[str] = []
        for target in self.targets:
            rewrites = ", ".join(
                f"{name}={count}"
                for name, count in target.rewrites.items()
                if count
            )
            if target.ok:
                lines.append(
                    f"ok   {target.name}: equivalent at opt_level"
                    f" {self.opt_level} ({rewrites or 'no rewrites'})"
                )
            else:
                lines.append(
                    f"FAIL {target.name}:"
                    f" {len(target.diagnostics)} diagnostic(s)"
                )
                for diagnostic in target.diagnostics:
                    lines.append(
                        "  " + diagnostic.render().replace("\n", "\n  ")
                    )
        ok = sum(1 for t in self.targets if t.ok)
        lines.append(
            f"verified {len(self.targets)} target(s) at opt_level"
            f" {self.opt_level}: {ok} equivalent,"
            f" {len(self.targets) - ok} failed,"
            f" {self.total_rewrites()} rewrite(s) proven"
        )
        return "\n".join(lines)


def verify_design(
    compiled,
    name: str,
    opt_level: int = 2,
    cycles: int = 16,
    seed: int = 0,
    suppress: Iterable[str] = (),
    cache=None,
) -> VerifyTarget:
    """Lower one compiled design and prove its optimized netlist."""
    from ..rtl.lowering import lower_design
    from ..rtl.passes import run_passes

    profiler = get_profiler()
    if cache is not None:
        base = cache.lower(compiled, check=False)
    else:
        base = lower_design(compiled, check=False)
    optimized, results = run_passes(base, opt_level)
    with profiler.scope("analysis.equiv"):
        result = check_equivalence(
            base, optimized, cycles=cycles, seed=seed, design_name=name
        )
    result.diagnostics = _suppress(result.diagnostics, suppress)
    return VerifyTarget(
        name,
        result=result,
        rewrites={r.name: r.rewrites for r in results},
    )


def run_verify(
    paths: Sequence[str],
    suites: Sequence[str] = (),
    opt_level: int = 2,
    cycles: int = 16,
    seed: int = 0,
    cap: int = 4,
    max_layers: int = 0,
    suppress: Iterable[str] = (),
    cache=None,
) -> VerifyReport:
    """Verify every example under ``paths`` plus named suites' layers.

    ``suites`` entries are :func:`repro.exec.suite.build_suite` names
    (optionally ``name:layer`` to verify a single named layer);
    ``max_layers`` truncates each suite (0 = all layers); ``cap`` bounds
    layer shapes exactly as ``repro sweep --cap`` does, so CI can keep
    the netlists small.
    """
    targets: List[VerifyTarget] = []

    for example in discover_examples(paths):
        if example.error:
            targets.append(
                VerifyTarget(example.name, example.path, error=example.error)
            )
            continue
        try:
            design = example.build()
            compiled = _compiled_of(design, cache=cache)
        except Exception as error:  # noqa: BLE001 -- report, don't crash
            targets.append(
                VerifyTarget(
                    example.name,
                    example.path,
                    error=f"build failed: {type(error).__name__}: {error}",
                )
            )
            continue
        target = verify_design(
            compiled,
            example.name,
            opt_level=opt_level,
            cycles=cycles,
            seed=seed,
            suppress=suppress,
            cache=cache,
        )
        target.source = example.path
        targets.append(target)

    for entry in suites:
        suite_name, _, layer_name = entry.partition(":")
        try:
            from ..exec.suite import build_suite

            suite = build_suite(suite_name, cap=cap, seed=seed)
        except Exception as error:  # noqa: BLE001 -- report, don't crash
            targets.append(
                VerifyTarget(
                    entry,
                    error=f"suite failed to build:"
                    f" {type(error).__name__}: {error}",
                )
            )
            continue
        cases = [
            case
            for case in suite.cases
            if not layer_name or case.name == layer_name
        ]
        if layer_name and not cases:
            targets.append(
                VerifyTarget(
                    entry,
                    error=f"suite {suite_name!r} has no layer"
                    f" {layer_name!r}",
                )
            )
            continue
        if max_layers > 0:
            cases = cases[:max_layers]
        for case in cases:
            label = f"{suite_name}:{case.name}"
            try:
                if cache is not None:
                    compiled = cache.compile(
                        suite.spec,
                        case.bounds,
                        suite.transform,
                        sparsity=suite.sparsity,
                        balancing=suite.balancing,
                        element_bits=suite.element_bits,
                        check=False,
                    )
                else:
                    from ..core.compiler import compile_design

                    compiled = compile_design(
                        suite.spec,
                        case.bounds,
                        suite.transform,
                        sparsity=suite.sparsity,
                        balancing=suite.balancing,
                        element_bits=suite.element_bits,
                        check=False,
                    )
            except Exception as error:  # noqa: BLE001 -- report, don't crash
                targets.append(
                    VerifyTarget(
                        label,
                        error=f"layer failed to compile:"
                        f" {type(error).__name__}: {error}",
                    )
                )
                continue
            targets.append(
                verify_design(
                    compiled,
                    label,
                    opt_level=opt_level,
                    cycles=cycles,
                    seed=seed,
                    suppress=suppress,
                    cache=cache,
                )
            )

    return VerifyReport(targets, opt_level, cycles, seed)


__all__ = [
    "VerifyReport",
    "VerifyTarget",
    "run_verify",
    "verify_design",
]
