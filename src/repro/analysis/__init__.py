"""repro.analysis -- cross-layer static design checker.

Four levels, one diagnostic model:

* level 1, :mod:`repro.analysis.spec` (``STL-SP-*``): spec legality --
  transform injectivity, dependence causality, PE-grid realizability,
  sparsity/load-balancing annotation references;
* level 2, :mod:`repro.analysis.netlist` (``STL-NL-*``): netlist dataflow
  lint -- width inference and mismatch warnings, combinational-loop
  detection, multiple drivers, dead nets, reset coverage (absorbs the old
  ``repro.rtl.lint`` rules);
* level 3, :mod:`repro.analysis.program` (``STL-PR-*``): ISA program
  verification -- decodability, field ranges, config-before-issue
  ordering, compressed-transfer metadata, DRAM window overlap;
* level 4, :mod:`repro.analysis.equiv` (``STL-EQ-*``): netlist
  equivalence -- proves every :mod:`repro.rtl.passes` optimization rung
  against its unoptimized source via structural hashing, bounded
  bit-precise evaluation, and a seeded lockstep differential with VCD
  trace alignment.

Each level is wired into its pipeline stage as an opt-out gate
(``compile_design(..., check=False)``, ``lower_design(..., check=False)``,
``StellarDriver(machine, check=False)``); ``python -m repro check``
runs levels 1-3 over every example design and ``python -m repro verify``
runs level 4 over every example and suite layer.
"""

from .check import (
    SCHEMA_VERSION,
    CheckReport,
    DesignReport,
    check_design,
    demo_program,
    discover_examples,
    run_check,
)
from .diagnostics import (
    AnalysisError,
    Diagnostic,
    Severity,
    errors_only,
    max_severity,
    render_json,
    render_text,
    suppress,
)
from .equiv import EquivResult, check_equivalence
from .netlist import check_netlist
from .program import check_program, machine_unit_names
from .spec import check_spec, check_spec_annotations, check_spec_transform
from .verify import VerifyReport, VerifyTarget, run_verify, verify_design

__all__ = [
    "SCHEMA_VERSION",
    "AnalysisError",
    "CheckReport",
    "DesignReport",
    "Diagnostic",
    "EquivResult",
    "Severity",
    "VerifyReport",
    "VerifyTarget",
    "check_design",
    "check_equivalence",
    "check_netlist",
    "check_program",
    "check_spec",
    "check_spec_annotations",
    "check_spec_transform",
    "demo_program",
    "discover_examples",
    "errors_only",
    "machine_unit_names",
    "max_severity",
    "render_json",
    "render_text",
    "run_check",
    "run_verify",
    "suppress",
    "verify_design",
]
