"""repro.analysis -- cross-layer static design checker.

Three levels, one diagnostic model:

* level 1, :mod:`repro.analysis.spec` (``STL-SP-*``): spec legality --
  transform injectivity, dependence causality, PE-grid realizability,
  sparsity/load-balancing annotation references;
* level 2, :mod:`repro.analysis.netlist` (``STL-NL-*``): netlist dataflow
  lint -- width inference and mismatch warnings, combinational-loop
  detection, multiple drivers, dead nets, reset coverage (absorbs the old
  ``repro.rtl.lint`` rules);
* level 3, :mod:`repro.analysis.program` (``STL-PR-*``): ISA program
  verification -- decodability, field ranges, config-before-issue
  ordering, compressed-transfer metadata, DRAM window overlap.

Each level is wired into its pipeline stage as an opt-out gate
(``compile_design(..., check=False)``, ``lower_design(..., check=False)``,
``StellarDriver(machine, check=False)``), and ``python -m repro check``
runs the whole ladder over every example design.
"""

from .check import (
    CheckReport,
    DesignReport,
    check_design,
    demo_program,
    discover_examples,
    run_check,
)
from .diagnostics import (
    AnalysisError,
    Diagnostic,
    Severity,
    errors_only,
    max_severity,
    render_json,
    render_text,
    suppress,
)
from .netlist import check_netlist
from .program import check_program, machine_unit_names
from .spec import check_spec, check_spec_annotations, check_spec_transform

__all__ = [
    "AnalysisError",
    "CheckReport",
    "DesignReport",
    "Diagnostic",
    "Severity",
    "check_design",
    "check_netlist",
    "check_program",
    "check_spec",
    "check_spec_annotations",
    "check_spec_transform",
    "demo_program",
    "discover_examples",
    "errors_only",
    "machine_unit_names",
    "max_severity",
    "render_json",
    "render_text",
    "run_check",
    "suppress",
]
