"""Connection-pruning passes (paper Section IV-B).

Stellar first builds a *dense* spatial array that maximizes PE-to-PE data
reuse, then removes the connections that sparsity or load balancing make
unreliable, replacing them with direct register-file IO.

Sparsity rule
-------------
A variable ``v`` travels along its difference vector ``d`` carrying a value
identified by the iterators in its dependence set ``Dep(v)``.  Skipping an
iterator ``s`` replaces it with a data-dependent expansion
``s_expanded = f(deps(s), s_compressed)`` (Section IV-B's worked example:
with B in CSR, ``j_expanded = f(k, j_compressed)``).  The connection is
still *guaranteed* to deliver the value the destination PE needs only when
the expanded coordinates of every iterator in ``Dep(v)`` are unchanged by
one step along ``d``; i.e. for every skipped ``s`` in ``Dep(v)``::

    d[s] == 0   and   d[t] == 0 for every t in deps(s)

Worked example (matmul, ``Skip j when B(k, j) == 0``): partial sums ``c``
have ``Dep(c) = {i, j}`` and ``d = (0, 0, 1)``.  Since ``j in Dep(c)`` and
``deps(j) = {k}`` while ``d[k] = 1``, the expanded ``j`` changes every step
-- so the vertical accumulation connections are pruned, reproducing the
Figure 2a -> Figure 4 rewrite.

Structured skips (conditions over indices only, e.g. ``i != k``) are
evaluated at elaboration time and restrict the point set itself.

Load-balancing rule
-------------------
A shift whose target region lets PEs balance *independently* (Figure 10b)
invalidates connections flowing along the constrained axes; row-granular
shifts (Figure 10a) preserve all connections.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple

from ...obs.trace import get_tracer
from ..balancing import LoadBalancingScheme
from ..expr import EvalContext, SpecError
from ..iterspace import IterationSpace, Point
from ..sparsity import SparsityStructure


class PruneReport:
    """What a pruning pass did, for diagnostics and tests."""

    def __init__(self):
        self.pruned_variables: List[str] = []
        self.widened_variables: Dict[str, int] = {}
        self.removed_points: int = 0
        self.reasons: Dict[str, str] = {}

    def __repr__(self) -> str:
        return (
            f"PruneReport(pruned={self.pruned_variables},"
            f" widened={self.widened_variables}, removed_points={self.removed_points})"
        )


def connection_survives(
    d: Sequence[int],
    dep_set: FrozenSet[str],
    expansion_deps: Dict[str, FrozenSet[str]],
    order: Sequence[str],
) -> bool:
    """Apply the sparsity survival rule to one difference vector."""
    index_of = {name: axis for axis, name in enumerate(order)}
    for skipped, deps in expansion_deps.items():
        if skipped not in dep_set:
            continue
        if d[index_of[skipped]] != 0:
            return False
        for dep in deps:
            if dep in index_of and d[index_of[dep]] != 0:
                return False
    return True


def prune_for_sparsity(
    iterspace: IterationSpace, sparsity: SparsityStructure
) -> Tuple[IterationSpace, PruneReport]:
    """Prune connections per the sparsity structure (Figure 9a -> 9b)."""
    spec = iterspace.spec
    sparsity.validate_against(spec)
    report = PruneReport()
    order = spec.index_names

    result = iterspace

    # Structured skips restrict the iteration domain itself.
    structured = [s for s in sparsity if s.is_structured() and not s.optimistic]
    if structured:
        result = _restrict_points(result, structured, report)

    expansion_deps = sparsity.expansion_dependencies()
    if expansion_deps:
        doomed: List[str] = []
        for variable, d in spec.difference_vectors().items():
            if not result.conns_for(variable):
                continue
            dep_set = spec.dependence_set(variable)
            if not connection_survives(d, dep_set, expansion_deps, order):
                doomed.append(variable)
                report.reasons[variable] = (
                    f"expanded coordinates of {sorted(dep_set & set(expansion_deps))}"
                    f" become data-dependent along d={d}"
                )
        if doomed:
            result = result.without_conns(doomed)
            report.pruned_variables.extend(doomed)

    # OptimisticSkips keep connections but widen them into bundles (Fig. 5).
    for variable, bundle in _optimistic_targets(iterspace, sparsity).items():
        result = result.widened(variable, bundle)
        report.widened_variables[variable] = bundle

    tracer = get_tracer()
    if tracer.enabled:
        tracer.instant(
            "prune_for_sparsity", component="compiler.passes",
            pruned=list(report.pruned_variables),
            widened=dict(report.widened_variables),
            removed_points=report.removed_points,
        )
    return result, report


def _optimistic_targets(
    iterspace: IterationSpace, sparsity: SparsityStructure
) -> Dict[str, int]:
    """Variables whose connections are widened by OptimisticSkips: those
    whose dependence set contains an optimistically-skipped iterator."""
    spec = iterspace.spec
    bundles = sparsity.optimistic_bundles()
    if not bundles:
        return {}
    out: Dict[str, int] = {}
    for variable in spec.difference_vectors():
        dep_set = spec.dependence_set(variable)
        width = max(
            (bundle for name, bundle in bundles.items() if name in dep_set),
            default=1,
        )
        if width > 1:
            out[variable] = width
    return out


def _restrict_points(
    iterspace: IterationSpace, structured_skips, report: PruneReport
) -> IterationSpace:
    spec = iterspace.spec
    bounds = iterspace.bounds

    def keep(point: Point) -> bool:
        env = dict(zip(spec.index_names, point.coords))
        ctx = EvalContext(env, bounds, _no_tensor_reads)
        return not any(skip.condition.evaluate(ctx) for skip in structured_skips)

    kept_points = [p for p in iterspace.points if keep(p)]
    kept_set = set(kept_points)
    report.removed_points = len(iterspace.points) - len(kept_points)
    conns = [
        c for c in iterspace.p2p_conns if c.src in kept_set and c.dst in kept_set
    ]
    io = [c for c in iterspace.io_conns if c.point in kept_set]
    return IterationSpace(spec, bounds, kept_points, conns, io)


def _no_tensor_reads(symbol, coords):
    raise SpecError(
        "structured skip conditions must not reference tensors"
        f" (tried to read {symbol.name})"
    )


def prune_for_balancing(
    iterspace: IterationSpace, scheme: LoadBalancingScheme
) -> Tuple[IterationSpace, PruneReport]:
    """Prune connections invalidated by flexible load balancing (Fig. 10)."""
    spec = iterspace.spec
    scheme.validate_against(spec)
    report = PruneReport()
    if scheme.is_disabled():
        return iterspace, report

    order = spec.index_names
    axes = scheme.pruned_axes(order)
    if not axes:
        return iterspace, report

    index_of = {name: axis for axis, name in enumerate(order)}
    doomed: List[str] = []
    for variable, d in spec.difference_vectors().items():
        if not iterspace.conns_for(variable):
            continue
        if any(d[index_of[name]] != 0 for name in axes if name in index_of):
            doomed.append(variable)
            report.reasons[variable] = (
                f"flows along load-balanced axes {sorted(axes)}; PEs there may"
                " execute foreign iterations (Figure 10b)"
            )
    tracer = get_tracer()
    if tracer.enabled:
        tracer.instant(
            "prune_for_balancing", component="compiler.passes",
            pruned=list(doomed), axes=sorted(axes),
        )
    if doomed:
        report.pruned_variables.extend(doomed)
        return iterspace.without_conns(doomed), report
    return iterspace, report
