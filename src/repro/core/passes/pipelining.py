"""Pipelining analysis (paper Figure 3).

The lowest row of the space-time transform decides how aggressively the
spatial array is pipelined: scaling the time row inserts more pipeline
registers along each moving variable's path, shortening the critical path
(higher achievable clock) at the cost of more register area and a longer
schedule.  This pass summarizes those effects so the timing/area models and
the Figure 3 bench can compare strategies.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ...obs.trace import get_tracer
from ..dataflow import SpaceTimeTransform
from ..functionality import FunctionalSpec


class PipeliningReport:
    """Register counts and combinational-chain lengths for one transform."""

    def __init__(
        self,
        registers_per_variable: Dict[str, int],
        broadcast_variables: Sequence[str],
        schedule_scale: int,
    ):
        self.registers_per_variable = dict(registers_per_variable)
        self.broadcast_variables = list(broadcast_variables)
        self.schedule_scale = schedule_scale

    @property
    def total_registers_per_pe(self) -> int:
        return sum(self.registers_per_variable.values())

    @property
    def max_combinational_span(self) -> int:
        """Longest combinational PE chain (1 = fully pipelined).

        A broadcast variable (zero time delta across a nonzero space hop)
        creates a combinational chain across the whole array dimension --
        the slow-but-small end of Figure 3's spectrum.
        """
        return 1 + len(self.broadcast_variables)

    def __repr__(self) -> str:
        return (
            f"PipeliningReport(registers={self.registers_per_variable},"
            f" broadcasts={self.broadcast_variables},"
            f" schedule_scale={self.schedule_scale})"
        )


def analyze_pipelining(
    spec: FunctionalSpec, transform: SpaceTimeTransform
) -> PipeliningReport:
    """Derive per-variable pipeline register counts from the time row."""
    registers: Dict[str, int] = {}
    broadcasts = []
    for name, d in spec.difference_vectors().items():
        disp = transform.displacement(d)
        space = disp[: transform.space_dims]
        dt = disp[transform.space_dims]
        if any(space):
            registers[name] = abs(dt)
            if dt == 0:
                broadcasts.append(name)
        else:
            registers[name] = 0  # stationary: held, not pipelined
    time_row = transform.matrix[transform.space_dims]
    schedule_scale = max(1, max(abs(v) for v in time_row))
    report = PipeliningReport(registers, broadcasts, schedule_scale)
    tracer = get_tracer()
    if tracer.enabled:
        tracer.instant(
            "analyze_pipelining", component="compiler.passes",
            design=spec.name, registers_per_pe=report.total_registers_per_pe,
            combinational_span=report.max_combinational_span,
            schedule_scale=schedule_scale,
        )
    return report
