"""Compiler optimization passes (paper Section IV)."""

from .prune import PruneReport, prune_for_balancing, prune_for_sparsity
from .regfile_opt import (
    RegfileKind,
    RegfilePlan,
    choose_regfile,
    consumption_order,
)
from .pipelining import PipeliningReport, analyze_pipelining

__all__ = [
    "PruneReport",
    "prune_for_balancing",
    "prune_for_sparsity",
    "RegfileKind",
    "RegfilePlan",
    "choose_regfile",
    "consumption_order",
    "PipeliningReport",
    "analyze_pipelining",
]
