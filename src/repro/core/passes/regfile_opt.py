"""Register-file optimization ladder (paper Section IV-D, Figure 14).

The baseline Stellar register file is a fully-associative crossbar: every
input and output port can reach every entry, and outputs search the
coordinates of all entries.  That worst-case fallback supports arbitrary
indirect accesses, but most accelerators never need it.  The compiler runs
a ladder of checks -- from most to least efficient -- and picks the first
regfile variant whose access pattern can be *proven* at elaboration time:

1. ``FEEDFORWARD`` (Figure 14c): inputs enter in exactly the order outputs
   leave; a simple array of shift registers.
2. ``TRANSPOSING`` (Figure 14d): the output order is the coordinate
   transpose of the input order; entry/exit edges are chosen to realize
   the layout transform in the wiring.
3. ``EDGE`` (Figure 14b): orders differ but every access can be confined
   to regfile edges (any causal permutation of a known order).
4. ``CROSSBAR`` (Figure 14a): the baseline fallback for data-dependent
   access patterns.

Producer orders come from memory buffers with hardcoded read parameters
(Listing 6 / Figure 13a); consumer orders come from the spatial array's
``IOConn`` schedule under its space-time transform (Figure 13b).
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence, Tuple

from ...obs.trace import get_tracer
from ..dataflow import SpaceTimeTransform
from ..iterspace import IODirection, IterationSpace


class RegfileKind(enum.Enum):
    """The four regfile variants of Figure 14, cheapest first."""

    FEEDFORWARD = "feedforward"
    TRANSPOSING = "transposing"
    EDGE = "edge"
    CROSSBAR = "crossbar"

    @property
    def relative_cost(self) -> int:
        return {
            RegfileKind.FEEDFORWARD: 1,
            RegfileKind.TRANSPOSING: 2,
            RegfileKind.EDGE: 3,
            RegfileKind.CROSSBAR: 8,
        }[self]


class RegfilePlan:
    """The chosen regfile for one variable: kind, depth, and port counts."""

    def __init__(
        self,
        variable: str,
        kind: RegfileKind,
        entries: int,
        in_ports: int,
        out_ports: int,
        element_bits: int = 32,
        reason: str = "",
    ):
        self.variable = variable
        self.kind = kind
        self.entries = entries
        self.in_ports = in_ports
        self.out_ports = out_ports
        self.element_bits = element_bits
        self.reason = reason

    def search_width(self) -> int:
        """How many entries each output port must observe (Figure 14):
        1 for feedforward, an edge's worth for edge/transposing designs,
        every entry for the crossbar baseline."""
        if self.kind is RegfileKind.FEEDFORWARD:
            return 1
        if self.kind in (RegfileKind.TRANSPOSING, RegfileKind.EDGE):
            return max(1, int(round(self.entries ** 0.5)))
        return self.entries

    def __repr__(self) -> str:
        return (
            f"RegfilePlan({self.variable!r}, {self.kind.value}, entries={self.entries},"
            f" ports={self.in_ports}/{self.out_ports})"
        )


def consumption_order(
    iterspace: IterationSpace,
    transform: SpaceTimeTransform,
    variable: str,
    direction: IODirection = IODirection.INPUT,
) -> Optional[List[Tuple[int, ...]]]:
    """The order in which a spatial array consumes (or produces) a
    variable's elements, derived from its IOConns under the transform.

    Elements are identified by their dependence-set coordinates (e.g. B's
    elements by ``(k, j)``); the order is by time step, then by physical
    position, reproducing Figure 13b.  Returns None when the variable's
    element identity cannot be statically determined (data-dependent specs).
    """
    spec = iterspace.spec
    if spec.has_data_dependent_accesses():
        return None
    subscripts = _element_subscripts(spec, variable, direction)
    if subscripts is None:
        return None

    events: List[Tuple[int, Tuple[int, ...], Tuple[int, ...]]] = []
    seen = set()
    for io in iterspace.io_conns:
        if io.variable != variable or io.direction is not direction:
            continue
        st = transform.apply(io.point.coords)
        t = st[transform.space_dims :]  # full time tuple (lexicographic)
        pos = st[: transform.space_dims]
        env = dict(zip(spec.index_names, io.point.coords))
        element = tuple(
            int(sub.evaluate(env, iterspace.bounds)) for sub in subscripts
        )
        if element not in seen:
            seen.add(element)
            events.append((t, pos, element))
    if not events:
        return None
    events.sort(key=lambda e: (e[0], e[1]))
    return [element for _, __, element in events]


def _element_subscripts(spec, variable: str, direction: IODirection):
    """The tensor-coordinate subscripts identifying a variable's elements.

    Elements are named by the coordinates of their backing tensor access
    (B's elements are ``(k, j)`` from ``B(k, j)``), so regfile orders are
    directly comparable with memory-buffer emission orders (Figure 13).
    """
    from ..functionality import AssignmentKind

    if direction is IODirection.INPUT:
        for assignment in spec.assignments_for(variable):
            if assignment.kind is AssignmentKind.INPUT:
                for access in assignment.rhs.references():
                    if access.target.name not in {v.name for v in spec.locals()}:
                        return access.subscripts
    else:
        for assignment in spec.assignments:
            if assignment.kind is AssignmentKind.OUTPUT and any(
                r.target.name == variable for r in assignment.rhs.references()
            ):
                return assignment.lhs.subscripts
    # Fall back to the dependence-set projection.
    dep = sorted(
        spec.dependence_set(variable), key=lambda name: spec.index_names.index(name)
    )
    if not dep:
        return None
    from ..expr import Index

    return tuple(Index(name) for name in dep)


def _transpose_order(order: Sequence[Tuple[int, ...]]) -> List[Tuple[int, ...]]:
    return [tuple(reversed(element)) for element in order]


def choose_regfile(
    variable: str,
    producer_order: Optional[Sequence[Tuple[int, ...]]],
    consumer_order: Optional[Sequence[Tuple[int, ...]]],
    entries: Optional[int] = None,
    in_ports: int = 1,
    out_ports: int = 1,
    element_bits: int = 32,
    data_dependent: bool = False,
) -> RegfilePlan:
    """Run the optimization ladder of Section IV-D for one variable."""
    count = entries
    if count is None:
        count = len(consumer_order or producer_order or []) or 16

    def plan(kind: RegfileKind, reason: str) -> RegfilePlan:
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "choose_regfile", component="compiler.passes",
                variable=variable, kind=kind.value, entries=count,
                reason=reason,
            )
        return RegfilePlan(
            variable, kind, count, in_ports, out_ports, element_bits, reason
        )

    if data_dependent:
        return plan(
            RegfileKind.CROSSBAR,
            "data-dependent access pattern; baseline fallback (Figure 14a)",
        )
    if producer_order is None or consumer_order is None:
        return plan(
            RegfileKind.CROSSBAR,
            "access order not provable at elaboration time; baseline fallback",
        )

    producer = list(producer_order)
    consumer = list(consumer_order)
    if producer == consumer:
        return plan(
            RegfileKind.FEEDFORWARD,
            "inputs enter in the exact order outputs exit (Figure 14c)",
        )
    if _transpose_order(producer) == consumer:
        return plan(
            RegfileKind.TRANSPOSING,
            "consumption order is the coordinate transpose of the fill order"
            " (Figure 14d)",
        )
    if sorted(producer) == sorted(consumer):
        return plan(
            RegfileKind.EDGE,
            "orders differ but cover the same elements; edge-only access"
            " suffices (Figure 14b)",
        )
    return plan(
        RegfileKind.CROSSBAR,
        "producer and consumer element sets differ; baseline fallback",
    )
