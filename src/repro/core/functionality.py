"""Functional specifications: the first of Stellar's five design axes.

A :class:`FunctionalSpec` captures *what* an accelerator computes -- its
tensor inputs and outputs and the recurrences connecting them -- with no
commitment to the order, time, or place of each operation (paper Section
III-A).  The canonical example is the matrix-multiplication spec of
Listing 1::

    i, j, k = indices("i j k")
    A, B, C = Tensor("A", 2), Tensor("B", 2), Tensor("C", 2)
    a, b, c = Local("a", 3), Local("b", 3), Local("c", 3)

    spec = FunctionalSpec("matmul", [i, j, k])
    spec.let(a[i, j.lower_bound, k], A[i, k])
    spec.let(b[i.lower_bound, j, k], B[k, j])
    spec.let(c[i, j, k.lower_bound], 0)
    spec.let(a[i, j, k], a[i, j - 1, k])
    spec.let(b[i, j, k], b[i - 1, j, k])
    spec.let(c[i, j, k], c[i, j, k - 1] + a[i, j - 1, k] * b[i - 1, j, k])
    spec.let(C[i, j], c[i, j, k.upper_bound])

The spec exposes the analyses the compiler needs:

* :meth:`difference_vector` -- the per-variable reuse direction (Section
  IV-B's "difference vectors"), which the dataflow transform maps onto
  PE-to-PE connections;
* :meth:`dependence_set` -- the iterators that parametrize a variable's
  *identity* (e.g. partial sums ``c`` are identified by ``(i, j)``), used
  by the sparsity analysis to decide which connections survive skipping;
* :meth:`interpret` -- a reference interpreter producing ground-truth
  outputs for simulator validation.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .expr import (
    Access,
    BoundMarker,
    Bounds,
    Const,
    EvalContext,
    Expr,
    Index,
    IndexExpr,
    Local,
    SpecError,
    Symbol,
    Tensor,
    _as_value,
)


class AssignmentKind(enum.Enum):
    """Role of an assignment within a functional specification."""

    INPUT = "input"  # boundary load from an external tensor
    INIT = "init"  # boundary initialization with a constant
    COMPUTE = "compute"  # interior recurrence between local variables
    OUTPUT = "output"  # boundary store to an external tensor


class Assignment:
    """A single single-assignment rule ``lhs := rhs``."""

    def __init__(self, lhs: Access, rhs: Expr, kind: AssignmentKind):
        self.lhs = lhs
        self.rhs = rhs
        self.kind = kind

    @property
    def variable(self) -> Symbol:
        return self.lhs.target

    def boundary_conditions(self) -> Dict[str, str]:
        """Map of index name -> 'lb'/'ub' for bound markers on the LHS."""
        out: Dict[str, str] = {}
        for sub in self.lhs.subscripts:
            if isinstance(sub, BoundMarker):
                out[sub.index.name] = sub.which
        return out

    def __repr__(self) -> str:
        return f"{self.lhs!r} := {self.rhs!r}  [{self.kind.value}]"


class FunctionalSpec:
    """An accelerator's functional behaviour over a tensor iteration space."""

    def __init__(self, name: str, iteration_indices: Sequence[Index]):
        if not iteration_indices:
            raise SpecError("a functional spec needs at least one index")
        names = [ix.name for ix in iteration_indices]
        if len(set(names)) != len(names):
            raise SpecError(f"duplicate iteration indices: {names}")
        self.name = name
        self.indices: Tuple[Index, ...] = tuple(iteration_indices)
        self.index_names: Tuple[str, ...] = tuple(names)
        self.assignments: List[Assignment] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def let(self, lhs: Access, rhs) -> Assignment:
        """Add an assignment, inferring its kind from the shapes involved."""
        if not isinstance(lhs, Access):
            raise SpecError("assignment left-hand side must be a tensor/local access")
        rhs = _as_value(rhs)
        kind = self._classify(lhs, rhs)
        assignment = Assignment(lhs, rhs, kind)
        self._validate(assignment)
        self.assignments.append(assignment)
        return assignment

    def _classify(self, lhs: Access, rhs: Expr) -> AssignmentKind:
        if isinstance(lhs.target, Tensor):
            return AssignmentKind.OUTPUT
        has_boundary = any(isinstance(s, BoundMarker) for s in lhs.subscripts)
        if has_boundary:
            refs = list(rhs.references())
            if any(isinstance(r.target, Tensor) for r in refs):
                return AssignmentKind.INPUT
            if not refs:
                return AssignmentKind.INIT
        return AssignmentKind.COMPUTE

    def _validate(self, assignment: Assignment) -> None:
        for access in (assignment.lhs, *assignment.rhs.references()):
            for sub in access.subscripts:
                if isinstance(sub, IndexExpr):
                    for name in sub.free_indices():
                        if name not in self.index_names:
                            raise SpecError(
                                f"unknown index {name!r} in {access!r}; spec indices"
                                f" are {self.index_names}"
                            )
        if isinstance(assignment.lhs.target, Local):
            if assignment.lhs.target.rank != len(self.index_names):
                raise SpecError(
                    f"local {assignment.lhs.target.name!r} must have rank"
                    f" {len(self.index_names)} (one per iteration index)"
                )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def locals(self) -> List[Local]:
        seen: Dict[str, Local] = {}
        for assignment in self.assignments:
            for access in (assignment.lhs, *assignment.rhs.references()):
                if isinstance(access.target, Local):
                    seen.setdefault(access.target.name, access.target)
        return list(seen.values())

    def input_tensors(self) -> List[Tensor]:
        seen: Dict[str, Tensor] = {}
        for assignment in self.assignments:
            if assignment.kind in (AssignmentKind.INPUT, AssignmentKind.COMPUTE):
                for access in assignment.rhs.references():
                    if isinstance(access.target, Tensor):
                        seen.setdefault(access.target.name, access.target)
        return list(seen.values())

    def output_tensors(self) -> List[Tensor]:
        seen: Dict[str, Tensor] = {}
        for assignment in self.assignments:
            if assignment.kind is AssignmentKind.OUTPUT:
                seen.setdefault(assignment.lhs.target.name, assignment.lhs.target)
        return list(seen.values())

    def assignments_for(self, variable_name: str) -> List[Assignment]:
        return [a for a in self.assignments if a.variable.name == variable_name]

    def compute_assignment(self, variable_name: str) -> Optional[Assignment]:
        for assignment in self.assignments_for(variable_name):
            if assignment.kind is AssignmentKind.COMPUTE:
                return assignment
        return None

    def has_data_dependent_accesses(self) -> bool:
        """True for merge/sort-style specs with value-typed subscripts."""
        return any(
            access.is_data_dependent
            for assignment in self.assignments
            for access in (assignment.lhs, *assignment.rhs.references())
        )

    # ------------------------------------------------------------------
    # Analyses used by the compiler
    # ------------------------------------------------------------------

    def difference_vector(self, variable_name: str) -> Optional[Tuple[int, ...]]:
        """The reuse direction of a local variable in iteration space.

        From ``c(i, j, k) := c(i, j, k - 1) + ...`` the self-reference offset
        is ``(0, 0, -1)``, so the difference vector -- the displacement data
        travels per step -- is ``(0, 0, 1)`` (paper Section IV-B).
        Returns None for variables with no interior recurrence.
        """
        compute = self.compute_assignment(variable_name)
        if compute is None:
            return None
        for access in compute.rhs.references():
            if access.target.name != variable_name:
                continue
            offsets = access.subscript_offsets(self.index_names)
            if offsets is None:
                return None
            return tuple(-o for o in offsets)
        return None

    def dependence_set(self, variable_name: str) -> frozenset:
        """Iterators that parametrize the variable's *identity*.

        A local fed from ``A(i, k)`` carries a value identified by
        ``(i, k)``; a partial-sum local emptied into ``C(i, j)`` is
        identified by ``(i, j)``.  Sparsity analysis uses this to decide
        whether a PE-to-PE connection still delivers the value the
        destination PE needs after coordinates become data-dependent.
        """
        deps: frozenset = frozenset()
        found = False
        for assignment in self.assignments_for(variable_name):
            if assignment.kind is AssignmentKind.INPUT:
                for access in assignment.rhs.references():
                    if isinstance(access.target, Tensor):
                        deps |= access.free_indices()
                        found = True
        for assignment in self.assignments:
            if assignment.kind is AssignmentKind.OUTPUT:
                refs = list(assignment.rhs.references())
                if any(r.target.name == variable_name for r in refs):
                    deps |= assignment.lhs.free_indices()
                    found = True
        if not found:
            # Fall back: everything except the flow axis parametrizes identity.
            d = self.difference_vector(variable_name)
            if d is not None:
                deps = frozenset(
                    name for name, delta in zip(self.index_names, d) if delta == 0
                )
        return deps

    def difference_vectors(self) -> Dict[str, Tuple[int, ...]]:
        out: Dict[str, Tuple[int, ...]] = {}
        for local in self.locals():
            d = self.difference_vector(local.name)
            if d is not None:
                out[local.name] = d
        return out

    def macs_per_point(self) -> int:
        """Number of multiply ops in interior compute rules (for FLOP counts)."""

        def count(expr: Expr) -> int:
            if isinstance(expr, (Access, Const)):
                return 0
            total = 1 if getattr(expr, "op", None) == "*" else 0
            return total + sum(count(child) for child in expr.children())

        return sum(
            count(a.rhs)
            for a in self.assignments
            if a.kind is AssignmentKind.COMPUTE
        )

    # ------------------------------------------------------------------
    # Reference interpreter
    # ------------------------------------------------------------------

    def interpret(
        self,
        bounds: Bounds,
        tensors: Mapping[str, np.ndarray],
        kernel: bool = True,
    ) -> Dict[str, np.ndarray]:
        """Execute the spec directly over the iteration domain.

        This is the semantic ground truth: the compiler and simulator must
        produce identical outputs for any valid dataflow.  Iteration is
        lexicographic-ascending, which is safe for specs whose difference
        vectors are lexicographically non-negative (all specs in the paper).

        With ``kernel=True`` (the default) the trace-compiled batched
        evaluator (:mod:`repro.sim.kernel`) answers when this spec is
        traceable -- byte-identical results, no per-point dispatch --
        and any untraceable shape falls through to the scalar walker
        below.  ``kernel=False`` forces the scalar path; it stays the
        ground truth the kernel is differentially tested against.
        """
        for name in self.index_names:
            if name not in bounds:
                raise SpecError(f"bounds missing index {name!r}")
        if kernel:
            from ..sim.kernel import replay_interpret

            result = replay_interpret(self, bounds, tensors)
            if result is not None:
                return result
        values: Dict[Tuple[str, Tuple[int, ...]], Union[int, float]] = {}
        outputs: Dict[str, Dict[Tuple[int, ...], Union[int, float]]] = {
            t.name: {} for t in self.output_tensors()
        }
        interpreter = _Interpreter(self, bounds, tensors, values)
        # A variable with an interior recurrence is defined by it at *every*
        # in-domain point; its boundary INPUT/INIT rules describe the phantom
        # slot one step outside the domain (the paper's ``k.lowerBound``
        # initialization) and are only consulted by out-of-domain reads.
        has_compute = {
            a.variable.name
            for a in self.assignments
            if a.kind is AssignmentKind.COMPUTE
        }

        for point in bounds.domain(self.index_names):
            env = dict(zip(self.index_names, point))
            ctx = EvalContext(env, bounds, interpreter.read)
            for assignment in self.assignments:
                if not self._applies_at(assignment, env, bounds):
                    continue
                if assignment.kind is AssignmentKind.OUTPUT:
                    coords = tuple(
                        int(s.evaluate(env, bounds)) for s in assignment.lhs.subscripts
                    )
                    outputs[assignment.lhs.target.name][coords] = (
                        assignment.rhs.evaluate(ctx)
                    )
                else:
                    if (
                        assignment.kind is not AssignmentKind.COMPUTE
                        and assignment.variable.name in has_compute
                    ):
                        continue
                    key = (assignment.variable.name, point)
                    if key not in values:
                        values[key] = assignment.rhs.evaluate(ctx)

        return {
            name: _dict_to_array(cells, tensors)
            for name, cells in outputs.items()
        }

    def _applies_at(
        self, assignment: Assignment, env: Mapping[str, int], bounds: Bounds
    ) -> bool:
        """Does this assignment's boundary pattern match the current point?"""
        if assignment.kind is AssignmentKind.OUTPUT:
            # Outputs fire where the RHS boundary markers match.
            for access in assignment.rhs.references():
                for sub in access.subscripts:
                    if isinstance(sub, BoundMarker):
                        lo, hi = bounds[sub.index.name]
                        want = lo if sub.which == "lb" else hi
                        if env[sub.index.name] != want:
                            return False
            return True
        for name, which in assignment.boundary_conditions().items():
            lo, hi = bounds[name]
            want = lo if which == "lb" else hi
            if env[name] != want:
                return False
        return True


class _Interpreter:
    """Resolves local-variable reads, following recurrences and boundaries."""

    def __init__(self, spec, bounds, tensors, values):
        self.spec = spec
        self.bounds = bounds
        self.tensors = tensors
        self.values = values

    def read(self, symbol: Symbol, coords: Tuple[int, ...]):
        if isinstance(symbol, Tensor):
            array = self.tensors.get(symbol.name)
            if array is None:
                raise SpecError(f"no data provided for tensor {symbol.name!r}")
            return array[coords]
        # Local variable read.
        key = (symbol.name, coords)
        if key in self.values:
            return self.values[key]
        # Out-of-domain read: resolve through a boundary assignment by
        # clamping the out-of-range axis to its boundary (the paper's
        # phantom ``lowerBound`` slot, e.g. ``c(i, j, k.lowerBound) := 0``).
        env = dict(zip(self.spec.index_names, coords))
        # Innermost axes first: a phantom read beyond the fiber end (the
        # sort network's +/-inf neighbours) resolves before a phantom read
        # of an earlier pass/timestep.
        for name in reversed(self.spec.index_names):
            lo, hi = self.bounds[name]
            if env[name] < lo or env[name] > hi:
                clamped = dict(env)
                clamped[name] = lo if env[name] < lo else hi
                for assignment in self.spec.assignments_for(symbol.name):
                    conds = assignment.boundary_conditions()
                    which = conds.get(name)
                    if which == ("lb" if env[name] < lo else "ub"):
                        ctx = EvalContext(clamped, self.bounds, self.read)
                        return assignment.rhs.evaluate(ctx)
                raise SpecError(
                    f"read of {symbol.name} at out-of-domain point {coords} with"
                    f" no boundary rule on axis {name!r}"
                )
        raise SpecError(f"read of {symbol.name} at {coords} before definition")


def _dict_to_array(
    cells: Dict[Tuple[int, ...], Union[int, float]],
    tensors: Mapping[str, np.ndarray],
) -> np.ndarray:
    if not cells:
        return np.zeros((0,))
    rank = len(next(iter(cells)))
    shape = tuple(max(c[axis] for c in cells) + 1 for axis in range(rank))
    dtype = np.result_type(
        *(np.asarray(v).dtype for v in list(cells.values())[:4]), np.int64
    )
    if any(isinstance(v, float) for v in cells.values()):
        dtype = np.float64
    out = np.zeros(shape, dtype=dtype)
    for coords, value in cells.items():
        out[coords] = value
    return out


def matmul_spec(name: str = "matmul") -> FunctionalSpec:
    """The canonical matrix-multiplication spec of paper Listing 1."""
    i, j, k = Index("i"), Index("j"), Index("k")
    A, B, C = Tensor("A", 2), Tensor("B", 2), Tensor("C", 2)
    a, b, c = Local("a", 3), Local("b", 3), Local("c", 3)
    spec = FunctionalSpec(name, [i, j, k])
    spec.let(a[i, j.lower_bound, k], A[i, k])
    spec.let(b[i.lower_bound, j, k], B[k, j])
    spec.let(c[i, j, k.lower_bound], 0)
    spec.let(a[i, j, k], a[i, j - 1, k])
    spec.let(b[i, j, k], b[i - 1, j, k])
    spec.let(c[i, j, k], c[i, j, k - 1] + a[i, j - 1, k] * b[i - 1, j, k])
    spec.let(C[i, j], c[i, j, k.upper_bound])
    return spec


def conv1d_spec(name: str = "conv1d") -> FunctionalSpec:
    """A 1-D convolution spec: ``O(ox) = sum_f I(ox + f) * W(f)``.

    Indices: ``ox`` output position, ``oc`` output channel, ``f`` filter tap.
    2-D convolutions are lowered to matmuls via im2col in the workload layer,
    mirroring how Gemmini executes them (paper Section VI-A).
    """
    ox, oc, f = Index("ox"), Index("oc"), Index("f")
    I, W, O = Tensor("I", 1), Tensor("W", 2), Tensor("O", 2)
    img = Local("img", 3)
    wgt = Local("wgt", 3)
    acc = Local("acc", 3)
    spec = FunctionalSpec(name, [ox, oc, f])
    spec.let(img[ox, oc.lower_bound, f], I[ox + f])
    spec.let(wgt[ox.lower_bound, oc, f], W[oc, f])
    spec.let(acc[ox, oc, f.lower_bound], 0)
    spec.let(img[ox, oc, f], img[ox, oc - 1, f])
    spec.let(wgt[ox, oc, f], wgt[ox - 1, oc, f])
    spec.let(acc[ox, oc, f], acc[ox, oc, f - 1] + img[ox, oc - 1, f] * wgt[ox - 1, oc, f])
    spec.let(O[ox, oc], acc[ox, oc, f.upper_bound])
    return spec


def batched_matmul_spec(name: str = "bmm") -> FunctionalSpec:
    """A four-index batched matmul: ``C(n, i, j) = sum_k A(n, i, k) B(n, k, j)``.

    Exercises specs with more indices than physical dimensions -- the
    space-time transform must fold the batch axis into time.
    """
    n, i, j, k = (Index(x) for x in ("n", "i", "j", "k"))
    A, B, C = Tensor("A", 3), Tensor("B", 3), Tensor("C", 3)
    a, b, c = Local("a", 4), Local("b", 4), Local("c", 4)
    spec = FunctionalSpec(name, [n, i, j, k])
    spec.let(a[n, i, j.lower_bound, k], A[n, i, k])
    spec.let(b[n, i.lower_bound, j, k], B[n, k, j])
    spec.let(c[n, i, j, k.lower_bound], 0)
    spec.let(a[n, i, j, k], a[n, i, j - 1, k])
    spec.let(b[n, i, j, k], b[n, i - 1, j, k])
    spec.let(c[n, i, j, k], c[n, i, j, k - 1] + a[n, i, j - 1, k] * b[n, i - 1, j, k])
    spec.let(C[n, i, j], c[n, i, j, k.upper_bound])
    return spec
