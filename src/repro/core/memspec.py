"""Private memory-buffer specifications (paper Sections III-E and IV-C).

Buffers are described with the fibertree notation [31]: every axis of a
stored tensor is given a dense or sparse per-axis format.  CSR, for
example, is a Dense outer axis over a Compressed inner axis; block-CRS
(Figure 12) is Dense over Compressed over two Dense block axes.

From an :class:`AxisFormat` list, Stellar generates one read/write pipeline
stage per axis: Dense axes become simple affine address generators, while
Compressed / Bitvector / LinkedList axes require indirect metadata lookups
(row pointers, coordinate lists, bitmask popcounts, next pointers) before
the final data address is known.  The per-stage latency/SRAM-port costs
feed the simulator (:mod:`repro.sim.membuf`) and the area model.

Users can *hardcode* read/write request parameters before generation
(Listing 6); hardcoded parameters both simplify the address generators and
let the compiler prove the order in which elements leave the buffer, which
unlocks the register-file optimizations of Section IV-D (Figure 13).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .expr import SpecError


class AxisType(enum.Enum):
    """Per-axis storage formats from the fibertree taxonomy."""

    DENSE = "Dense"
    COMPRESSED = "Compressed"  # coordinate list + segment pointers (CSR-like)
    BITVECTOR = "Bitvector"  # occupancy bitmask + popcount offsets
    LINKED_LIST = "LinkedList"  # next-pointer chains

    @property
    def is_sparse(self) -> bool:
        return self is not AxisType.DENSE


class AxisFormat:
    """One axis of a stored tensor: its format and optional fixed size."""

    def __init__(self, axis_type: AxisType, size: Optional[int] = None, name: str = ""):
        self.axis_type = axis_type
        self.size = size
        self.name = name

    # Metadata the generated pipeline stage must consult for this axis.
    def metadata_kinds(self) -> Tuple[str, ...]:
        if self.axis_type is AxisType.DENSE:
            return ()
        if self.axis_type is AxisType.COMPRESSED:
            return ("ROW_ID", "COORD")
        if self.axis_type is AxisType.BITVECTOR:
            return ("BITMASK",)
        return ("NEXT_PTR", "COORD")

    def stage_latency(self) -> int:
        """Pipeline latency in cycles of this axis's address-resolution stage.

        Dense axes are a single adder; Compressed axes read a segment
        pointer then a coordinate (two dependent SRAM accesses); Bitvector
        axes read and popcount a mask; LinkedList axes chase one pointer.
        """
        return {
            AxisType.DENSE: 1,
            AxisType.COMPRESSED: 2,
            AxisType.BITVECTOR: 2,
            AxisType.LINKED_LIST: 3,
        }[self.axis_type]

    def __repr__(self) -> str:
        size = f", size={self.size}" if self.size is not None else ""
        return f"AxisFormat({self.axis_type.value}{size})"


def Dense(size: Optional[int] = None, name: str = "") -> AxisFormat:
    return AxisFormat(AxisType.DENSE, size, name)


def Compressed(size: Optional[int] = None, name: str = "") -> AxisFormat:
    return AxisFormat(AxisType.COMPRESSED, size, name)


def Bitvector(size: Optional[int] = None, name: str = "") -> AxisFormat:
    return AxisFormat(AxisType.BITVECTOR, size, name)


def LinkedList(size: Optional[int] = None, name: str = "") -> AxisFormat:
    return AxisFormat(AxisType.LINKED_LIST, size, name)


class HardcodedParams:
    """Read/write request parameters fixed before hardware generation
    (Listing 6): per-axis spans and data strides.

    Hardcoding a full read shape lets the compiler enumerate the exact
    order in which elements exit the buffer (Figure 13a), which the
    register-file optimizer matches against the spatial array's consumption
    order (Figure 13b).
    """

    def __init__(
        self,
        spans: Optional[Mapping[int, int]] = None,
        data_strides: Optional[Mapping[int, int]] = None,
        wavefront: bool = False,
    ):
        self.spans: Dict[int, int] = dict(spans or {})
        self.data_strides: Dict[int, int] = dict(data_strides or {})
        # ``wavefront`` requests elements along anti-diagonals (the order of
        # Figure 13a) rather than row-major order.
        self.wavefront = wavefront

    def is_fully_specified(self, rank: int) -> bool:
        return all(axis in self.spans for axis in range(rank))

    def emission_order(self) -> List[Tuple[int, ...]]:
        """The exact element order leaving the buffer, if provable.

        Only available when every span is hardcoded.  For two-dimensional
        wavefront reads this reproduces Figure 13a: ``(0,0)``; ``(1,0),
        (0,1)``; ``(2,0), (1,1), (0,2)``; ...
        """
        rank = len(self.spans)
        if not self.is_fully_specified(rank) or rank == 0:
            raise SpecError("emission order requires fully hardcoded spans")
        shape = [self.spans[axis] for axis in range(rank)]
        points: List[Tuple[int, ...]] = []

        def rec(prefix: List[int], axis: int):
            if axis == rank:
                points.append(tuple(prefix))
                return
            for value in range(shape[axis]):
                prefix.append(value)
                rec(prefix, axis + 1)
                prefix.pop()

        rec([], 0)
        if self.wavefront:
            points.sort(key=lambda p: (sum(p), [-v for v in p]))
        return points

    def __repr__(self) -> str:
        return (
            f"HardcodedParams(spans={self.spans!r},"
            f" data_strides={self.data_strides!r}, wavefront={self.wavefront})"
        )


class MemoryBufferSpec:
    """A private memory buffer: per-axis formats, capacity, and bandwidth.

    ``axes`` are ordered outermost-first, mirroring the order read/write
    requests traverse the generated pipeline stages (Figure 12).
    """

    def __init__(
        self,
        name: str,
        axes: Sequence[AxisFormat],
        capacity_bytes: int = 64 * 1024,
        element_bits: int = 32,
        read_ports: int = 1,
        write_ports: int = 1,
        hardcoded_read: Optional[HardcodedParams] = None,
        hardcoded_write: Optional[HardcodedParams] = None,
    ):
        if not axes:
            raise SpecError("a memory buffer needs at least one axis")
        if capacity_bytes <= 0 or element_bits <= 0:
            raise SpecError("capacity and element width must be positive")
        self.name = name
        self.axes: Tuple[AxisFormat, ...] = tuple(axes)
        self.capacity_bytes = capacity_bytes
        self.element_bits = element_bits
        self.read_ports = read_ports
        self.write_ports = write_ports
        self.hardcoded_read = hardcoded_read
        self.hardcoded_write = hardcoded_write

    @property
    def rank(self) -> int:
        return len(self.axes)

    def is_dense(self) -> bool:
        return all(axis.axis_type is AxisType.DENSE for axis in self.axes)

    def pipeline_stage_latencies(self) -> Tuple[int, ...]:
        """One entry per axis, outermost-first (Section IV-C: one pipeline
        stage per axis of the stored tensors)."""
        return tuple(axis.stage_latency() for axis in self.axes)

    def access_latency(self) -> int:
        """Latency of a request through all address-resolution stages plus
        the final data SRAM read."""
        return sum(self.pipeline_stage_latencies()) + 1

    def metadata_sram_count(self) -> int:
        """Number of distinct metadata SRAMs the buffer instantiates."""
        return sum(len(axis.metadata_kinds()) for axis in self.axes)

    def capacity_elements(self) -> int:
        return (self.capacity_bytes * 8) // self.element_bits

    def provable_read_order(self) -> Optional[List[Tuple[int, ...]]]:
        """Element emission order, when hardcoded parameters prove it."""
        hardcoded = self.hardcoded_read
        if hardcoded is None or not hardcoded.is_fully_specified(self.rank):
            return None
        if not self.is_dense():
            return None  # sparse axes emit data-dependent orders
        return hardcoded.emission_order()

    def __repr__(self) -> str:
        inner = ", ".join(axis.axis_type.value for axis in self.axes)
        return f"MemoryBufferSpec({self.name!r}, [{inner}])"


# ---------------------------------------------------------------------------
# Canonical formats
# ---------------------------------------------------------------------------


def dense_matrix_buffer(name: str, rows: int, cols: int, **kwargs) -> MemoryBufferSpec:
    return MemoryBufferSpec(name, [Dense(rows, "row"), Dense(cols, "col")], **kwargs)


def csr_buffer(name: str, rows: int, **kwargs) -> MemoryBufferSpec:
    """CSR: Dense rows over Compressed columns (Section III-E's example)."""
    return MemoryBufferSpec(name, [Dense(rows, "row"), Compressed(name="col")], **kwargs)


def csc_buffer(name: str, cols: int, **kwargs) -> MemoryBufferSpec:
    """CSC: Dense columns over Compressed rows."""
    return MemoryBufferSpec(name, [Dense(cols, "col"), Compressed(name="row")], **kwargs)


def block_crs_buffer(
    name: str, block_rows: int, block: int = 4, **kwargs
) -> MemoryBufferSpec:
    """Block-CRS [9] (Figure 12): Dense block-rows, Compressed block-columns,
    then two Dense intra-block axes."""
    return MemoryBufferSpec(
        name,
        [
            Dense(block_rows, "block_row"),
            Compressed(name="block_col"),
            Dense(block, "intra_row"),
            Dense(block, "intra_col"),
        ],
        **kwargs,
    )


def bitvector_matrix_buffer(name: str, rows: int, **kwargs) -> MemoryBufferSpec:
    return MemoryBufferSpec(name, [Dense(rows, "row"), Bitvector(name="col")], **kwargs)


def linked_list_buffer(name: str, rows: int, **kwargs) -> MemoryBufferSpec:
    """Dense rows of linked-list fibers (MatRaptor-style row storage)."""
    return MemoryBufferSpec(name, [Dense(rows, "row"), LinkedList(name="col")], **kwargs)
