"""Load-balancing specifications (paper Sections III-D and IV-E).

Stellar lets users shift computations from one region of the tensor
iteration space onto *target* iterations that would otherwise idle.
Listing 3's row-granular scheme::

    Shift /*i=*/ N -> 2*N, j, k  to  /*i=*/ 0 -> N, j, k+1

is written here as::

    Shift(src={"i": Range(N, 2 * N)}, dst={"i": Range(0, N), "k": Offset(1)})

and Listing 4's "a few very flexible PEs"::

    Shift i, j, k  to  /*i=*/ 0, /*j=*/ 0 -> 4, k

as::

    Shift(src={}, dst={"i": Range(0, 1), "j": Range(0, 4)})

At runtime the generated load balancer applies a *space-time bias*
(Equation 2) -- a vector added to the iteration coordinates before the
space-time transform -- so that an idle PE behaves as if it were a PE
elsewhere in the array and takes over its work.

The *granularity* of a shift also feeds back into spatial-array structure
(Figure 10): when individual PEs within a row can independently take work
from another row, their horizontal PE-to-PE connections can no longer be
trusted to carry the right operands, and the pruning pass replaces them
with register-file ports.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from .expr import SpecError
from .functionality import FunctionalSpec


class Range:
    """A half-open iterator range ``[lo, hi)`` inside a shift clause."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: int, hi: int):
        if hi <= lo:
            raise SpecError(f"empty shift range [{lo}, {hi})")
        self.lo = lo
        self.hi = hi

    def __contains__(self, value: int) -> bool:
        return self.lo <= value < self.hi

    @property
    def extent(self) -> int:
        return self.hi - self.lo

    def __repr__(self) -> str:
        return f"Range({self.lo}, {self.hi})"


class Offset:
    """A relative clause: ``k -> k + delta`` (the ``k+1`` of Listing 3)."""

    __slots__ = ("delta",)

    def __init__(self, delta: int):
        self.delta = delta

    def __repr__(self) -> str:
        return f"Offset({self.delta:+d})"


class Shift:
    """One load-balancing rule: move work from ``src`` onto ``dst``.

    ``src`` maps iterator names to :class:`Range` (which iterations may be
    moved); unnamed iterators are unconstrained (Listing 4 omits all three).
    ``dst`` maps iterator names to :class:`Range` (the target region whose
    PEs take the work) or :class:`Offset` (a relative retargeting such as
    ``k -> k + 1``).
    """

    def __init__(
        self,
        src: Dict[str, Range],
        dst: Dict[str, object],
        granularity: Optional[str] = None,
    ):
        for name, clause in dst.items():
            if not isinstance(clause, (Range, Offset)):
                raise SpecError(
                    f"dst clause for {name!r} must be Range or Offset, got {clause!r}"
                )
        self.src = dict(src)
        self.dst = dict(dst)
        self._granularity = granularity

    def bias_vector(self, order: Sequence[str]) -> Tuple[int, ...]:
        """The space-time bias (Equation 2) applied to shifted iterations.

        For Range->Range clauses the bias is ``src.lo - dst.lo`` (mapping
        target iterations back onto source work); Offset clauses contribute
        ``-delta``.
        """
        bias: List[int] = []
        for name in order:
            src_clause = self.src.get(name)
            dst_clause = self.dst.get(name)
            if isinstance(dst_clause, Offset):
                bias.append(-dst_clause.delta)
            elif isinstance(dst_clause, Range) and isinstance(src_clause, Range):
                bias.append(src_clause.lo - dst_clause.lo)
            else:
                bias.append(0)
        return tuple(bias)

    def target_region(self, order: Sequence[str]) -> Dict[str, Range]:
        return {
            name: clause
            for name, clause in self.dst.items()
            if isinstance(clause, Range) and name in order
        }

    def constrained_axes(self) -> FrozenSet[str]:
        """Axes along which the target region is a *proper* sub-range.

        A shift like Listing 4, whose target pins ``i = 0`` and
        ``j in [0, 4)``, lets individual PEs in those rows/columns
        independently pick up foreign work -- so connections along the
        constrained axes are no longer guaranteed (Figure 10b).
        """
        return frozenset(
            name for name, clause in self.dst.items() if isinstance(clause, Range)
        )

    def validate_against(self, spec: FunctionalSpec) -> None:
        for name in (*self.src, *self.dst):
            if name not in spec.index_names:
                raise SpecError(
                    f"shift references unknown iterator {name!r};"
                    f" spec has {spec.index_names}"
                )

    def is_row_granular(self, order: Sequence[str]) -> bool:
        """True when entire hyperplanes trade work as a unit (Figure 10a):
        the target ranges tile the source ranges axis-by-axis with equal
        extents, so each target PE has exactly one source PE to mirror."""
        for name, clause in self.dst.items():
            if isinstance(clause, Range):
                src_clause = self.src.get(name)
                if not isinstance(src_clause, Range):
                    return False
                if src_clause.extent != clause.extent:
                    return False
        return True

    def __repr__(self) -> str:
        return f"Shift(src={self.src!r}, dst={self.dst!r})"


class LoadBalancingScheme:
    """The full load-balancing axis of a design: an ordered list of shifts."""

    def __init__(self, shifts: Iterable[Shift] = ()):
        self.shifts: List[Shift] = list(shifts)

    def add(self, shift: Shift) -> "LoadBalancingScheme":
        self.shifts.append(shift)
        return self

    def is_disabled(self) -> bool:
        return not self.shifts

    def pruned_axes(self, order: Sequence[str]) -> FrozenSet[str]:
        """Axes whose PE-to-PE connections must be replaced with regfile
        ports because PEs along them balance independently (Figure 10b)."""
        axes: set = set()
        for shift in self.shifts:
            if not shift.is_row_granular(order):
                axes |= set(shift.constrained_axes())
        return frozenset(axes)

    def validate_against(self, spec: FunctionalSpec) -> None:
        for shift in self.shifts:
            shift.validate_against(spec)

    def __iter__(self):
        return iter(self.shifts)

    def __len__(self) -> int:
        return len(self.shifts)

    def __repr__(self) -> str:
        return f"LoadBalancingScheme({self.shifts!r})"


def row_shift_scheme(n: int) -> LoadBalancingScheme:
    """Listing 3: shift rows ``[N, 2N)`` of the i axis onto idle rows
    ``[0, N)`` one k-step ahead -- adjacent-row work sharing (Figure 6)."""
    return LoadBalancingScheme(
        [Shift(src={"i": Range(n, 2 * n)}, dst={"i": Range(0, n), "k": Offset(1)})]
    )


def flexible_pe_scheme(columns: int = 4) -> LoadBalancingScheme:
    """Listing 4: a small set of very flexible PEs (``i = 0``,
    ``j in [0, columns)``) that may take work from anywhere."""
    return LoadBalancingScheme(
        [Shift(src={}, dst={"i": Range(0, 1), "j": Range(0, columns)})]
    )
