"""The Stellar compiler: from five independent specifications to a
hardware representation (paper Section IV, Figure 7).

:func:`compile_design` elaborates a functional spec into the
``IterationSpace`` IR, applies sparsity and load-balancing pruning,
maps the result through the space-time transform, and runs the
register-file optimization ladder -- producing a :class:`CompiledDesign`
that the RTL backend, the simulator, and the area model all consume.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..exec.cache import CompileCache

from .balancing import LoadBalancingScheme
from .dataflow import SpaceTimeTransform, classify_dataflow, validate_schedule
from .expr import Bounds
from .functionality import FunctionalSpec
from .iterspace import (
    IODirection,
    IterationSpace,
    PhysicalArray,
    apply_transform,
    elaborate,
)
from ..obs.profile import get_profiler
from ..obs.trace import get_tracer
from .memspec import MemoryBufferSpec
from .passes.pipelining import PipeliningReport, analyze_pipelining
from .passes.prune import PruneReport, prune_for_balancing, prune_for_sparsity
from .passes.regfile_opt import RegfilePlan, choose_regfile, consumption_order
from .sparsity import SparsityStructure


class BalancerPlan:
    """A generated load-balancer module (paper Section IV-E): the regfiles
    it monitors and the space-time biases it can apply at runtime."""

    def __init__(
        self,
        monitored_variables: Sequence[str],
        bias_vectors: Sequence[Tuple[int, ...]],
        granularity: str,
    ):
        self.monitored_variables = list(monitored_variables)
        self.bias_vectors = [tuple(b) for b in bias_vectors]
        self.granularity = granularity  # "row" or "pe"

    def __repr__(self) -> str:
        return (
            f"BalancerPlan(monitors={self.monitored_variables},"
            f" biases={self.bias_vectors}, granularity={self.granularity!r})"
        )


class CompiledDesign:
    """Everything the backends need about one compiled accelerator."""

    def __init__(
        self,
        spec: FunctionalSpec,
        bounds: Bounds,
        transform: SpaceTimeTransform,
        functional_iterspace: IterationSpace,
        pruned_iterspace: IterationSpace,
        array: PhysicalArray,
        regfile_plans: Dict[str, RegfilePlan],
        membufs: Dict[str, MemoryBufferSpec],
        balancer: Optional[BalancerPlan],
        sparsity: SparsityStructure,
        balancing: LoadBalancingScheme,
        prune_reports: List[PruneReport],
        pipelining: PipeliningReport,
        dataflow_roles: Dict[str, str],
        element_bits: int = 32,
    ):
        self.spec = spec
        self.bounds = bounds
        self.transform = transform
        self.functional_iterspace = functional_iterspace
        self.pruned_iterspace = pruned_iterspace
        self.array = array
        self.regfile_plans = regfile_plans
        self.membufs = membufs
        self.balancer = balancer
        self.sparsity = sparsity
        self.balancing = balancing
        self.prune_reports = prune_reports
        self.pipelining = pipelining
        self.dataflow_roles = dataflow_roles
        self.element_bits = element_bits

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def pe_count(self) -> int:
        return self.array.pe_count

    def pruned_variables(self) -> List[str]:
        out: List[str] = []
        for report in self.prune_reports:
            out.extend(report.pruned_variables)
        return out

    def summary(self) -> str:
        lines = [
            f"design {self.name}: {self.pe_count} PEs,"
            f" schedule length {self.array.schedule_length}",
            f"  dataflow roles: {self.dataflow_roles}",
            f"  connections: {len(self.array.conns)}"
            f" (pruned variables: {self.pruned_variables() or 'none'})",
        ]
        for variable, plan in sorted(self.regfile_plans.items()):
            lines.append(
                f"  regfile[{variable}]: {plan.kind.value}"
                f" ({plan.entries} entries) -- {plan.reason}"
            )
        if self.balancer is not None:
            lines.append(f"  balancer: {self.balancer!r}")
        return "\n".join(lines)


def compile_design(
    spec: FunctionalSpec,
    bounds: Bounds,
    transform: SpaceTimeTransform,
    sparsity: Optional[SparsityStructure] = None,
    balancing: Optional[LoadBalancingScheme] = None,
    membufs: Optional[Mapping[str, MemoryBufferSpec]] = None,
    element_bits: int = 32,
    check: bool = True,
    cache: Optional["CompileCache"] = None,
) -> CompiledDesign:
    """Run the full compilation pipeline of Figure 7.

    Parameters mirror the five design axes of Section III: ``spec``
    (functionality), ``transform`` (dataflow), ``sparsity``, ``balancing``,
    and ``membufs`` (private memory buffers, keyed by tensor name).

    With ``check=True`` (the default) the spec-legality analyzer runs
    before elaboration and raises :class:`repro.analysis.AnalysisError`
    on error-severity findings; pass ``check=False`` to collect
    diagnostics yourself via :func:`repro.analysis.check_spec`.

    ``cache`` (a :class:`repro.exec.cache.CompileCache`) memoizes the
    stages that are shared between designs differing in only some axes:
    elaboration per ``(spec, bounds)``, the transform-legality analysis
    per ``(spec, bounds, transform)``, and pruning per ``(spec, bounds,
    sparsity, balancing)``.  Memoized intermediates are shared objects;
    the pipeline never mutates them after construction.
    """
    sparsity = sparsity or SparsityStructure()
    balancing = balancing or LoadBalancingScheme()
    membufs = dict(membufs or {})

    profiler = get_profiler()
    tracer = get_tracer()

    # The analysis gate runs before validate_schedule so its richer
    # multi-finding diagnostics win over the legacy first-failure error.
    if check:
        from ..analysis.diagnostics import AnalysisError, errors_only
        from ..analysis.spec import check_spec_annotations, check_spec_transform

        with profiler.scope("analysis.spec"), tracer.span(
            "check_spec", component="compiler", design=spec.name
        ):
            if cache is not None:
                transform_findings = cache.memo(
                    "analysis.spec",
                    (spec, bounds, transform),
                    lambda: check_spec_transform(spec, bounds, transform),
                )
            else:
                transform_findings = check_spec_transform(spec, bounds, transform)
            findings = errors_only(
                list(transform_findings)
                + check_spec_annotations(spec, sparsity, balancing)
            )
        if findings:
            raise AnalysisError(findings)

    with profiler.scope("compile.validate_schedule"), tracer.span(
        "validate_schedule", component="compiler", design=spec.name
    ):
        validate_schedule(spec, transform)

    # Stage 1: the functional IterationSpace (Figure 9a).
    with profiler.scope("compile.elaborate"), tracer.span(
        "elaborate", component="compiler", design=spec.name
    ):
        if cache is not None:
            functional = cache.memo(
                "compile.elaborate",
                (spec, bounds),
                lambda: elaborate(spec, bounds),
            )
        else:
            functional = elaborate(spec, bounds)

    # Stage 2: prune connections for sparsity and balancing (Figure 9b).
    with profiler.scope("compile.prune"), tracer.span(
        "prune", component="compiler", design=spec.name
    ):
        def _prune() -> Tuple[IterationSpace, Tuple[PruneReport, PruneReport]]:
            step1, sparsity_report = prune_for_sparsity(functional, sparsity)
            step2, balancing_report = prune_for_balancing(step1, balancing)
            return step2, (sparsity_report, balancing_report)

        if cache is not None:
            pruned, report_pair = cache.memo(
                "compile.prune", (spec, bounds, sparsity, balancing), _prune
            )
        else:
            pruned, report_pair = _prune()
        reports: List[PruneReport] = list(report_pair)

    # Stage 3: map to physical space-time (Figure 9c).
    with profiler.scope("compile.map_spacetime"), tracer.span(
        "map_spacetime", component="compiler", design=spec.name
    ):
        array = apply_transform(pruned, transform)

    # Stage 4: the register-file optimization ladder (Figure 14).
    with profiler.scope("compile.regfile_ladder"), tracer.span(
        "regfile_ladder", component="compiler", design=spec.name
    ):
        regfile_plans = _plan_regfiles(
            spec, pruned, transform, membufs, sparsity, element_bits
        )

    with profiler.scope("compile.analyze"), tracer.span(
        "analyze", component="compiler", design=spec.name
    ):
        balancer = _plan_balancer(spec, balancing)
        pipelining = analyze_pipelining(spec, transform)
        roles = classify_dataflow(spec, transform)

    return CompiledDesign(
        spec=spec,
        bounds=bounds,
        transform=transform,
        functional_iterspace=functional,
        pruned_iterspace=pruned,
        array=array,
        regfile_plans=regfile_plans,
        membufs=membufs,
        balancer=balancer,
        sparsity=sparsity,
        balancing=balancing,
        prune_reports=reports,
        pipelining=pipelining,
        dataflow_roles=roles,
        element_bits=element_bits,
    )


def _plan_regfiles(
    spec: FunctionalSpec,
    pruned: IterationSpace,
    transform: SpaceTimeTransform,
    membufs: Mapping[str, MemoryBufferSpec],
    sparsity: SparsityStructure,
    element_bits: int,
) -> Dict[str, RegfilePlan]:
    """One regfile per local variable with IO traffic (Section IV-D)."""
    plans: Dict[str, RegfilePlan] = {}
    data_dependent = spec.has_data_dependent_accesses()
    sparse_iters = sparsity.skipped_iterators()

    for variable in sorted(
        {io.variable for io in pruned.io_conns}
        | set(spec.difference_vectors())
    ):
        inputs = [
            io for io in pruned.io_for(variable) if io.direction is IODirection.INPUT
        ]
        outputs = [
            io for io in pruned.io_for(variable) if io.direction is IODirection.OUTPUT
        ]
        if not inputs and not outputs:
            continue

        consumer = consumption_order(pruned, transform, variable, IODirection.INPUT)
        tensor = next((io.tensor for io in inputs if io.tensor), None) or next(
            (io.tensor for io in outputs if io.tensor), None
        )
        producer = None
        if tensor is not None and tensor in membufs:
            producer = _producer_order_for(membufs[tensor], consumer)
        # A variable whose identity involves a skipped (compressed) iterator
        # has runtime-expanded coordinates: its regfile must search entries.
        dep_sparse = bool(spec.dependence_set(variable) & sparse_iters)

        entries = len(consumer) if consumer else None
        # Port counts: one regfile port per distinct PE position touching
        # this variable (after pruning, IO may reach interior PEs -- the
        # "more ports to outer register files" cost of Figure 4).
        in_positions = {
            transform.space(io.point.coords) for io in inputs
        }
        out_positions = {
            transform.space(io.point.coords) for io in outputs
        }
        plans[variable] = choose_regfile(
            variable,
            producer,
            consumer,
            entries=entries,
            in_ports=max(1, len(in_positions)),
            out_ports=max(1, len(out_positions)),
            element_bits=element_bits,
            data_dependent=data_dependent or dep_sparse,
        )
    return plans


def _producer_order_for(membuf: MemoryBufferSpec, consumer) -> Optional[List[Tuple[int, ...]]]:
    order = membuf.provable_read_order()
    if order is None:
        return None
    # The buffer emits elements by storage coordinates; the consumer order is
    # expressed in dependence-set coordinates.  They are directly comparable
    # when both are tuples of the same rank.
    if consumer and order and len(order[0]) != len(consumer[0]):
        return None
    return order


def _plan_balancer(
    spec: FunctionalSpec, balancing: LoadBalancingScheme
) -> Optional[BalancerPlan]:
    if balancing.is_disabled():
        return None
    order = spec.index_names
    biases = [shift.bias_vector(order) for shift in balancing]
    granularity = (
        "row" if all(s.is_row_granular(order) for s in balancing) else "pe"
    )
    monitored = sorted(
        v
        for v in spec.difference_vectors()
        if spec.dependence_set(v)
    )
    return BalancerPlan(monitored, biases, granularity)
