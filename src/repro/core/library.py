"""A library of functional specifications beyond plain tensor algebra.

Section III-A notes that Stellar's functional notation "supports
data-dependent accesses to input or output tensors, which are useful for
specifying merging and sorting algorithms for sparse workloads", and
Sections IV-F/VI-D use exactly that generality to express SpArch's
mergers.  This module provides those specs:

* :func:`merge_sorted_spec` -- a row-partitioned merger (Figure 19a):
  each lane merges two sorted fibers by conditionally advancing
  data-dependent read pointers, one output element per step;
* :func:`sort_network_spec` -- a bubble-style sorting network over a
  small fiber, the pre-/post-processing idiom the paper mentions.

Because these specs contain data-dependent accesses, the compiler's
register-file ladder falls back to the searching baseline (Figure 14a)
for them -- the behaviour Section IV-D describes -- and their dataflow is
restricted to the affine schedules Section IV-F discusses.
"""

from __future__ import annotations

from .expr import Index, Local, Select, Tensor, maximum, minimum
from .functionality import FunctionalSpec

#: Sentinel appended past the end of each input fiber so the merger can
#: drain one list after the other is exhausted.  Callers pad their fibers
#: with it (see tests and the merge example).
MERGE_SENTINEL = 1 << 30


def merge_sorted_spec(name: str = "merge") -> FunctionalSpec:
    """A row-partitioned two-way merger (Figure 19a) as a functional spec.

    Iteration indices: ``l`` (the merge lane -- one output row per lane)
    and ``t`` (the output position within the lane).  Inputs ``A(l, .)``
    and ``B(l, .)`` are sorted fibers padded with :data:`MERGE_SENTINEL`;
    output ``M(l, t)`` is the merged stream.

    The defining rules use *data-dependent accesses*: the read pointers
    ``pa`` and ``pb`` advance based on the comparison of the values they
    point at, so the coordinate of the next element read from ``A`` is not
    known until runtime::

        take_a(l, t) = A(l, pa(l, t-1)) <= B(l, pb(l, t-1))
        pa(l, t)     = pa(l, t-1) + take_a
        pb(l, t)     = pb(l, t-1) + (1 - take_a)
        M(l, t)      = min(A(l, pa(l, t-1)), B(l, pb(l, t-1)))
    """
    l, t = Index("l"), Index("t")
    A, B, M = Tensor("A", 2), Tensor("B", 2), Tensor("M", 2)
    pa, pb, out = Local("pa", 2), Local("pb", 2), Local("out", 2)

    spec = FunctionalSpec(name, [l, t])
    spec.let(pa[l, t.lower_bound], 0)
    spec.let(pb[l, t.lower_bound], 0)

    a_head = A[l, pa[l, t - 1]]
    b_head = B[l, pb[l, t - 1]]
    take_a = a_head <= b_head

    spec.let(pa[l, t], pa[l, t - 1] + Select(take_a, 1, 0))
    spec.let(pb[l, t], pb[l, t - 1] + Select(take_a, 0, 1))
    spec.let(out[l, t], Select(take_a, a_head, b_head))
    spec.let(M[l, t], out[l, t])
    return spec


def sort_network_spec(name: str = "sort") -> FunctionalSpec:
    """An odd-even transposition sorting network as a functional spec.

    Iteration indices: ``p`` (pass) and ``e`` (element position).  In pass
    ``p``, elements where ``(e + p)`` is even take the minimum of
    themselves and their right neighbour; the others take the maximum of
    themselves and their left neighbour -- a compare-exchange network.
    After ``n`` passes over an ``n``-element fiber ``V``, the output
    ``S(e) = s(p.upperBound, e)`` is sorted.

    Edge elements read phantom neighbours pinned to +/-infinity sentinels
    by boundary rules, so the network needs no special-case hardware at
    the fiber ends.
    """
    from .expr import BinOp, Comparison, Const, IndexValue

    p, e = Index("p"), Index("e")
    V, S = Tensor("V", 1), Tensor("S", 1)
    s = Local("s", 2)
    big = Const(MERGE_SENTINEL)
    small = Const(-MERGE_SENTINEL)

    spec = FunctionalSpec(name, [p, e])
    spec.let(s[p.lower_bound, e], V[e])  # pass "-1": the unsorted fiber
    spec.let(s[p, e.lower_bound], small)  # phantom left neighbour
    spec.let(s[p, e.upper_bound], big)  # phantom right neighbour

    is_left_of_pair = Comparison(
        "==", BinOp("%", IndexValue(p + e), Const(2)), Const(0)
    )
    spec.let(
        s[p, e],
        Select(
            is_left_of_pair,
            minimum(s[p - 1, e], s[p - 1, e + 1]),
            maximum(s[p - 1, e - 1], s[p - 1, e]),
        ),
    )
    spec.let(S[e], s[p.upper_bound, e])
    return spec
