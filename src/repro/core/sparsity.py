"""Sparse data-structure specifications (paper Section III-C).

Sparsity in Stellar is expressed in terms of which tensor iterators may be
*skipped*, and under which conditions -- independently of how tensors are
actually encoded in memory (that is the job of the memory-buffer axis,
Section III-E).  Listing 2's examples::

    Skip j when B(k, j) == 0         # B is CSR
    Skip i and k when i != k         # A is diagonal
    Skip k when A(i, ->) == 0        # rows of A may be entirely empty

are written here as::

    Skip([j], B[k, j] == 0)
    Skip([i, k], Comparison("!=", IndexValue(i), IndexValue(k)))
    Skip([k], A[i, WILDCARD] == 0)

``OptimisticSkip`` is the structured-sparsity variant (Figure 5, the A100
2:4 scheme): instead of removing PE-to-PE connections, the compiler widens
them into bundles of potentially-useful values.

The key analysis exported here is :meth:`Skip.expansion_dependencies`:
skipping iterator ``j`` under condition ``B(k, j) == 0`` makes the expanded
coordinate a data-dependent function ``j_expanded = f(k, j_compressed)``
whose value changes with ``k``.  Section IV-B uses these dependencies to
decide which PE-to-PE connections are still *guaranteed* to carry useful
values (see :mod:`repro.core.passes.prune`).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from .expr import WILDCARD, Expr, Index, SpecError, Tensor
from .functionality import FunctionalSpec


class Skip:
    """``Skip <iterators> when <condition>``.

    Parameters
    ----------
    skipped:
        The iterators whose iterations may be elided.
    condition:
        A boolean expression over tensor accesses and indices.  Iterations
        where the condition holds are skipped.
    optimistic:
        When True this is an ``OptimisticSkip`` (Figure 5): PE-to-PE
        connections are retained but widened to carry ``bundle`` candidate
        values instead of a single scalar.
    bundle:
        Bundle width for optimistic skips (e.g. 4 for the A100 2:4 format,
        which scans four adjacent weights for two non-zeros).
    """

    def __init__(
        self,
        skipped: Sequence[Index],
        condition: Expr,
        optimistic: bool = False,
        bundle: int = 1,
    ):
        if not skipped:
            raise SpecError("a Skip must name at least one iterator")
        if not isinstance(condition, Expr):
            raise SpecError("skip condition must be a boolean expression")
        if optimistic and bundle < 2:
            raise SpecError("an OptimisticSkip needs a bundle width of at least 2")
        if not optimistic and bundle != 1:
            raise SpecError("bundle width is only meaningful for OptimisticSkip")
        self.skipped: Tuple[Index, ...] = tuple(skipped)
        self.skipped_names: Tuple[str, ...] = tuple(ix.name for ix in skipped)
        self.condition = condition
        self.optimistic = optimistic
        self.bundle = bundle

    # ------------------------------------------------------------------
    # Analyses
    # ------------------------------------------------------------------

    def condition_tensors(self) -> List[Tensor]:
        return [
            access.target
            for access in self.condition.references()
            if isinstance(access.target, Tensor)
        ]

    def expansion_dependencies(self) -> Dict[str, FrozenSet[str]]:
        """For each skipped iterator, the iterators its expansion depends on.

        The expanded coordinate of a skipped iterator ``s`` is an arbitrary
        function of the *other* free indices of the skip condition: with
        ``Skip j when B(k, j) == 0``, ``j_expanded = f(k, j_compressed)``,
        so ``deps = {"k"}``.  A structured condition such as ``i != k``
        couples the skipped iterators to each other.
        """
        free = self.condition.free_indices()
        out: Dict[str, FrozenSet[str]] = {}
        for name in self.skipped_names:
            out[name] = frozenset(free - {name})
        return out

    def is_structured(self) -> bool:
        """Structured skips (no tensor in the condition, e.g. ``i != k``)
        have expansion functions known at compile time."""
        return not self.condition_tensors()

    def validate_against(self, spec: FunctionalSpec) -> None:
        for name in self.skipped_names:
            if name not in spec.index_names:
                raise SpecError(
                    f"skip names unknown iterator {name!r}; spec has {spec.index_names}"
                )
        for name in self.condition.free_indices():
            if name not in spec.index_names:
                raise SpecError(f"skip condition references unknown iterator {name!r}")

    def __repr__(self) -> str:
        kind = "OptimisticSkip" if self.optimistic else "Skip"
        names = " and ".join(self.skipped_names)
        extra = f", bundle={self.bundle}" if self.optimistic else ""
        return f"{kind} {names} when {self.condition!r}{extra}"


class SparsityStructure:
    """The full sparsity axis of a design: an ordered list of skips."""

    def __init__(self, skips: Iterable[Skip] = ()):
        self.skips: List[Skip] = list(skips)

    def add(self, skip: Skip) -> "SparsityStructure":
        self.skips.append(skip)
        return self

    def skipped_iterators(self) -> FrozenSet[str]:
        out: set = set()
        for skip in self.skips:
            out |= set(skip.skipped_names)
        return frozenset(out)

    def expansion_dependencies(self) -> Dict[str, FrozenSet[str]]:
        """Merged expansion dependencies across all (pessimistic) skips."""
        merged: Dict[str, set] = {}
        for skip in self.skips:
            if skip.optimistic:
                continue
            for name, deps in skip.expansion_dependencies().items():
                merged.setdefault(name, set()).update(deps)
        return {name: frozenset(deps) for name, deps in merged.items()}

    def optimistic_bundles(self) -> Dict[str, int]:
        """Bundle widths per iterator introduced by OptimisticSkips."""
        out: Dict[str, int] = {}
        for skip in self.skips:
            if skip.optimistic:
                for name in skip.skipped_names:
                    out[name] = max(out.get(name, 1), skip.bundle)
        return out

    def validate_against(self, spec: FunctionalSpec) -> None:
        for skip in self.skips:
            skip.validate_against(spec)

    def is_dense(self) -> bool:
        return not self.skips

    def __iter__(self):
        return iter(self.skips)

    def __len__(self) -> int:
        return len(self.skips)

    def __repr__(self) -> str:
        return f"SparsityStructure({self.skips!r})"


# ---------------------------------------------------------------------------
# Canonical structures from the paper
# ---------------------------------------------------------------------------


def csr_b_matrix(spec: FunctionalSpec) -> SparsityStructure:
    """Listing 5: ``Skip j when B(k, j) == 0`` -- the B matrix is CSR."""
    j = _index(spec, "j")
    k = _index(spec, "k")
    B = _tensor(spec, "B")
    return SparsityStructure([Skip([j], B[k, j] == 0)])


def csr_csc_both(spec: FunctionalSpec) -> SparsityStructure:
    """Listing 2 lines 1-3: A is CSC and B is CSR (outer-product matmul)."""
    i, j, k = (_index(spec, n) for n in "ijk")
    A, B = _tensor(spec, "A"), _tensor(spec, "B")
    return SparsityStructure(
        [Skip([i], A[i, k] == 0), Skip([j], B[k, j] == 0)]
    )


def diagonal_a_matrix(spec: FunctionalSpec) -> SparsityStructure:
    """Listing 2 line 5: ``Skip i and k when i != k`` -- A is diagonal."""
    i, k = _index(spec, "i"), _index(spec, "k")
    return SparsityStructure([Skip([i, k], i != k)])


def empty_rows_of_a(spec: FunctionalSpec) -> SparsityStructure:
    """Listing 2 line 7: ``Skip k when A(i, ->) == 0`` -- whole-row skips."""
    k = _index(spec, "k")
    i = _index(spec, "i")
    A = _tensor(spec, "A")
    return SparsityStructure([Skip([k], A[i, WILDCARD] == 0)])


def a100_two_four(spec: FunctionalSpec) -> SparsityStructure:
    """Figure 5: NVIDIA A100 2:4 structured sparsity on the A (weight)
    matrix, expressed with ``OptimisticSkip`` over bundles of four."""
    k = _index(spec, "k")
    i = _index(spec, "i")
    A = _tensor(spec, "A")
    return SparsityStructure(
        [Skip([k], A[i, k] == 0, optimistic=True, bundle=4)]
    )


def _index(spec: FunctionalSpec, name: str) -> Index:
    for ix in spec.indices:
        if ix.name == name:
            return ix
    raise SpecError(f"spec {spec.name!r} has no index {name!r}")


def _tensor(spec: FunctionalSpec, name: str) -> Tensor:
    for tensor in (*spec.input_tensors(), *spec.output_tensors()):
        if tensor.name == name:
            return tensor
    raise SpecError(f"spec {spec.name!r} has no tensor {name!r}")
