"""The top-level accelerator facade: Stellar's user-facing entry point.

An :class:`Accelerator` bundles the five independent design axes of paper
Section III and drives the full generation flow of Figure 1: compile the
specifications, emit Verilog, instantiate a simulator, and report area --
each axis replaceable in isolation (the separation of concerns the paper
argues for).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Union

from .balancing import LoadBalancingScheme
from .compiler import CompiledDesign, compile_design
from .dataflow import SpaceTimeTransform
from .expr import Bounds
from .functionality import FunctionalSpec
from .memspec import MemoryBufferSpec
from .sparsity import SparsityStructure


class Accelerator:
    """A complete accelerator description across Stellar's five axes.

    Example (a 4x4 output-stationary dense matmul unit)::

        acc = Accelerator(
            spec=matmul_spec(),
            bounds=Bounds({"i": 4, "j": 4, "k": 4}),
            transform=output_stationary(),
        )
        design = acc.build()
        verilog = design.to_verilog()
    """

    def __init__(
        self,
        spec: FunctionalSpec,
        bounds: Union[Bounds, Mapping[str, int]],
        transform: SpaceTimeTransform,
        sparsity: Optional[SparsityStructure] = None,
        balancing: Optional[LoadBalancingScheme] = None,
        membufs: Optional[Mapping[str, MemoryBufferSpec]] = None,
        element_bits: int = 32,
    ):
        self.spec = spec
        self.bounds = bounds if isinstance(bounds, Bounds) else Bounds(bounds)
        self.transform = transform
        self.sparsity = sparsity or SparsityStructure()
        self.balancing = balancing or LoadBalancingScheme()
        self.membufs: Dict[str, MemoryBufferSpec] = dict(membufs or {})
        self.element_bits = element_bits

    # Axis-replacement helpers: each returns a new Accelerator with one
    # design concern changed and everything else untouched.
    def with_transform(self, transform: SpaceTimeTransform) -> "Accelerator":
        return self._replace(transform=transform)

    def with_sparsity(self, sparsity: SparsityStructure) -> "Accelerator":
        return self._replace(sparsity=sparsity)

    def with_balancing(self, balancing: LoadBalancingScheme) -> "Accelerator":
        return self._replace(balancing=balancing)

    def with_membufs(self, membufs: Mapping[str, MemoryBufferSpec]) -> "Accelerator":
        return self._replace(membufs=dict(membufs))

    def with_bounds(self, bounds: Union[Bounds, Mapping[str, int]]) -> "Accelerator":
        return self._replace(bounds=bounds if isinstance(bounds, Bounds) else Bounds(bounds))

    def _replace(self, **kwargs) -> "Accelerator":
        fields = {
            "spec": self.spec,
            "bounds": self.bounds,
            "transform": self.transform,
            "sparsity": self.sparsity,
            "balancing": self.balancing,
            "membufs": self.membufs,
            "element_bits": self.element_bits,
        }
        fields.update(kwargs)
        return Accelerator(**fields)

    def build(self, check: bool = True, cache=None) -> "GeneratedDesign":
        """Run the compiler and wrap the result with the backends.

        ``check`` is forwarded to :func:`repro.core.compiler.compile_design`
        and controls the spec-legality analysis gate.  ``cache`` (a
        :class:`repro.exec.cache.CompileCache`) memoizes the whole
        compile on the design's content key and shares pipeline stages
        with other designs built through the same cache.
        """
        if cache is not None:
            compiled = cache.compile(
                self.spec,
                self.bounds,
                self.transform,
                sparsity=self.sparsity,
                balancing=self.balancing,
                membufs=self.membufs,
                element_bits=self.element_bits,
                check=check,
            )
        else:
            compiled = compile_design(
                self.spec,
                self.bounds,
                self.transform,
                sparsity=self.sparsity,
                balancing=self.balancing,
                membufs=self.membufs,
                element_bits=self.element_bits,
                check=check,
            )
        return GeneratedDesign(self, compiled)


class GeneratedDesign:
    """A compiled accelerator plus its generation backends.

    Backends are imported lazily so the core compiler stays free of
    dependencies on the RTL, simulation, and area subsystems.
    """

    def __init__(self, accelerator: Accelerator, compiled: CompiledDesign):
        self.accelerator = accelerator
        self.compiled = compiled

    @property
    def name(self) -> str:
        return self.compiled.name

    @property
    def pe_count(self) -> int:
        return self.compiled.pe_count

    @property
    def dataflow_roles(self) -> Dict[str, str]:
        return self.compiled.dataflow_roles

    @property
    def regfile_plans(self):
        return self.compiled.regfile_plans

    @property
    def balancer(self):
        return self.compiled.balancer

    def pruned_variables(self):
        return self.compiled.pruned_variables()

    def summary(self) -> str:
        return self.compiled.summary()

    def to_verilog(self) -> str:
        """Emit the design as Verilog text (paper's primary output)."""
        from ..rtl.lowering import lower_design

        return lower_design(self.compiled).emit()

    def to_netlist(self):
        """The structural RTL netlist the Verilog is emitted from."""
        from ..rtl.lowering import lower_design

        return lower_design(self.compiled)

    def simulator(self, **kwargs):
        """A cycle-level simulator instance for this design."""
        from ..sim.spatial_array import SpatialArraySim

        return SpatialArraySim(self.compiled, **kwargs)

    def run(self, tensors: Mapping[str, "object"], **kwargs):
        """Simulate one invocation; returns a result with outputs + stats."""
        sim = self.simulator(**kwargs)
        return sim.run(tensors)

    def area_report(self, **kwargs):
        """Component-level area estimate (calibrated model; see DESIGN.md)."""
        from ..area.model import estimate_design_area

        return estimate_design_area(self.compiled, **kwargs)

    def energy_report(self, sim_result, **kwargs):
        """Energy estimate for one simulated invocation (Figure 17 model)."""
        from ..area.energy import energy_from_counters

        return energy_from_counters(sim_result.counters, **kwargs)

    def rtl_simulator(self, top: Optional[str] = None):
        """An RTL interpreter over the emitted netlist (poke/peek/step)."""
        from ..rtl.sim import RTLSimulator

        return RTLSimulator(self.to_netlist(), top=top)

    def __repr__(self) -> str:
        return f"GeneratedDesign({self.name!r}, pes={self.pe_count})"
