"""Dataflow specifications: space-time transforms (paper Section III-B).

A dataflow in Stellar is a linear transformation ``T`` -- an invertible
integer matrix -- from the tensor iteration space to physical space and
time coordinates on a spatial array (Equation 1)::

    T . (i, j, k)^T = (x, y, t)^T

Changing numerical values in ``T`` produces input-stationary,
output-stationary, weight-stationary or hexagonal arrays (Figure 2), and
scaling the *time row* controls how aggressively the array is pipelined
(Figure 3): a variable with iteration-space difference vector ``d`` moves
through the array with space-time displacement ``T . d``, whose time
component is the number of pipeline registers on that path.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Dict, List, Optional, Sequence, Tuple

from .expr import Bounds, SpecError, exact_inverse
from .functionality import FunctionalSpec


class SpaceTimeTransform:
    """An invertible integer space-time transform.

    The last row is the *time* row; the preceding ``space_dims`` rows map
    iteration points to physical PE coordinates.
    """

    def __init__(self, matrix: Sequence[Sequence[int]], space_dims: Optional[int] = None):
        rows = [tuple(int(v) for v in row) for row in matrix]
        n = len(rows)
        if any(len(row) != n for row in rows):
            raise SpecError("space-time transform must be a square matrix")
        self.matrix: Tuple[Tuple[int, ...], ...] = tuple(rows)
        self.rank = n
        self.space_dims = n - 1 if space_dims is None else space_dims
        if not (0 < self.space_dims < n + 1):
            raise SpecError("space_dims must be between 1 and the matrix rank")
        self.time_dims = n - self.space_dims
        if self.time_dims < 1:
            raise SpecError("at least one time dimension is required")
        self._inverse = exact_inverse(rows)  # raises if singular

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------

    def apply(self, point: Sequence[int]) -> Tuple[int, ...]:
        """Map an iteration-space point to ``(x..., t...)``."""
        if len(point) != self.rank:
            raise SpecError(
                f"point has {len(point)} coordinates, transform expects {self.rank}"
            )
        return tuple(
            sum(c * p for c, p in zip(row, point)) for row in self.matrix
        )

    def space(self, point: Sequence[int]) -> Tuple[int, ...]:
        return self.apply(point)[: self.space_dims]

    def time(self, point: Sequence[int]) -> Tuple[int, ...]:
        return self.apply(point)[self.space_dims:]

    def unapply(self, spacetime: Sequence[int]) -> Optional[Tuple[int, ...]]:
        """Recover the iteration point for a space-time coordinate.

        This is the computation each PE's "IO Request Generator" performs at
        runtime with ``T^-1`` (Figure 11).  Returns None when the space-time
        coordinate does not correspond to an integer iteration point.
        """
        if len(spacetime) != self.rank:
            raise SpecError("space-time vector has the wrong rank")
        values: List[int] = []
        for row in self._inverse:
            acc = sum(c * s for c, s in zip(row, spacetime))
            if isinstance(acc, Fraction):
                if acc.denominator != 1:
                    return None
                acc = int(acc)
            values.append(int(acc))
        return tuple(values)

    def integer_inverse(self) -> Tuple[Tuple[Tuple[int, ...], ...], int]:
        """``T^-1`` as ``(numerators, denominator)`` with integer entries.

        ``unapply(st)`` equals ``(numerators @ st) / denominator`` and is an
        integer point exactly when every product is divisible by the
        denominator -- the form batch evaluation over a whole domain needs,
        since it avoids per-point :class:`~fractions.Fraction` arithmetic.
        """
        denominator = 1
        for row in self._inverse:
            for value in row:
                if isinstance(value, Fraction):
                    denominator = denominator * value.denominator // gcd(
                        denominator, value.denominator
                    )
        numerators = tuple(
            tuple(int(value * denominator) for value in row)
            for row in self._inverse
        )
        return numerators, denominator

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------

    def displacement(self, difference_vector: Sequence[int]) -> Tuple[int, ...]:
        """Space-time displacement ``T . d`` of a difference vector.

        E.g. the input-stationary transform maps the partial-sum vector
        ``(0, 0, 1)`` to ``(dx=1, dy=0, dt=1)``: sums travel vertically down
        the array, one pipeline stage per hop (Section IV-B).
        """
        return self.apply(difference_vector)

    def pipeline_depth(self, difference_vector: Sequence[int]) -> int:
        """Number of pipeline registers along a variable's path (Figure 3)."""
        return sum(abs(v) for v in self.displacement(difference_vector)[self.space_dims:])

    def is_stationary(self, difference_vector: Sequence[int]) -> bool:
        """True when the variable never moves between PEs (zero space delta)."""
        disp = self.displacement(difference_vector)
        return all(v == 0 for v in disp[: self.space_dims])

    def with_time_row(self, row: Sequence[int]) -> "SpaceTimeTransform":
        """Return a copy with a different (single) time row -- the knob used
        in Figure 3 to trade clock frequency against pipeline latency."""
        if self.time_dims != 1:
            raise SpecError("with_time_row requires a single time dimension")
        matrix = [list(r) for r in self.matrix[:-1]] + [list(row)]
        return SpaceTimeTransform(matrix, self.space_dims)

    def footprint(self, bounds: Bounds, order: Sequence[str]) -> "ArrayFootprint":
        """Enumerate the physical PEs and schedule length for a domain."""
        spaces = set()
        times = set()
        for point in bounds.domain(order):
            st = self.apply(point)
            spaces.add(st[: self.space_dims])
            times.add(st[self.space_dims:])
        return ArrayFootprint(frozenset(spaces), min(times), max(times))

    def __repr__(self) -> str:
        rows = "; ".join(" ".join(str(v) for v in row) for row in self.matrix)
        return f"SpaceTimeTransform([{rows}], space_dims={self.space_dims})"


class ArrayFootprint:
    """The set of occupied PE coordinates and the time extent of a mapping."""

    def __init__(self, positions: frozenset, t_min: Tuple[int, ...], t_max: Tuple[int, ...]):
        self.positions = positions
        self.t_min = t_min
        self.t_max = t_max

    @property
    def pe_count(self) -> int:
        return len(self.positions)

    @property
    def schedule_length(self) -> int:
        return self.t_max[0] - self.t_min[0] + 1

    def bounding_box(self) -> Tuple[Tuple[int, int], ...]:
        dims = len(next(iter(self.positions)))
        return tuple(
            (min(p[d] for p in self.positions), max(p[d] for p in self.positions))
            for d in range(dims)
        )

    def is_rectangular(self) -> bool:
        box = self.bounding_box()
        expected = 1
        for lo, hi in box:
            expected *= hi - lo + 1
        return expected == self.pe_count


# ---------------------------------------------------------------------------
# Named transforms for the 3-index matmul spec (Figure 2)
# ---------------------------------------------------------------------------


def output_stationary() -> SpaceTimeTransform:
    """Figure 2b: ``x = i, y = j, t = i + j + k``; C(i, j) stays in place."""
    return SpaceTimeTransform([[1, 0, 0], [0, 1, 0], [1, 1, 1]])


def input_stationary() -> SpaceTimeTransform:
    """Figure 2a: ``x = k, y = j, t = i + j + k``; B(k, j) stays in place and
    partial sums travel vertically down the array (``T.(0,0,1) = (1,0,1)``)."""
    return SpaceTimeTransform([[0, 0, 1], [0, 1, 0], [1, 1, 1]])


def weight_stationary() -> SpaceTimeTransform:
    """The Gemmini-style weight-stationary dataflow; identical in structure
    to :func:`input_stationary` with the weight matrix held in place."""
    return input_stationary()


def hexagonal() -> SpaceTimeTransform:
    """Figure 2c: all three indices spatially unrolled onto a 2-D plane,
    yielding a hexagonal PE footprint with short, routable wires [4]."""
    return SpaceTimeTransform([[1, 0, -1], [0, 1, -1], [1, 1, 1]])


def identity(rank: int) -> SpaceTimeTransform:
    return SpaceTimeTransform(
        [[int(r == c) for c in range(rank)] for r in range(rank)]
    )


def classify_dataflow(spec: FunctionalSpec, transform: SpaceTimeTransform) -> Dict[str, str]:
    """Describe each local variable's role under a transform.

    Returns a map of variable name to one of ``stationary``, ``moving`` or
    ``broadcast`` (zero time delta -- a combinational wire spanning PEs).
    """
    roles: Dict[str, str] = {}
    for name, d in spec.difference_vectors().items():
        disp = transform.displacement(d)
        space = disp[: transform.space_dims]
        time = disp[transform.space_dims:]
        if all(v == 0 for v in space):
            roles[name] = "stationary"
        elif all(v == 0 for v in time):
            roles[name] = "broadcast"
        else:
            roles[name] = "moving"
    return roles


def validate_schedule(spec: FunctionalSpec, transform: SpaceTimeTransform) -> None:
    """Check the transform is a legal schedule for the spec.

    Every data dependence must strictly advance in time: for each difference
    vector ``d``, the time component of ``T . d`` must be positive, or zero
    only if the data does not move in space (a stationary value).  A zero
    time delta with nonzero space delta is a broadcast, which is legal
    hardware but flagged by callers that disallow combinational chains.
    """
    for name, d in spec.difference_vectors().items():
        disp = transform.displacement(d)
        dt = disp[transform.space_dims]
        if dt < 0:
            raise SpecError(
                f"transform violates causality for {name!r}: time delta {dt} < 0"
                f" along difference vector {d}"
            )
