"""The ``IterationSpace`` intermediate representation (paper Section IV-B).

The compiler's central IR mirrors Figure 9: an :class:`IterationSpace` is a
set of :class:`Point` s, each corresponding to one assignment of values to
the tensor iterators; :class:`Point2PointConn` s describing data
dependencies between points; and :class:`IOConn` s representing input or
output requests to external register files.  The IR evolves in three
stages:

1. *Functional* (Figure 9a) -- built purely from the functional spec; one
   point per iteration-domain element, connections along each variable's
   difference vector, IO connections at domain boundaries.
2. *Pruned* (Figure 9b) -- after sparsity and load-balancing analyses
   remove connections no longer guaranteed to carry useful values and
   replace them with IO connections (:mod:`repro.core.passes.prune`).
3. *Physical* (Figure 9c) -- after the space-time transform maps points to
   PEs; multiple iteration points that share space coordinates fold into a
   single PE with a time-varying role.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .dataflow import SpaceTimeTransform
from .expr import Bounds, SpecError
from .functionality import Assignment, AssignmentKind, FunctionalSpec


class IODirection(enum.Enum):
    INPUT = "input"
    OUTPUT = "output"


class Point:
    """One element of the tensor iteration space."""

    __slots__ = ("coords",)

    def __init__(self, coords: Sequence[int]):
        self.coords = tuple(coords)

    def __eq__(self, other) -> bool:
        return isinstance(other, Point) and self.coords == other.coords

    def __hash__(self) -> int:
        return hash(self.coords)

    def __repr__(self) -> str:
        return f"Point{self.coords}"


class Point2PointConn:
    """A data dependency between two iteration points for one variable."""

    __slots__ = ("variable", "src", "dst", "bundle")

    def __init__(self, variable: str, src: Point, dst: Point, bundle: int = 1):
        self.variable = variable
        self.src = src
        self.dst = dst
        self.bundle = bundle  # >1 for OptimisticSkip widened connections

    def offset(self) -> Tuple[int, ...]:
        return tuple(d - s for s, d in zip(self.src.coords, self.dst.coords))

    def __repr__(self) -> str:
        wide = f" x{self.bundle}" if self.bundle > 1 else ""
        return f"P2P({self.variable}: {self.src!r} -> {self.dst!r}{wide})"


class IOConn:
    """An input- or output-request to an external register file."""

    __slots__ = ("variable", "point", "direction", "tensor")

    def __init__(
        self,
        variable: str,
        point: Point,
        direction: IODirection,
        tensor: Optional[str] = None,
    ):
        self.variable = variable
        self.point = point
        self.direction = direction
        self.tensor = tensor

    def __repr__(self) -> str:
        arrow = "<-" if self.direction is IODirection.INPUT else "->"
        target = self.tensor or "regfile"
        return f"IO({self.variable} @ {self.point!r} {arrow} {target})"


class IterationSpace:
    """The compiler IR: points, connections, IO requests (Figure 9)."""

    def __init__(
        self,
        spec: FunctionalSpec,
        bounds: Bounds,
        points: Iterable[Point],
        p2p_conns: Iterable[Point2PointConn],
        io_conns: Iterable[IOConn],
    ):
        self.spec = spec
        self.bounds = bounds
        self.points: List[Point] = list(points)
        self.p2p_conns: List[Point2PointConn] = list(p2p_conns)
        self.io_conns: List[IOConn] = list(io_conns)
        self._point_set: Set[Point] = set(self.points)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def conns_for(self, variable: str) -> List[Point2PointConn]:
        return [c for c in self.p2p_conns if c.variable == variable]

    def io_for(self, variable: str) -> List[IOConn]:
        return [c for c in self.io_conns if c.variable == variable]

    def connected_variables(self) -> FrozenSet[str]:
        return frozenset(c.variable for c in self.p2p_conns)

    def io_variables(self) -> FrozenSet[str]:
        return frozenset(c.variable for c in self.io_conns)

    def has_point(self, point: Point) -> bool:
        return point in self._point_set

    def conn_count(self) -> int:
        return len(self.p2p_conns)

    def io_count(self) -> int:
        return len(self.io_conns)

    # ------------------------------------------------------------------
    # Rewrites
    # ------------------------------------------------------------------

    def without_conns(
        self, variables: Iterable[str], replace_with_io: bool = True
    ) -> "IterationSpace":
        """Remove every connection of the given variables, optionally
        replacing each removed connection with regfile IO at its endpoints
        (the Figure 2a -> Figure 4 rewrite)."""
        doomed = set(variables)
        kept = [c for c in self.p2p_conns if c.variable not in doomed]
        new_io = list(self.io_conns)
        if replace_with_io:
            existing = {
                (c.variable, c.point, c.direction) for c in self.io_conns
            }
            for conn in self.p2p_conns:
                if conn.variable not in doomed:
                    continue
                for point, direction in (
                    (conn.dst, IODirection.INPUT),
                    (conn.src, IODirection.OUTPUT),
                ):
                    key = (conn.variable, point, direction)
                    if key not in existing:
                        existing.add(key)
                        new_io.append(IOConn(conn.variable, point, direction))
        return IterationSpace(self.spec, self.bounds, self.points, kept, new_io)

    def widened(self, variable: str, bundle: int) -> "IterationSpace":
        """Widen a variable's connections to carry value bundles
        (OptimisticSkip, Figure 5)."""
        conns = [
            Point2PointConn(c.variable, c.src, c.dst, bundle)
            if c.variable == variable
            else c
            for c in self.p2p_conns
        ]
        return IterationSpace(self.spec, self.bounds, self.points, conns, self.io_conns)


def elaborate(spec: FunctionalSpec, bounds: Bounds) -> IterationSpace:
    """Build the functional-stage IR of Figure 9a.

    One point per element of the iteration domain; per-variable connections
    along the variable's difference vector; IO connections where boundary
    assignments load inputs or store outputs.
    """
    order = spec.index_names
    for name in order:
        if name not in bounds:
            raise SpecError(f"bounds missing index {name!r}")

    points = [Point(coords) for coords in bounds.domain(order)]
    point_set = set(points)

    p2p: List[Point2PointConn] = []
    for variable, d in spec.difference_vectors().items():
        if all(v == 0 for v in d):
            continue
        for point in points:
            src = Point(tuple(c - delta for c, delta in zip(point.coords, d)))
            if src in point_set:
                p2p.append(Point2PointConn(variable, src, point))

    io: List[IOConn] = []
    for assignment in spec.assignments:
        if assignment.kind is AssignmentKind.INPUT:
            tensor = next(
                (
                    access.target.name
                    for access in assignment.rhs.references()
                    if access.target.name not in {v.name for v in spec.locals()}
                ),
                None,
            )
            for point in _boundary_points(assignment, spec, bounds, points):
                io.append(
                    IOConn(assignment.variable.name, point, IODirection.INPUT, tensor)
                )
        elif assignment.kind is AssignmentKind.OUTPUT:
            source_locals = {
                access.target.name
                for access in assignment.rhs.references()
            }
            for point in _output_points(assignment, spec, bounds, points):
                for local_name in source_locals:
                    io.append(
                        IOConn(
                            local_name,
                            point,
                            IODirection.OUTPUT,
                            assignment.lhs.target.name,
                        )
                    )

    return IterationSpace(spec, bounds, points, p2p, io)


def _boundary_points(
    assignment: Assignment,
    spec: FunctionalSpec,
    bounds: Bounds,
    points: Sequence[Point],
) -> Iterable[Point]:
    conditions = assignment.boundary_conditions()
    targets = {}
    for name, which in conditions.items():
        lo, hi = bounds[name]
        targets[spec.index_names.index(name)] = lo if which == "lb" else hi
    for point in points:
        if all(point.coords[axis] == val for axis, val in targets.items()):
            yield point


def _output_points(
    assignment: Assignment,
    spec: FunctionalSpec,
    bounds: Bounds,
    points: Sequence[Point],
) -> Iterable[Point]:
    # Outputs fire where the RHS's bound markers hold (e.g. k == k.upperBound).
    from .expr import BoundMarker

    targets = {}
    for access in assignment.rhs.references():
        for sub in access.subscripts:
            if isinstance(sub, BoundMarker):
                lo, hi = bounds[sub.index.name]
                targets[spec.index_names.index(sub.index.name)] = (
                    lo if sub.which == "lb" else hi
                )
    for point in points:
        if all(point.coords[axis] == val for axis, val in targets.items()):
            yield point


# ---------------------------------------------------------------------------
# Physical (post-transform) representation
# ---------------------------------------------------------------------------


class PhysicalConn:
    """A PE-to-PE connection in physical space: offset and register depth."""

    __slots__ = ("variable", "space_offset", "time_offset", "bundle")

    def __init__(
        self,
        variable: str,
        space_offset: Tuple[int, ...],
        time_offset: int,
        bundle: int = 1,
    ):
        self.variable = variable
        self.space_offset = space_offset
        self.time_offset = time_offset
        self.bundle = bundle

    @property
    def is_broadcast(self) -> bool:
        """Zero time offset with nonzero space offset: a combinational chain."""
        return self.time_offset == 0 and any(self.space_offset)

    @property
    def is_stationary(self) -> bool:
        return not any(self.space_offset)

    def __repr__(self) -> str:
        return (
            f"PhysicalConn({self.variable}, dspace={self.space_offset},"
            f" dt={self.time_offset}, bundle={self.bundle})"
        )


class PhysicalPE:
    """One processing element of the generated spatial array (Figure 11)."""

    __slots__ = ("position", "iteration_points", "io_count")

    def __init__(self, position: Tuple[int, ...]):
        self.position = position
        self.iteration_points: List[Tuple[Tuple[int, ...], int]] = []  # (coords, t)
        self.io_count = 0

    @property
    def timestep_count(self) -> int:
        return len(self.iteration_points)

    def __repr__(self) -> str:
        return f"PhysicalPE{self.position}"


class PhysicalArray:
    """The physical-stage IR of Figure 9c: PEs plus uniform connections."""

    def __init__(
        self,
        iterspace: IterationSpace,
        transform: SpaceTimeTransform,
        pes: Dict[Tuple[int, ...], PhysicalPE],
        conns: List[PhysicalConn],
        io_ports: Dict[str, int],
        schedule_length: int,
    ):
        self.iterspace = iterspace
        self.transform = transform
        self.pes = pes
        self.conns = conns
        self.io_ports = io_ports  # variable -> number of regfile ports needed
        self.schedule_length = schedule_length

    @property
    def pe_count(self) -> int:
        return len(self.pes)

    def positions(self) -> List[Tuple[int, ...]]:
        return sorted(self.pes)

    def conns_for(self, variable: str) -> List[PhysicalConn]:
        return [c for c in self.conns if c.variable == variable]

    def total_wire_length(self) -> int:
        """Manhattan wire length summed over all PE-to-PE connections --
        the congestion proxy used when comparing dataflows (Section I)."""
        per_pe = sum(
            sum(abs(v) for v in conn.space_offset)
            for conn in self.conns
            if not conn.is_stationary
        )
        return per_pe * self.pe_count

    def utilization_bound(self) -> float:
        """Fraction of PE-timesteps holding real work (dense upper bound)."""
        total_slots = self.pe_count * self.schedule_length
        work = sum(pe.timestep_count for pe in self.pes.values())
        return work / total_slots if total_slots else 0.0


def apply_transform(
    iterspace: IterationSpace, transform: SpaceTimeTransform
) -> PhysicalArray:
    """Map a (pruned) IterationSpace through a space-time transform,
    producing the physical array of Figure 9c."""
    if transform.rank != len(iterspace.spec.index_names):
        raise SpecError(
            f"transform rank {transform.rank} does not match spec indices"
            f" {iterspace.spec.index_names}"
        )

    pes: Dict[Tuple[int, ...], PhysicalPE] = {}
    times: List[int] = []
    for point in iterspace.points:
        st = transform.apply(point.coords)
        space = st[: transform.space_dims]
        t = st[transform.space_dims]
        pe = pes.get(space)
        if pe is None:
            pe = pes[space] = PhysicalPE(space)
        pe.iteration_points.append((point.coords, t))
        times.append(t)

    # Uniform connections: every variable's connections share one offset by
    # construction (difference vectors are constant), so deduplicate.
    seen: Dict[Tuple[str, Tuple[int, ...], int, int], PhysicalConn] = {}
    for conn in iterspace.p2p_conns:
        disp = transform.apply(conn.offset())
        space_offset = disp[: transform.space_dims]
        time_offset = disp[transform.space_dims]
        if time_offset < 0:
            raise SpecError(
                f"transform violates causality for {conn.variable!r}"
                f" (time delta {time_offset})"
            )
        key = (conn.variable, space_offset, time_offset, conn.bundle)
        if key not in seen:
            seen[key] = PhysicalConn(
                conn.variable, space_offset, time_offset, conn.bundle
            )

    io_ports: Dict[str, int] = {}
    per_pe_io: Dict[Tuple[str, Tuple[int, ...]], int] = {}
    for io in iterspace.io_conns:
        st = transform.apply(io.point.coords)
        space = st[: transform.space_dims]
        key = (io.variable, space)
        per_pe_io[key] = per_pe_io.get(key, 0) + 1
        if space in pes:
            pes[space].io_count += 1
    for (variable, _), __ in per_pe_io.items():
        io_ports[variable] = io_ports.get(variable, 0) + 1

    schedule_length = (max(times) - min(times) + 1) if times else 0
    return PhysicalArray(
        iterspace, transform, pes, list(seen.values()), io_ports, schedule_length
    )
