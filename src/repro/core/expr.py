"""Expression language for Stellar functional specifications.

Stellar specifications (paper Section III-A) are written in a Halide-like,
single-assignment notation over a *tensor iteration space*.  This module
provides the building blocks of that notation:

* :class:`Index` -- a tensor iterator (``i``, ``j``, ``k`` in Listing 1),
* affine index expressions (``j - 1``, ``2 * i + 1``),
* bound markers (``j.lower_bound``, ``k.upper_bound``),
* value expressions over tensors and local variables, including the
  data-dependent accesses used by merge/sort accelerators.

Expressions are plain immutable trees.  They carry no state and make no
assumption about where or when they execute; the compiler later assigns
space-time coordinates to every operation (Section III-B).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union


class SpecError(ValueError):
    """Raised when a specification is malformed or inconsistent."""


# ---------------------------------------------------------------------------
# Index expressions
# ---------------------------------------------------------------------------


class IndexExpr:
    """Base class for expressions appearing in tensor/variable subscripts."""

    def free_indices(self) -> frozenset:
        raise NotImplementedError

    def evaluate(self, env: Mapping[str, int], bounds: "Bounds") -> int:
        raise NotImplementedError

    def offset_from(self, index: "Index") -> Optional[int]:
        """If this expression is ``index + c`` for a constant ``c``, return c.

        Returns ``None`` when the expression is not a unit-coefficient affine
        offset of ``index`` (e.g. ``2*i`` or a different index).
        """
        return None

    # Algebra ----------------------------------------------------------------
    def __add__(self, other) -> "AffineIndexExpr":
        return _as_affine(self) + _as_affine(other)

    def __radd__(self, other) -> "AffineIndexExpr":
        return _as_affine(other) + _as_affine(self)

    def __sub__(self, other) -> "AffineIndexExpr":
        return _as_affine(self) - _as_affine(other)

    def __rsub__(self, other) -> "AffineIndexExpr":
        return _as_affine(other) - _as_affine(self)

    def __mul__(self, other) -> "AffineIndexExpr":
        return _as_affine(self) * other

    def __rmul__(self, other) -> "AffineIndexExpr":
        return _as_affine(self) * other

    def __neg__(self) -> "AffineIndexExpr":
        return _as_affine(self) * -1


class Index(IndexExpr):
    """A tensor iterator, e.g. ``i`` in ``C(i, j) += A(i, k) * B(k, j)``.

    Indices live purely in the tensor iteration space: they do not map to
    physical space or time until a space-time transform is applied.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name or not name.isidentifier():
            raise SpecError(f"invalid index name: {name!r}")
        self.name = name

    @property
    def lower_bound(self) -> "BoundMarker":
        """Marker pinning this index to its lower bound (``i.lowerBound``)."""
        return BoundMarker(self, "lb")

    @property
    def upper_bound(self) -> "BoundMarker":
        """Marker pinning this index to its upper bound (``i.upperBound``)."""
        return BoundMarker(self, "ub")

    def free_indices(self) -> frozenset:
        return frozenset({self.name})

    def evaluate(self, env: Mapping[str, int], bounds: "Bounds") -> int:
        return env[self.name]

    def offset_from(self, index: "Index") -> Optional[int]:
        return 0 if index.name == self.name else None

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other) -> object:  # type: ignore[override]
        # ``==`` builds a comparison Expr so conditions such as
        # ``B[k, j] == 0`` read naturally (see sparsity.Skip).  Identity
        # comparisons should use ``is`` or compare ``.name``.
        if isinstance(other, (Index, IndexExpr, Expr, int, float)):
            return Comparison("==", _as_value(self), _as_value(other))
        return NotImplemented

    def __ne__(self, other) -> object:  # type: ignore[override]
        if isinstance(other, (Index, IndexExpr, Expr, int, float)):
            return Comparison("!=", _as_value(self), _as_value(other))
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Index", self.name))


class BoundMarker(IndexExpr):
    """``i.lowerBound`` / ``i.upperBound`` in subscript position.

    On an assignment's left-hand side a bound marker restricts the assignment
    to the boundary of the iteration domain; on the right-hand side it
    evaluates to the bound value itself.
    """

    __slots__ = ("index", "which")

    def __init__(self, index: Index, which: str):
        if which not in ("lb", "ub"):
            raise SpecError(f"bound marker must be 'lb' or 'ub', got {which!r}")
        self.index = index
        self.which = which

    def free_indices(self) -> frozenset:
        return frozenset()

    def evaluate(self, env: Mapping[str, int], bounds: "Bounds") -> int:
        lo, hi = bounds[self.index.name]
        return lo if self.which == "lb" else hi

    def __repr__(self) -> str:
        suffix = "lowerBound" if self.which == "lb" else "upperBound"
        return f"{self.index.name}.{suffix}"


class AffineIndexExpr(IndexExpr):
    """An affine combination of indices: ``sum(coeff * index) + const``."""

    __slots__ = ("coeffs", "const")

    def __init__(self, coeffs: Mapping[str, int], const: int = 0):
        self.coeffs = {name: c for name, c in coeffs.items() if c != 0}
        self.const = const

    def free_indices(self) -> frozenset:
        return frozenset(self.coeffs)

    def evaluate(self, env: Mapping[str, int], bounds: "Bounds") -> int:
        return self.const + sum(c * env[name] for name, c in self.coeffs.items())

    def offset_from(self, index: Index) -> Optional[int]:
        if set(self.coeffs) == {index.name} and self.coeffs[index.name] == 1:
            return self.const
        if not self.coeffs and self.const == 0:
            return None
        return None

    def __add__(self, other) -> "AffineIndexExpr":
        other = _as_affine(other)
        coeffs = dict(self.coeffs)
        for name, c in other.coeffs.items():
            coeffs[name] = coeffs.get(name, 0) + c
        return AffineIndexExpr(coeffs, self.const + other.const)

    def __sub__(self, other) -> "AffineIndexExpr":
        return self + (_as_affine(other) * -1)

    def __mul__(self, other) -> "AffineIndexExpr":
        if not isinstance(other, int):
            raise SpecError("index expressions may only be scaled by integers")
        return AffineIndexExpr(
            {name: c * other for name, c in self.coeffs.items()}, self.const * other
        )

    def __repr__(self) -> str:
        parts = []
        for name, c in sorted(self.coeffs.items()):
            if c == 1:
                parts.append(name)
            else:
                parts.append(f"{c}*{name}")
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts).replace("+ -", "- ")


def _as_affine(value) -> AffineIndexExpr:
    if isinstance(value, AffineIndexExpr):
        return value
    if isinstance(value, Index):
        return AffineIndexExpr({value.name: 1})
    if isinstance(value, int):
        return AffineIndexExpr({}, value)
    if isinstance(value, BoundMarker):
        raise SpecError("bound markers cannot participate in index arithmetic")
    raise SpecError(f"cannot convert {value!r} to an index expression")


class Bounds:
    """Inclusive per-index bounds of the tensor iteration space.

    ``Bounds({"i": 4, "j": 4, "k": 4})`` gives each index the range
    ``[0, 3]``; an explicit ``(lo, hi)`` tuple may also be supplied.
    """

    def __init__(self, sizes: Mapping[str, Union[int, Tuple[int, int]]]):
        self._ranges: Dict[str, Tuple[int, int]] = {}
        for name, size in sizes.items():
            if isinstance(size, tuple):
                lo, hi = size
            else:
                lo, hi = 0, size - 1
            if hi < lo:
                raise SpecError(f"empty range for index {name!r}: [{lo}, {hi}]")
            self._ranges[name] = (lo, hi)

    def __getitem__(self, name: str) -> Tuple[int, int]:
        return self._ranges[name]

    def __contains__(self, name: str) -> bool:
        return name in self._ranges

    def names(self) -> Sequence[str]:
        return list(self._ranges)

    def size(self, name: str) -> int:
        lo, hi = self._ranges[name]
        return hi - lo + 1

    def domain(self, order: Sequence[str]) -> Iterable[Tuple[int, ...]]:
        """Yield every point of the iteration domain in lexicographic order."""
        ranges = [range(self._ranges[n][0], self._ranges[n][1] + 1) for n in order]

        def rec(prefix, remaining):
            if not remaining:
                yield tuple(prefix)
                return
            head, rest = remaining[0], remaining[1:]
            for value in head:
                prefix.append(value)
                yield from rec(prefix, rest)
                prefix.pop()

        yield from rec([], ranges)

    def point_count(self, order: Sequence[str]) -> int:
        total = 1
        for name in order:
            total *= self.size(name)
        return total

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}=[{lo},{hi}]" for n, (lo, hi) in self._ranges.items())
        return f"Bounds({inner})"


# ---------------------------------------------------------------------------
# Value expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for value expressions (the right-hand sides of rules)."""

    def free_indices(self) -> frozenset:
        raise NotImplementedError

    def references(self) -> Iterable["Access"]:
        """Yield every tensor/variable access in this expression tree."""
        return iter(())

    def children(self) -> Iterable["Expr"]:
        """Yield this node's immediate child value expressions.

        The generic tree walk behind :meth:`references`,
        ``macs_per_point``, and the kernel tracer's structural checks;
        leaves yield nothing, ``Access`` yields its value-typed
        (data-dependent) subscripts.
        """
        return iter(())

    def evaluate(self, ctx: "EvalContext") -> Union[int, float]:
        raise NotImplementedError

    # Operators ---------------------------------------------------------------
    def __add__(self, other) -> "BinOp":
        return BinOp("+", self, _as_value(other))

    def __radd__(self, other) -> "BinOp":
        return BinOp("+", _as_value(other), self)

    def __sub__(self, other) -> "BinOp":
        return BinOp("-", self, _as_value(other))

    def __rsub__(self, other) -> "BinOp":
        return BinOp("-", _as_value(other), self)

    def __mul__(self, other) -> "BinOp":
        return BinOp("*", self, _as_value(other))

    def __rmul__(self, other) -> "BinOp":
        return BinOp("*", _as_value(other), self)

    def __eq__(self, other) -> object:  # type: ignore[override]
        if isinstance(other, (Expr, IndexExpr, int, float)):
            return Comparison("==", self, _as_value(other))
        return NotImplemented

    def __ne__(self, other) -> object:  # type: ignore[override]
        if isinstance(other, (Expr, IndexExpr, int, float)):
            return Comparison("!=", self, _as_value(other))
        return NotImplemented

    def __lt__(self, other) -> "Comparison":
        return Comparison("<", self, _as_value(other))

    def __le__(self, other) -> "Comparison":
        return Comparison("<=", self, _as_value(other))

    def __gt__(self, other) -> "Comparison":
        return Comparison(">", self, _as_value(other))

    def __ge__(self, other) -> "Comparison":
        return Comparison(">=", self, _as_value(other))

    def __hash__(self) -> int:
        return id(self)


class Const(Expr):
    """A literal scalar constant."""

    __slots__ = ("value",)

    def __init__(self, value: Union[int, float]):
        self.value = value

    def free_indices(self) -> frozenset:
        return frozenset()

    def evaluate(self, ctx: "EvalContext") -> Union[int, float]:
        return self.value

    def __repr__(self) -> str:
        return repr(self.value)


WILDCARD = "->"
"""Subscript wildcard: ``A[i, WILDCARD]`` denotes an entire row of A
(Listing 2's ``A(i, ->)``)."""


class Access(Expr):
    """An access to a named tensor or local variable at given subscripts."""

    __slots__ = ("target", "subscripts")

    def __init__(self, target: "Symbol", subscripts: Sequence):
        normalized = []
        for sub in subscripts:
            if sub is WILDCARD or isinstance(sub, (IndexExpr, Expr)):
                normalized.append(sub)
            elif isinstance(sub, int):
                normalized.append(AffineIndexExpr({}, sub))
            else:
                raise SpecError(f"invalid subscript {sub!r} for {target.name}")
        self.target = target
        self.subscripts = tuple(normalized)

    @property
    def is_data_dependent(self) -> bool:
        """True when any subscript is itself a value expression.

        Data-dependent accesses implement the merging/sorting idioms of
        Section III-A ("data-dependent accesses to input or output tensors").
        """
        return any(isinstance(s, Expr) for s in self.subscripts)

    def free_indices(self) -> frozenset:
        out: frozenset = frozenset()
        for sub in self.subscripts:
            if sub is WILDCARD:
                continue
            out |= sub.free_indices()
        return out

    def references(self) -> Iterable["Access"]:
        yield self
        for sub in self.subscripts:
            if isinstance(sub, Expr):
                yield from sub.references()

    def children(self) -> Iterable["Expr"]:
        for sub in self.subscripts:
            if isinstance(sub, Expr):
                yield sub

    def evaluate(self, ctx: "EvalContext") -> Union[int, float]:
        coords = []
        for sub in self.subscripts:
            if sub is WILDCARD:
                raise SpecError("wildcard subscripts cannot be evaluated directly")
            if isinstance(sub, Expr):
                coords.append(int(sub.evaluate(ctx)))
            else:
                coords.append(sub.evaluate(ctx.env, ctx.bounds))
        return ctx.read(self.target, tuple(coords))

    def subscript_offsets(self, order: Sequence[str]) -> Optional[Tuple[int, ...]]:
        """If every subscript is ``index + c`` matching ``order``, return the
        constant offsets; else None.

        Used to extract difference vectors: ``a(i, j - 1, k)`` with order
        ``(i, j, k)`` yields ``(0, -1, 0)``.
        """
        if len(self.subscripts) != len(order):
            return None
        offsets = []
        for sub, name in zip(self.subscripts, order):
            if sub is WILDCARD or isinstance(sub, Expr):
                return None
            if isinstance(sub, BoundMarker):
                return None
            offset = sub.offset_from(Index(name))
            if offset is None:
                return None
            offsets.append(offset)
        return tuple(offsets)

    def __repr__(self) -> str:
        inner = ", ".join("->" if s is WILDCARD else repr(s) for s in self.subscripts)
        return f"{self.target.name}({inner})"


class BinOp(Expr):
    """A binary arithmetic operation."""

    _OPS: Dict[str, Callable] = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": lambda a, b: a / b,
        "//": lambda a, b: a // b,
        "%": lambda a, b: a % b,
        "min": min,
        "max": max,
    }

    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: Expr, rhs: Expr):
        if op not in self._OPS:
            raise SpecError(f"unsupported operator {op!r}")
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def free_indices(self) -> frozenset:
        return self.lhs.free_indices() | self.rhs.free_indices()

    def references(self) -> Iterable[Access]:
        yield from self.lhs.references()
        yield from self.rhs.references()

    def children(self) -> Iterable[Expr]:
        yield self.lhs
        yield self.rhs

    def evaluate(self, ctx: "EvalContext") -> Union[int, float]:
        return self._OPS[self.op](self.lhs.evaluate(ctx), self.rhs.evaluate(ctx))

    def __repr__(self) -> str:
        if self.op in ("min", "max"):
            return f"{self.op}({self.lhs!r}, {self.rhs!r})"
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


class Comparison(Expr):
    """A boolean comparison, used in sparsity conditions and selects."""

    _OPS: Dict[str, Callable] = {
        "==": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }

    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: Expr, rhs: Expr):
        if op not in self._OPS:
            raise SpecError(f"unsupported comparison {op!r}")
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def free_indices(self) -> frozenset:
        return self.lhs.free_indices() | self.rhs.free_indices()

    def references(self) -> Iterable[Access]:
        yield from self.lhs.references()
        yield from self.rhs.references()

    def children(self) -> Iterable[Expr]:
        yield self.lhs
        yield self.rhs

    def evaluate(self, ctx: "EvalContext") -> bool:
        return self._OPS[self.op](self.lhs.evaluate(ctx), self.rhs.evaluate(ctx))

    def __repr__(self) -> str:
        return f"({self.lhs!r} {self.op} {self.rhs!r})"

    def __hash__(self) -> int:
        return id(self)


class Select(Expr):
    """``Select(cond, if_true, if_false)`` -- a functional conditional."""

    __slots__ = ("cond", "if_true", "if_false")

    def __init__(self, cond: Expr, if_true, if_false):
        self.cond = cond
        self.if_true = _as_value(if_true)
        self.if_false = _as_value(if_false)

    def free_indices(self) -> frozenset:
        return (
            self.cond.free_indices()
            | self.if_true.free_indices()
            | self.if_false.free_indices()
        )

    def references(self) -> Iterable[Access]:
        yield from self.cond.references()
        yield from self.if_true.references()
        yield from self.if_false.references()

    def children(self) -> Iterable[Expr]:
        yield self.cond
        yield self.if_true
        yield self.if_false

    def evaluate(self, ctx: "EvalContext") -> Union[int, float]:
        if self.cond.evaluate(ctx):
            return self.if_true.evaluate(ctx)
        return self.if_false.evaluate(ctx)

    def __repr__(self) -> str:
        return f"Select({self.cond!r}, {self.if_true!r}, {self.if_false!r})"


class IndexValue(Expr):
    """An index used as a *value* (e.g. writing coordinates during a merge)."""

    __slots__ = ("expr",)

    def __init__(self, expr: IndexExpr):
        self.expr = expr

    def free_indices(self) -> frozenset:
        return self.expr.free_indices()

    def evaluate(self, ctx: "EvalContext") -> int:
        return self.expr.evaluate(ctx.env, ctx.bounds)

    def __repr__(self) -> str:
        return f"IndexValue({self.expr!r})"


def _as_value(value) -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float)):
        return Const(value)
    if isinstance(value, IndexExpr):
        return IndexValue(value)
    raise SpecError(f"cannot convert {value!r} to a value expression")


def minimum(a, b) -> BinOp:
    """Elementwise minimum, usable in functional specs (merging/sorting)."""
    return BinOp("min", _as_value(a), _as_value(b))


def maximum(a, b) -> BinOp:
    """Elementwise maximum, usable in functional specs (merging/sorting)."""
    return BinOp("max", _as_value(a), _as_value(b))


# ---------------------------------------------------------------------------
# Symbols
# ---------------------------------------------------------------------------


class Symbol:
    """Base class for named tensors and local variables."""

    def __init__(self, name: str, rank: int):
        if not name or not name.isidentifier():
            raise SpecError(f"invalid symbol name: {name!r}")
        if rank < 0:
            raise SpecError("rank must be non-negative")
        self.name = name
        self.rank = rank

    def __getitem__(self, subscripts) -> Access:
        if not isinstance(subscripts, tuple):
            subscripts = (subscripts,)
        if len(subscripts) != self.rank:
            raise SpecError(
                f"{self.name} has rank {self.rank}, got {len(subscripts)} subscripts"
            )
        return Access(self, subscripts)

    def __call__(self, *subscripts) -> Access:
        return self[subscripts]

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, rank={self.rank})"


class Tensor(Symbol):
    """An external input or output tensor (``A``, ``B``, ``C`` in Listing 1)."""


class Local(Symbol):
    """A local (intermediate) variable flowing between PEs (``a``, ``b``, ``c``).

    Locals are always subscripted by the full set of iteration indices.
    """


def indices(names: str) -> Tuple[Index, ...]:
    """Create several indices at once: ``i, j, k = indices("i j k")``."""
    return tuple(Index(name) for name in names.split())


# ---------------------------------------------------------------------------
# Evaluation context
# ---------------------------------------------------------------------------


class EvalContext:
    """Environment for evaluating expressions during reference interpretation.

    ``read`` is dispatched back to the interpreter so that local-variable
    reads can follow recurrences and boundary rules.
    """

    def __init__(
        self,
        env: Mapping[str, int],
        bounds: Bounds,
        read: Callable[[Symbol, Tuple[int, ...]], Union[int, float]],
    ):
        self.env = env
        self.bounds = bounds
        self.read = read

    def with_env(self, env: Mapping[str, int]) -> "EvalContext":
        return EvalContext(env, self.bounds, self.read)


def exact_inverse(matrix: Sequence[Sequence[int]]) -> Tuple[Tuple[Fraction, ...], ...]:
    """Exact inverse of a small integer matrix via Gauss-Jordan on Fractions.

    Raises :class:`SpecError` when the matrix is singular.  Used by the
    dataflow machinery (T must be invertible, Equation 1) and by PEs at
    runtime to recover tensor iterators from space-time coordinates.
    """
    n = len(matrix)
    if any(len(row) != n for row in matrix):
        raise SpecError("space-time transform must be square")
    aug = [
        [Fraction(v) for v in row] + [Fraction(int(i == r)) for i in range(n)]
        for r, row in enumerate(matrix)
    ]
    for col in range(n):
        pivot = next((r for r in range(col, n) if aug[r][col] != 0), None)
        if pivot is None:
            raise SpecError("space-time transform is singular (not invertible)")
        aug[col], aug[pivot] = aug[pivot], aug[col]
        inv = aug[col][col]
        aug[col] = [v / inv for v in aug[col]]
        for r in range(n):
            if r != col and aug[r][col] != 0:
                factor = aug[r][col]
                aug[r] = [v - factor * p for v, p in zip(aug[r], aug[col])]
    return tuple(tuple(row[n:]) for row in aug)
