"""Pruned AlexNet [20] layer shapes and sparsities for the SCNN study.

SCNN [28] evaluates on AlexNet pruned for unstructured weight sparsity,
with dynamic activation sparsity from ReLU.  The per-layer densities below
follow the published pruning results (Han et al.) used by SCNN: weight
densities of roughly 16-65% and activation densities of 35-85% depending
on depth.
"""

from __future__ import annotations

from typing import List, NamedTuple


class SparseConvLayer(NamedTuple):
    """One pruned conv layer: dense shape plus nonzero densities."""

    name: str
    in_channels: int
    out_channels: int
    filter_size: int
    output_size: int
    weight_density: float
    activation_density: float

    @property
    def dense_macs(self) -> int:
        return (
            self.output_size
            * self.output_size
            * self.out_channels
            * self.in_channels
            * self.filter_size
            * self.filter_size
        )

    @property
    def effective_macs(self) -> int:
        """MACs that survive both weight and activation sparsity -- the
        work a perfect sparse accelerator would perform."""
        return int(self.dense_macs * self.weight_density * self.activation_density)

    @property
    def nonzero_weights(self) -> int:
        dense = (
            self.out_channels
            * self.in_channels
            * self.filter_size
            * self.filter_size
        )
        return int(dense * self.weight_density)


def alexnet_pruned_layers() -> List[SparseConvLayer]:
    """The five conv layers of AlexNet with pruned densities [28]."""
    return [
        SparseConvLayer("conv1", 3, 96, 11, 55, 0.84, 0.85),
        SparseConvLayer("conv2", 48, 256, 5, 27, 0.38, 0.62),
        SparseConvLayer("conv3", 256, 384, 3, 13, 0.35, 0.50),
        SparseConvLayer("conv4", 192, 384, 3, 13, 0.37, 0.48),
        SparseConvLayer("conv5", 192, 256, 3, 13, 0.37, 0.42),
    ]
