"""Workloads from the paper's evaluation: ResNet-50, pruned AlexNet, and
synthetic SuiteSparse stand-ins."""

from .alexnet import SparseConvLayer, alexnet_pruned_layers
from .im2col import (
    conv2d_reference,
    conv2d_via_im2col,
    im2col,
    matmul_to_output,
    weights_to_matrix,
)
from .resnet50 import ConvLayer, resnet50_layers, total_macs
from .suitesparse import (
    SUITESPARSE_SET,
    MatrixInfo,
    info,
    matrix_names,
    synthesize,
    synthesize_all,
)

__all__ = [
    "SparseConvLayer",
    "alexnet_pruned_layers",
    "conv2d_reference",
    "conv2d_via_im2col",
    "im2col",
    "matmul_to_output",
    "weights_to_matrix",
    "ConvLayer",
    "resnet50_layers",
    "total_macs",
    "SUITESPARSE_SET",
    "MatrixInfo",
    "info",
    "matrix_names",
    "synthesize",
    "synthesize_all",
]
