"""Synthetic stand-ins for the SuiteSparse matrices [8].

OuterSPACE and SpArch evaluate on a set of SuiteSparse matrices whose
defining properties -- dimension, density, and degree distribution --
drive the experiments reproduced here (Figures 16b and 18).  With no
network access, this module carries the published statistics of those
matrices and a seeded generator producing *scaled* synthetic matrices
matching each one's density and degree-distribution class:

* ``power_law`` -- web/social/citation graphs with heavy-tailed row
  lengths (severe row imbalance);
* ``mesh`` -- FEM/circuit matrices with banded, near-uniform rows;
* ``random`` -- quasi-uniform scatter.

Scale factors are recorded so experiment logs state the substitution
explicitly (see DESIGN.md's substitution table).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional

import numpy as np

from ..formats.csr import CSRMatrix


class MatrixInfo(NamedTuple):
    name: str
    rows: int
    nnz: int
    kind: str  # "power_law" | "mesh" | "random"


#: The matrices OuterSPACE [26] and SpArch [39] report on, with their
#: published dimensions and nonzero counts.
SUITESPARSE_SET: List[MatrixInfo] = [
    MatrixInfo("2cubes_sphere", 101_492, 1_647_264, "mesh"),
    MatrixInfo("amazon0312", 400_727, 3_200_440, "power_law"),
    MatrixInfo("ca-CondMat", 23_133, 186_936, "power_law"),
    MatrixInfo("cage12", 130_228, 2_032_536, "random"),
    MatrixInfo("cit-Patents", 3_774_768, 16_518_948, "power_law"),
    MatrixInfo("cop20k_A", 121_192, 2_624_331, "mesh"),
    MatrixInfo("email-Enron", 36_692, 367_662, "power_law"),
    MatrixInfo("filter3D", 106_437, 2_707_179, "mesh"),
    MatrixInfo("m133-b3", 200_200, 800_800, "random"),
    MatrixInfo("mario002", 389_874, 2_101_242, "mesh"),
    MatrixInfo("offshore", 259_789, 4_242_673, "mesh"),
    MatrixInfo("p2p-Gnutella31", 62_586, 147_892, "power_law"),
    MatrixInfo("patents_main", 240_547, 560_943, "power_law"),
    MatrixInfo("poisson3Da", 13_514, 352_762, "mesh"),
    MatrixInfo("roadNet-CA", 1_971_281, 5_533_214, "mesh"),
    MatrixInfo("scircuit", 170_998, 958_936, "mesh"),
    MatrixInfo("web-Google", 916_428, 5_105_039, "power_law"),
    MatrixInfo("webbase-1M", 1_000_005, 3_105_536, "power_law"),
    MatrixInfo("wiki-Vote", 8_297, 103_689, "power_law"),
]


def matrix_names() -> List[str]:
    return [m.name for m in SUITESPARSE_SET]


def info(name: str) -> MatrixInfo:
    for m in SUITESPARSE_SET:
        if m.name == name:
            return m
    raise KeyError(f"unknown matrix {name!r}; see matrix_names()")


def synthesize(
    name: str,
    max_rows: int = 256,
    seed: Optional[int] = None,
) -> CSRMatrix:
    """A scaled synthetic matrix matching a SuiteSparse entry's density and
    degree-distribution class.

    The matrix is square with ``min(rows, max_rows)`` rows, mean row length
    preserved from the original (clipped to the scaled dimension), and row
    lengths drawn from the class distribution:

    * ``power_law``: Zipf-distributed row lengths (heavy imbalance);
    * ``mesh``: near-constant row lengths around the mean, banded columns;
    * ``random``: Poisson row lengths, uniform columns.
    """
    meta = info(name)
    rows = min(meta.rows, max_rows)
    scale = meta.rows / rows
    mean_row_len = max(1.0, min(meta.nnz / meta.rows, rows * 0.9))
    rng = np.random.default_rng(
        seed if seed is not None else abs(hash(name)) % (2**31)
    )

    if meta.kind == "power_law":
        raw = rng.zipf(1.7, size=rows).astype(float)
        raw = np.minimum(raw, rows * 0.9)
        lengths = np.maximum(1, np.round(raw * mean_row_len / raw.mean())).astype(int)
    elif meta.kind == "mesh":
        lengths = np.maximum(
            1, rng.normal(mean_row_len, mean_row_len * 0.12, size=rows).round()
        ).astype(int)
    else:
        lengths = np.maximum(1, rng.poisson(mean_row_len, size=rows)).astype(int)
    lengths = np.minimum(lengths, rows)

    indptr = np.zeros(rows + 1, dtype=np.int64)
    indices: List[int] = []
    data: List[float] = []
    for r in range(rows):
        count = int(lengths[r])
        if meta.kind == "mesh":
            # Banded: columns clustered around the diagonal.
            center = r
            half = max(count, 2)
            lo = max(0, center - half)
            hi = min(rows, center + half + 1)
            cols = rng.choice(np.arange(lo, hi), size=min(count, hi - lo), replace=False)
        else:
            cols = rng.choice(rows, size=count, replace=False)
        cols = np.sort(cols)
        indices.extend(int(c) for c in cols)
        data.extend(rng.uniform(0.5, 1.5, size=len(cols)))
        indptr[r + 1] = len(indices)

    matrix = CSRMatrix(
        (rows, rows),
        indptr,
        np.asarray(indices, dtype=np.int64),
        np.asarray(data),
    )
    matrix.scale_factor = scale  # type: ignore[attr-defined]  # recorded for logs
    return matrix


def synthesize_all(max_rows: int = 256, seed: int = 7) -> Dict[str, CSRMatrix]:
    return {
        meta.name: synthesize(meta.name, max_rows=max_rows, seed=seed + i)
        for i, meta in enumerate(SUITESPARSE_SET)
    }
