"""ResNet-50 [15] layer shapes, as used in the Gemmini evaluation
(paper Section VI-A: end-to-end ResNet-50 inference).

Convolutions are executed as matrix multiplications via im2col, exactly
as Gemmini does: a conv with ``C`` input channels, ``K`` output channels,
``R x S`` filters and ``P x Q`` output positions becomes a
``(P*Q) x (C*R*S) x K`` matmul.
"""

from __future__ import annotations

from typing import List, NamedTuple


class ConvLayer(NamedTuple):
    """One convolutional layer's shape (batch size 1)."""

    name: str
    in_channels: int
    out_channels: int
    filter_size: int
    stride: int
    output_size: int  # spatial output (P == Q)

    @property
    def matmul_m(self) -> int:
        return self.output_size * self.output_size

    @property
    def matmul_k(self) -> int:
        return self.in_channels * self.filter_size * self.filter_size

    @property
    def matmul_n(self) -> int:
        return self.out_channels

    @property
    def macs(self) -> int:
        return self.matmul_m * self.matmul_k * self.matmul_n

    @property
    def weight_bytes(self) -> int:
        return self.matmul_k * self.matmul_n  # int8

    @property
    def activation_bytes(self) -> int:
        return self.matmul_m * self.matmul_k  # int8 im2col footprint

    @property
    def output_bytes(self) -> int:
        return self.matmul_m * self.matmul_n


def resnet50_layers() -> List[ConvLayer]:
    """The distinct conv shapes of ResNet-50 (residual stages 1-4 plus the
    stem), one entry per unique shape; repeats within a stage share a
    shape and therefore a utilization/energy point."""
    return [
        ConvLayer("conv1", 3, 64, 7, 2, 112),
        # Stage 2 (56x56).
        ConvLayer("res2_1x1a", 64, 64, 1, 1, 56),
        ConvLayer("res2_3x3", 64, 64, 3, 1, 56),
        ConvLayer("res2_1x1b", 64, 256, 1, 1, 56),
        ConvLayer("res2_proj", 64, 256, 1, 1, 56),
        # Stage 3 (28x28).
        ConvLayer("res3_1x1a", 256, 128, 1, 1, 28),
        ConvLayer("res3_3x3", 128, 128, 3, 1, 28),
        ConvLayer("res3_1x1b", 128, 512, 1, 1, 28),
        ConvLayer("res3_proj", 256, 512, 1, 2, 28),
        # Stage 4 (14x14).
        ConvLayer("res4_1x1a", 512, 256, 1, 1, 14),
        ConvLayer("res4_3x3", 256, 256, 3, 1, 14),
        ConvLayer("res4_1x1b", 256, 1024, 1, 1, 14),
        ConvLayer("res4_proj", 512, 1024, 1, 2, 14),
        # Stage 5 (7x7).
        ConvLayer("res5_1x1a", 1024, 512, 1, 1, 7),
        ConvLayer("res5_3x3", 512, 512, 3, 1, 7),
        ConvLayer("res5_1x1b", 512, 2048, 1, 1, 7),
        ConvLayer("res5_proj", 1024, 2048, 1, 2, 7),
        # Classifier as a 1x1x2048 -> 1000 matmul.
        ConvLayer("fc1000", 2048, 1000, 1, 1, 1),
    ]


def total_macs() -> int:
    return sum(layer.macs for layer in resnet50_layers())
