"""Convolution-as-matmul lowering (im2col).

Gemmini executes convolutions by lowering them to matrix multiplications
(paper Section VI-A: it "performs convolutions and 8-bit quantized matrix
multiplications"); the per-layer matmul dimensions in
:mod:`repro.workloads.resnet50` come from exactly this transformation.
This module performs it concretely, so generated matmul arrays can run
real convolution layers end to end.

Layout conventions: activations are ``(H, W, C)``, weights are
``(R, S, C, K)``, outputs are ``(P, Q, K)``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def conv2d_reference(
    activations: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
) -> np.ndarray:
    """Direct convolution, the ground truth for the im2col path."""
    h, w, c = activations.shape
    r, s, c2, k = weights.shape
    if c != c2:
        raise ValueError(f"channel mismatch: activations {c}, weights {c2}")
    p = (h - r) // stride + 1
    q = (w - s) // stride + 1
    out = np.zeros((p, q, k), dtype=np.result_type(activations, weights))
    for oy in range(p):
        for ox in range(q):
            window = activations[
                oy * stride : oy * stride + r, ox * stride : ox * stride + s, :
            ]
            for ok in range(k):
                out[oy, ox, ok] = np.sum(window * weights[:, :, :, ok])
    return out


def im2col(
    activations: np.ndarray, filter_size: Tuple[int, int], stride: int = 1
) -> np.ndarray:
    """Unfold activations into the ``(P*Q) x (R*S*C)`` im2col matrix."""
    h, w, c = activations.shape
    r, s = filter_size
    p = (h - r) // stride + 1
    q = (w - s) // stride + 1
    rows = np.zeros((p * q, r * s * c), dtype=activations.dtype)
    for oy in range(p):
        for ox in range(q):
            window = activations[
                oy * stride : oy * stride + r, ox * stride : ox * stride + s, :
            ]
            rows[oy * q + ox] = window.reshape(-1)
    return rows


def weights_to_matrix(weights: np.ndarray) -> np.ndarray:
    """Reshape ``(R, S, C, K)`` weights to the ``(R*S*C) x K`` matrix."""
    r, s, c, k = weights.shape
    return weights.reshape(r * s * c, k)


def matmul_to_output(
    product: np.ndarray, out_spatial: Tuple[int, int]
) -> np.ndarray:
    """Fold the ``(P*Q) x K`` matmul result back to ``(P, Q, K)``."""
    p, q = out_spatial
    return product.reshape(p, q, -1)


def conv2d_via_im2col(
    activations: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
    matmul=None,
) -> np.ndarray:
    """Convolution through the matmul path.

    ``matmul`` defaults to numpy; pass a function to route the product
    through a generated accelerator (see the conv integration tests).
    """
    r, s, c, k = weights.shape
    h, w, _ = activations.shape
    p = (h - r) // stride + 1
    q = (w - s) // stride + 1
    lhs = im2col(activations, (r, s), stride)
    rhs = weights_to_matrix(weights)
    product = (matmul or np.matmul)(lhs, rhs)
    return matmul_to_output(np.asarray(product), (p, q))
